"""Fast-engine bit-identity across the full Table-6 grid.

For every (workload, config, scheduler) point of the paper's combined-
optimization grid, the compiled fast engine must agree with the
reference interpreter on cycles, the interlock split, MSHR stalls and
every final data-symbol value.  This is the contract that lets the
harness default to the fast engine: any drift here is a correctness
bug in one of the two engines, never an acceptable approximation.

Each workload is one test so failures localize; the grid walk shares
compiled programs between the two engines (compile once, simulate
twice).
"""

import pytest

from repro.harness.experiment import options_for
from repro.harness.compile import compile_source
from repro.harness.tables import TABLE6_CONFIGS
from repro.machine import Simulator
from repro.workloads import WORKLOAD_ORDER, WORKLOADS

GRID_CONFIGS = ("base",) + tuple(TABLE6_CONFIGS)

CHECKED_FIELDS = (
    "total_cycles", "instructions",
    "load_interlock_cycles", "fixed_interlock_cycles",
    "icache_stall_cycles", "branch_stall_cycles", "mshr_stall_cycles",
    "spill_loads", "spill_stores",
    "loads", "stores", "branches",
    "short_int", "long_int", "short_fp", "long_fp",
    "dtlb_misses", "itlb_misses", "branch_mispredicts",
)


@pytest.mark.parametrize("name", WORKLOAD_ORDER)
def test_fast_matches_reference_on_table6_grid(name):
    workload = WORKLOADS[name]
    for config in GRID_CONFIGS:
        for scheduler in ("balanced", "traditional"):
            program = compile_source(
                workload.source, options_for(scheduler, config),
                name).program
            ref = Simulator(program, mode="reference")
            ref.run()
            fast = Simulator(program, mode="fast")
            fast.run()
            point = f"{name}/{config}/{scheduler}"
            assert fast.mode_used == "fast", point
            for field in CHECKED_FIELDS:
                assert getattr(fast.metrics, field) == \
                    getattr(ref.metrics, field), (point, field)
            for level in ("l1d", "l1i", "l2", "l3"):
                assert vars(getattr(fast.metrics, level)) == \
                    vars(getattr(ref.metrics, level)), (point, level)
            for symbol in program.symbols:
                assert fast.get_symbol(symbol) == \
                    ref.get_symbol(symbol), (point, symbol)
