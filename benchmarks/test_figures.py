"""Figures 1-5 as checked artifacts.

The paper's figures are worked examples rather than measurements; each
is regenerated here and its key property asserted.  The runnable
walkthroughs live in ``examples/``.
"""

from conftest import save_and_print

from repro.analysis import analyze_locality
from repro.frontend import frontend
from repro.harness.compile import Options, compile_source
from repro.machine import Simulator
from repro.sched import BalancedWeights, ProfileData, form_traces
from repro.workloads import figure1_dag

NODE_NAMES = ["X0", "L0", "L1", "L2", "L3", "X1", "X2", "X3"]


def test_figure1_balanced_weights(benchmark, results_dir):
    dag = figure1_dag()
    weights = benchmark(lambda: BalancedWeights().weights(dag))
    assert weights[1] == weights[2] == 3.0
    assert weights[3] == weights[4] == 2.0
    lines = ["Figure 1: balanced load weights on the example DAG", ""]
    lines += [f"  {NODE_NAMES[i]:<4} weight {weights[i]:.1f}"
              for i in range(len(weights))]
    save_and_print(results_dir, "figure1", "\n".join(lines))


FIGURE2_SOURCE = """
array A[512] : float;
array B[512] : float;
var n : int = 512;
func main() {
    var i : int;
    for (i = 0; i < n; i = i + 1) { A[i] = float(i % 13); }
    for (i = 1; i < n; i = i + 1) {
        if (i % 64 == 0) { B[i] = 0.0; }
        else { B[i] = A[i] + A[i - 1]; }
        A[i] = A[i] + B[i] * 0.5;
    }
}
"""


def test_figure2_trace_with_compensation(benchmark, results_dir):
    result = benchmark(lambda: compile_source(
        FIGURE2_SOURCE, Options(scheduler="balanced", trace=True)))
    stats = result.trace_stats
    assert stats.multi_block_traces >= 1
    lines = ["Figure 2: trace scheduling with compensation code", "",
             f"  traces: {stats.traces} "
             f"(multi-block {stats.multi_block_traces})",
             f"  blocks merged: {stats.blocks_merged}",
             f"  compensation instructions: "
             f"{stats.compensation_instructions}",
             f"  speculation arcs: {stats.speculation_arcs}"]
    save_and_print(results_dir, "figure2", "\n".join(lines))


FIGURE3_SOURCE = """
array A[32][32] : float;
array B[32][32] : float;
array C[32][32] : float;
var n : int = 32;
func main() {
    var i : int; var j : int;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            C[i][j] = A[i][j] + B[i][0];
        }
    }
}
"""


def test_figures3to5_locality_transforms(benchmark, results_dir):
    def analyze():
        program = frontend(FIGURE3_SOURCE)
        return analyze_locality(program)

    stats = benchmark(analyze)
    # Figure 4: reuse-driven unrolling by the line factor.
    assert stats.loops_unrolled == 1
    # Figure 5: peeling for the temporal B[i][0] reference.
    assert stats.loops_peeled == 1
    assert stats.marked_misses >= 1 and stats.marked_hits >= 3

    result = compile_source(FIGURE3_SOURCE,
                            Options(scheduler="balanced", locality=True))
    sim = Simulator(result.program)
    sim.run()
    base = compile_source(FIGURE3_SOURCE, Options(scheduler="balanced"))
    sim_base = Simulator(base.program)
    sim_base.run()
    assert sim.get_symbol("C") == sim_base.get_symbol("C")

    lines = ["Figures 3-5: locality transformations on the paper's loop",
             "",
             f"  spatial refs:  {stats.refs_spatial}",
             f"  temporal refs: {stats.refs_temporal}",
             f"  peeled loops:  {stats.loops_peeled}   (Figure 5)",
             f"  unrolled:      {stats.loops_unrolled}   (Figure 4)",
             f"  miss marks:    {stats.marked_misses}",
             f"  hit marks:     {stats.marked_hits}"]
    save_and_print(results_dir, "figures3to5", "\n".join(lines))
