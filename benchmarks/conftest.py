"""Shared fixtures for the benchmark suite.

``pytest benchmarks/ --benchmark-only`` regenerates every table of the
paper.  The first run simulates the full experiment grid (minutes);
results are cached on disk, so re-runs are fast.  Each table is also
written to ``results/tableN.txt``.

Table regeneration is fanned out over all cores: the session-scoped
runner prewarms the full grid with ``sweep(jobs=N)`` before the table
generators walk it serially (every walk is then a cache hit).  Set
``REPRO_JOBS`` to control the worker count (``1`` disables the
prewarm and the pool).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness import ExperimentRunner

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def _default_jobs() -> int:
    env = os.environ.get("REPRO_JOBS")
    if env:
        jobs = int(env)
        return jobs if jobs > 0 else (os.cpu_count() or 1)
    return os.cpu_count() or 1


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    runner = ExperimentRunner(verbose=False, jobs=_default_jobs())
    if runner.jobs > 1:
        runner.sweep()          # parallel prewarm of the full grid
    return runner


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_and_print(results_dir: Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
