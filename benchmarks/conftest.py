"""Shared fixtures for the benchmark suite.

``pytest benchmarks/ --benchmark-only`` regenerates every table of the
paper.  The first run simulates the full experiment grid (minutes);
results are cached on disk, so re-runs are fast.  Each table is also
written to ``results/tableN.txt``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.harness import ExperimentRunner

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner(verbose=False)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_and_print(results_dir: Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
