"""Table 9: locality-analysis combinations.

Paper reference: LA alone 1.15 over plain balanced scheduling; with
unrolling 1.28/1.31; with trace scheduling as well 1.29/1.40.
"""

from conftest import save_and_print

from repro.harness import table9


def test_table9_locality_summary(benchmark, runner, results_dir):
    table9(runner)
    table = benchmark(lambda: table9(runner))
    save_and_print(results_dir, "table9", table.format())

    rows = {row[0]: row for row in table.rows}
    la_alone = float(rows["Locality analysis"][2])
    best = float(rows["Locality analysis with trace scheduling and loop "
                      "unrolling by 8"][2])

    # LA alone helps on average (paper: 1.15).
    assert la_alone > 1.05
    # Adding unrolling on top of LA helps further.
    lu4 = float(rows["Locality analysis with loop unrolling by 4"][2])
    assert lu4 > la_alone
    # The full stack is the best configuration (paper: 1.40).
    assert best >= lu4 - 0.05
    assert best > 1.25
