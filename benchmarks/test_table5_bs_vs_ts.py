"""Table 5: balanced vs traditional scheduling under unrolling.

Paper reference: average BS-over-TS speedups of 1.05 / 1.12 / 1.18 for
no unrolling / LU4 / LU8; balanced removes 51-62% of load interlock
cycles; load interlocks are ~6-7% of cycles under BS vs ~15-16% under
TS.
"""

from conftest import save_and_print

from repro.harness import table5


def test_table5_bs_vs_ts(benchmark, runner, results_dir):
    table5(runner)
    table = benchmark(lambda: table5(runner))
    save_and_print(results_dir, "table5", table.format())

    average = table.rows[-1]
    bsts_base = float(average[1])
    bsts_lu8 = float(average[3])
    # Balanced beats traditional on average, at every unroll level.
    assert bsts_base > 1.0
    assert float(average[2]) > 1.0
    assert bsts_lu8 > 1.0

    # Balanced removes a large share of load interlocks.
    for column in (4, 5, 6):
        reduction = float(average[column].rstrip("%"))
        assert reduction > 30.0

    # The interlock split: BS spends a visibly smaller fraction of
    # cycles waiting on loads than TS (the paper's 7% vs 15%).
    for column in (7, 8, 9):
        bs_frac, ts_frac = (float(x.rstrip("%"))
                            for x in average[column].split("/"))
        assert bs_frac < ts_frac

    by_name = {row[0]: row for row in table.rows}
    # ora has essentially no load interlocks -> parity.
    assert abs(float(by_name["ora"][1]) - 1.0) < 0.02
    # spice2g6's dependent indirect loads resist both schedulers: its
    # interlock fraction stays high even under balanced scheduling.
    bs_frac = float(by_name["spice2g6"][7].split("/")[0].rstrip("%"))
    assert bs_frac > 15.0
