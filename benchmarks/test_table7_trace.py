"""Table 7: BS vs TS speedups including trace scheduling.

Paper reference: averages 1.05 / 1.12 / 1.18 / 1.14 / 1.16 for
no-LU / LU4 / LU8 / TrS+LU4 / TrS+LU8; DYFESM degrades under trace
scheduling (0.85) while ARC2D/dnasa7 show the largest wins.
"""

from conftest import save_and_print

from repro.harness import table7


def test_table7_bs_vs_ts_with_trace(benchmark, runner, results_dir):
    table7(runner)
    table = benchmark(lambda: table7(runner))
    save_and_print(results_dir, "table7", table.format())

    average = table.rows[-1]
    values = [float(x) for x in average[1:]]
    # Balanced wins on average in every column.
    assert all(v > 1.0 for v in values)
    # The optimized columns keep (or grow) the no-optimization lead.
    assert max(values[1:]) >= values[0] - 0.02

    by_name = {row[0]: row for row in table.rows}
    assert float(by_name["ora"][1]) == 1.0
    # The paper's big winners stay big winners with trace scheduling.
    assert float(by_name["ARC2D"][4]) > 1.1
    assert float(by_name["spice2g6"][4]) > 1.1
