"""Sensitivity study: what drives balanced scheduling's advantage.

The paper's thesis is that balanced scheduling wins exactly when the
code offers load-level parallelism for it to exploit.  Using the
parametric kernel generator, this bench sweeps the drivers directly:

* loads per iteration (load-level parallelism) — the advantage should
  *grow* along this axis;
* working-set size (which memory level loads hit) — with everything in
  L1 there is nothing to hide and both schedulers tie;
* serial dependence chains — hostile to any scheduler, advantage gone.
"""

import pytest
from conftest import save_and_print

from repro.harness.compile import Options, compile_source
from repro.machine import Simulator
from repro.workloads import KernelSpec, generate_kernel


def bs_vs_ts(spec: KernelSpec) -> float:
    source = generate_kernel(spec)
    cycles = {}
    for scheduler in ("balanced", "traditional"):
        result = compile_source(source, Options(scheduler=scheduler),
                                "generated")
        cycles[scheduler] = Simulator(result.program).run().total_cycles
    return cycles["traditional"] / cycles["balanced"]


@pytest.fixture(scope="module")
def parallelism_sweep():
    return [(loads, bs_vs_ts(KernelSpec(loads_per_iteration=loads,
                                        flops_per_load=1, array_kb=96)))
            for loads in (1, 2, 4, 6)]


@pytest.fixture(scope="module")
def working_set_sweep():
    return [(kb, bs_vs_ts(KernelSpec(loads_per_iteration=4,
                                     flops_per_load=1, array_kb=kb)))
            for kb in (4, 32, 96, 256)]


def test_advantage_grows_with_load_parallelism(benchmark,
                                               parallelism_sweep,
                                               results_dir):
    benchmark(lambda: parallelism_sweep)
    lines = ["Sensitivity: BS-over-TS speedup vs load-level parallelism",
             "", f"{'loads/iter':>10}  {'BSvTS':>7}"]
    lines += [f"{loads:>10}  {ratio:>7.3f}"
              for loads, ratio in parallelism_sweep]
    save_and_print(results_dir, "sensitivity_parallelism",
                   "\n".join(lines))
    first = parallelism_sweep[0][1]
    last = parallelism_sweep[-1][1]
    assert last > first + 0.1          # the paper's central thesis
    assert last > 1.3


def test_advantage_needs_cache_misses(benchmark, working_set_sweep,
                                      results_dir):
    benchmark(lambda: working_set_sweep)
    lines = ["Sensitivity: BS-over-TS speedup vs working-set size",
             "", f"{'KB':>6}  {'BSvTS':>7}"]
    lines += [f"{kb:>6}  {ratio:>7.3f}" for kb, ratio in working_set_sweep]
    save_and_print(results_dir, "sensitivity_workingset",
                   "\n".join(lines))
    resident = working_set_sweep[0][1]       # 4 KB: everything hits L1
    out_of_cache = max(ratio for _, ratio in working_set_sweep[1:])
    assert abs(resident - 1.0) < 0.1
    assert out_of_cache > resident + 0.1


def test_serial_chains_neutralize_the_advantage(benchmark, results_dir):
    parallel = bs_vs_ts(KernelSpec(loads_per_iteration=4,
                                   flops_per_load=1, array_kb=96))
    serial = bs_vs_ts(KernelSpec(loads_per_iteration=4, flops_per_load=1,
                                 array_kb=96, serial_chain=True))
    benchmark(lambda: (parallel, serial))
    lines = ["Sensitivity: dependence structure",
             "",
             f"independent trees: BSvTS = {parallel:.3f}",
             f"serial chain:      BSvTS = {serial:.3f}"]
    save_and_print(results_dir, "sensitivity_chains", "\n".join(lines))
    assert serial < parallel
