"""Table 4: balanced scheduling under loop unrolling.

Paper reference: average speedups of 1.19 (LU4) and 1.28 (LU8) over no
unrolling, ~11%/14% dynamic-instruction decreases, with per-program
outliers (ora flat, BDNA/mdljdp2/MDG barely unrolled).
"""

from conftest import save_and_print

from repro.harness import table4


def test_table4_unrolling(benchmark, runner, results_dir):
    table4(runner)                    # warm the cache before timing
    table = benchmark(lambda: table4(runner))
    save_and_print(results_dir, "table4", table.format())

    average = table.rows[-1]
    speedup4 = float(average[2])
    speedup8 = float(average[3])
    # Shape checks against the paper: unrolling helps on average, and
    # factor 8 at least matches factor 4.
    assert speedup4 > 1.05
    assert speedup8 >= speedup4 - 0.05

    by_name = {row[0]: row for row in table.rows}
    # ora spends its time in a loop-free routine: no unrolling benefit.
    assert float(by_name["ora"][2]) < 1.08
    # The conditional-heavy benchmarks barely change dynamic counts.
    for name in ("MDG", "mdljdp2", "BDNA"):
        decrease = float(by_name[name][5].rstrip("%"))
        assert abs(decrease) < 5.0, name
    # The showcase benchmarks unroll fully and win big.
    assert float(by_name["dnasa7"][2]) > 1.3
