"""Table 8: the paper's summary comparison.

Paper reference rows (BSvTS speedup / %ld-intlk decrease / ld% BS / TS):
no-opt 1.05/51%/7/15, LU4 1.12/61%/6/16, LU8 1.18/62%/6/16,
TrS+LU4 1.14/65%/5/15, TrS+LU8 1.16/56%/5/15.
"""

from conftest import save_and_print

from repro.harness import table8


def test_table8_summary(benchmark, runner, results_dir):
    table8(runner)
    table = benchmark(lambda: table8(runner))
    save_and_print(results_dir, "table8", table.format())

    rows = {row[0]: row for row in table.rows}
    base = rows["No optimizations"]
    lu8 = rows["Loop unrolling by 8"]

    # Balanced beats traditional at every optimization level.
    for row in table.rows:
        assert float(row[1]) > 1.0, row[0]

    # Balanced removes a large share of TS's load interlocks everywhere.
    for row in table.rows:
        assert float(row[2].rstrip("%")) > 30.0, row[0]

    # Program speedups over unoptimized balanced code grow with the
    # optimization level.
    assert float(lu8[3]) > 1.1

    # The headline contrast: balanced load-interlock share well below
    # traditional's at every level.
    for row in table.rows:
        bs = float(row[5].rstrip("%"))
        ts = float(row[6].rstrip("%"))
        assert bs < ts, row[0]
