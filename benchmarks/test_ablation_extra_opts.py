"""Ablation: the optional CSE + LICM passes (DESIGN.md section 10).

The paper's evaluation is calibrated without these cleanups (its
Multiflow baseline has them built in, ours measures the scheduling
effects without them).  This bench quantifies what they are worth and
— the important scheduling question — whether the balanced-vs-
traditional comparison is robust to them.
"""

import pytest
from conftest import save_and_print

from repro.harness.compile import Options, compile_source
from repro.machine import Simulator
from repro.workloads import WORKLOADS

SUBSET = ["ARC2D", "tomcatv", "spice2g6", "doduc", "su2cor"]


def run(name: str, scheduler: str, extra: bool):
    options = Options(scheduler=scheduler, unroll=4, extra_opts=extra)
    result = compile_source(WORKLOADS[name].source, options, name)
    return Simulator(result.program).run()


@pytest.fixture(scope="module")
def rows():
    out = []
    for name in SUBSET:
        bs_plain = run(name, "balanced", False)
        bs_extra = run(name, "balanced", True)
        ts_extra = run(name, "traditional", True)
        out.append((name, bs_plain, bs_extra, ts_extra))
    return out


def test_ablation_extra_opts(benchmark, rows, results_dir):
    benchmark(lambda: rows)
    lines = ["Ablation: optional CSE + LICM passes (LU4)",
             "",
             f"{'benchmark':<11}{'BS cycles':>11}{'BS+extra':>11}"
             f"{'dInstr':>9}{'BSvTS+extra':>13}"]
    for name, bs_plain, bs_extra, ts_extra in rows:
        dinstr = 1 - bs_extra.instructions / bs_plain.instructions
        lines.append(
            f"{name:<11}{bs_plain.total_cycles:>11}"
            f"{bs_extra.total_cycles:>11}{100 * dinstr:>8.1f}%"
            f"{ts_extra.total_cycles / bs_extra.total_cycles:>13.2f}")
    save_and_print(results_dir, "ablation_extra_opts", "\n".join(lines))

    for name, bs_plain, bs_extra, ts_extra in rows:
        # The cleanups remove real work...
        assert bs_extra.instructions < bs_plain.instructions, name
        assert bs_extra.total_cycles <= bs_plain.total_cycles * 1.02, name
        # ...and the balanced advantage survives them.
        assert ts_extra.total_cycles / bs_extra.total_cycles > 0.9, name


def test_extra_opts_preserve_results():
    name = "hydro2d"
    sims = []
    for extra in (False, True):
        options = Options(scheduler="balanced", extra_opts=extra)
        result = compile_source(WORKLOADS[name].source, options, name)
        sim = Simulator(result.program)
        sim.run()
        sims.append(sim)
    for symbol in sims[0].program.symbols:
        assert sims[0].get_symbol(symbol) == sims[1].get_symbol(symbol)
