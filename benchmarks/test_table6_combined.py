"""Table 6: speedups over balanced scheduling alone, all combinations.

Paper reference: LU4 1.19, LU8 1.28, TrS+LU 1.19/1.26, LA 1.15,
best combination (LA+TrS+LU8) 1.40.
"""

from conftest import save_and_print

from repro.harness import table6
from repro.harness.tables import TABLE6_CONFIGS


def test_table6_combined_optimizations(benchmark, runner, results_dir):
    table6(runner)
    table = benchmark(lambda: table6(runner))
    save_and_print(results_dir, "table6", table.format())

    average = dict(zip(table.headers[1:], table.rows[-1][1:]))
    lu4 = float(average["LU4"])
    lu8 = float(average["LU8"])
    la = float(average["LA"])
    best = float(average["LA+TRS8"])

    assert lu4 > 1.1                       # unrolling helps on average
    assert lu8 >= lu4 - 0.05
    assert la > 1.05                       # locality analysis helps
    # The best combination beats every single optimization.
    assert best >= max(lu4, la) - 0.05
    assert best > 1.2

    by_name = {row[0]: row for row in table.rows}
    ora = by_name["ora"]
    # ora is insensitive to everything (loop-free hot routine).
    for value in ora[1:]:
        assert abs(float(value) - 1.0) < 0.1
    # tomcatv gains from locality analysis (the paper's LA star).
    idx = table.headers.index("LA")
    assert float(by_name["tomcatv"][idx]) > 1.1
