"""Tables 1-3: workload listing and machine parameters (static)."""

from conftest import save_and_print

from repro.harness import table1, table2, table3


def test_table1_workload(benchmark, results_dir):
    table = benchmark(table1)
    assert len(table.rows) == 17
    save_and_print(results_dir, "table1", table.format())


def test_table2_memory_hierarchy(benchmark, results_dir):
    table = benchmark(table2)
    assert any("L1D" in row[0] for row in table.rows)
    save_and_print(results_dir, "table2", table.format())


def test_table3_processor_latencies(benchmark, results_dir):
    table = benchmark(table3)
    latencies = dict((row[0], row[1]) for row in table.rows)
    assert latencies["integer multiply"] == "8"
    assert latencies["load"] == "2"
    assert latencies["fp divide (double)"] == "30"
    save_and_print(results_dir, "table3", table.format())
