"""Section 5.5: simulating real architectures vs the simple model.

The paper compares its 21164 model against the original balanced-
scheduling study's *simple stochastic model* (Kerns & Eggers 1993:
stochastic hit/miss loads, single-cycle everything else, perfect
I-cache/TLB) on the Perfect Club programs both studies share, and
estimates a 10% balanced-scheduling advantage on the simple model vs
4% on the 21164 model.

We rebuild both machines and run the comparison.  Note (recorded in
EXPERIMENTS.md): with our synthetic kernels the *relative* order can
flip — the 21164 model's L2/L3 misses are exactly what balanced
scheduling hides here, while the simple model's uniform 16-cycle
misses exceed what either scheduler can cover in one block.  The
qualitative section-5.5 point that the two machine models change the
measured advantage is reproduced either way.
"""

import pytest
from conftest import save_and_print

from repro.harness.compile import Options, compile_source
from repro.machine import Simulator
from repro.machine.config import DEFAULT_CONFIG, simple_stochastic_config
from repro.workloads import WORKLOADS

#: Perfect Club programs shared with the original study.
COMMON = ["ARC2D", "BDNA", "DYFESM", "TRFD"]


def bs_vs_ts(name: str, config) -> float:
    cycles = {}
    for scheduler in ("balanced", "traditional"):
        options = Options(scheduler=scheduler, config=config)
        result = compile_source(WORKLOADS[name].source, options, name)
        cycles[scheduler] = Simulator(result.program,
                                      config=config).run().total_cycles
    return cycles["traditional"] / cycles["balanced"]


@pytest.fixture(scope="module")
def comparison_rows():
    simple80 = simple_stochastic_config(hit_rate=0.80)
    simple95 = simple_stochastic_config(hit_rate=0.95)
    rows = []
    for name in COMMON:
        rows.append((name,
                     bs_vs_ts(name, simple80),
                     bs_vs_ts(name, simple95),
                     bs_vs_ts(name, DEFAULT_CONFIG)))
    return rows


def test_section55_model_comparison(benchmark, comparison_rows,
                                    results_dir):
    benchmark(lambda: comparison_rows)
    lines = ["Section 5.5: BS-over-TS speedup under different machine "
             "models",
             "",
             f"{'benchmark':<11}{'simple (80% hit)':>17}"
             f"{'simple (95% hit)':>17}{'21164 model':>13}"]
    for name, s80, s95, real in comparison_rows:
        lines.append(f"{name:<11}{s80:>17.3f}{s95:>17.3f}{real:>13.3f}")
    avg = [sum(r[i] for r in comparison_rows) / len(comparison_rows)
           for i in (1, 2, 3)]
    lines.append(f"{'AVERAGE':<11}{avg[0]:>17.3f}{avg[1]:>17.3f}"
                 f"{avg[2]:>13.3f}")
    save_and_print(results_dir, "section55_simple_model",
                   "\n".join(lines))

    # Both machine models must run, and balanced must not lose on
    # average under either (the common conclusion of both studies).
    assert all(value > 0.93 for row in comparison_rows
               for value in row[1:])
    assert avg[2] > 1.0


def test_stochastic_model_is_deterministic():
    config = simple_stochastic_config(hit_rate=0.9)
    result = compile_source(WORKLOADS["DYFESM"].source,
                            Options(config=config), "DYFESM")
    runs = [Simulator(result.program, config=config).run().total_cycles
            for _ in range(2)]
    assert runs[0] == runs[1]
