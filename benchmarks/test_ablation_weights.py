"""Ablations of the balanced-weight computation (DESIGN.md section 8).

Two design choices are ablated on a subset of the workload:

* **component sharing** — the Kerns-Eggers series/parallel sharing rule
  vs. splitting each contributor uniformly over all independent loads;
* **the weight cap** — the paper's 50-cycle cap (footnote 1) vs. no cap.
"""

import pytest
from conftest import save_and_print

from repro.harness.compile import Options, compile_source
from repro.machine import Simulator
from repro.workloads import WORKLOADS

SUBSET = ["ARC2D", "hydro2d", "su2cor", "spice2g6", "tomcatv"]


def cycles_for(name: str, **knobs) -> int:
    options = Options(scheduler="balanced", unroll=4, **knobs)
    result = compile_source(WORKLOADS[name].source, options, name)
    return Simulator(result.program).run().total_cycles


@pytest.fixture(scope="module")
def ablation_rows():
    rows = []
    for name in SUBSET:
        component = cycles_for(name)
        uniform = cycles_for(name, balanced_component_sharing=False)
        uncapped = cycles_for(name, balanced_cap=1e9)
        tight_cap = cycles_for(name, balanced_cap=4)
        rows.append((name, component, uniform, uncapped, tight_cap))
    return rows


def test_ablation_component_sharing(benchmark, ablation_rows, results_dir):
    benchmark(lambda: ablation_rows)
    lines = ["Ablation: balanced-weight sharing rule and cap "
             "(total cycles, LU4)",
             "",
             f"{'benchmark':<12}{'component':>11}{'uniform':>11}"
             f"{'uncapped':>11}{'cap=4':>11}"]
    for name, component, uniform, uncapped, tight in ablation_rows:
        lines.append(f"{name:<12}{component:>11}{uniform:>11}"
                     f"{uncapped:>11}{tight:>11}")
    save_and_print(results_dir, "ablation_weights", "\n".join(lines))

    # The paper-faithful configuration should not lose badly to either
    # ablated variant on average.
    total_component = sum(r[1] for r in ablation_rows)
    total_uniform = sum(r[2] for r in ablation_rows)
    total_tight = sum(r[4] for r in ablation_rows)
    assert total_component <= total_uniform * 1.05
    assert total_component <= total_tight * 1.05


def test_ablation_cap_bounds_pressure(ablation_rows):
    """An enormous cap must not blow up cycle counts (the pressure-aware
    scheduler and allocator absorb it)."""
    for name, component, _, uncapped, _ in ablation_rows:
        assert uncapped <= component * 1.25, name
