"""Extension: balanced scheduling on a dual-issue machine.

The paper's stated future work: "we intend to examine its effects on
wider-issue (superscalar) processors that require considerable
instruction-level parallelism to perform well."  This bench compares
balanced vs traditional scheduling at issue widths 1 and 2 on a subset
of the workload.  Expectation: wider issue consumes ILP for
throughput, so the balanced scheduler has relatively *less* slack to
hide loads with — its advantage should not grow at width 2, while
absolute performance improves for both schedulers.
"""

from dataclasses import replace

import pytest
from conftest import save_and_print

from repro.harness.compile import Options, compile_source
from repro.machine import DEFAULT_CONFIG, Simulator
from repro.workloads import WORKLOADS

SUBSET = ["ARC2D", "hydro2d", "su2cor", "QCD2", "spice2g6"]
WIDE = replace(DEFAULT_CONFIG, issue_width=2)


def cycles(name: str, scheduler: str, config) -> int:
    options = Options(scheduler=scheduler, unroll=4, config=config)
    result = compile_source(WORKLOADS[name].source, options, name)
    sim = Simulator(result.program, config=config)
    return sim.run().total_cycles


@pytest.fixture(scope="module")
def dual_issue_rows():
    rows = []
    for name in SUBSET:
        bs1 = cycles(name, "balanced", DEFAULT_CONFIG)
        ts1 = cycles(name, "traditional", DEFAULT_CONFIG)
        bs2 = cycles(name, "balanced", WIDE)
        ts2 = cycles(name, "traditional", WIDE)
        rows.append((name, bs1, ts1, bs2, ts2))
    return rows


def test_dual_issue_extension(benchmark, dual_issue_rows, results_dir):
    benchmark(lambda: dual_issue_rows)
    lines = ["Extension: issue width 1 vs 2 (LU4, total cycles)",
             "",
             f"{'benchmark':<11}{'BS w1':>10}{'TS w1':>10}{'BS w2':>10}"
             f"{'TS w2':>10}{'BSvTS w1':>10}{'BSvTS w2':>10}"
             f"{'BS w1/w2':>10}"]
    for name, bs1, ts1, bs2, ts2 in dual_issue_rows:
        lines.append(f"{name:<11}{bs1:>10}{ts1:>10}{bs2:>10}{ts2:>10}"
                     f"{ts1 / bs1:>10.2f}{ts2 / bs2:>10.2f}"
                     f"{bs1 / bs2:>10.2f}")
    save_and_print(results_dir, "extension_dual_issue", "\n".join(lines))

    for name, bs1, ts1, bs2, ts2 in dual_issue_rows:
        # Wider issue helps both schedulers in absolute terms.
        assert bs2 < bs1, name
        assert ts2 < ts1, name
        # Balanced never falls badly behind traditional at width 2.
        assert ts2 / bs2 > 0.9, name
