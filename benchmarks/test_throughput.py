"""Implementation throughput: simulator, scheduler, full compiles.

These are engineering benchmarks of the reproduction itself (not paper
results): how fast the simulator retires instructions, how scheduling
scales with DAG size, and the end-to-end compile cost per benchmark.
"""

from repro.harness.compile import Options, compile_source
from repro.machine import Simulator
from repro.sched import BalancedWeights, TraditionalWeights, list_schedule
from repro.workloads import WORKLOADS, random_dag


def test_simulator_throughput(benchmark):
    result = compile_source(WORKLOADS["DYFESM"].source, Options(), "DYFESM")

    def run_once():
        return Simulator(result.program).run()

    metrics = benchmark(run_once)
    assert metrics.instructions > 100_000


def test_balanced_weight_computation_speed(benchmark):
    dag = random_dag(300, seed=11, load_fraction=0.35)
    model = BalancedWeights()
    weights = benchmark(lambda: model.weights(dag))
    assert len(weights) == len(dag.instrs)


def test_list_scheduler_speed(benchmark):
    dag = random_dag(300, seed=11, load_fraction=0.35)
    model = TraditionalWeights()
    order = benchmark(lambda: list_schedule(dag, model))
    assert len(order) == len(dag.instrs)


def test_full_compile_speed(benchmark):
    source = WORKLOADS["hydro2d"].source
    options = Options(scheduler="balanced", unroll=4)
    result = benchmark(lambda: compile_source(source, options, "hydro2d"))
    assert len(result.program) > 100


def test_trace_compile_speed(benchmark):
    source = WORKLOADS["MDG"].source
    options = Options(scheduler="balanced", unroll=4, trace=True)
    result = benchmark(lambda: compile_source(source, options, "MDG"))
    assert result.trace_stats is not None
