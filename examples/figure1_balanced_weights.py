#!/usr/bin/env python3
"""Paper Figure 1: balanced load weights on the example DAG.

The DAG has two parallel loads (L0, L1), a serial load chain
(L2 -> L3), and two independent ALU instructions (X1, X2) that can
hide load latency.  Balanced scheduling gives the parallel loads the
full benefit of X1 and X2 (weight 3 each) while the serial chain has
to share them (weight 2 each) — exactly the paper's walkthrough.

Run:  python examples/figure1_balanced_weights.py
"""

from repro.sched import BalancedWeights, TraditionalWeights, list_schedule
from repro.workloads import figure1_dag

NODE_NAMES = ["X0", "L0", "L1", "L2", "L3", "X1", "X2", "X3"]


def main() -> None:
    dag = figure1_dag()

    print("Figure 1 DAG (edges):")
    for src in range(len(dag.instrs)):
        for dst, kind in sorted(dag.succs[src].items()):
            print(f"  {NODE_NAMES[src]} -> {NODE_NAMES[dst]}   ({kind})")

    balanced = BalancedWeights().weights(dag)
    traditional = TraditionalWeights().weights(dag)
    print(f"\n{'node':<6}{'traditional':>12}{'balanced':>10}")
    for node, name in enumerate(NODE_NAMES):
        print(f"{name:<6}{traditional[node]:>12.1f}{balanced[node]:>10.1f}")

    print("\nL0 and L1 are parallel: X1/X2 can hide both at once -> 3.0")
    print("L2 -> L3 are in series: X1/X2 must be shared      -> 2.0")

    order = list_schedule(dag, BalancedWeights())
    print("\nbalanced schedule order:",
          " ".join(NODE_NAMES[i] for i in order))
    order = list_schedule(dag, TraditionalWeights())
    print("traditional schedule order:",
          " ".join(NODE_NAMES[i] for i in order))


if __name__ == "__main__":
    main()
