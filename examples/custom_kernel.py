#!/usr/bin/env python3
"""Bring your own benchmark: sweep a custom kernel across the grid.

Shows how to use the public API to evaluate any mini-language program
under every scheduler x optimization combination and print a small
results table, the same way the paper's harness treats its workload.

Run:  python examples/custom_kernel.py
"""

from repro import Options, compile_source, Simulator

# A small molecular-dynamics-flavoured kernel.
KERNEL = """
array PX[1024] : float;
array PY[1024] : float;
array F[1024] : float;
var n : int = 1024;
var steps : int = 2;

func main() {
    var i : int; var t : int;
    var dx : float; var dy : float; var r2 : float;
    for (i = 0; i < n; i = i + 1) {
        PX[i] = float(i % 97) * 0.01;
        PY[i] = float(i % 89) * 0.02;
    }
    for (t = 0; t < steps; t = t + 1) {
        for (i = 1; i < 1023; i = i + 1) {
            dx = PX[i + 1] - PX[i - 1];
            dy = PY[i + 1] - PY[i - 1];
            r2 = dx * dx + dy * dy + 0.05;
            F[i] = F[i] + dx * r2 + dy * 0.5;
        }
    }
}
"""

GRID = [
    Options(scheduler="traditional"),
    Options(scheduler="balanced"),
    Options(scheduler="traditional", unroll=4),
    Options(scheduler="balanced", unroll=4),
    Options(scheduler="balanced", unroll=4, trace=True),
    Options(scheduler="balanced", unroll=4, locality=True),
    Options(scheduler="balanced", unroll=8, locality=True, trace=True),
]


def main() -> None:
    rows = []
    baseline = None
    for options in GRID:
        result = compile_source(KERNEL, options)
        sim = Simulator(result.program)
        metrics = sim.run()
        if baseline is None:
            baseline = metrics.total_cycles
        rows.append((options.label(), metrics, result))

    header = (f"{'configuration':<28}{'cycles':>9}{'speedup':>9}"
              f"{'instrs':>9}{'ld%':>7}{'spill':>7}")
    print(header)
    print("-" * len(header))
    for label, metrics, result in rows:
        print(f"{label:<28}{metrics.total_cycles:>9}"
              f"{baseline / metrics.total_cycles:>9.2f}"
              f"{metrics.instructions:>9}"
              f"{100 * metrics.load_interlock_fraction:>6.1f}%"
              f"{result.allocation.n_slots:>7}")

    print("\ncolumns: total cycles, speedup vs the first row, dynamic")
    print("instructions, load-interlock share of cycles, spill slots.")


if __name__ == "__main__":
    main()
