#!/usr/bin/env python3
"""Quickstart: compile a kernel both ways and compare schedulers.

Run:  python examples/quickstart.py
"""

from repro import Options, compile_source, Simulator

SOURCE = """
# Saxpy-like kernel with a stencil flavour: enough independent loads
# per iteration for balanced scheduling to have something to work with.
array X[4096] : float;
array Y[4096] : float;
array Z[4096] : float;
var n : int = 4096;

func main() {
    var i : int;
    for (i = 0; i < n; i = i + 1) {
        X[i] = float(i) * 0.5;
        Y[i] = float(i) * 0.25 + 1.0;
    }
    for (i = 1; i < 4095; i = i + 1) {
        Z[i] = X[i - 1] * 0.1 + X[i + 1] * 0.2 + Y[i] * X[i] + Y[i - 1];
    }
}
"""


def run(options: Options):
    result = compile_source(SOURCE, options)
    sim = Simulator(result.program)
    metrics = sim.run()
    return result, metrics


def main() -> None:
    print("compiling the kernel under four configurations...\n")
    header = (f"{'configuration':<24}{'cycles':>10}{'instrs':>10}"
              f"{'ld-intlk':>10}{'ld-intlk %':>12}")
    print(header)
    print("-" * len(header))
    for options in (
        Options(scheduler="traditional"),
        Options(scheduler="balanced"),
        Options(scheduler="traditional", unroll=4),
        Options(scheduler="balanced", unroll=4),
    ):
        _, metrics = run(options)
        print(f"{options.label():<24}{metrics.total_cycles:>10}"
              f"{metrics.instructions:>10}"
              f"{metrics.load_interlock_cycles:>10}"
              f"{100 * metrics.load_interlock_fraction:>11.1f}%")

    print("\nBalanced scheduling hides load latency that the traditional")
    print("scheduler's optimistic cache-hit assumption leaves exposed;")
    print("loop unrolling widens the gap by providing more independent")
    print("instructions to place behind the loads (paper sections 2-3).")

    # Show a snippet of the two schedules for the same block.
    result_ts, _ = run(Options(scheduler="traditional"))
    result_bs, _ = run(Options(scheduler="balanced"))
    print("\nfirst instructions of the hot loop, traditional vs balanced:")
    for name, result in (("traditional", result_ts),
                         ("balanced", result_bs)):
        hot = max(result.cfg, key=lambda b: len(b.instrs))
        print(f"\n  [{name}] block {hot.label}:")
        for instr in hot.instrs[:10]:
            print(f"    {instr.format()}")


if __name__ == "__main__":
    main()
