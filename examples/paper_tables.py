#!/usr/bin/env python3
"""Regenerate the paper's tables from the full 17-benchmark workload.

The first run simulates the whole experiment grid (a few minutes);
results are cached under ~/.cache/repro-pldi95, so later runs are
instant.  Pass table numbers to print a subset:

    python examples/paper_tables.py           # all tables
    python examples/paper_tables.py 5 7       # just Tables 5 and 7
"""

import sys

from repro.harness import ALL_TABLES, ExperimentRunner


def main() -> None:
    wanted = [int(arg) for arg in sys.argv[1:]] or sorted(ALL_TABLES)
    runner = ExperimentRunner(verbose=True)
    for number in wanted:
        fn = ALL_TABLES[number]
        table = fn() if number <= 3 else fn(runner)
        print()
        print(table.format())
        print()


if __name__ == "__main__":
    main()
