#!/usr/bin/env python3
"""Paper Figures 3-5: the locality-analysis loop transformations.

Figure 3 is the original loop (spatial reuse on A[i][j], temporal
reuse on B[i][0]); Figure 4 shows reuse-driven unrolling with a
postconditioned remainder; Figure 5 shows peeling for temporal reuse.
This example runs the analysis on the Figure 3 loop and shows the
hit/miss marking of every load in the generated code.

Run:  python examples/figures3to5_locality.py
"""

from repro import Options, compile_source, Simulator
from repro.analysis import analyze_locality
from repro.frontend import frontend
from repro.isa import Locality

# The paper's Figure 3 (row-major layout, 4 elements per 32-byte line).
FIGURE3 = """
array A[32][32] : float;
array B[32][32] : float;
array C[32][32] : float;
var n : int = 32;

func main() {
    var i : int; var j : int;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            C[i][j] = A[i][j] + B[i][0];
        }
    }
}
"""


def main() -> None:
    program = frontend(FIGURE3)
    stats = analyze_locality(program)
    print("locality analysis of the Figure 3 loop:")
    print(f"  spatial references:  {stats.refs_spatial}   "
          "(A[i][j]: stride 1 in j)")
    print(f"  temporal references: {stats.refs_temporal}   "
          "(B[i][0]: invariant in j)")
    print(f"  loops peeled:        {stats.loops_peeled}   (Figure 5)")
    print(f"  loops unrolled:      {stats.loops_unrolled}   (Figure 4, "
          "factor = 4 elements/line)")
    print(f"  loads marked miss:   {stats.marked_misses}")
    print(f"  loads marked hit:    {stats.marked_hits}")

    result = compile_source(FIGURE3, Options(scheduler="balanced",
                                             locality=True))
    print("\nloads in the generated program:")
    counts = {Locality.HIT: 0, Locality.MISS: 0, Locality.UNKNOWN: 0}
    for instr in result.program.instructions:
        if instr.is_load and not instr.is_spill:
            counts[instr.locality] += 1
    for hint, count in counts.items():
        print(f"  {hint.value:<8} {count}")

    base = compile_source(FIGURE3, Options(scheduler="balanced"))
    for name, res in (("balanced", base), ("balanced + locality", result)):
        sim = Simulator(res.program)
        metrics = sim.run()
        print(f"\n[{name}] cycles={metrics.total_cycles} "
              f"load-interlocks={metrics.load_interlock_cycles} "
              f"L1D misses={metrics.l1d.misses}")

    sim_a, sim_b = Simulator(base.program), Simulator(result.program)
    sim_a.run()
    sim_b.run()
    assert sim_a.get_symbol("C") == sim_b.get_symbol("C")
    print("\ntransformed loop computes identical results")


if __name__ == "__main__":
    main()
