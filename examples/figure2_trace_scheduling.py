#!/usr/bin/env python3
"""Paper Figure 2: trace formation and compensation code.

A hot path through a conditional is merged into one trace and
scheduled as a single block; instructions hoisted above the join are
copied into a compensation block on the cold path's entering edge.

Run:  python examples/figure2_trace_scheduling.py
"""

from repro import Options, compile_source, Simulator
from repro.sched import ProfileData, form_traces

SOURCE = """
array A[1024] : float;
array B[1024] : float;
var n : int = 1024;

func main() {
    var i : int;
    for (i = 0; i < n; i = i + 1) { A[i] = float(i % 61) * 0.5; }
    for (i = 1; i < n; i = i + 1) {
        # The guard is almost never taken: blocks 1-2-4-5 of the
        # paper's figure form the hot trace, block 3 is off-trace.
        if (i % 128 == 0) {
            B[i] = 0.0;
        } else {
            B[i] = A[i] * 1.5 + A[i - 1] * 0.25;
        }
        A[i] = A[i] + B[i] * 0.125;
    }
}
"""


def main() -> None:
    plain = compile_source(SOURCE, Options(scheduler="balanced"))
    traced = compile_source(SOURCE, Options(scheduler="balanced",
                                            trace=True))

    print("profiled block frequencies (pre-trace CFG):")
    profile = traced.profile
    for label, count in sorted(profile.block_counts.items(),
                               key=lambda kv: -kv[1])[:6]:
        print(f"  {label:<12} {count}")

    stats = traced.trace_stats
    print(f"\ntraces formed: {stats.traces} "
          f"({stats.multi_block_traces} multi-block, "
          f"{stats.blocks_merged} blocks merged)")
    print(f"compensation instructions: {stats.compensation_instructions}")
    print(f"speculation-safety arcs:   {stats.speculation_arcs}")

    comp_blocks = [b for b in traced.cfg if b.label.startswith(".comp")]
    if comp_blocks:
        print("\na compensation block (copies for the off-trace path):")
        block = comp_blocks[0]
        print(f"  {block.label}: -> {block.fallthrough}")
        for instr in block.instrs[:8]:
            print(f"    {instr.format()}")

    for name, result in (("plain", plain), ("traced", traced)):
        sim = Simulator(result.program)
        metrics = sim.run()
        print(f"\n[{name}] cycles={metrics.total_cycles} "
              f"instructions={metrics.instructions} "
              f"load-interlocks={metrics.load_interlock_cycles}")

    # Both versions must compute identical results.
    sim_a, sim_b = Simulator(plain.program), Simulator(traced.program)
    sim_a.run()
    sim_b.run()
    assert sim_a.get_symbol("B") == sim_b.get_symbol("B")
    print("\nresults identical on both paths - compensation code is "
          "doing its job")


if __name__ == "__main__":
    main()
