#!/usr/bin/env python3
"""Sweep the drivers of balanced scheduling's advantage.

Uses the parametric kernel generator to vary load-level parallelism
and working-set size, printing the BS-over-TS speedup for each point —
the paper's thesis ("balanced scheduling should perform even better
when more parallelism is available") as a curve.

Run:  python examples/sensitivity_sweep.py
"""

from repro import Options, compile_source, Simulator
from repro.workloads import KernelSpec, generate_kernel


def bs_vs_ts(spec: KernelSpec) -> float:
    source = generate_kernel(spec)
    cycles = {}
    for scheduler in ("balanced", "traditional"):
        result = compile_source(source, Options(scheduler=scheduler))
        cycles[scheduler] = Simulator(result.program).run().total_cycles
    return cycles["traditional"] / cycles["balanced"]


def bar(value: float, scale: float = 40.0) -> str:
    return "#" * int((value - 1.0) * scale + 0.5)


def main() -> None:
    print("BS-over-TS speedup vs load-level parallelism "
          "(96 KB working set):\n")
    for loads in (1, 2, 3, 4, 6):
        spec = KernelSpec(loads_per_iteration=loads, flops_per_load=1,
                          array_kb=96)
        ratio = bs_vs_ts(spec)
        print(f"  {loads} loads/iter  {ratio:5.2f}  {bar(ratio)}")

    print("\nBS-over-TS speedup vs working-set size (4 loads/iter):\n")
    for kb in (4, 16, 64, 192):
        spec = KernelSpec(loads_per_iteration=4, flops_per_load=1,
                          array_kb=kb)
        ratio = bs_vs_ts(spec)
        print(f"  {kb:4d} KB        {ratio:5.2f}  {bar(ratio)}")

    print("\nWith the data resident in the 8 KB L1 there is no latency")
    print("to hide and the schedulers tie; once loads miss, the")
    print("advantage tracks the parallelism available to hide them —")
    print("the paper's sections 2 and 5 in one picture.")


if __name__ == "__main__":
    main()
