"""PipelineValidator orchestration: modes, env resolution, zero cost."""

import pytest

import repro.check.boundary as boundary
from repro.check import (
    ERROR,
    NOTE,
    WARNING,
    CheckError,
    Diagnostic,
    NULL_VALIDATOR,
    PipelineValidator,
    sort_diagnostics,
    validator_from_env,
    worst_severity,
)
from repro.frontend.errors import SourceLocation
from repro.harness.compile import Options, compile_source

from tests.conftest import SMALL_KERNEL


def test_enabled_validator_visits_every_boundary():
    validator = PipelineValidator(mode="raise")
    compile_source(SMALL_KERNEL, Options(unroll=4), "b",
                   validator=validator)
    assert validator.boundaries == [
        "lower", "opt.constfold", "opt.copyprop", "opt.dce",
        "sched.block", "codegen.regalloc"]
    assert validator.diagnostics == []


def test_collect_mode_never_raises(monkeypatch):
    # Seed a broken scheduler; collect mode must record, not raise.
    import repro.harness.compile as hc

    real = hc.schedule_cfg

    def dropper(cfg, model, observer=None, **kw):
        real(cfg, model)
        block = next(b for b in cfg if len(b.body) > 1)
        del block.instrs[0]

    monkeypatch.setattr(hc, "schedule_cfg", dropper)
    validator = PipelineValidator(mode="collect")
    compile_source(SMALL_KERNEL, Options(), "b", validator=validator)
    assert any(d.rule == "schedule-permutation"
               for d in validator.diagnostics)


def test_validator_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_VALIDATE_IR", raising=False)
    assert validator_from_env() is NULL_VALIDATOR
    monkeypatch.setenv("REPRO_VALIDATE_IR", "0")
    assert validator_from_env() is NULL_VALIDATOR
    monkeypatch.setenv("REPRO_VALIDATE_IR", "1")
    validator = validator_from_env()
    assert isinstance(validator, PipelineValidator)
    assert validator.mode == "raise"


def test_validation_is_zero_cost_off(monkeypatch):
    """A compile with validation disabled is bit-identical to a
    validated compile and never touches the analysis machinery."""
    monkeypatch.delenv("REPRO_VALIDATE_IR", raising=False)
    calls = {"n": 0}
    real_snapshot = boundary.snapshot_dependences

    def counting(cfg):
        calls["n"] += 1
        return real_snapshot(cfg)

    monkeypatch.setattr(boundary, "snapshot_dependences", counting)

    options = Options(unroll=4)
    off = compile_source(SMALL_KERNEL, options, "b")   # NULL_VALIDATOR
    assert calls["n"] == 0, "disabled validation must do zero work"

    on = compile_source(SMALL_KERNEL, options, "b",
                        validator=PipelineValidator(mode="raise"))
    assert calls["n"] > 0, "the probe itself must be live"
    assert off.program.format() == on.program.format()
    assert off.allocation.n_slots == on.allocation.n_slots


def test_null_validator_hooks_are_noops():
    NULL_VALIDATOR.lint_source(None)
    NULL_VALIDATOR.after_pass(None, "x")
    NULL_VALIDATOR.before_schedule(None)
    NULL_VALIDATOR.after_schedule(None, "x", "block")
    NULL_VALIDATOR.before_swp(None)
    NULL_VALIDATOR.after_swp(None, [])
    NULL_VALIDATOR.before_regalloc(None)
    NULL_VALIDATOR.after_regalloc(None, None)
    assert not NULL_VALIDATOR.enabled


def test_check_error_names_the_guilty_pass():
    diags = [Diagnostic(severity=ERROR, rule="use-before-def",
                        message="vi1 read but never defined",
                        pass_name="opt.dce", block=".loop1"),
             Diagnostic(severity=ERROR, rule="use-before-def",
                        message="vi2 read but never defined",
                        pass_name="opt.dce", block=".loop1")]
    error = CheckError(diags)
    assert "opt.dce" in str(error)
    assert "+1 more" in str(error)
    assert error.diagnostics == diags


def test_diagnostic_severity_helpers():
    diags = [Diagnostic(severity=NOTE, rule="a", message="m"),
             Diagnostic(severity=ERROR, rule="b", message="m"),
             Diagnostic(severity=WARNING, rule="c", message="m")]
    assert worst_severity(diags) == ERROR
    assert worst_severity([]) is None
    assert [d.severity for d in sort_diagnostics(diags)] == \
        [ERROR, WARNING, NOTE]
    with pytest.raises(ValueError):
        Diagnostic(severity="fatal", rule="x", message="m")


def test_diagnostic_render_with_position():
    diag = Diagnostic(severity=WARNING, rule="unused-variable",
                      message="variable 'x' is declared but never used",
                      pass_name="frontend",
                      loc=SourceLocation(12, 7))
    assert diag.render() == ("12:7: warning: unused-variable: "
                             "variable 'x' is declared but never used "
                             "[after frontend]")
