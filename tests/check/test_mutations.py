"""Mutation tests: every validator is proven live by a seeded pass bug.

Each test monkeypatches one pipeline pass (in the
``repro.harness.compile`` namespace, where :func:`compile_source`
resolves them) into a deliberately buggy version, compiles a real
program with validation enabled, and asserts the compile dies with a
:class:`~repro.check.CheckError` whose diagnostics name the seeded
bug's rule.  A validator none of these bugs can trip would be dead
weight; this file is the proof each one pays its way.
"""

import pytest

import repro.harness.compile as hc
from repro.check import CheckError, PipelineValidator
from repro.harness.compile import Options
from repro.isa import ZERO, Instruction, ireg

from tests.conftest import SMALL_KERNEL

DAXPY = """
array X[64] : float;
array Y[64] : float;
var a : float = 1.5;

func main() {
    var i : int;
    for (i = 0; i < 64; i = i + 1) { X[i] = float(i) * 0.25; }
    for (i = 0; i < 64; i = i + 1) { Y[i] = a * X[i] + Y[i]; }
}
"""


def compile_checked(source=SMALL_KERNEL, options=Options()):
    validator = PipelineValidator(mode="raise")
    return hc.compile_source(source, options, "mutant",
                             validator=validator)


def assert_caught(rule, source=SMALL_KERNEL, options=Options()):
    with pytest.raises(CheckError) as excinfo:
        compile_checked(source, options)
    found = {d.rule for d in excinfo.value.diagnostics}
    assert rule in found, f"expected {rule}, got {sorted(found)}"
    return excinfo.value


# M1: an alias-blind scheduler reorders a store past a dependent load.
def test_alias_blind_scheduler_is_caught(monkeypatch):
    real = hc.schedule_cfg

    def blind(cfg, model, observer=None, **kw):
        real(cfg, model)
        for block in cfg:
            body = block.body
            for i, instr in enumerate(body):
                if not instr.is_store:
                    continue
                for j in range(i + 1, len(body)):
                    other = body[j]
                    if (other.is_load and other.mem is not None
                            and instr.mem is not None
                            and instr.mem.conflicts_with(other.mem)):
                        body[i], body[j] = body[j], body[i]
                        block.instrs[:len(body)] = body
                        return
        raise AssertionError("no store/load pair to corrupt")

    monkeypatch.setattr(hc, "schedule_cfg", blind)
    assert_caught("dependence-order")


# M2: a bad unroll/cleanup retargets a branch to a label that does not
# exist (the classic stale-remainder-branch bug).
def test_branch_to_unknown_label_is_caught(monkeypatch):
    real = hc.eliminate_dead_code

    def retarget(cfg):
        real(cfg)
        for block in cfg:
            term = block.terminator
            if term is not None and term.is_branch:
                term.label = ".does-not-exist"
                return
        raise AssertionError("no branch to corrupt")

    monkeypatch.setattr(hc, "eliminate_dead_code", retarget)
    error = assert_caught("cfg-structure")
    assert any(d.pass_name == "opt.dce"
               for d in error.diagnostics), "wrong boundary blamed"


# M3: an over-eager DCE deletes a definition whose value is still used.
def test_deleted_live_def_is_caught(monkeypatch):
    real = hc.eliminate_dead_code

    def overeager(cfg):
        real(cfg)
        used = {reg for block in cfg for ins in block.instrs
                for reg in ins.uses()}
        for block in cfg:
            for index, ins in enumerate(block.instrs):
                if ins.defs() and ins.defs()[0] in used \
                        and not ins.is_branch:
                    del block.instrs[index]
                    return
        raise AssertionError("no live def to delete")

    monkeypatch.setattr(hc, "eliminate_dead_code", overeager)
    assert_caught("use-before-def")


# M4: the allocator assigns two live-range-overlapping virtuals to one
# physical register (clobbered live value).
def test_allocator_clobber_is_caught(monkeypatch):
    real = hc.allocate_registers

    def clobber(cfg):
        from repro.check import capture_intervals

        intervals = capture_intervals(cfg)   # before the rewrite
        allocation = real(cfg)
        live = [(vreg, phys) for vreg, phys in
                allocation.assignment.items()
                if vreg not in allocation.spilled]
        for i, (v1, p1) in enumerate(live):
            for v2, p2 in live[i + 1:]:
                if p1 is p2 or v1.kind != v2.kind:
                    continue
                s1, e1 = intervals[v1]
                s2, e2 = intervals[v2]
                if max(s1, s2) <= min(e1, e2):    # genuinely overlap
                    allocation.assignment[v2] = p1
                    return allocation
        raise AssertionError("no overlapping pair to clobber")

    monkeypatch.setattr(hc, "allocate_registers", clobber)
    assert_caught("register-clobber")


# M5: modulo scheduling emits a kernel whose memory order breaks the
# loop's cross-iteration dependences.
def test_corrupt_pipelined_kernel_is_caught(monkeypatch):
    real_pipeline = hc.pipeline_loops

    def corrupt(cfg, config, model):
        stats = real_pipeline(cfg, config, model)
        assert stats.kernels, "expected a pipelined loop"
        kernel = cfg.blocks[stats.kernels[0].kernel_label]
        mems = [i for i, ins in enumerate(kernel.instrs) if ins.is_mem]
        assert len(mems) >= 2, "kernel too small to corrupt"
        a, b = mems[0], mems[-1]
        kernel.instrs[a], kernel.instrs[b] = \
            kernel.instrs[b], kernel.instrs[a]
        return stats

    monkeypatch.setattr(hc, "pipeline_loops", corrupt)
    # Disarm the inline VerificationError so the seeded bug reaches the
    # validator boundary (the thing under test here).
    monkeypatch.setattr(hc, "verify_pipelined_kernels",
                        lambda cfg, kernels: None)
    assert_caught("kernel-dependence", source=DAXPY,
                  options=Options(swp=True))


# M6: a transform creates a second entry into a loop body, making the
# CFG irreducible (broken unroll/peel splicing).
def test_irreducible_loop_entry_is_caught(monkeypatch):
    real = hc.eliminate_dead_code

    def second_entry(cfg):
        real(cfg)
        # Splice in a two-block cycle mutA <-> mutB entered from two
        # different predecessors -- the canonical irreducible pair no
        # single header dominates.
        from repro.ir import BasicBlock

        host = next(b for b in cfg
                    if b.terminator is not None
                    and b.terminator.op == "HALT")
        cfg.add_block(BasicBlock("mutA",
                                 [Instruction("BR", label="mutB")]))
        cfg.add_block(BasicBlock("mutB",
                                 [Instruction("BR", label="mutA")]))
        # The taken edge enters the cycle at mutB, the fallthrough at
        # mutA -- so neither cycle block dominates the other.
        host.instrs[-1] = Instruction("BNE", srcs=(ZERO,),
                                      label="mutB")
        host.fallthrough = "mutA"

    monkeypatch.setattr(hc, "eliminate_dead_code", second_entry)
    assert_caught("irreducible-loop")


# M7: the scheduler silently drops an instruction.
def test_dropped_instruction_is_caught(monkeypatch):
    real = hc.schedule_cfg

    def dropper(cfg, model, observer=None, **kw):
        real(cfg, model)
        for block in cfg:
            if len(block.body) > 1:
                del block.instrs[0]
                return
        raise AssertionError("no block to corrupt")

    monkeypatch.setattr(hc, "schedule_cfg", dropper)
    assert_caught("schedule-permutation")


# M8: a cleanup pass leaks a physical register before allocation.
def test_premature_physical_register_is_caught(monkeypatch):
    real = hc.fold_constants

    def leaker(cfg):
        real(cfg)
        block = cfg.blocks[cfg.entry]
        block.instrs.insert(0, Instruction("LDI", dest=ireg(5), imm=1))

    monkeypatch.setattr(hc, "fold_constants", leaker)
    error = assert_caught("register-discipline")
    assert any(d.pass_name == "opt.constfold"
               for d in error.diagnostics), "wrong boundary blamed"


def test_unmutated_compiles_are_clean():
    """Control: the same programs pass when nothing is seeded."""
    compile_checked(SMALL_KERNEL, Options())
    compile_checked(DAXPY, Options(swp=True))
