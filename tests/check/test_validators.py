"""Unit tests for the per-boundary IR validators."""

from repro.check import (
    capture_intervals,
    check_allocation,
    check_def_before_use,
    check_liveness_consistency,
    check_loops,
    check_register_discipline,
    check_structure,
)
from repro.codegen.regalloc import allocate_registers
from repro.ir import BasicBlock, Cfg
from repro.isa import Instruction, Reg, ireg


def v(i, kind="i"):
    return Reg(kind, i, virtual=True)


def ldi(dest, value):
    return Instruction("LDI", dest=v(dest), imm=value)


def add(dest, a, b):
    return Instruction("ADD", dest=v(dest), srcs=(v(a), v(b)))


def straightline() -> Cfg:
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock("entry", [ldi(0, 1), ldi(1, 2),
                                       add(2, 0, 1)],
                             fallthrough="end"))
    cfg.add_block(BasicBlock("end", [Instruction("HALT")]))
    return cfg


def rules(diags):
    return {d.rule for d in diags}


# ------------------------------------------------------------- structure
def test_structure_accepts_wellformed():
    assert check_structure(straightline(), "t") == []


def test_structure_rejects_midblock_branch():
    cfg = straightline()
    cfg.block("entry").instrs.insert(
        1, Instruction("BR", label="end"))
    assert "cfg-structure" in rules(check_structure(cfg, "t"))


def test_structure_rejects_unknown_successor():
    cfg = straightline()
    cfg.block("entry").instrs.append(
        Instruction("BR", label=".missing"))
    assert "cfg-structure" in rules(check_structure(cfg, "t"))


def test_structure_rejects_fall_off_the_end():
    cfg = straightline()
    cfg.block("end").fallthrough = None
    cfg.block("end").instrs.pop()       # drop the HALT
    assert "cfg-structure" in rules(check_structure(cfg, "t"))


def test_structure_rejects_conditional_branch_without_fallthrough():
    # Cfg.verify() itself does not catch this shape.
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock("entry", [ldi(0, 1),
                                       Instruction("BEQ", srcs=(v(0),),
                                                   label="end")]))
    cfg.add_block(BasicBlock("end", [Instruction("HALT")]))
    assert "cfg-structure" in rules(check_structure(cfg, "t"))


def test_structure_rejects_missing_entry():
    cfg = Cfg(entry="gone")
    cfg.add_block(BasicBlock("entry", [Instruction("HALT")]))
    assert "cfg-structure" in rules(check_structure(cfg, "t"))


# ----------------------------------------------------------------- loops
def natural_loop() -> Cfg:
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock("entry", [ldi(0, 4)], fallthrough="head"))
    cfg.add_block(BasicBlock("head", [add(0, 0, 0)],
                             fallthrough="body"))
    cfg.add_block(BasicBlock("body", [add(1, 0, 0),
                                      Instruction("BNE", srcs=(v(1),),
                                                  label="head")],
                             fallthrough="exit"))
    cfg.add_block(BasicBlock("exit", [Instruction("HALT")]))
    return cfg


def test_loops_accept_reducible():
    assert check_loops(natural_loop(), "t") == []


def test_loops_reject_second_entry():
    cfg = natural_loop()
    # A second entry straight into the loop body, bypassing the header:
    # the retreating edge body->head no longer targets a dominator.
    cfg.block("entry").instrs.append(
        Instruction("BNE", srcs=(v(0),), label="body"))
    assert check_structure(cfg, "t") == []     # still structurally fine
    assert "irreducible-loop" in rules(check_loops(cfg, "t"))


# ---------------------------------------------------- register discipline
def test_discipline_virtual_rejects_physical_register():
    cfg = straightline()
    cfg.block("entry").instrs.append(
        Instruction("ADD", dest=ireg(5), srcs=(ireg(5), ireg(5))))
    diags = check_register_discipline(cfg, "t", phase="virtual")
    assert rules(diags) == {"register-discipline"}
    assert check_register_discipline(straightline(), "t",
                                     phase="virtual") == []


def test_discipline_physical_rejects_surviving_virtual():
    cfg = straightline()
    allocate_registers(cfg)
    assert check_register_discipline(cfg, "t", phase="physical") == []
    cfg.block("entry").instrs.insert(0, ldi(9, 7))
    diags = check_register_discipline(cfg, "t", phase="physical")
    assert rules(diags) == {"register-discipline"}


# --------------------------------------------------------- def before use
def test_def_before_use_accepts_straightline():
    assert check_def_before_use(straightline(), "t") == []


def test_def_before_use_rejects_deleted_def():
    cfg = straightline()
    del cfg.block("entry").instrs[1]       # ldi v1 -- still used by add
    diags = check_def_before_use(cfg, "t")
    assert rules(diags) == {"use-before-def"}
    assert any("vi1" in d.message for d in diags)


def test_def_before_use_allows_cmov_reading_dest():
    # Predication reads the (possibly uninitialized) old destination.
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock("entry", [
        ldi(0, 1), ldi(1, 2),
        Instruction("CMOVNE", dest=v(2), srcs=(v(0), v(1))),
        Instruction("HALT")]))
    assert check_def_before_use(cfg, "t") == []


def test_def_before_use_one_path_is_enough():
    # A def on only one path is a *may* reach: not a hard error (the
    # lint layer owns maybe-uninitialized).
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock("entry", [ldi(0, 1),
                                       Instruction("BEQ", srcs=(v(0),),
                                                   label="join")],
                             fallthrough="arm"))
    cfg.add_block(BasicBlock("arm", [ldi(1, 2)], fallthrough="join"))
    cfg.add_block(BasicBlock("join", [add(2, 1, 1),
                                      Instruction("HALT")]))
    assert check_def_before_use(cfg, "t") == []


# --------------------------------------------------------------- liveness
def test_liveness_consistency_clean():
    assert check_liveness_consistency(natural_loop(), "t") == []


# ------------------------------------------------------------- allocation
def test_allocation_clean_on_real_allocator():
    cfg = straightline()
    intervals = capture_intervals(cfg)
    allocation = allocate_registers(cfg)
    assert check_allocation(intervals, allocation) == []


def test_allocation_rejects_overlapping_shared_register():
    cfg = straightline()
    intervals = capture_intervals(cfg)
    allocation = allocate_registers(cfg)
    # Force v0 and v1 (both live across the add) onto one register.
    allocation.assignment[v(1)] = allocation.assignment[v(0)]
    diags = check_allocation(intervals, allocation)
    assert rules(diags) == {"register-clobber"}


def test_allocation_rejects_shared_spill_slot():
    cfg = straightline()
    intervals = capture_intervals(cfg)
    allocation = allocate_registers(cfg)
    allocation.spilled[v(0)] = 0
    allocation.spilled[v(1)] = 0
    diags = check_allocation(intervals, allocation)
    assert "register-clobber" in rules(diags)
