"""Source- and IR-level lints, including position rendering."""

from repro.check import NOTE, WARNING, lint_ast, lint_cfg
from repro.codegen.lower import lower
from repro.frontend import frontend
from repro.ir import BasicBlock, Cfg
from repro.isa import Instruction


def lint(source: str):
    return lint_ast(frontend(source, "lint-test"))


def test_unused_variable_carries_declaration_position():
    diags = lint("""array OUT[8] : int;
func main() {
    var used : int;
    var never : int;
    used = 1;
    OUT[0] = used;
}
""")
    assert len(diags) == 1
    diag = diags[0]
    assert diag.severity == WARNING
    assert diag.rule == "unused-variable"
    assert "never" in diag.message
    # The position is the VarDecl's own, rendered line:column.
    assert diag.loc is not None
    assert (diag.loc.line, diag.loc.column) == (4, 5)
    assert diag.render().startswith("4:5: warning: unused-variable:")


def test_dead_store_reports_every_assignment_site():
    diags = lint("""array OUT[8] : int;
func main() {
    var live : int;
    var ghost : int;
    live = 1;
    ghost = live;
    ghost = live + 2;
    OUT[0] = live;
}
""")
    dead = [d for d in diags if d.rule == "dead-store"]
    assert len(dead) == 2
    assert {(d.loc.line, d.loc.column) for d in dead} == {(6, 5), (7, 5)}
    for d in dead:
        assert "ghost" in d.message
        assert d.render().split(":")[0] == str(d.loc.line)


def test_loop_counters_and_read_variables_are_clean():
    diags = lint("""array OUT[8] : int;
var n : int = 8;
func main() {
    var i : int; var acc : int;
    acc = 0;
    for (i = 0; i < n; i = i + 1) {
        acc = acc + i;
    }
    OUT[0] = acc;
}
""")
    assert diags == []


def test_benchmarks_are_lint_clean_of_warnings():
    from repro.workloads import WORKLOAD_ORDER, WORKLOADS

    for name in WORKLOAD_ORDER:
        diags = lint_ast(frontend(WORKLOADS[name].source, name))
        warnings = [d for d in diags if d.severity == WARNING]
        assert warnings == [], (name, [str(d) for d in warnings])


def test_unreachable_block_lint():
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock("entry", [Instruction("HALT")]))
    cfg.add_block(BasicBlock("orphan", [Instruction("HALT")]))
    diags = lint_cfg(cfg)
    assert [d.rule for d in diags] == ["unreachable-block"]
    assert diags[0].block == "orphan"
    assert diags[0].severity == WARNING


def test_store_never_loaded_is_a_note():
    source = """array ONLYWRITten[8] : float;
func main() {
    var i : int;
    for (i = 0; i < 8; i = i + 1) {
        ONLYWRITten[i] = float(i);
    }
}
"""
    cfg = lower(frontend(source, "wo"))
    diags = [d for d in lint_cfg(cfg) if d.rule == "store-never-loaded"]
    assert len(diags) == 1
    assert diags[0].severity == NOTE
    assert "ONLYWRITten" in diags[0].message
