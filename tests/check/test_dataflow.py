"""The generic dataflow engine and its three shipped analyses."""

from repro.check import (
    DefiniteAssignment,
    LiveVariables,
    ReachingDefinitions,
    solve,
)
from repro.ir import BasicBlock, Cfg, liveness
from repro.isa import Instruction, Reg


def v(i):
    return Reg("i", i, virtual=True)


def ldi(dest, value):
    return Instruction("LDI", dest=v(dest), imm=value)


def add(dest, a, b):
    return Instruction("ADD", dest=v(dest), srcs=(v(a), v(b)))


def diamond() -> Cfg:
    """entry defines v0; then/else both redefine v1; end uses both."""
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock("entry", [ldi(0, 1),
                                       Instruction("BEQ", srcs=(v(0),),
                                                   label="else")],
                             fallthrough="then"))
    cfg.add_block(BasicBlock("then", [ldi(1, 2)], fallthrough="end"))
    cfg.add_block(BasicBlock("else", [ldi(1, 3)], fallthrough="end"))
    cfg.add_block(BasicBlock("end", [add(2, 0, 1),
                                     Instruction("HALT")]))
    return cfg


def loop() -> Cfg:
    """entry -> loop (self edge) -> exit; v1 is loop-carried."""
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock("entry", [ldi(0, 8), ldi(1, 0)],
                             fallthrough="loop"))
    cfg.add_block(BasicBlock("loop", [add(1, 1, 0),
                                      Instruction("BNE", srcs=(v(1),),
                                                  label="loop")],
                             fallthrough="exit"))
    cfg.add_block(BasicBlock("exit", [Instruction("HALT")]))
    return cfg


def test_reaching_definitions_diamond_merges_both_defs():
    cfg = diamond()
    value_in, _ = solve(cfg, ReachingDefinitions())
    end_defs = {reg for reg, _uid in value_in["end"]}
    assert v(0) in end_defs
    assert v(1) in end_defs
    # Both arms' definitions of v1 reach the join (may-analysis).
    v1_sites = [uid for reg, uid in value_in["end"] if reg == v(1)]
    assert len(v1_sites) == 2


def test_reaching_definitions_kill_within_block():
    cfg = Cfg(entry="entry")
    first = ldi(0, 1)
    second = ldi(0, 2)
    cfg.add_block(BasicBlock("entry", [first, second],
                             fallthrough="end"))
    cfg.add_block(BasicBlock("end", [Instruction("HALT")]))
    _, value_out = solve(cfg, ReachingDefinitions())
    assert (v(0), second.uid) in value_out["entry"]
    assert (v(0), first.uid) not in value_out["entry"]


def test_reaching_definitions_loop_carried():
    cfg = loop()
    value_in, _ = solve(cfg, ReachingDefinitions())
    # Both the preheader def of v1 and the loop's own redefinition
    # reach the loop entry.
    v1_sites = [uid for reg, uid in value_in["loop"] if reg == v(1)]
    assert len(v1_sites) == 2


def test_live_variables_agrees_with_ir_liveness():
    for cfg in (diamond(), loop()):
        live_in, live_out = liveness(cfg)
        engine_in, engine_out = solve(cfg, LiveVariables())
        for label in cfg.order:
            assert set(engine_in[label]) == set(live_in[label]), label
            assert set(engine_out[label]) == set(live_out[label]), label


def test_definite_assignment_is_must_not_may():
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock("entry", [ldi(0, 1),
                                       Instruction("BEQ", srcs=(v(0),),
                                                   label="skip")],
                             fallthrough="assign"))
    # v1 is assigned on only one of the two paths.
    cfg.add_block(BasicBlock("assign", [ldi(1, 2)], fallthrough="skip"))
    cfg.add_block(BasicBlock("skip", [Instruction("HALT")]))
    value_in, _ = solve(cfg, DefiniteAssignment())
    assert v(0) in value_in["skip"]
    assert v(1) not in value_in["skip"]


def test_solver_skips_unreachable_blocks():
    cfg = diamond()
    cfg.add_block(BasicBlock("orphan", [Instruction("HALT")]))
    value_in, value_out = solve(cfg, ReachingDefinitions())
    assert "orphan" not in value_in
    assert "orphan" not in value_out
