"""Dependence-preservation checking across scheduler modes."""

from repro.check import check_dependences, snapshot_dependences
from repro.ir import BasicBlock, Cfg
from repro.isa import Instruction, MemRef, Reg


def v(i, kind="i"):
    return Reg(kind, i, virtual=True)


def ldi(dest, value):
    return Instruction("LDI", dest=v(dest), imm=value)


def mem_block() -> Cfg:
    """base addr -> store A[i] -> load A[i] -> add: a true mem dep."""
    cfg = Cfg(entry="entry")
    addr = ldi(0, 0)
    val = ldi(1, 7)
    store = Instruction("ST", srcs=(v(1), v(0)),
                        mem=MemRef("data", "A"))
    load = Instruction("LD", dest=v(2), srcs=(v(0),),
                       mem=MemRef("data", "A"))
    use = Instruction("ADD", dest=v(3), srcs=(v(2), v(2)))
    cfg.add_block(BasicBlock("entry", [addr, val, store, load, use],
                             fallthrough="end"))
    cfg.add_block(BasicBlock("end", [Instruction("HALT")]))
    return cfg


def rules(diags):
    return {d.rule for d in diags}


def test_snapshot_records_block_edges():
    cfg = mem_block()
    snapshot = snapshot_dependences(cfg)
    assert set(snapshot.blocks) == {"entry", "end"}
    assert snapshot.edge_count >= 3      # addr->store, store->load, ...
    kinds = {kind for b in snapshot.blocks.values()
             for _s, _d, kind in b.edges}
    assert "mem" in kinds or "MEM" in {k.upper() for k in kinds}


def test_identity_schedule_is_clean():
    cfg = mem_block()
    snapshot = snapshot_dependences(cfg)
    assert check_dependences(cfg, snapshot, "t", mode="block") == []


def test_legal_permutation_is_clean():
    cfg = mem_block()
    snapshot = snapshot_dependences(cfg)
    instrs = cfg.block("entry").instrs
    # Swapping the two independent producers (addr and val) is legal.
    instrs[0], instrs[1] = instrs[1], instrs[0]
    assert check_dependences(cfg, snapshot, "t", mode="block") == []


def test_store_load_reorder_is_flagged():
    cfg = mem_block()
    snapshot = snapshot_dependences(cfg)
    instrs = cfg.block("entry").instrs
    instrs[2], instrs[3] = instrs[3], instrs[2]   # load before store
    diags = check_dependences(cfg, snapshot, "t", mode="block")
    assert "dependence-order" in rules(diags)


def test_dropped_instruction_is_flagged():
    cfg = mem_block()
    snapshot = snapshot_dependences(cfg)
    del cfg.block("entry").instrs[1]
    diags = check_dependences(cfg, snapshot, "t", mode="block")
    assert "schedule-permutation" in rules(diags)


def test_foreign_instruction_is_flagged():
    cfg = mem_block()
    snapshot = snapshot_dependences(cfg)
    cfg.block("entry").instrs.insert(0, ldi(9, 0))
    diags = check_dependences(cfg, snapshot, "t", mode="block")
    assert "schedule-permutation" in rules(diags)


def test_block_mode_rejects_cross_block_migration():
    cfg = mem_block()
    snapshot = snapshot_dependences(cfg)
    moved = cfg.block("entry").instrs.pop()       # the add
    cfg.block("end").instrs.insert(0, moved)
    diags = check_dependences(cfg, snapshot, "t", mode="block")
    assert "schedule-permutation" in rules(diags)


def test_trace_mode_tolerates_migration_and_pruning():
    cfg = mem_block()
    snapshot = snapshot_dependences(cfg)
    moved = cfg.block("entry").instrs.pop()       # the add
    cfg.block("end").instrs.insert(0, moved)
    # Trace scheduling may migrate instructions between trace blocks
    # and prune blocks entirely; only same-final-block order matters.
    assert check_dependences(cfg, snapshot, "t", mode="trace") == []


def test_trace_mode_still_catches_same_block_violations():
    cfg = mem_block()
    snapshot = snapshot_dependences(cfg)
    instrs = cfg.block("entry").instrs
    instrs[2], instrs[3] = instrs[3], instrs[2]
    diags = check_dependences(cfg, snapshot, "t", mode="trace")
    assert "dependence-order" in rules(diags)
