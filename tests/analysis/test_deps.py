"""Symbolic dependence tests: battery units, brute force, mutations."""

from types import SimpleNamespace

import pytest

import repro.analysis.deps as deps_mod
from repro.analysis.affine import AffineForm
from repro.analysis.deps import (
    ALWAYS,
    EXACT,
    INDEPENDENT,
    UNKNOWN,
    ConflictEquation,
    DepVerdict,
    _banerjee,
    _gcd,
    _siv,
    _ziv,
    classify,
    classify_source_pair,
)


def _eq(iter_coeff=0, dist_coeff=0, free=(), const=0, width=1,
        iter_bounds=None, dist_bounds=None, var_bounds=()):
    return ConflictEquation(
        iter_coeff=iter_coeff, dist_coeff=dist_coeff,
        free_coeffs=tuple(free), const=const, width=width,
        iter_bounds=iter_bounds, dist_bounds=dist_bounds,
        var_bounds=tuple(var_bounds))


# ------------------------------------------------------------ unit: ZIV
def test_ziv_constant_zero_always_conflicts():
    v = _ziv(_eq(const=0))
    assert v.kind == ALWAYS and v.test == "ziv"
    assert v.conflicts_at(0) and v.conflicts_at(3)


def test_ziv_constant_offset_independent():
    v = _ziv(_eq(const=5))
    assert v.kind == INDEPENDENT and v.test == "ziv"
    assert not v.conflicts_at(0)
    assert v.carried_distance() is None


def test_ziv_byte_domain_partial_overlap():
    # Byte domain (width 8): addresses 4 apart still overlap an
    # 8-byte access, 8 apart do not.
    assert _ziv(_eq(const=4, width=8)).kind == ALWAYS
    assert _ziv(_eq(const=8, width=8)).kind == INDEPENDENT


def test_ziv_not_applicable_with_any_coefficient():
    assert _ziv(_eq(dist_coeff=1)) is None
    assert _ziv(_eq(iter_coeff=1)) is None
    assert _ziv(_eq(free=(("m", 1),))) is None


# ------------------------------------------------------------ unit: SIV
def test_siv_exact_single_distance():
    # d - 2 == 0  =>  conflict exactly at distance 2.
    v = _siv(_eq(dist_coeff=1, const=-2))
    assert v.kind == EXACT and v.test == "siv"
    assert (v.lo, v.hi) == (2, 2)
    assert v.carried_distance() == 2
    assert v.conflicts_at(2) and not v.conflicts_at(1)


def test_siv_no_integer_solution():
    # 2d + 1 == 0 has no integer root.
    v = _siv(_eq(dist_coeff=2, const=1))
    assert v.kind == INDEPENDENT


def test_siv_byte_domain_window():
    # |8d| < 8 only at d == 0: same address, stride 8.
    v = _siv(_eq(dist_coeff=8, width=8))
    assert v.kind == EXACT and (v.lo, v.hi) == (0, 0)
    assert v.intra and v.carried_distance() is None


def test_siv_negative_window_direction():
    # d + 2 == 0  =>  conflict only at d == -2 (other direction).
    v = _siv(_eq(dist_coeff=1, const=2))
    assert v.kind == EXACT and (v.lo, v.hi) == (-2, -2)
    assert v.carried_distance() is None


def test_siv_not_applicable():
    assert _siv(_eq(dist_coeff=0, const=1)) is None
    assert _siv(_eq(iter_coeff=1, dist_coeff=1)) is None
    assert _siv(_eq(dist_coeff=1, free=(("m", 1),))) is None


# ------------------------------------------------------- unit: Banerjee
def test_banerjee_refutes_bounded_interval():
    # i in [0,4], difference = i + 6 in [6,10]: never near zero.
    v = _banerjee(_eq(iter_coeff=1, const=6, iter_bounds=(0, 4)))
    assert v.kind == INDEPENDENT and v.test == "banerjee"


def test_banerjee_interval_straddles_zero():
    assert _banerjee(_eq(iter_coeff=1, const=-2,
                         iter_bounds=(0, 4))) is None


def test_banerjee_needs_bounds_for_every_term():
    assert _banerjee(_eq(iter_coeff=1, const=100)) is None
    assert _banerjee(_eq(free=(("m", 1),), const=100)) is None


def test_banerjee_free_var_bounds():
    v = _banerjee(_eq(free=(("m", 1),), const=10,
                      var_bounds=(("m", (0, 2)),)))
    assert v.kind == INDEPENDENT


# ------------------------------------------------------------ unit: GCD
def test_gcd_refutes_odd_offset():
    # 2i + 2d == -1 has no integer solution: gcd 2 cannot hit 1.
    v = _gcd(_eq(iter_coeff=2, dist_coeff=2, const=1))
    assert v.kind == INDEPENDENT and v.test == "gcd"


def test_gcd_divisible_offset_inconclusive():
    assert _gcd(_eq(iter_coeff=2, dist_coeff=2, const=2)) is None


def test_gcd_unit_gcd_inconclusive():
    assert _gcd(_eq(iter_coeff=2, dist_coeff=3, const=1)) is None


def test_gcd_byte_domain_respects_width():
    # Stride 16 bytes, offset 8: every delta in (-8, 8) misses the
    # multiples of 16 shifted by 8.
    v = _gcd(_eq(dist_coeff=16, const=8, width=8))
    assert v.kind == INDEPENDENT
    # Offset 4: delta 4 works, refutation must not fire.
    assert _gcd(_eq(dist_coeff=16, const=4, width=8)) is None


# ----------------------------------------------------- classify battery
def test_classify_none_equation_is_unknown():
    v = classify(None)
    assert v.kind == UNKNOWN and v.conflicts_at(0)


def test_classify_battery_order():
    assert classify(_eq(const=0)).test == "ziv"
    assert classify(_eq(dist_coeff=1)).test == "siv"
    assert classify(_eq(iter_coeff=1, const=9,
                        iter_bounds=(0, 4))).test == "banerjee"
    assert classify(_eq(iter_coeff=2, dist_coeff=2, const=1)).test == "gcd"


def test_classify_gives_up_gracefully():
    v = classify(_eq(iter_coeff=1, const=0))
    assert v.kind == UNKNOWN


# ------------------------------------------------- source-level wrapper
def _access(array, step, const, ivar="i"):
    flat = (AffineForm.variable(ivar).scale(step)
            .add(AffineForm.constant(const)))
    return SimpleNamespace(array=SimpleNamespace(name=array), flat=flat)


def test_classify_source_pair_different_arrays():
    a = _access("X", 1, 0)
    b = _access("Y", 1, 0)
    v = classify_source_pair(a, b, "i")
    assert v.kind == INDEPENDENT and v.test == "symbol"


def test_classify_source_pair_opaque_subscript_unknown():
    a = _access("X", 1, 0)
    b = SimpleNamespace(array=SimpleNamespace(name="X"), flat=None)
    assert classify_source_pair(a, b, "i").kind == UNKNOWN


def test_classify_source_pair_shifted_exact():
    # X[i] vs X[i-1]: b at iteration i+1 rereads a's element.
    a = _access("X", 1, 0)
    b = _access("X", 1, -1)
    v = classify_source_pair(a, b, "i")
    assert v.kind == EXACT and v.carried_distance() == 1


# ------------------------------------------------- brute-force fuzzing
def _realized_distances(sa, ca, sb, cb, n):
    """All d = j - i >= 0 with sb*j + cb == sa*i + ca, i,j in [0,n)."""
    out = set()
    for i in range(n):
        for j in range(i, n):
            if sb * j + cb == sa * i + ca:
                out.add(j - i)
    return out


@pytest.mark.parametrize("sa", range(-2, 3))
@pytest.mark.parametrize("sb", range(-2, 3))
def test_source_pair_verdicts_sound_and_precise(sa, sb):
    """Exhaustive check over a coefficient/offset grid at trip 5.

    Soundness: every realized same-element pair (i, j) with j >= i must
    be admitted by ``conflicts_at(j - i)``.  Precision: independent
    verdicts must have no realized pair, exact windows no realized pair
    outside them.
    """
    n = 5
    for ca in range(-3, 4):
        for cb in range(-3, 4):
            a = _access("X", sa, ca)
            b = _access("X", sb, cb)
            v = classify_source_pair(a, b, "i", iter_bounds=(0, n - 1))
            realized = _realized_distances(sa, ca, sb, cb, n)
            for d in realized:
                assert v.conflicts_at(d), (
                    f"unsound: {sa}i+{ca} vs {sb}i+{cb} conflicts at "
                    f"d={d} but verdict is {v}")
            if v.kind == INDEPENDENT:
                assert not realized, (
                    f"imprecise claim: {sa}i+{ca} vs {sb}i+{cb} marked "
                    f"independent but conflicts at {sorted(realized)}")
            elif v.kind == EXACT:
                outside = {d for d in realized
                           if not v.lo <= d <= v.hi}
                assert not outside, (
                    f"window [{v.lo},{v.hi}] misses distances "
                    f"{sorted(outside)}")


def test_fuzzer_grid_is_not_vacuous():
    """The grid exercises every verdict kind except UNKNOWN."""
    kinds = set()
    n = 5
    for sa in range(-2, 3):
        for sb in range(-2, 3):
            for ca in range(-3, 4):
                for cb in range(-3, 4):
                    v = classify_source_pair(
                        _access("X", sa, ca), _access("X", sb, cb),
                        "i", iter_bounds=(0, n - 1))
                    kinds.add(v.kind)
    assert {INDEPENDENT, EXACT, ALWAYS} <= kinds


# ------------------------------------------------------- mutation tests
#
# Each dependence test must be load-bearing: knocking it out of the
# battery (monkeypatching it to "not applicable") must visibly weaken
# at least one verdict.  ``classify`` resolves the tests through module
# globals at call time, so setattr on the module is enough.

def _knockout(monkeypatch, name):
    monkeypatch.setattr(deps_mod, name, lambda eq: None)


def test_mutation_ziv_is_load_bearing(monkeypatch):
    eq = _eq(const=0)
    assert classify(eq).kind == ALWAYS
    _knockout(monkeypatch, "_ziv")
    assert classify(eq).kind == UNKNOWN


def test_mutation_siv_is_load_bearing(monkeypatch):
    eq = _eq(dist_coeff=1, const=-2)
    assert classify(eq).kind == EXACT
    _knockout(monkeypatch, "_siv")
    assert classify(eq).kind == UNKNOWN


def test_mutation_banerjee_is_load_bearing(monkeypatch):
    eq = _eq(free=(("m", 1),), const=10, var_bounds=(("m", (0, 2)),))
    assert classify(eq).kind == INDEPENDENT
    _knockout(monkeypatch, "_banerjee")
    assert classify(eq).kind == UNKNOWN


def test_mutation_gcd_is_load_bearing(monkeypatch):
    eq = _eq(dist_coeff=2, free=(("m", 2),), const=1)
    assert classify(eq).kind == INDEPENDENT
    _knockout(monkeypatch, "_gcd")
    assert classify(eq).kind == UNKNOWN


def test_mutation_battery_stays_sound(monkeypatch):
    """Removing any single test keeps the battery sound.

    Whatever subset of tests runs, every realized conflict distance
    must still be admitted — mutations may only lose precision."""
    n = 5
    for name in ("_ziv", "_siv", "_banerjee", "_gcd"):
        with monkeypatch.context() as m:
            m.setattr(deps_mod, name, lambda eq: None)
            for sa in (-2, 0, 1, 2):
                for sb in (-1, 1, 2):
                    for ca in (-3, 0, 2):
                        for cb in (-2, 0, 1):
                            v = classify_source_pair(
                                _access("X", sa, ca),
                                _access("X", sb, cb),
                                "i", iter_bounds=(0, n - 1))
                            for d in _realized_distances(
                                    sa, ca, sb, cb, n):
                                assert v.conflicts_at(d)
