"""AST-level affine analysis of subscripts."""

from repro.analysis import AffineForm, affine_of, flatten_subscript
from repro.frontend import ast, parse


def expr_of(text: str) -> ast.Expr:
    program = parse(f"func main() {{ x = {text}; }}")
    return program.function("main").body.statements[0].value


class TestAffineForm:
    def test_constant(self):
        form = AffineForm.constant(5)
        assert form.is_constant
        assert form.const == 5

    def test_variable(self):
        form = AffineForm.variable("i")
        assert form.coeff("i") == 1
        assert form.coeff("j") == 0

    def test_addition_merges_terms(self):
        a = AffineForm((("i", 2),), 1)
        b = AffineForm((("i", 3), ("j", 1)), 2)
        combined = a.add(b)
        assert combined.coeff("i") == 5
        assert combined.coeff("j") == 1
        assert combined.const == 3

    def test_subtraction_cancels(self):
        a = AffineForm((("i", 2),), 1)
        combined = a.add(a, -1)
        assert combined.is_constant
        assert combined.const == 0

    def test_scaling(self):
        form = AffineForm((("i", 2),), 3).scale(4)
        assert form.coeff("i") == 8
        assert form.const == 12

    def test_scale_by_zero(self):
        assert AffineForm((("i", 2),), 3).scale(0).is_constant

    def test_free_vars(self):
        assert AffineForm((("i", 1), ("j", 2)), 0).free_vars() == {"i", "j"}


class TestAffineOf:
    def test_literal(self):
        assert affine_of(expr_of("7")).const == 7

    def test_variable(self):
        assert affine_of(expr_of("i")).coeff("i") == 1

    def test_linear_combination(self):
        form = affine_of(expr_of("2 * i + j - 3"))
        assert form.coeff("i") == 2
        assert form.coeff("j") == 1
        assert form.const == -3

    def test_constant_times_parenthesized(self):
        form = affine_of(expr_of("4 * (i + 1)"))
        assert form.coeff("i") == 4
        assert form.const == 4

    def test_negation(self):
        form = affine_of(expr_of("-i + 5"))
        assert form.coeff("i") == -1
        assert form.const == 5

    def test_variable_product_is_not_affine(self):
        assert affine_of(expr_of("i * j")) is None

    def test_division_is_not_affine(self):
        assert affine_of(expr_of("i / 2")) is None

    def test_call_is_not_affine(self):
        assert affine_of(expr_of("f(i)")) is None

    def test_nested_array_ref_is_not_affine(self):
        assert affine_of(expr_of("A[i] + 1")) is None


class TestFlattenSubscript:
    def test_row_major_flattening(self):
        decl = ast.ArrayDecl(name="A", dims=(8, 16), type=ast.FLOAT)
        ref = expr_of("A[i][j]")
        flat = flatten_subscript(ref, decl)
        assert flat.coeff("i") == 16
        assert flat.coeff("j") == 1

    def test_three_dimensions(self):
        decl = ast.ArrayDecl(name="A", dims=(4, 8, 16), type=ast.FLOAT)
        flat = flatten_subscript(expr_of("A[i][j][k]"), decl)
        assert flat.coeff("i") == 128
        assert flat.coeff("j") == 16
        assert flat.coeff("k") == 1

    def test_constant_offsets_fold(self):
        decl = ast.ArrayDecl(name="A", dims=(8, 16), type=ast.FLOAT)
        flat = flatten_subscript(expr_of("A[i + 1][j - 2]"), decl)
        assert flat.const == 16 - 2

    def test_non_affine_subscript_gives_none(self):
        decl = ast.ArrayDecl(name="A", dims=(8, 16), type=ast.FLOAT)
        assert flatten_subscript(expr_of("A[i][i * j]"), decl) is None
