"""Static per-bank MAXLIVE analysis: blocks, CFGs, kernels, budgets."""

from repro.analysis.pressure import (
    block_pressure,
    cfg_pressure,
    kernel_pressure,
    max_pressure,
    over_budget,
)
from repro.ir import BasicBlock, Cfg
from repro.isa import Instruction, Reg
from repro.machine import DEFAULT_CONFIG


def vi(n):
    return Reg("i", n, virtual=True)


def vf(n):
    return Reg("f", n, virtual=True)


def ldi(dest, value):
    return Instruction("LDI", dest=vi(dest), imm=value)


def add(dest, a, b):
    return Instruction("ADD", dest=vi(dest), srcs=(vi(a), vi(b)))


def fadd(dest, a, b):
    return Instruction("FADD", dest=vf(dest), srcs=(vf(a), vf(b)))


def test_empty_block_counts_live_out():
    assert block_pressure([], [vi(1), vi(2), vf(3)]) == {"i": 2, "f": 1}


def test_straight_line_chain_has_low_pressure():
    # Each temporary dies feeding the next: one register slot suffices
    # (a def coexists only with values live *across* it, and nothing
    # here survives past its single use).
    instrs = [ldi(0, 1), add(1, 0, 0), add(2, 1, 1), add(3, 2, 2)]
    assert block_pressure(instrs, [vi(3)]) == {"i": 1, "f": 0}


def test_fan_in_peaks_at_the_join():
    # Three independent defs all alive at the final sum.
    instrs = [ldi(0, 1), ldi(1, 2), ldi(2, 3),
              add(3, 0, 1), add(4, 3, 2)]
    assert block_pressure(instrs, [vi(4)])["i"] == 3


def test_dead_def_still_occupies_a_register():
    # vi(1) is never used, but at its defining instruction it coexists
    # with vi(0) (still live for the ADD below).
    instrs = [ldi(0, 1), ldi(1, 2), add(2, 0, 0)]
    assert block_pressure(instrs, [vi(2)])["i"] == 2


def test_banks_counted_separately():
    # vf2/vf3 are live into the block; vf1 replaces them at the FADD.
    instrs = [ldi(0, 1), fadd(1, 2, 3)]
    peak = block_pressure(instrs, [vi(0), vf(1)])
    assert peak == {"i": 1, "f": 2}


def test_live_through_values_raise_kernel_pressure():
    instrs = [ldi(0, 1), add(1, 0, 0)]
    plain = kernel_pressure(instrs, [vi(1)])
    held = kernel_pressure(instrs, [vi(1)],
                           live_through=[vf(9), vf(10), vi(7)])
    assert held["f"] == plain["f"] + 2
    assert held["i"] == plain["i"] + 1


def test_kernel_pressure_live_through_overlap_not_double_counted():
    instrs = [ldi(0, 1)]
    assert kernel_pressure(instrs, [vi(0)], live_through=[vi(0)]) == \
        kernel_pressure(instrs, [vi(0)])


def _two_block_cfg():
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock(
        "entry", [ldi(0, 1), ldi(1, 2), ldi(2, 3), add(3, 0, 1)],
        fallthrough="exit"))
    cfg.add_block(BasicBlock(
        "exit", [add(4, 3, 2), Instruction("HALT")]))
    return cfg


def test_cfg_pressure_per_block_and_max():
    cfg = _two_block_cfg()
    per_block = cfg_pressure(cfg)
    assert set(per_block) == {"entry", "exit"}
    # entry holds vi0..vi2 plus vi3 at its def.
    assert per_block["entry"]["i"] == 3
    assert max_pressure(cfg)["i"] == 3


def test_over_budget_lists_offending_banks():
    assert over_budget({"i": 5, "f": 2}, {"i": 4, "f": 4}) == ["i"]
    assert over_budget({"i": 9, "f": 9}, {"i": 4, "f": 4}) == ["i", "f"]
    assert over_budget({"i": 3, "f": 3}, {"i": 4, "f": 4}) == []


def test_over_budget_against_machine_config():
    budget = {"i": DEFAULT_CONFIG.allocatable_int_regs,
              "f": DEFAULT_CONFIG.allocatable_fp_regs}
    fits = {"i": budget["i"], "f": budget["f"]}
    assert over_budget(fits, budget) == []
    assert over_budget({"i": budget["i"] + 1, "f": 0}, budget) == ["i"]
