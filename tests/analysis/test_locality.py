"""Locality analysis: reuse classification, peeling, marking, limits."""

from repro.analysis.locality import (
    LocalityAnalyzer,
    analyze_locality,
    walk_load_refs,
)
from repro.frontend import ast, frontend
from repro.harness.compile import Options, compile_source
from repro.isa import Locality
from repro.machine import Simulator

SPATIAL = """
array A[16][16] : float;
array C[16][16] : float;
var n : int = 16;
func main() {
    var i: int; var j: int;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            C[i][j] = A[i][j] * 2.0;
        }
    }
}
"""

TEMPORAL = """
array A[16][16] : float;
array B[16][16] : float;
array C[16][16] : float;
var n : int = 16;
func main() {
    var i: int; var j: int;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            C[i][j] = A[i][j] + B[i][0];
        }
    }
}
"""


def hints_of(result):
    """Locality hints of all loads in the final program, by opcode."""
    return [(ins.locality, ins.group) for ins in result.program.instructions
            if ins.is_load and not ins.is_spill]


class TestClassification:
    def test_spatial_reuse_detected_and_marked(self):
        program = frontend(SPATIAL)
        stats = analyze_locality(program)
        assert stats.refs_spatial >= 1
        assert stats.loops_unrolled == 1
        assert stats.marked_misses >= 1
        assert stats.marked_hits >= 3      # three hit copies per line

    def test_temporal_reuse_peels(self):
        program = frontend(TEMPORAL)
        stats = analyze_locality(program)
        assert stats.refs_temporal >= 1
        assert stats.loops_peeled == 1

    def test_non_affine_subscript_unknown(self):
        source = """
array A[64] : float;
array IDX[64] : int;
var n : int = 64;
func main() {
    var i: int; var x: float;
    for (i = 0; i < n; i = i + 1) {
        x = A[IDX[i]];
        A[i] = x;
    }
}
"""
        program = frontend(source)
        stats = analyze_locality(program)
        assert stats.refs_unknown >= 1
        assert stats.marked_misses == 0 or stats.refs_spatial > 0

    def test_unknown_lower_bound_skipped(self):
        source = """
array A[64] : float;
var n : int = 64;
var start : int = 1;
func main() {
    var i: int; var x: float; var s: int;
    s = start;
    for (i = s; i < n; i = i + 1) {
        A[i] = A[i] * 0.5;
    }
}
"""
        program = frontend(source)
        stats = analyze_locality(program)
        assert stats.loops_unrolled == 0
        assert stats.loops_peeled == 0

    def test_subscript_variable_assigned_in_body_rejected(self):
        source = """
array A[64] : float;
var n : int = 16;
func main() {
    var i: int; var k: int;
    k = 0;
    for (i = 0; i < n; i = i + 1) {
        k = k + 2;
        A[k] = A[k] + 1.0;
    }
}
"""
        program = frontend(source)
        stats = analyze_locality(program)
        assert stats.loops_unrolled == 0

    def test_misaligned_row_stride_not_spatial(self):
        # 10 elements per row: row offset not a multiple of the line.
        source = """
array A[16][10] : float;
var n : int = 10;
func main() {
    var i: int; var j: int;
    for (i = 0; i < 16; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            A[i][j] = A[i][j] + 1.0;
        }
    }
}
"""
        program = frontend(source)
        stats = analyze_locality(program)
        assert stats.refs_spatial == 0


class TestGeneratedCode:
    def test_hit_miss_pattern_in_unrolled_loop(self):
        result = compile_source(SPATIAL, Options(scheduler="balanced",
                                                 locality=True))
        loads = hints_of(result)
        misses = [h for h, _ in loads if h is Locality.MISS]
        hits = [h for h, _ in loads if h is Locality.HIT]
        assert misses and hits
        assert len(hits) >= 3 * len([m for m in misses])

    def test_miss_and_hits_share_group(self):
        result = compile_source(SPATIAL, Options(scheduler="balanced",
                                                 locality=True))
        by_group = {}
        for ins in result.program.instructions:
            if ins.is_load and ins.group is not None:
                by_group.setdefault(ins.group, []).append(ins.locality)
        shared = [g for g, hints in by_group.items()
                  if Locality.MISS in hints and Locality.HIT in hints]
        assert shared

    def test_semantics_preserved_spatial(self):
        base = compile_source(SPATIAL, Options(scheduler="balanced"))
        with_la = compile_source(SPATIAL, Options(scheduler="balanced",
                                                  locality=True))
        sim_a, sim_b = Simulator(base.program), Simulator(with_la.program)
        sim_a.run()
        sim_b.run()
        assert sim_a.get_symbol("C") == sim_b.get_symbol("C")

    def test_semantics_preserved_temporal(self):
        base = compile_source(TEMPORAL, Options(scheduler="balanced"))
        with_la = compile_source(TEMPORAL, Options(scheduler="balanced",
                                                   locality=True))
        sim_a, sim_b = Simulator(base.program), Simulator(with_la.program)
        sim_a.run()
        sim_b.run()
        assert sim_a.get_symbol("C") == sim_b.get_symbol("C")

    def test_zero_trip_loop_safe_after_peel(self):
        source = """
array A[8][8] : float;
array B[8] : float;
var n : int = 8;
var m : int = 0;
func main() {
    var i: int; var j: int;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < m; j = j + 1) {
            A[i][j] = A[i][j] + B[i];
        }
    }
}
"""
        # m = 0 is read from a mutable global, so the loop runs zero
        # times; peel+guard must not execute the body.
        base = compile_source(source, Options(scheduler="balanced"))
        with_la = compile_source(source, Options(scheduler="balanced",
                                                 locality=True))
        sim_a, sim_b = Simulator(base.program), Simulator(with_la.program)
        sim_a.run()
        sim_b.run()
        assert sim_a.get_symbol("A") == sim_b.get_symbol("A")


class TestWalkLoadRefs:
    def test_order_is_deterministic_and_complete(self):
        program = frontend(TEMPORAL)
        loop = program.function("main").body.statements[-1]
        refs = list(walk_load_refs(loop))
        names = [r.array for r in refs]
        assert names == ["A", "B"]

    def test_store_targets_not_yielded(self):
        program = frontend(SPATIAL)
        loop = program.function("main").body.statements[-1]
        refs = list(walk_load_refs(loop))
        assert [r.array for r in refs] == ["A"]
