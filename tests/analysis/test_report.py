"""Benchmark-level dependence/pressure reports and analysis lints."""

import json

import pytest

from repro.analysis import (
    ANALYSIS_SCHEMA_VERSION,
    analysis_summary,
    analyze_program,
    attach_analysis,
    format_report,
)
from repro.check import NOTE, WARNING, lint_loop_analysis
from repro.harness.compile import Options
from repro.ir import BasicBlock, Cfg
from repro.isa import Instruction, Reg
from repro.machine import DEFAULT_CONFIG

TRIAD = """
array X[64] : float;
array Y[64] : float;
array Z[64] : float;

func main() {
    var i : int;
    for (i = 0; i < 64; i = i + 1) { X[i] = float(i); }
    for (i = 0; i < 64; i = i + 1) { Y[i] = float(i) * 2.0; }
    for (i = 0; i < 64; i = i + 1) { Z[i] = X[i] + Y[i]; }
}
"""

RECURRENCE = """
array X[64] : float;
var b : float = 0.5;

func main() {
    var i : int;
    X[0] = 1.0;
    for (i = 1; i < 64; i = i + 1) { X[i] = X[i-1] * b; }
}
"""


def test_analyze_program_schema_and_loops():
    report = analyze_program(TRIAD, Options(), "triad")
    assert report["schema"] == ANALYSIS_SCHEMA_VERSION
    assert report["benchmark"] == "triad"
    assert report["options"] == "balanced"
    assert report["blocks"] > 0
    assert len(report["loops"]) == 3
    for loop in report["loops"]:
        assert loop["pairs"] == (loop["independent"] + loop["exact"]
                                 + loop["always"] + loop["unknown"])
        assert set(loop["max_live"]) == {"i", "f"}
    # The triad loop's store is independent of both loads.
    triad_loop = max(report["loops"], key=lambda l: l["pairs"])
    assert triad_loop["independent"] == triad_loop["pairs"] > 0
    assert triad_loop["unknown"] == 0


def test_analyze_program_recurrence_has_carried_distance():
    report = analyze_program(RECURRENCE, Options(), "rec")
    loops = [l for l in report["loops"] if l["exact"]]
    assert loops, "recurrence loop not analyzed"
    assert loops[0]["min_distance"] == 1


def test_independent_store_note_surfaces_in_report():
    report = analyze_program(TRIAD, Options(), "triad")
    assert any("independent-store-ordered" in d
               for d in report["diagnostics"])


def test_format_report_renders_loops_and_budget():
    report = analyze_program(TRIAD, Options(), "triad")
    text = format_report(report)
    assert "== triad / balanced ==" in text
    assert "peak MAXLIVE" in text
    assert "mem pairs" in text
    assert "independent" in text


def test_analysis_summary_points_and_totals():
    reports = [analyze_program(TRIAD, Options(), "triad"),
               analyze_program(RECURRENCE, Options(), "rec")]
    summary = analysis_summary(reports)
    assert summary["schema"] == ANALYSIS_SCHEMA_VERSION
    assert set(summary["points"]) == {"triad/balanced", "rec/balanced"}
    point = summary["points"]["triad/balanced"]
    assert point["loops"] == 3
    assert point["independent"] > 0
    totals = summary["totals"]
    for key in ("loops", "pairs", "independent", "exact", "always",
                "unknown"):
        assert totals[key] == sum(p[key]
                                  for p in summary["points"].values())
    assert totals["pairs"] == (totals["independent"] + totals["exact"]
                               + totals["always"] + totals["unknown"])


def test_attach_analysis_roundtrip(tmp_path):
    manifest = tmp_path / "manifest.json"
    manifest.write_text(json.dumps({"version": 6, "runs": []}))
    summary = analysis_summary([analyze_program(TRIAD, Options(),
                                                "triad")])
    attach_analysis(manifest, summary)
    data = json.loads(manifest.read_text())
    assert data["runs"] == []
    assert data["analysis"]["points"]["triad/balanced"]["loops"] == 3


def test_options_label_feeds_point_key():
    report = analyze_program(TRIAD, Options(unroll=4), "triad")
    summary = analysis_summary([report])
    (key,) = summary["points"]
    assert key.startswith("triad/") and "lu4" in key


# --------------------------------------------------- lint: pressure
def _overpressure_cfg(n_fp=None):
    """entry -> loop (self BNE) -> exit holding n_fp FP values live."""
    if n_fp is None:
        n_fp = DEFAULT_CONFIG.allocatable_fp_regs + 1
    vi0 = Reg("i", 1, virtual=True)
    vf = [Reg("f", k, virtual=True) for k in range(n_fp + 1)]
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock(
        "entry",
        [Instruction("LDI", dest=vi0, imm=4),
         Instruction("CVTIF", dest=vf[0], srcs=(vi0,))],
        fallthrough="loop"))
    body = [Instruction("FADD", dest=vf[k], srcs=(vf[0], vf[0]))
            for k in range(1, n_fp + 1)]
    body.append(Instruction("SUB", dest=vi0, srcs=(vi0, vi0)))
    body.append(Instruction("BNE", srcs=(vi0,), label="loop"))
    cfg.add_block(BasicBlock("loop", body, fallthrough="exit"))
    sink = [Instruction("FADD", dest=vf[0], srcs=(vf[k], vf[k]))
            for k in range(1, n_fp + 1)]
    sink.append(Instruction("HALT"))
    cfg.add_block(BasicBlock("exit", sink))
    return cfg


def test_kernel_pressure_warning_fires_when_over_budget():
    diags = lint_loop_analysis(_overpressure_cfg())
    rules = [d.rule for d in diags]
    assert "kernel-pressure" in rules
    warning = next(d for d in diags if d.rule == "kernel-pressure")
    assert warning.severity == WARNING
    assert warning.block == "loop"
    assert "spill" in warning.message


def test_kernel_pressure_silent_within_budget():
    cfg = _overpressure_cfg(n_fp=4)
    assert not [d for d in lint_loop_analysis(cfg)
                if d.rule == "kernel-pressure"]
