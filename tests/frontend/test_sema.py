"""Semantic analysis: types, scoping, inlining restrictions."""

import pytest

from repro.frontend import SemanticError, ast, frontend


def analyze_main(body: str, prelude: str = ""):
    return frontend(f"{prelude}\nfunc main() {{ {body} }}")


class TestTyping:
    def test_int_float_mixing_inserts_cast(self):
        program = analyze_main("var x : float; x = 1 + 0.5;")
        assign = program.function("main").body.statements[1]
        binop = assign.value
        assert binop.type == ast.FLOAT
        assert isinstance(binop.left, ast.Cast)

    def test_float_to_int_requires_explicit_cast(self):
        with pytest.raises(SemanticError):
            analyze_main("var x : int; x = 1.5;")
        analyze_main("var x : int; x = int(1.5);")

    def test_comparisons_produce_int(self):
        program = analyze_main("var x : int; x = 1.0 < 2.0;")
        assign = program.function("main").body.statements[1]
        assert assign.value.type == ast.INT

    def test_modulo_requires_ints(self):
        with pytest.raises(SemanticError):
            analyze_main("var x : float; x = 1.5 % 2.0;")

    def test_logical_ops_require_ints(self):
        with pytest.raises(SemanticError):
            analyze_main("var x : int; x = 1.0 && 1;")

    def test_condition_must_be_int(self):
        with pytest.raises(SemanticError):
            analyze_main("if (1.5) { }")
        analyze_main("if (1.5 < 2.0) { }")

    def test_not_requires_int(self):
        with pytest.raises(SemanticError):
            analyze_main("var x : int; x = !1.5;")


class TestNames:
    def test_undefined_variable(self):
        with pytest.raises(SemanticError):
            analyze_main("x = 1;")

    def test_undefined_array(self):
        with pytest.raises(SemanticError):
            analyze_main("A[0] = 1.0;")

    def test_array_used_as_scalar(self):
        with pytest.raises(SemanticError):
            analyze_main("var x : float; x = A;",
                         prelude="array A[4] : float;")

    def test_wrong_dimension_count(self):
        with pytest.raises(SemanticError):
            analyze_main("A[0] = 1.0;", prelude="array A[4][4] : float;")

    def test_index_must_be_int(self):
        with pytest.raises(SemanticError):
            analyze_main("A[1.5] = 1.0;", prelude="array A[4] : float;")

    def test_duplicate_local(self):
        with pytest.raises(SemanticError):
            analyze_main("var x : int; var x : int;")

    def test_local_shadowing_global_rejected(self):
        with pytest.raises(SemanticError):
            analyze_main("var n : int;", prelude="var n : int = 3;")

    def test_duplicate_top_level(self):
        with pytest.raises(SemanticError):
            frontend("var a : int; array a[4] : int; func main() { }")


class TestFunctions:
    def test_main_required(self):
        with pytest.raises(SemanticError):
            frontend("func helper() { }")

    def test_main_signature_enforced(self):
        with pytest.raises(SemanticError):
            frontend("func main(x: int) { }")
        with pytest.raises(SemanticError):
            frontend("func main() : int { return 0; }")

    def test_arity_mismatch(self):
        with pytest.raises(SemanticError):
            analyze_main("f(1, 2);",
                         prelude="func f(x: int) { var t : int; t = x; }")

    def test_argument_coercion(self):
        program = analyze_main(
            "var y : float; y = f(1);",
            prelude="func f(x: float) : float { return x; }")
        call = program.function("main").body.statements[1].value
        assert isinstance(call.args[0], ast.Cast)

    def test_void_call_in_expression_rejected(self):
        with pytest.raises(SemanticError):
            analyze_main("var y : int; y = f();",
                         prelude="var g : int = 0;\nfunc f() { g = 1; }")

    def test_return_type_checked(self):
        with pytest.raises(SemanticError):
            frontend("func f() : int { return 1.5; }\nfunc main() { }")

    def test_function_must_end_with_return(self):
        with pytest.raises(SemanticError):
            frontend("func f() : int { var x : int; x = 1; }\n"
                     "func main() { }")

    def test_early_return_rejected(self):
        with pytest.raises(SemanticError):
            frontend("""
func f(x: int) : int {
    if (x < 0) { return 0; }
    return x;
}
func main() { }
""")

    def test_direct_recursion_rejected(self):
        with pytest.raises(SemanticError) as err:
            frontend("func f(x: int) : int { return f(x); }\n"
                     "func main() { }")
        assert "recursion" in str(err.value)

    def test_mutual_recursion_rejected(self):
        with pytest.raises(SemanticError):
            frontend("""
func f(x: int) : int { return g(x); }
func g(x: int) : int { return f(x); }
func main() { }
""")

    def test_call_chain_allowed(self):
        frontend("""
func h(x: float) : float { return x * 2.0; }
func g(x: float) : float { return h(x) + 1.0; }
func main() { var y : float; y = g(1.0); }
""")


def test_expression_statement_must_be_call():
    # The parser only produces ExprStmt for calls; build one manually.
    from repro.frontend.sema import Analyzer
    program = frontend("func main() { }")
    bad = ast.ExprStmt(expr=ast.IntLit(value=1))
    program.function("main").body.statements.append(bad)
    with pytest.raises(SemanticError):
        Analyzer(program).analyze()
