"""Parser: every construct, precedence, error reporting."""

import pytest

from repro.frontend import ParseError, ast, parse


def parse_main(body: str):
    program = parse(f"func main() {{ {body} }}")
    return program.function("main").body.statements


def first_expr(body: str):
    stmt = parse_main(body)[0]
    assert isinstance(stmt, ast.Assign)
    return stmt.value


class TestDeclarations:
    def test_array_declaration(self):
        program = parse("array A[4][8] : float;")
        array = program.array("A")
        assert array.dims == (4, 8)
        assert array.type == ast.FLOAT
        assert array.size_elems == 32

    def test_global_var_with_init(self):
        program = parse("var n : int = 10;")
        decl = program.globals[0]
        assert decl.name == "n"
        assert isinstance(decl.init, ast.IntLit)

    def test_function_with_params_and_return_type(self):
        program = parse("func f(a: int, b: float) : float { return b; }")
        func = program.function("f")
        assert [(p.name, p.type) for p in func.params] == \
            [("a", ast.INT), ("b", ast.FLOAT)]
        assert func.return_type == ast.FLOAT

    def test_zero_dimension_array_rejected(self):
        with pytest.raises(ParseError):
            parse("array A[0] : int;")

    def test_array_without_dims_rejected(self):
        with pytest.raises(ParseError):
            parse("array A : int;")


class TestStatements:
    def test_scalar_assignment(self):
        (stmt,) = parse_main("x = 1;")
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.target, ast.Name)

    def test_array_assignment(self):
        (stmt,) = parse_main("A[i][j + 1] = 0.0;")
        assert isinstance(stmt.target, ast.ArrayIndex)
        assert len(stmt.target.indices) == 2

    def test_if_without_else(self):
        (stmt,) = parse_main("if (x < 1) { y = 1; }")
        assert isinstance(stmt, ast.If)
        assert stmt.else_body is None

    def test_if_else_chain_nests(self):
        (stmt,) = parse_main(
            "if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }")
        nested = stmt.else_body.statements[0]
        assert isinstance(nested, ast.If)
        assert nested.else_body is not None

    def test_while_loop(self):
        (stmt,) = parse_main("while (i < 10) { i = i + 1; }")
        assert isinstance(stmt, ast.While)

    def test_for_loop_components(self):
        (stmt,) = parse_main("for (i = 0; i < n; i = i + 1) { x = i; }")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.Assign)
        assert isinstance(stmt.cond, ast.BinOp)
        assert isinstance(stmt.step, ast.Assign)

    def test_for_requires_assignments(self):
        with pytest.raises(ParseError):
            parse_main("for (f(); i < n; i = i + 1) { x = i; }")

    def test_call_statement(self):
        (stmt,) = parse_main("f(1, 2);")
        assert isinstance(stmt, ast.ExprStmt)
        assert isinstance(stmt.expr, ast.Call)

    def test_local_var_decl(self):
        (stmt,) = parse_main("var t : float = 1.0;")
        assert isinstance(stmt, ast.VarDecl)

    def test_nested_block(self):
        (stmt,) = parse_main("{ x = 1; y = 2; }")
        assert isinstance(stmt, ast.Block)
        assert len(stmt.statements) == 2

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_main("x = 1")


class TestExpressions:
    def test_multiplication_binds_tighter_than_addition(self):
        expr = first_expr("x = a + b * c;")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_comparison_binds_looser_than_arithmetic(self):
        expr = first_expr("x = a + 1 < b * 2;")
        assert expr.op == "<"

    def test_logical_or_binds_loosest(self):
        expr = first_expr("x = a && b || c;")
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_parentheses_override(self):
        expr = first_expr("x = (a + b) * c;")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_minus(self):
        expr = first_expr("x = -a * b;")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.UnaryOp)

    def test_casts(self):
        expr = first_expr("x = int(y) + 1;")
        assert isinstance(expr.left, ast.Cast)
        assert expr.left.target == ast.INT
        expr = first_expr("x = float(3);")
        assert expr.target == ast.FLOAT

    def test_call_in_expression(self):
        expr = first_expr("x = f(a, b + 1) * 2;")
        assert isinstance(expr.left, ast.Call)
        assert len(expr.left.args) == 2

    def test_multi_dim_index_expression(self):
        expr = first_expr("x = A[i + 1][2 * j];")
        assert isinstance(expr, ast.ArrayIndex)
        assert len(expr.indices) == 2

    def test_left_associativity_of_subtraction(self):
        expr = first_expr("x = a - b - c;")
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_main("x = (a + b;")


def test_top_level_junk_rejected():
    with pytest.raises(ParseError):
        parse("banana")
