"""Lexer behaviour: tokens, literals, comments, positions, errors."""

import pytest

from repro.frontend import LexError, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def test_empty_source_yields_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind == "<eof>"


def test_keywords_and_identifiers():
    tokens = tokenize("for forty int integer")
    assert [t.kind for t in tokens[:-1]] == ["for", "ident", "int", "ident"]


def test_integer_literal():
    token = tokenize("42")[0]
    assert token.kind == "intlit"
    assert token.value == 42


def test_float_literals():
    values = [t.value for t in tokenize("1.5 2. 0.25 1e3 2.5e-2")[:-1]]
    assert values == [1.5, 2.0, 0.25, 1000.0, 0.025]
    assert all(isinstance(v, float) for v in values)


def test_integer_not_mistaken_for_float():
    token = tokenize("100")[0]
    assert token.kind == "intlit"


def test_multichar_operators_win_over_prefixes():
    assert kinds("== = <= < && !")[:-1] == ["==", "=", "<=", "<", "&&", "!"]


def test_comments_are_skipped():
    tokens = tokenize("a # this is a comment\nb")
    assert [t.text for t in tokens[:-1]] == ["a", "b"]


def test_line_and_column_tracking():
    tokens = tokenize("a\n  b")
    assert (tokens[0].loc.line, tokens[0].loc.column) == (1, 1)
    assert (tokens[1].loc.line, tokens[1].loc.column) == (2, 3)


def test_unexpected_character_raises():
    with pytest.raises(LexError):
        tokenize("a @ b")


def test_underscore_identifiers():
    token = tokenize("_foo_bar1")[0]
    assert token.kind == "ident"
    assert token.text == "_foo_bar1"


def test_brackets_and_punctuation():
    assert kinds("[ ] ( ) { } , ; :")[:-1] == \
        ["[", "]", "(", ")", "{", "}", ",", ";", ":"]
