"""Diagnostics: error locations and messages."""

import pytest

from repro.frontend import (
    CompileError,
    LexError,
    ParseError,
    SemanticError,
    frontend,
    tokenize,
)
from repro.frontend.errors import SourceLocation


def test_source_location_repr_and_equality():
    loc = SourceLocation(3, 7)
    assert repr(loc) == "3:7"
    assert loc == SourceLocation(3, 7)
    assert loc != SourceLocation(3, 8)
    assert hash(loc) == hash(SourceLocation(3, 7))


def test_error_message_includes_location():
    error = CompileError("bad thing", SourceLocation(2, 5))
    assert str(error) == "2:5: bad thing"
    assert CompileError("no location").args[0] == "no location"


def test_lex_error_points_at_offending_character():
    with pytest.raises(LexError) as err:
        tokenize("x = 1;\ny = @;")
    assert "2:" in str(err.value)
    assert "@" in str(err.value)


def test_parse_error_location_on_later_line():
    with pytest.raises(ParseError) as err:
        frontend("func main() {\n    var x : int;\n    x = ;\n}")
    assert "3:" in str(err.value)


def test_semantic_error_names_the_symbol():
    with pytest.raises(SemanticError) as err:
        frontend("func main() { missing = 1; }")
    assert "missing" in str(err.value)


def test_recursion_error_shows_cycle():
    with pytest.raises(SemanticError) as err:
        frontend("""
func a(x: int) : int { return b(x); }
func b(x: int) : int { return a(x); }
func main() { }
""")
    message = str(err.value)
    assert "a" in message and "b" in message and "->" in message


def test_error_hierarchy():
    assert issubclass(LexError, CompileError)
    assert issubclass(ParseError, CompileError)
    assert issubclass(SemanticError, CompileError)


def test_helpful_cast_hint():
    with pytest.raises(SemanticError) as err:
        frontend("func main() { var x : int; x = 2.5; }")
    assert "int(...)" in str(err.value)
