"""Structural checks on the unroller's output (paper Figure 4 shape)."""

from repro.frontend import ast, frontend
from repro.opt.unroll import CanonicalLoop, canonicalize, unroll_loop


def get_loop(source: str) -> ast.For:
    program = frontend(source)
    for stmt in program.function("main").body.statements:
        if isinstance(stmt, ast.For):
            return stmt
    raise AssertionError


SRC = """
array A[64] : float;
var n : int = 64;
func main() {
    var i : int;
    for (i = 0; i < n; i = i + 1) { A[i] = float(i); }
}
"""


def unrolled(factor: int) -> ast.Block:
    loop = get_loop(SRC)
    return unroll_loop(loop, canonicalize(loop), factor)


def test_main_loop_has_factor_copies():
    block = unrolled(4)
    main_loop = block.statements[0]
    assert isinstance(main_loop, ast.For)
    assert len(main_loop.body.statements) == 4


def test_main_loop_condition_guards_last_copy():
    block = unrolled(4)
    cond = block.statements[0].cond
    # i + 3 < n
    assert isinstance(cond, ast.BinOp) and cond.op == "<"
    assert cond.left.op == "+"
    assert cond.left.right.value == 3


def test_step_is_scaled():
    block = unrolled(4)
    step = block.statements[0].step
    assert step.value.right.value == 4


def test_epilogue_is_nested_ifs_of_depth_factor_minus_one():
    block = unrolled(4)
    epilogue = block.statements[1]
    depth = 0
    node = epilogue
    while isinstance(node, ast.If):
        depth += 1
        inner = [s for s in node.then_body.statements
                 if isinstance(s, ast.If)]
        node = inner[0] if inner else None
    assert depth == 3                       # paper Figure 4: factor - 1


def test_copies_substitute_increasing_offsets():
    block = unrolled(4)
    copies = block.statements[0].body.statements
    offsets = []
    for copy in copies:
        assign = copy.statements[0]
        index = assign.target.indices[0]
        if isinstance(index, ast.Name):
            offsets.append(0)
        else:
            offsets.append(index.right.value)
    assert offsets == [0, 1, 2, 3]


def test_factor_two_epilogue_single_if():
    block = unrolled(2)
    epilogue = block.statements[1]
    assert isinstance(epilogue, ast.If)
    nested = [s for s in epilogue.then_body.statements
              if isinstance(s, ast.If)]
    assert not nested


def test_marker_prevents_reunrolling():
    block = unrolled(4)
    main_loop = block.statements[0]
    assert getattr(main_loop, "_unrolled", 0) == 4
