"""Constant folding, copy propagation, dead-code elimination."""

from repro.ir import BasicBlock, Cfg
from repro.isa import Instruction, Reg
from repro.opt import eliminate_dead_code, fold_constants, propagate_copies


def v(i, kind="i"):
    return Reg(kind, i, virtual=True)


def single_block(instrs) -> Cfg:
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock("entry", list(instrs) + [Instruction("HALT")]))
    return cfg


class TestConstantFolding:
    def test_fully_constant_add_folds(self):
        cfg = single_block([
            Instruction("LDI", dest=v(0), imm=2),
            Instruction("LDI", dest=v(1), imm=3),
            Instruction("ADD", dest=v(2), srcs=(v(0), v(1))),
        ])
        fold_constants(cfg)
        folded = cfg.block("entry").instrs[2]
        assert folded.op == "LDI"
        assert folded.imm == 5

    def test_compare_folds_to_flag(self):
        cfg = single_block([
            Instruction("LDI", dest=v(0), imm=2),
            Instruction("CMPLT", dest=v(1), srcs=(v(0),), imm=9),
        ])
        fold_constants(cfg)
        assert cfg.block("entry").instrs[1].imm == 1

    def test_register_to_immediate_rewriting(self):
        cfg = single_block([
            Instruction("LDI", dest=v(0), imm=7),
            Instruction("ADD", dest=v(2), srcs=(v(1), v(0))),
        ])
        fold_constants(cfg)
        rewritten = cfg.block("entry").instrs[1]
        assert rewritten.srcs == (v(1),)
        assert rewritten.imm == 7

    def test_constants_do_not_cross_redefinition(self):
        cfg = single_block([
            Instruction("LDI", dest=v(0), imm=7),
            Instruction("ADD", dest=v(0), srcs=(v(1),), imm=1),
            Instruction("ADD", dest=v(2), srcs=(v(1), v(0))),
        ])
        fold_constants(cfg)
        final = cfg.block("entry").instrs[2]
        assert final.srcs == (v(1), v(0))       # untouched

    def test_constants_do_not_cross_blocks(self):
        cfg = Cfg(entry="a")
        cfg.add_block(BasicBlock("a", [
            Instruction("LDI", dest=v(0), imm=7)], fallthrough="b"))
        cfg.add_block(BasicBlock("b", [
            Instruction("ADD", dest=v(1), srcs=(v(2), v(0))),
            Instruction("HALT")]))
        fold_constants(cfg)
        assert cfg.block("b").instrs[0].srcs == (v(2), v(0))

    def test_zero_register_treated_as_constant(self):
        from repro.isa import ZERO
        cfg = single_block([
            Instruction("LDI", dest=v(0), imm=3),
            Instruction("SUB", dest=v(1), srcs=(ZERO, v(0))),
        ])
        fold_constants(cfg)
        assert cfg.block("entry").instrs[1].op == "LDI"
        assert cfg.block("entry").instrs[1].imm == -3

    def test_fp_ops_untouched(self):
        fadd = Instruction("FADD", dest=v(0, "f"), srcs=(v(1, "f"),
                                                         v(2, "f")))
        cfg = single_block([fadd])
        fold_constants(cfg)
        assert cfg.block("entry").instrs[0].op == "FADD"


class TestCopyPropagation:
    def test_copy_forwarded_to_use(self):
        cfg = single_block([
            Instruction("MOV", dest=v(1), srcs=(v(0),)),
            Instruction("ADD", dest=v(2), srcs=(v(1),), imm=1),
        ])
        propagate_copies(cfg)
        assert cfg.block("entry").instrs[1].srcs == (v(0),)

    def test_copy_killed_by_source_redefinition(self):
        cfg = single_block([
            Instruction("MOV", dest=v(1), srcs=(v(0),)),
            Instruction("LDI", dest=v(0), imm=9),
            Instruction("ADD", dest=v(2), srcs=(v(1),), imm=1),
        ])
        propagate_copies(cfg)
        assert cfg.block("entry").instrs[2].srcs == (v(1),)

    def test_copy_killed_by_dest_redefinition(self):
        cfg = single_block([
            Instruction("MOV", dest=v(1), srcs=(v(0),)),
            Instruction("LDI", dest=v(1), imm=9),
            Instruction("ADD", dest=v(2), srcs=(v(1),), imm=1),
        ])
        propagate_copies(cfg)
        assert cfg.block("entry").instrs[2].srcs == (v(1),)

    def test_copy_chains_collapse(self):
        cfg = single_block([
            Instruction("MOV", dest=v(1), srcs=(v(0),)),
            Instruction("MOV", dest=v(2), srcs=(v(1),)),
            Instruction("ADD", dest=v(3), srcs=(v(2),), imm=1),
        ])
        propagate_copies(cfg)
        assert cfg.block("entry").instrs[2].srcs == (v(0),)

    def test_fp_moves_propagate(self):
        cfg = single_block([
            Instruction("FMOV", dest=v(1, "f"), srcs=(v(0, "f"),)),
            Instruction("FADD", dest=v(2, "f"), srcs=(v(1, "f"), v(1, "f"))),
        ])
        propagate_copies(cfg)
        assert cfg.block("entry").instrs[1].srcs == (v(0, "f"), v(0, "f"))


class TestDeadCodeElimination:
    def test_unused_result_removed(self):
        cfg = single_block([
            Instruction("LDI", dest=v(0), imm=1),
            Instruction("LDI", dest=v(1), imm=2),   # dead
            Instruction("ADD", dest=v(2), srcs=(v(0),), imm=1),
            Instruction("ST", srcs=(v(2), v(0)), offset=0),
        ])
        removed = eliminate_dead_code(cfg)
        assert removed == 1
        ops = [i.op for i in cfg.block("entry").instrs]
        assert ops == ["LDI", "ADD", "ST", "HALT"]

    def test_dead_chain_removed_transitively(self):
        cfg = single_block([
            Instruction("LDI", dest=v(0), imm=1),
            Instruction("ADD", dest=v(1), srcs=(v(0),), imm=1),
            Instruction("ADD", dest=v(2), srcs=(v(1),), imm=1),
        ])
        removed = eliminate_dead_code(cfg)
        assert removed == 3
        assert [i.op for i in cfg.block("entry").instrs] == ["HALT"]

    def test_stores_never_removed(self):
        cfg = single_block([
            Instruction("LDI", dest=v(0), imm=64),
            Instruction("ST", srcs=(v(0), v(0)), offset=0),
        ])
        assert eliminate_dead_code(cfg) == 0

    def test_dead_load_removed(self):
        cfg = single_block([
            Instruction("LDI", dest=v(0), imm=64),
            Instruction("LD", dest=v(1), srcs=(v(0),), offset=0),
        ])
        eliminate_dead_code(cfg)
        assert [i.op for i in cfg.block("entry").instrs] == ["HALT"]

    def test_values_live_across_blocks_kept(self):
        cfg = Cfg(entry="a")
        cfg.add_block(BasicBlock("a", [
            Instruction("LDI", dest=v(0), imm=7)], fallthrough="b"))
        cfg.add_block(BasicBlock("b", [
            Instruction("ST", srcs=(v(0), v(0)), offset=0),
            Instruction("HALT")]))
        assert eliminate_dead_code(cfg) == 0

    def test_branch_condition_kept(self):
        cfg = Cfg(entry="a")
        cfg.add_block(BasicBlock("a", [
            Instruction("LDI", dest=v(0), imm=1),
            Instruction("BEQ", srcs=(v(0),), label="b")], fallthrough="b"))
        cfg.add_block(BasicBlock("b", [Instruction("HALT")]))
        assert eliminate_dead_code(cfg) == 0


def test_passes_compose_to_clean_inlined_copies(run_source):
    """End to end: inline copies disappear from the final program."""
    source = """
array OUT[4] : float;
func dbl(x: float) : float { return x * 2.0; }
func main() {
    OUT[0] = dbl(3.0);
}
"""
    from repro.harness.compile import Options, compile_source
    result = compile_source(source, Options(scheduler="none"))
    movs = [i for i in result.program.instructions if i.op == "FMOV"]
    assert not movs
