"""Loop unrolling: canonical forms, caps, postconditioning, semantics."""

import pytest

from repro.frontend import ast, frontend
from repro.harness.compile import Options, compile_source
from repro.machine import Simulator
from repro.opt.unroll import (
    canonicalize,
    estimate_instructions,
    is_innermost,
    unroll_program,
)


def first_loop(source: str) -> ast.For:
    program = frontend(source)
    for stmt in program.function("main").body.statements:
        if isinstance(stmt, ast.For):
            return stmt
    raise AssertionError("no for loop")


SIMPLE = """
array A[64] : float;
var n : int = 64;
func main() {
    var i : int;
    for (i = 0; i < n; i = i + 1) { A[i] = float(i); }
}
"""


class TestCanonicalize:
    def test_simple_loop_is_canonical(self):
        canon = canonicalize(first_loop(SIMPLE))
        assert canon is not None
        assert canon.ivar == "i"
        assert canon.cmp == "<"
        assert canon.step == 1

    def test_le_comparison_accepted(self):
        loop = first_loop("""
array A[64] : float;
func main() { var i : int;
    for (i = 0; i <= 62; i = i + 2) { A[i] = 1.0; } }""")
        canon = canonicalize(loop)
        assert canon.cmp == "<=" and canon.step == 2

    def test_non_unit_negative_step_rejected(self):
        loop = first_loop("""
array A[64] : float;
func main() { var i : int;
    for (i = 63; i < 64; i = i + -1) { A[i] = 1.0; } }""")
        assert canonicalize(loop) is None

    def test_induction_variable_assigned_in_body_rejected(self):
        loop = first_loop("""
array A[64] : float;
func main() { var i : int;
    for (i = 0; i < 10; i = i + 1) { i = i + 1; A[i] = 1.0; } }""")
        assert canonicalize(loop) is None

    def test_bound_containing_call_rejected(self):
        loop = first_loop("""
array A[64] : float;
func f() : int { return 8; }
func main() { var i : int;
    for (i = 0; i < f(); i = i + 1) { A[i] = 1.0; } }""")
        assert canonicalize(loop) is None

    def test_bound_depending_on_ivar_rejected(self):
        loop = first_loop("""
array A[64] : float;
func main() { var i : int;
    for (i = 1; i < i + 1; i = i + 1) { A[i] = 1.0; } }""")
        assert canonicalize(loop) is None

    def test_multiplicative_step_rejected(self):
        loop = first_loop("""
array A[64] : float;
func main() { var i : int;
    for (i = 1; i < 64; i = i * 2) { A[i] = 1.0; } }""")
        assert canonicalize(loop) is None


class TestEligibility:
    def test_innermost_only(self):
        program = frontend("""
array A[8][8] : float;
func main() {
    var i : int; var j : int;
    for (i = 0; i < 8; i = i + 1) {
        for (j = 0; j < 8; j = j + 1) { A[i][j] = 1.0; }
    }
}
""")
        stats = unroll_program(program, 4)
        assert stats.unrolled == 1           # only the inner loop

    def test_two_internal_branches_block_unrolling(self):
        program = frontend("""
array A[64] : float;
func main() {
    var i : int;
    for (i = 1; i < 63; i = i + 1) {
        if (A[i] < 0.0) { A[i] = 0.0 - A[i]; } else { A[i] = A[i] * 2.0; }
        if (A[i] > 9.0) { A[i] = 9.0; } else { A[i] = A[i] + 0.1; }
    }
}
""")
        stats = unroll_program(program, 4)
        assert stats.unrolled == 0
        assert stats.skipped_branches == 1

    def test_predicable_conditional_does_not_count(self):
        program = frontend("""
array A[64] : float;
func main() {
    var i : int;
    for (i = 0; i < 64; i = i + 1) {
        if (A[i] < 0.0) { A[i] = 0.0 - A[i]; }
    }
}
""")
        stats = unroll_program(program, 4)
        assert stats.unrolled == 1

    def test_size_cap_reduces_factor(self):
        # A body estimated around 20+ instructions: factor 4 exceeds
        # the 64-instruction cap, so a reduced factor is used.
        program = frontend("""
array A[64] : float;
array B[64] : float;
array C[64] : float;
func main() {
    var i : int;
    for (i = 2; i < 62; i = i + 1) {
        A[i] = B[i - 1] * 0.1 + B[i] * 0.2 + B[i + 1] * 0.3
             + C[i - 2] * 0.4 + C[i] * 0.5 + C[i + 2] * 0.6
             + A[i - 1] * 0.7;
    }
}
""")
        stats4 = unroll_program(program, 4)
        assert stats4.unrolled == 1
        assert stats4.factors[0] < 4

    def test_huge_body_disables_unrolling(self):
        lines = "\n".join(
            f"A[i] = A[i] + B[i - {k}] * {k}.0 + C[i + {k}] * 0.{k};"
            for k in range(1, 11))
        program = frontend(f"""
array A[128] : float;
array B[128] : float;
array C[128] : float;
func main() {{
    var i : int;
    for (i = 16; i < 112; i = i + 1) {{
        {lines}
    }}
}}
""")
        stats = unroll_program(program, 4)
        assert stats.unrolled == 0
        assert stats.skipped_size == 1


class TestSemantics:
    @pytest.mark.parametrize("trip_count", [0, 1, 3, 4, 5, 7, 8, 16, 17])
    def test_all_trip_counts_match_reference(self, trip_count):
        source = f"""
array A[32] : float;
var n : int = {trip_count};
var total : float = 0.0;
func main() {{
    var i : int;
    for (i = 0; i < 32; i = i + 1) {{ A[i] = 100.0; }}
    for (i = 0; i < n; i = i + 1) {{
        A[i] = float(i) * 2.0 + 1.0;
        total = total + A[i];
    }}
}}
"""
        expected_a = [i * 2.0 + 1.0 if i < trip_count else 100.0
                      for i in range(32)]
        expected_total = sum(i * 2.0 + 1.0 for i in range(trip_count))
        for factor in (0, 4, 8):
            result = compile_source(
                source, Options(scheduler="balanced", unroll=factor))
            sim = Simulator(result.program)
            sim.run()
            assert sim.get_symbol("A") == expected_a, factor
            assert abs(sim.get_symbol("total") - expected_total) < 1e-9

    def test_unrolling_reduces_dynamic_branches(self):
        result0 = compile_source(SIMPLE, Options(scheduler="balanced"))
        result4 = compile_source(SIMPLE, Options(scheduler="balanced",
                                                 unroll=4))
        sim0, sim4 = Simulator(result0.program), Simulator(result4.program)
        m0, m4 = sim0.run(), sim4.run()
        assert m4.branches < m0.branches
        assert m4.instructions < m0.instructions
        assert sim0.get_symbol("A") == sim4.get_symbol("A")

    def test_induction_variable_correct_after_loop(self):
        source = """
array OUT[1] : int;
var n : int = 10;
func main() {
    var i : int;
    for (i = 0; i < n; i = i + 1) { OUT[0] = i; }
    OUT[0] = i;
}
"""
        for factor in (0, 4, 8):
            result = compile_source(source, Options(unroll=factor))
            sim = Simulator(result.program)
            sim.run()
            assert sim.get_symbol("OUT") == [10], factor

    def test_la_processed_loops_skipped(self):
        program = frontend("""
array A[16][16] : float;
array C[16][16] : float;
var n : int = 16;
func main() {
    var i: int; var j: int;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) { C[i][j] = A[i][j] * 2.0; }
    }
}
""")
        from repro.analysis import analyze_locality
        la_stats = analyze_locality(program)
        assert la_stats.loops_unrolled == 1
        stats = unroll_program(program, 8)
        # The locality-processed inner loop must not be re-unrolled.
        assert stats.unrolled == 0


def test_estimate_instructions_scales_with_body():
    small = first_loop(SIMPLE)
    program = frontend(SIMPLE)
    big = frontend("""
array A[64] : float;
array B[64] : float;
func main() {
    var i : int;
    for (i = 1; i < 63; i = i + 1) {
        A[i] = A[i - 1] * 0.5 + B[i] * 2.0 + B[i + 1];
        B[i] = A[i] + B[i - 1];
    }
}
""")
    big_loop = big.function("main").body.statements[-1]
    assert estimate_instructions(big_loop.body, big) > \
        estimate_instructions(small.body, program)


def test_is_innermost():
    program = frontend("""
array A[8][8] : float;
func main() {
    var i : int; var j : int;
    for (i = 0; i < 8; i = i + 1) {
        for (j = 0; j < 8; j = j + 1) { A[i][j] = 1.0; }
    }
}
""")
    outer = program.function("main").body.statements[-1]
    inner = outer.body.statements[0]
    assert not is_innermost(outer)
    assert is_innermost(inner)
