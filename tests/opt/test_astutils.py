"""AST utilities: cloning, substitution, structural queries."""

from repro.frontend import ast, frontend
from repro.opt.astutils import (
    assigned_names,
    clone_expr,
    clone_stmt,
    count_statements,
    internal_branch_count,
    is_predicable_if,
)


def main_body(source: str) -> ast.Block:
    return frontend(source).function("main").body


def loop_of(source: str) -> ast.For:
    for stmt in main_body(source).statements:
        if isinstance(stmt, ast.For):
            return stmt
    raise AssertionError("no loop")


SRC = """
array A[8] : float;
func main() {
    var i : int; var x : float;
    for (i = 0; i < 8; i = i + 1) {
        x = A[i] * 2.0 + float(i);
        A[i] = x;
    }
}
"""


class TestClone:
    def test_clone_is_deep(self):
        loop = loop_of(SRC)
        copy = clone_stmt(loop)
        assert copy is not loop
        assert copy.body is not loop.body
        assert copy.body.statements[0].value is not \
            loop.body.statements[0].value

    def test_clone_preserves_types(self):
        loop = loop_of(SRC)
        copy = clone_stmt(loop)
        original_expr = loop.body.statements[0].value
        cloned_expr = copy.body.statements[0].value
        assert cloned_expr.type == original_expr.type == ast.FLOAT

    def test_substitution_replaces_names(self):
        loop = loop_of(SRC)
        subst = {"i": lambda: ast.BinOp(
            op="+", left=ast.Name(ident="i", type=ast.INT),
            right=ast.IntLit(value=3, type=ast.INT), type=ast.INT)}
        copy = clone_stmt(loop.body, subst)
        ref = copy.statements[0].value.left.left    # A[i+3] load
        assert isinstance(ref, ast.ArrayIndex)
        index = ref.indices[0]
        assert isinstance(index, ast.BinOp)
        assert index.right.value == 3

    def test_substitution_preserves_annotated_type(self):
        name = ast.Name(ident="i", type=ast.INT)
        subst = {"i": lambda: ast.IntLit(value=7)}
        replaced = clone_expr(name, subst)
        assert isinstance(replaced, ast.IntLit)
        assert replaced.type == ast.INT

    def test_locality_hints_survive_cloning(self):
        ref = ast.ArrayIndex(array="A",
                             indices=[ast.IntLit(value=0, type=ast.INT)],
                             type=ast.FLOAT)
        ref.hint = "miss"
        ref.group = 12
        copy = clone_expr(ref)
        assert copy.hint == "miss"
        assert copy.group == 12


class TestQueries:
    def test_assigned_names_sees_all_paths(self):
        body = main_body("""
func main() {
    var a : int; var b : int; var c : int;
    a = 1;
    if (a < 2) { b = 2; } else { c = 3; }
    while (a < 10) { a = a + 1; }
}
""")
        names = assigned_names(body)
        assert {"a", "b", "c"} <= names

    def test_count_statements(self):
        body = main_body(SRC)
        assert count_statements(body) >= 4

    def test_internal_branch_count_skips_predicable(self):
        loop = loop_of("""
array A[8] : float;
func main() {
    var i : int;
    for (i = 0; i < 8; i = i + 1) {
        if (A[i] < 0.0) { A[i] = 0.0 - A[i]; }
    }
}
""")
        assert internal_branch_count(loop.body) == 0

    def test_internal_branch_count_counts_if_else(self):
        loop = loop_of("""
array A[8] : float;
func main() {
    var i : int;
    for (i = 0; i < 8; i = i + 1) {
        if (A[i] < 0.0) { A[i] = 0.0; } else { A[i] = 1.0; }
    }
}
""")
        assert internal_branch_count(loop.body) == 1

    def test_internal_branch_count_counts_nested_loops(self):
        loop = main_body("""
array A[8][8] : float;
func main() {
    var i : int; var j : int;
    for (i = 0; i < 8; i = i + 1) {
        for (j = 0; j < 8; j = j + 1) { A[i][j] = 0.0; }
    }
}
""").statements[-1]
        assert internal_branch_count(loop.body) == 1

    def test_is_predicable_if(self):
        program = frontend("""
func main() {
    var x : int; x = 0;
    if (x < 1) { x = 2; }
    if (x < 1) { x = 2; } else { x = 3; }
}
""")
        statements = program.function("main").body.statements
        ifs = [s for s in statements if isinstance(s, ast.If)]
        assert is_predicable_if(ifs[0])
        assert not is_predicable_if(ifs[1])
