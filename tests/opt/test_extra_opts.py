"""Optional passes: loop-invariant code motion and local CSE."""

from repro.codegen.lower import lower
from repro.frontend import frontend
from repro.harness.compile import Options, compile_source
from repro.ir import BasicBlock, Cfg
from repro.isa import Instruction, Reg
from repro.machine import Simulator
from repro.opt.cse import eliminate_common_subexpressions
from repro.opt.licm import hoist_loop_invariants


def v(i, kind="i"):
    return Reg(kind, i, virtual=True)


class TestLicm:
    def _loop_cfg(self, body_extra=()):
        """preheader -> body (self loop) -> exit."""
        cfg = Cfg(entry="pre")
        cfg.add_block(BasicBlock("pre", [
            Instruction("LDI", dest=v(0), imm=0),
            Instruction("LDI", dest=v(9), imm=10),
            Instruction("BEQ", srcs=(v(9),), label="exit"),
        ], fallthrough="body"))
        cfg.add_block(BasicBlock("body", [
            Instruction("LDI", dest=v(1), imm=42),            # invariant
            Instruction("ADD", dest=v(2), srcs=(v(1),), imm=8),  # invariant
            Instruction("ADD", dest=v(0), srcs=(v(0), v(2))),  # variant
            Instruction("CMPLT", dest=v(3), srcs=(v(0), v(9))),
            Instruction("BNE", srcs=(v(3),), label="body"),
        ], fallthrough="exit"))
        cfg.add_block(BasicBlock("exit", list(body_extra)
                                 + [Instruction("HALT")]))
        return cfg

    def test_invariants_move_to_preheader(self):
        cfg = self._loop_cfg()
        hoisted = hoist_loop_invariants(cfg)
        assert hoisted == 2
        body_ops = [i.op for i in cfg.blocks["body"].instrs]
        assert "LDI" not in body_ops
        pre_ops = [i.op for i in cfg.blocks["pre"].instrs]
        assert pre_ops.count("LDI") == 3
        # Hoisted code sits before the guard branch.
        assert cfg.blocks["pre"].instrs[-1].op == "BEQ"
        cfg.verify()

    def test_variant_instruction_stays(self):
        cfg = self._loop_cfg()
        hoist_loop_invariants(cfg)
        body_ops = [i.op for i in cfg.blocks["body"].instrs]
        assert "ADD" in body_ops            # the accumulation
        assert "CMPLT" in body_ops

    def test_multiply_defined_register_not_hoisted(self):
        cfg = self._loop_cfg()
        cfg.blocks["body"].instrs.insert(
            2, Instruction("LDI", dest=v(1), imm=7))   # second def of v1
        hoisted = hoist_loop_invariants(cfg)
        # v1 has two defs now; only hoists that remain safe happen.
        body_ops = [i.format() for i in cfg.blocks["body"].instrs]
        assert any("42" in text for text in body_ops) or hoisted == 0

    def test_trapping_ops_not_hoisted(self):
        cfg = self._loop_cfg()
        cfg.blocks["body"].instrs.insert(2, Instruction(
            "DIVQ", dest=v(5), srcs=(v(9), v(9))))
        hoist_loop_invariants(cfg)
        assert any(i.op == "DIVQ" for i in cfg.blocks["body"].instrs)

    def test_end_to_end_semantics(self, stencil_source):
        base = compile_source(stencil_source, Options())
        extra = compile_source(stencil_source, Options(extra_opts=True))
        sim_a, sim_b = Simulator(base.program), Simulator(extra.program)
        sim_a.run()
        sim_b.run()
        assert sim_a.get_symbol("V") == sim_b.get_symbol("V")

    def test_reduces_dynamic_instructions(self, stencil_source):
        base = compile_source(stencil_source, Options())
        extra = compile_source(stencil_source, Options(extra_opts=True))
        m_base = Simulator(base.program).run()
        m_extra = Simulator(extra.program).run()
        assert m_extra.instructions < m_base.instructions


class TestCse:
    def _block(self, instrs):
        cfg = Cfg(entry="entry")
        cfg.add_block(BasicBlock("entry",
                                 list(instrs) + [Instruction("HALT")]))
        return cfg

    def test_duplicate_expression_becomes_copy(self):
        cfg = self._block([
            Instruction("LDI", dest=v(0), imm=3),
            Instruction("ADD", dest=v(1), srcs=(v(0),), imm=5),
            Instruction("ADD", dest=v(2), srcs=(v(0),), imm=5),
        ])
        assert eliminate_common_subexpressions(cfg) == 1
        assert cfg.blocks["entry"].instrs[2].op == "MOV"

    def test_commutative_normalization(self):
        cfg = self._block([
            Instruction("LDI", dest=v(0), imm=3),
            Instruction("LDI", dest=v(1), imm=4),
            Instruction("ADD", dest=v(2), srcs=(v(0), v(1))),
            Instruction("ADD", dest=v(3), srcs=(v(1), v(0))),
        ])
        assert eliminate_common_subexpressions(cfg) == 1

    def test_non_commutative_order_respected(self):
        cfg = self._block([
            Instruction("LDI", dest=v(0), imm=3),
            Instruction("LDI", dest=v(1), imm=4),
            Instruction("SUB", dest=v(2), srcs=(v(0), v(1))),
            Instruction("SUB", dest=v(3), srcs=(v(1), v(0))),
        ])
        assert eliminate_common_subexpressions(cfg) == 0

    def test_redefined_source_blocks_reuse(self):
        cfg = self._block([
            Instruction("LDI", dest=v(0), imm=3),
            Instruction("ADD", dest=v(1), srcs=(v(0),), imm=5),
            Instruction("LDI", dest=v(0), imm=9),
            Instruction("ADD", dest=v(2), srcs=(v(0),), imm=5),
        ])
        assert eliminate_common_subexpressions(cfg) == 0

    def test_redefined_holder_blocks_reuse(self):
        cfg = self._block([
            Instruction("LDI", dest=v(0), imm=3),
            Instruction("ADD", dest=v(1), srcs=(v(0),), imm=5),
            Instruction("LDI", dest=v(1), imm=0),    # clobber holder
            Instruction("ADD", dest=v(2), srcs=(v(0),), imm=5),
        ])
        assert eliminate_common_subexpressions(cfg) == 0

    def test_duplicate_loads_merge_without_stores(self):
        from repro.isa import MemRef
        mem = MemRef("data", "A", affine=({}, 0))
        cfg = self._block([
            Instruction("LDI", dest=v(0), imm=64),
            Instruction("LD", dest=v(1), srcs=(v(0),), offset=0, mem=mem),
            Instruction("LD", dest=v(2), srcs=(v(0),), offset=0, mem=mem),
        ])
        assert eliminate_common_subexpressions(cfg) == 1

    def test_store_invalidates_loads(self):
        from repro.isa import MemRef
        mem = MemRef("data", "A", affine=({}, 0))
        cfg = self._block([
            Instruction("LDI", dest=v(0), imm=64),
            Instruction("LD", dest=v(1), srcs=(v(0),), offset=0, mem=mem),
            Instruction("ST", srcs=(v(1), v(0)), offset=0, mem=mem),
            Instruction("LD", dest=v(2), srcs=(v(0),), offset=0, mem=mem),
        ])
        assert eliminate_common_subexpressions(cfg) == 0

    def test_different_offsets_not_merged(self):
        cfg = self._block([
            Instruction("LDI", dest=v(0), imm=64),
            Instruction("LD", dest=v(1), srcs=(v(0),), offset=0),
            Instruction("LD", dest=v(2), srcs=(v(0),), offset=8),
        ])
        assert eliminate_common_subexpressions(cfg) == 0

    def test_cmov_never_merged(self):
        cfg = self._block([
            Instruction("LDI", dest=v(0), imm=1),
            Instruction("LDI", dest=v(1), imm=2),
            Instruction("CMOVNE", dest=v(2), srcs=(v(0), v(1))),
            Instruction("CMOVNE", dest=v(3), srcs=(v(0), v(1))),
        ])
        assert eliminate_common_subexpressions(cfg) == 0


def test_combined_passes_preserve_workload_semantics():
    source = """
array A[32][32] : float;
array OUT[32] : float;
var n : int = 32;
var acc : float = 0.0;
func main() {
    var i : int; var j : int;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            A[i][j] = float(i * 32 + j) * 0.125;
        }
    }
    for (i = 1; i < 31; i = i + 1) {
        for (j = 1; j < 31; j = j + 1) {
            OUT[i] = OUT[i] + A[i][j] * 0.5 + A[i][j] * 0.5
                   + A[i - 1][j] * 0.25;
            acc = acc + OUT[i];
        }
    }
}
"""
    results = {}
    for extra in (False, True):
        result = compile_source(source, Options(scheduler="balanced",
                                                unroll=4,
                                                extra_opts=extra))
        sim = Simulator(result.program)
        sim.run()
        results[extra] = (sim.get_symbol("OUT"), sim.get_symbol("acc"))
    assert results[False][0] == results[True][0]
    assert abs(results[False][1] - results[True][1]) < 1e-6
