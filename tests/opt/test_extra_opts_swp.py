"""LICM/CSE interaction with software pipelining.

``extra_opts=True`` (local CSE + loop-invariant code motion) reshapes
loop bodies before scheduling; ``swp`` then overlaps iterations.  The
combination must never reorder loop-carried memory dependences: these
programs all carry values through memory across iterations (recurrence
reads, in-place updates, reductions through a scalar symbol) and must
compute identical results with and without pipelining.
"""

import pytest

from repro.harness.compile import Options, compile_source
from repro.machine import Simulator

RECURRENCE = """
array A[64] : float;

func main() {
    var i : int;
    A[0] = 1.0;
    for (i = 1; i < 64; i = i + 1) {
        A[i] = A[i - 1] * 0.5 + 1.0;
    }
}
"""

IN_PLACE = """
array A[64] : float;
array B[64] : float;

func main() {
    var i : int;
    for (i = 0; i < 64; i = i + 1) {
        A[i] = float(i) * 0.125;
        B[i] = float(64 - i);
    }
    for (i = 0; i < 64; i = i + 1) {
        A[i] = A[i] * 0.5 + B[i] * B[i] + B[i] * 0.25;
    }
}
"""

INVARIANT_LOAD = """
array A[64] : float;
array C[4] : float;

func main() {
    var i : int;
    C[0] = 2.5;
    for (i = 0; i < 64; i = i + 1) {
        A[i] = C[0] * float(i) + C[0] * 0.5;
    }
}
"""


def _final_memory(source, options):
    result = compile_source(source, options, "t")
    sim = Simulator(result.program)
    sim.run()
    words = result.program.data_size // 8
    return result, list(sim.memory[:words])


@pytest.mark.parametrize("source", [RECURRENCE, IN_PLACE, INVARIANT_LOAD],
                         ids=["recurrence", "in-place", "invariant-load"])
@pytest.mark.parametrize("scheduler", ["balanced", "traditional"])
def test_extra_opts_swp_preserves_carried_memory_deps(source, scheduler):
    _, expected = _final_memory(
        source, Options(scheduler=scheduler, extra_opts=True))
    _, observed = _final_memory(
        source, Options(scheduler=scheduler, extra_opts=True, swp=True))
    assert observed == expected


def test_in_place_update_pipelines_under_extra_opts():
    # The combination must actually exercise a pipelined kernel with
    # a load and a store of the same array, not silently bail.
    result, _ = _final_memory(IN_PLACE, Options(extra_opts=True, swp=True))
    assert result.modulo_stats.pipelined >= 1


def test_carried_memory_edges_survive_cse():
    """CSE must not merge the recurrence load into the store address
    computation in a way that hides the loop-carried conflict: the
    dependence analysis still sees the store->load distance-1 arc of
    ``A[i] = A[i-1] * 0.5 + 1.0`` after CSE reshapes the body.  (The
    symbolic analyzer proves in-place updates like ``A[i] = A[i]*c``
    carry *nothing* across iterations, so only a true recurrence keeps
    a carried arc — exactly distance 1 here, not a blanket.)"""
    from repro.ir.liveness import liveness
    from repro.sched.modulo.deps import analyze_deps, match_loop

    from tests.sched.test_modulo import _scheduled_cfg

    cfg, model, opts = _scheduled_cfg(RECURRENCE, extra_opts=True)
    live_in, _ = liveness(cfg)
    found = False
    for block in cfg:
        term = block.terminator
        if term is None or term.op != "BNE" or term.label != block.label:
            continue
        shape = match_loop(cfg, block.label,
                           live_in.get(block.fallthrough, set()))
        if isinstance(shape, str):
            continue
        deps = analyze_deps(shape.ops, opts.config, model)
        mem_carried = [e for e in deps.edges
                       if e.kind == "mem" and e.distance == 1]
        has_store_load_pair = any(
            deps.ops[e.src].is_store and deps.ops[e.dst].is_load
            for e in mem_carried)
        if has_store_load_pair:
            found = True
    assert found, "no loop-carried store->load edge found after CSE"
