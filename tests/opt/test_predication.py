"""Predication (CMOV if-conversion)."""

from repro.frontend import ast, frontend
from repro.harness.compile import Options, compile_source
from repro.machine import Simulator
from repro.opt.predication import predicable, predicate_program


def main_statements(source: str):
    program = frontend(source)
    predicate_program(program)
    return program.function("main").body.statements, program


def first_if(source: str) -> ast.If:
    program = frontend(source)
    for stmt in program.function("main").body.statements:
        if isinstance(stmt, ast.If):
            return stmt
    raise AssertionError("no if statement found")


class TestPattern:
    def test_simple_scalar_guarded_assign_is_predicable(self):
        stmt = first_if("""
func main() { var x : int; x = 1;
    if (x < 3) { x = 5; } }""")
        assert predicable(stmt)

    def test_array_target_is_predicable(self):
        stmt = first_if("""
array A[4] : float;
func main() { var i : int; i = 0;
    if (A[i] < 0.0) { A[i] = 0.0 - A[i]; } }""")
        assert predicable(stmt)

    def test_else_branch_blocks_predication(self):
        stmt = first_if("""
func main() { var x : int; x = 1;
    if (x < 3) { x = 5; } else { x = 6; } }""")
        assert not predicable(stmt)

    def test_multi_statement_body_blocks_predication(self):
        stmt = first_if("""
func main() { var x : int; var y : int; x = 1;
    if (x < 3) { x = 5; y = 6; } }""")
        assert not predicable(stmt)

    def test_division_in_value_blocks_predication(self):
        stmt = first_if("""
func main() { var x : float; var d : float; x = 1.0; d = 2.0;
    if (d > 0.5) { x = x / d; } }""")
        assert not predicable(stmt)

    def test_call_in_value_blocks_predication(self):
        stmt = first_if("""
func f(a: float) : float { return a; }
func main() { var x : float; x = 1.0;
    if (x < 3.0) { x = f(x); } }""")
        assert not predicable(stmt)


class TestConversion:
    def test_if_replaced_by_select_assignment(self):
        statements, _ = main_statements("""
func main() { var x : int; x = 1;
    if (x < 3) { x = 5; } }""")
        converted = statements[-1]
        assert isinstance(converted, ast.Assign)
        assert isinstance(converted.value, ast.Select)

    def test_conversion_count_reported(self):
        program = frontend("""
func main() { var x : int; var y : int; x = 1; y = 2;
    if (x < 3) { x = 5; }
    if (y < 3) { y = 7; } }""")
        assert predicate_program(program) == 2

    def test_lowered_code_contains_cmov_and_no_branch(self):
        source = """
array A[4] : float;
func main() {
    var i : int;
    for (i = 0; i < 4; i = i + 1) {
        if (A[i] < 1.0) { A[i] = A[i] + 1.0; }
    }
}
"""
        result = compile_source(source, Options(scheduler="none"))
        ops = [ins.op for ins in result.program.instructions]
        assert "FCMOVNE" in ops
        # Only the loop's own control flow remains: guard + latch.
        conditional = [op for op in ops if op in ("BEQ", "BNE")]
        assert len(conditional) == 2


class TestSemantics:
    def _run(self, source, predicate):
        result = compile_source(
            source, Options(scheduler="balanced", predicate=predicate))
        sim = Simulator(result.program)
        sim.run()
        return sim

    def test_taken_and_untaken_paths_match_branching_code(self):
        source = """
array A[8] : float;
array OUT[8] : float;
func main() {
    var i : int;
    for (i = 0; i < 8; i = i + 1) { A[i] = float(i) - 3.5; }
    for (i = 0; i < 8; i = i + 1) {
        if (A[i] < 0.0) { A[i] = 0.0 - A[i]; }
        OUT[i] = A[i];
    }
}
"""
        with_cmov = self._run(source, predicate=True)
        with_branches = self._run(source, predicate=False)
        assert with_cmov.get_symbol("OUT") == with_branches.get_symbol("OUT")

    def test_int_select(self):
        source = """
array OUT[8] : int;
func main() {
    var i : int; var m : int;
    for (i = 0; i < 8; i = i + 1) {
        m = i;
        if (i % 2 == 0) { m = 0 - i; }
        OUT[i] = m;
    }
}
"""
        with_cmov = self._run(source, predicate=True)
        assert with_cmov.get_symbol("OUT") == [0, 1, -2, 3, -4, 5, -6, 7]
