"""Run-manifest round-trip: sweep -> JSON -> dataclasses -> JSON."""

from __future__ import annotations

import json

from repro.harness import (ExperimentRunner, load_manifest,
                           parse_manifest)
from repro.obs import TracingObserver


def _sweep(tmp_path, **kwargs):
    runner = ExperimentRunner(cache_dir=tmp_path, **kwargs)
    runner.sweep(benchmarks=["ora"], schedulers=("balanced",),
                 configs=["base", "swp"])
    return runner


def test_manifest_loads_into_equal_dataclasses(tmp_path):
    runner = _sweep(tmp_path)
    manifest = load_manifest(runner.manifest_path)
    assert manifest.version == 6
    assert manifest.partial is False
    assert manifest.grid_points == 2
    assert manifest.executed == 2 and manifest.cached == 0
    assert manifest.fingerprint == runner._fingerprint
    assert len(manifest.runs) == 2

    for run in manifest.runs:
        key = (run.benchmark, run.scheduler, run.config)
        assert run.timing() == runner.timings[key]
        result = runner._memory[key]
        assert run.total_cycles == result.total_cycles
        assert run.load_interlock_cycles == \
            result.load_interlock_cycles
        assert run.instructions_per_second > 0

    # The executed swp point carries its full ModuloStats record.
    swp = manifest.run_for("ora", "balanced", "swp")
    assert swp is not None and swp.modulo is not None
    assert swp.modulo["attempted"] >= swp.modulo["pipelined"]
    assert manifest.modulo, "sweep-level modulo aggregates present"

    # v5: the folded metrics registry rides along (summary + snapshot).
    assert manifest.metrics is not None
    assert "repro_phase_seconds" in manifest.metrics["summary"]
    snapshot = manifest.metrics["snapshot"]
    assert "repro_sim_runs_total" in snapshot["families"]


def test_manifest_json_roundtrip_is_lossless(tmp_path):
    runner = _sweep(tmp_path)
    manifest = load_manifest(runner.manifest_path)
    rehydrated = parse_manifest(
        json.loads(json.dumps(manifest.to_json())))
    assert rehydrated == manifest


def test_cached_resweep_keeps_results(tmp_path):
    _sweep(tmp_path)
    runner = _sweep(tmp_path)     # second sweep: all from disk cache
    manifest = load_manifest(runner.manifest_path)
    assert manifest.executed == 0 and manifest.cached == 2
    assert all(run.cached for run in manifest.runs)
    # Cached entries still report cycles and modulo aggregates.
    assert all(run.total_cycles > 0 for run in manifest.runs)
    assert manifest.modulo
    rehydrated = parse_manifest(
        json.loads(json.dumps(manifest.to_json())))
    assert rehydrated == manifest


def test_traced_sweep_manifest_roundtrips(tmp_path):
    runner = _sweep(tmp_path, observer=TracingObserver())
    manifest = load_manifest(runner.manifest_path)
    assert manifest.trace is not None
    assert manifest.trace["trace"]["spans"] > 0
    assert manifest.trace["stalls"]
    assert manifest.trace["provenance"]["loads"] > 0
    rehydrated = parse_manifest(
        json.loads(json.dumps(manifest.to_json())))
    assert rehydrated == manifest
