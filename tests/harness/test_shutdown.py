"""Graceful sweep shutdown: SIGTERM/SIGINT and dead pool workers must
still produce a well-formed run manifest marked partial."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import BrokenExecutor

import pytest

from repro.harness import load_manifest
from repro.harness.experiment import (
    MANIFEST_NAME,
    ExperimentRunner,
    _execute_grid_point,
    _pool_run,
)

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

#: Grid point whose pool worker SIGKILLs itself (set via environment so
#: forked workers see it).
_KILL_ENV = "REPRO_TEST_KILL_BENCH"


def _pool_run_killing_self(benchmark, scheduler, config, cache_dir,
                           use_cache, fingerprint, machine_json=None):
    if benchmark == os.environ.get(_KILL_ENV):
        os.kill(os.getpid(), signal.SIGKILL)
    return _pool_run(benchmark, scheduler, config, cache_dir,
                     use_cache, fingerprint, machine_json)


class TestSerialInterrupt:
    def test_partial_manifest_then_reraise(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        calls = []

        def _interrupt_second(workload, scheduler, config, **kwargs):
            calls.append(config)
            if len(calls) >= 2:
                raise KeyboardInterrupt
            return _execute_grid_point(workload, scheduler, config,
                                       **kwargs)

        from repro.harness import experiment
        monkeypatch.setattr(experiment, "_execute_grid_point",
                            _interrupt_second)
        runner = ExperimentRunner(cache_dir=tmp_path)
        with pytest.raises(KeyboardInterrupt):
            runner.sweep(benchmarks=["ora"], schedulers=("balanced",),
                         configs=["base", "lu4"], jobs=1)
        manifest = load_manifest(tmp_path / MANIFEST_NAME)
        assert manifest.partial is True
        assert manifest.grid_points == 2
        assert len(manifest.runs) == 1
        assert manifest.runs[0].config == "base"
        assert manifest.runs[0].total_cycles > 0


class TestDeadWorker:
    def test_broken_pool_yields_partial_manifest(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv(_KILL_ENV, "alvinn")
        from repro.harness import experiment
        monkeypatch.setattr(experiment, "_pool_run",
                            _pool_run_killing_self)
        runner = ExperimentRunner(cache_dir=tmp_path)
        with pytest.raises(BrokenExecutor):
            runner.sweep(benchmarks=["ora", "alvinn"],
                         schedulers=("balanced",), configs=["base"],
                         jobs=2)
        manifest = load_manifest(tmp_path / MANIFEST_NAME)
        assert manifest.partial is True
        assert manifest.grid_points == 2
        assert all(run.benchmark != "alvinn" for run in manifest.runs)


class TestSigterm:
    def test_sigterm_mid_sweep_writes_partial_manifest(self, tmp_path):
        cache = tmp_path / "cache"
        script = (
            "import sys\n"
            "sys.path.insert(0, 'src')\n"
            "from repro.harness.experiment import ExperimentRunner\n"
            f"runner = ExperimentRunner(cache_dir={str(cache)!r}, "
            "jobs=2)\n"
            "runner.sweep()\n"
        )
        env = dict(os.environ)
        env.pop("REPRO_NO_CACHE", None)
        proc = subprocess.Popen([sys.executable, "-c", script],
                                cwd=REPO, env=env,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        try:
            # Wait for the first published entries, then interrupt.
            deadline = time.time() + 120
            while time.time() < deadline:
                entries = [p for p in cache.rglob("*.json")
                           if p.name != MANIFEST_NAME]
                if entries:
                    break
                if proc.poll() is not None:
                    pytest.fail("sweep exited before it could be "
                                "interrupted")
                time.sleep(0.05)
            else:
                pytest.fail("no cache entries appeared")
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode != 0     # interruption is still an error
        manifest_path = cache / MANIFEST_NAME
        assert manifest_path.exists(), "no manifest after SIGTERM"
        data = json.loads(manifest_path.read_text())   # well-formed
        assert data["partial"] is True
        manifest = load_manifest(manifest_path)
        assert len(manifest.runs) < manifest.grid_points
