"""Table generators, using a stub runner so no simulation happens."""

from dataclasses import replace

import pytest

from repro.harness.experiment import RunResult
from repro.harness.tables import (
    Table,
    format_table,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
    table10,
)


def _result(benchmark, scheduler, config, cycles, load_intlk,
            instructions=1000, **swp_fields):
    return RunResult(
        benchmark=benchmark, scheduler=scheduler, config=config,
        total_cycles=cycles, instructions=instructions,
        load_interlock_cycles=load_intlk, fixed_interlock_cycles=10,
        icache_stall_cycles=0, branch_stall_cycles=0, mshr_stall_cycles=0,
        spill_loads=0, spill_stores=0, loads=100, stores=50, branches=20,
        short_int=300, long_int=5, short_fp=400, long_fp=5,
        l1d_misses=10, l2_misses=5, l3_misses=1, branch_mispredicts=3,
        static_instructions=200, spill_slots=0, **swp_fields)


class StubRunner:
    """Deterministic fake results: balanced is faster, more so with
    more optimization; load interlocks shrink accordingly."""

    SPEED = {"base": 1.0, "lu4": 1.2, "lu8": 1.3, "trs4": 1.25,
             "trs8": 1.35, "la": 1.1, "la+lu4": 1.28, "la+lu8": 1.33,
             "la+trs4": 1.3, "la+trs8": 1.4,
             "swp": 1.15, "la+swp": 1.25}

    def run(self, benchmark, scheduler, config):
        base = 100_000
        factor = self.SPEED[config]
        if scheduler == "balanced":
            cycles = int(base / factor * 0.9)
            interlock = int(5000 / factor)
        else:
            cycles = int(base / (1 + (factor - 1) * 0.5))
            interlock = 15000
        instructions = int(80_000 / (1 + (factor - 1) * 0.6))
        swp_fields = {}
        if config.endswith("swp"):
            loops = [
                {"label": ".loop1", "pipelined": True, "reason": "",
                 "n_ops": 8, "res_mii": 8, "rec_mii": 4, "mii": 8,
                 "ii": 9, "stages": 2, "unroll": 2},
                {"label": ".loop2", "pipelined": False,
                 "reason": "no-overlap", "n_ops": 3, "res_mii": 3,
                 "rec_mii": 1, "mii": 3, "ii": 3, "stages": 1,
                 "unroll": 0},
            ]
            swp_fields = dict(swp_attempted=2, swp_pipelined=1,
                              swp_mean_ii_over_mii=9 / 8,
                              swp_max_ii_over_mii=9 / 8,
                              swp_loops=loops)
        return _result(benchmark, scheduler, config, cycles, interlock,
                       instructions, **swp_fields)


@pytest.fixture
def runner():
    return StubRunner()


BENCHES = ["ARC2D", "ora"]


def test_static_tables_render():
    for table in (table1(), table2(), table3()):
        text = table.format()
        assert f"Table {table.number}" in text
        assert len(text.splitlines()) > 4


def test_table1_lists_all_benchmarks():
    assert len(table1().rows) == 17


def test_table2_includes_memory_levels():
    text = table2().format()
    for level in ("L1D", "L2", "L3", "Memory", "D-TLB"):
        assert level in text


def test_table3_latencies_match_paper():
    text = table3().format()
    assert "integer multiply" in text and "8" in text
    assert "fp divide (double)" in text and "30" in text


def test_table4_speedups_and_average(runner):
    table = table4(runner, benchmarks=BENCHES)
    assert [row[0] for row in table.rows] == BENCHES + ["AVERAGE"]
    # Stub: LU4 speedup = 1.2 for balanced.
    assert table.rows[0][2] == "1.20"
    assert table.rows[-1][2] == "1.20"


def test_table5_bs_vs_ts(runner):
    table = table5(runner, benchmarks=BENCHES)
    row = table.rows[0]
    # BSvTS at base: 100000/90000 = 1.11
    assert row[1] == "1.11"
    # Load interlock reduction: 1 - 5000/15000 = 66.7%
    assert row[4] == "66.7%"


def test_table6_columns(runner):
    table = table6(runner, benchmarks=BENCHES)
    assert len(table.headers) == 10
    # Speedup over BS alone for la+trs8 = 1.4 / 1.0 scaled.
    idx = table.headers.index("LA+TRS8")
    assert table.rows[0][idx] == "1.40"  # 90000 / (90000 / 1.4)


def test_table7_has_paper_columns(runner):
    table = table7(runner, benchmarks=BENCHES)
    assert table.headers == ["Benchmark", "No LU", "LU 4", "LU 8",
                             "TrS + LU 4", "TrS + LU 8"]
    assert table.rows[-1][0] == "AVERAGE"


def test_table8_rows(runner):
    table = table8(runner, benchmarks=BENCHES)
    labels = [row[0] for row in table.rows]
    assert labels[0] == "No optimizations"
    assert "Loop unrolling by 8" in labels
    assert table.rows[0][3] == "n.a."     # program speedup n.a. at base


def test_table9_rows(runner):
    table = table9(runner, benchmarks=BENCHES)
    assert len(table.rows) == 5
    assert table.rows[0][1] == "n.a."
    # la+lu4 vs la: (1.28/1.1)
    assert table.rows[1][1] == "1.16"


def test_table10_swp_columns(runner):
    table = table10(runner, benchmarks=BENCHES)
    assert table.headers[0] == "Benchmark"
    assert "BS SWP" in table.headers
    row = table.rows[0]
    # Stub: swp speedup for balanced = 1.15 over base.
    assert row[1] == "1.15"
    assert row[4] == "1/2"            # loops pipelined / attempted
    assert row[5] == "1.12"           # max II/MII = 9/8
    assert table.rows[-1][0] == "AVERAGE"


def test_table_configs_cover_all_tables():
    from repro.harness.tables import ALL_TABLES, TABLE_CONFIGS

    assert set(TABLE_CONFIGS) == set(ALL_TABLES)
    assert "swp" in TABLE_CONFIGS[10]


def test_format_table_alignment():
    table = Table(0, "demo", ["a", "long header"],
                  rows=[["x", "1"], ["yy", "22"]])
    lines = format_table(table).splitlines()
    assert lines[2].startswith("a ")
    assert all(len(line) <= len(lines[2]) + 14 for line in lines[3:])
