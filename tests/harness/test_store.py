"""Sharded result store: layout, atomicity, orphan reaping, and
machine-config-aware cache keys."""

from __future__ import annotations

import dataclasses
import json
import os
import time

import pytest

from repro.harness.experiment import ExperimentRunner
from repro.harness.store import (
    ResultStore,
    StoreKey,
    atomic_write_json,
    source_hash,
)
from repro.machine import DEFAULT_CONFIG, config_hash


def _key(**overrides) -> StoreKey:
    base = dict(benchmark="ora", scheduler="balanced", config="base",
                fingerprint="f" * 16, source_hash="s" * 12,
                machine_hash="m" * 12)
    base.update(overrides)
    return StoreKey(**base)


class TestLayout:
    def test_entry_lives_under_two_hex_shard(self, tmp_path):
        store = ResultStore(tmp_path)
        key = _key()
        path = store.store(key, {"total_cycles": 1})
        assert path.parent.parent == tmp_path
        assert path.parent.name == key.shard
        assert len(key.shard) == 2
        assert int(key.shard, 16) >= 0

    def test_every_key_field_changes_the_path(self, tmp_path):
        store = ResultStore(tmp_path)
        base = _key()
        for field in dataclasses.fields(StoreKey):
            changed = _key(**{field.name: "x" * len(
                getattr(base, field.name))})
            assert store.path_for(changed) != store.path_for(base), \
                field.name

    def test_entries_enumerates_across_shards(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = [_key(benchmark=f"b{i}") for i in range(8)]
        for key in keys:
            store.store(key, {"n": 1})
        assert len(store.entries()) == len(keys)
        assert len(store.shards()) == len({k.shard for k in keys})


class TestIO:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        payload = {"total_cycles": 42, "nested": {"a": [1, 2]}}
        store.store(_key(), payload)
        assert store.load(_key()) == payload

    def test_missing_is_none(self, tmp_path):
        assert ResultStore(tmp_path).load(_key()) is None

    def test_corrupt_entry_unlinked(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.store(_key(), {"ok": True})
        path.write_text("{torn")
        assert store.load(_key()) is None
        assert not path.exists()

    def test_atomic_write_failure_leaves_nothing(self, tmp_path):
        target = tmp_path / "shard" / "entry.json"
        with pytest.raises(TypeError):
            atomic_write_json(target, {"bad": object()})
        assert not target.exists()
        assert not list(target.parent.glob("*.tmp"))


class TestReaping:
    def test_old_orphans_reaped_fresh_kept(self, tmp_path):
        store = ResultStore(tmp_path)
        entry = store.store(_key(), {"keep": True})
        shard = entry.parent
        old = shard / ".dead-writer.json.abc123.tmp"
        old.write_text("{half a wri")
        stale = time.time() - 3600
        os.utime(old, (stale, stale))
        fresh = shard / ".live-writer.json.def456.tmp"
        fresh.write_text("{in flight")

        reaped = store.reap_orphans()
        assert reaped == [old]
        assert not old.exists()
        assert fresh.exists()          # inside the grace window
        assert entry.exists()          # published entries untouched
        assert store.load(_key()) == {"keep": True}

    def test_missing_root_is_noop(self, tmp_path):
        assert ResultStore(tmp_path / "nope").reap_orphans() == []

    def test_runner_startup_reaps_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        shard = tmp_path / "ab"
        shard.mkdir(parents=True)
        orphan = shard / ".entry.json.xyz.tmp"
        orphan.write_text("{")
        stale = time.time() - 3600
        os.utime(orphan, (stale, stale))
        ExperimentRunner(cache_dir=tmp_path)
        assert not orphan.exists()


class TestMachineConfigKeys:
    def test_default_machine_hash_in_key(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        runner = ExperimentRunner(cache_dir=tmp_path)
        runner.run("ora", "balanced", "base")
        (entry,) = (p for p in tmp_path.rglob("*.json")
                    if p.name != "run-manifest.json")
        assert config_hash(DEFAULT_CONFIG) in entry.name

    def test_custom_machine_gets_its_own_entry(self, tmp_path,
                                               monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        wide = dataclasses.replace(DEFAULT_CONFIG, issue_width=2)
        default = ExperimentRunner(cache_dir=tmp_path)
        dual = ExperimentRunner(cache_dir=tmp_path, machine_config=wide)
        base = default.run("ora", "balanced", "base")
        wide_result = dual.run("ora", "balanced", "base")
        entries = [p for p in tmp_path.rglob("*.json")
                   if p.name != "run-manifest.json"]
        assert len(entries) == 2
        # Dual issue must not be served the single-issue result.
        assert wide_result.total_cycles < base.total_cycles

    def test_custom_machine_survives_parallel_sweep(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        wide = dataclasses.replace(DEFAULT_CONFIG, issue_width=2)
        parallel = ExperimentRunner(cache_dir=tmp_path / "par",
                                    machine_config=wide)
        serial = ExperimentRunner(cache_dir=tmp_path / "ser",
                                  machine_config=wide)
        got = parallel.sweep(benchmarks=["ora"],
                             schedulers=("balanced",),
                             configs=["base", "lu4"], jobs=2)
        expected = serial.sweep(benchmarks=["ora"],
                                schedulers=("balanced",),
                                configs=["base", "lu4"], jobs=1)
        assert got == expected


def test_source_hash_is_stable_and_short():
    assert source_hash("abc") == source_hash("abc")
    assert source_hash("abc") != source_hash("abd")
    assert len(source_hash("abc")) == 12
