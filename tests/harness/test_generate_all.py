"""generate_all: render every table in one pass."""

from repro.harness.tables import generate_all
from tests.harness.test_tables import StubRunner


def test_generate_all_contains_every_table():
    text = generate_all(StubRunner(), benchmarks=["ARC2D", "ora"])
    for number in range(1, 10):
        assert f"Table {number}:" in text


def test_generate_all_orders_tables():
    text = generate_all(StubRunner(), benchmarks=["ora"])
    positions = [text.index(f"Table {n}:") for n in range(1, 10)]
    assert positions == sorted(positions)
