"""Report generator against a stub runner."""

from repro.harness.report import HEADLINE_METRICS, build_report, write_report
from tests.harness.test_tables import StubRunner


def test_headline_metrics_cover_the_paper_claims():
    names = [m.name for m in HEADLINE_METRICS]
    assert any("no optimizations" in n for n in names)
    assert any("LU8" in n for n in names)
    assert any("locality" in n for n in names)
    assert any("load-interlock" in n for n in names)
    assert len(HEADLINE_METRICS) >= 10


def test_build_report_renders_markdown():
    text = build_report(StubRunner())
    assert text.startswith("# Reproduction report")
    assert "| Metric | Paper | Measured | Verdict |" in text
    # One row per metric plus header rows.
    assert text.count("| ") >= len(HEADLINE_METRICS)
    assert "headline" in text


def test_verdicts_are_close_or_deviates():
    text = build_report(StubRunner())
    for line in text.splitlines():
        if line.startswith("| BS"):
            assert "close" in line or "deviates" in line


def test_write_report(tmp_path):
    path = tmp_path / "report.md"
    text = write_report(path, StubRunner())
    assert path.read_text().strip() == text.strip()


def test_report_includes_swp_section():
    text = build_report(StubRunner())
    assert "## Software pipelining" in text
    # Stub loops all satisfy II <= 2*MII (ii=9, mii=8).
    assert "II <= 2*MII" in text
    assert "Geomean speedup of `swp`" in text


def test_configs_filter_drops_unselected_metrics():
    text = build_report(StubRunner(), configs=["base", "lu4"])
    assert "BS vs TS, LU4" in text
    assert "BS vs TS, LU8" not in text
    assert "## Software pipelining" not in text


def test_configs_filter_keeps_swp_section_when_selected():
    text = build_report(StubRunner(),
                        configs=["base", "lu4", "swp", "la+swp"])
    assert "## Software pipelining" in text


def test_swp_section_flags_contract_violations():
    from repro.harness.report import swp_section

    class BadRunner(StubRunner):
        def run(self, benchmark, scheduler, config):
            result = super().run(benchmark, scheduler, config)
            for loop in result.swp_loops:
                if loop["pipelined"]:
                    loop["ii"] = 3 * loop["mii"]
            return result

    lines = swp_section(BadRunner())
    assert any("contract broken" in line for line in lines)
