"""Report generator against a stub runner."""

from repro.harness.report import HEADLINE_METRICS, build_report, write_report
from tests.harness.test_tables import StubRunner


def test_headline_metrics_cover_the_paper_claims():
    names = [m.name for m in HEADLINE_METRICS]
    assert any("no optimizations" in n for n in names)
    assert any("LU8" in n for n in names)
    assert any("locality" in n for n in names)
    assert any("load-interlock" in n for n in names)
    assert len(HEADLINE_METRICS) >= 10


def test_build_report_renders_markdown():
    text = build_report(StubRunner())
    assert text.startswith("# Reproduction report")
    assert "| Metric | Paper | Measured | Verdict |" in text
    # One row per metric plus header rows.
    assert text.count("| ") >= len(HEADLINE_METRICS)
    assert "headline" in text


def test_verdicts_are_close_or_deviates():
    text = build_report(StubRunner())
    for line in text.splitlines():
        if line.startswith("| BS"):
            assert "close" in line or "deviates" in line


def test_write_report(tmp_path):
    path = tmp_path / "report.md"
    text = write_report(path, StubRunner())
    assert path.read_text().strip() == text.strip()


def test_report_includes_swp_section():
    text = build_report(StubRunner())
    assert "## Software pipelining" in text
    # Stub loops all satisfy II <= 2*MII (ii=9, mii=8).
    assert "II <= 2*MII" in text
    assert "Geomean speedup of `swp`" in text


def test_configs_filter_drops_unselected_metrics():
    text = build_report(StubRunner(), configs=["base", "lu4"])
    assert "BS vs TS, LU4" in text
    assert "BS vs TS, LU8" not in text
    assert "## Software pipelining" not in text


def test_configs_filter_keeps_swp_section_when_selected():
    text = build_report(StubRunner(),
                        configs=["base", "lu4", "swp", "la+swp"])
    assert "## Software pipelining" in text


def test_swp_section_flags_contract_violations():
    from repro.harness.report import swp_section

    class BadRunner(StubRunner):
        def run(self, benchmark, scheduler, config):
            result = super().run(benchmark, scheduler, config)
            for loop in result.swp_loops:
                if loop["pipelined"]:
                    loop["ii"] = 3 * loop["mii"]
            return result

    lines = swp_section(BadRunner())
    assert any("contract broken" in line for line in lines)


def _gap_payload(benchmark="ora", **over):
    summary = {
        "blocks": 6, "blocks_certified": 5, "blocks_bailed": 1,
        "gap": {"balanced": 1.05, "traditional": 1.4},
        "loops": 2, "loops_certified": 2, "loops_beyond_heuristic": 1,
    }
    payload = {
        "benchmark": benchmark, "config": "base", "schema": 1,
        "budget": "n1000", "validated": True, "summary": summary,
        "blocks": [],
        "loops": [{"label": ".loop1", "status": "optimal",
                   "optimal_ii": 14, "certified_lb": 14, "mii": 14,
                   "heuristic_ii": 15, "beyond_heuristic": True}],
    }
    payload.update(over)
    return payload


def test_every_geomean_line_carries_coverage():
    import re

    from repro.harness.report import gap_section

    text = build_report(StubRunner())
    text += "\n".join(gap_section([_gap_payload()]))
    geomeans = [line for line in text.splitlines()
                if "Geomean" in line]
    assert geomeans
    for line in geomeans:
        assert re.search(r"\(n=\d+/\d+\)", line), line


def test_gap_section_renders_table_and_proofs():
    from repro.harness.report import gap_section

    lines = gap_section([_gap_payload()])
    text = "\n".join(lines)
    assert "## Heuristic gap (scheduling oracle)" in text
    assert "| ora | 1.0500 | 1.4000 | 5/6 | 2/2 | 1 |" in text
    assert "Geomean gap, balanced vs oracle" in text
    assert "proven optimal II=14" in text


def test_gap_section_certified_lb_verdict():
    from repro.harness.report import gap_section

    payload = _gap_payload()
    payload["loops"][0].update(status="bailed", optimal_ii=0,
                               certified_lb=16)
    text = "\n".join(gap_section([payload]))
    assert "certified II lower bound 16" in text


def test_gap_section_without_payloads_points_at_flag():
    from repro.harness.report import gap_section

    assert any("--oracle" in line for line in gap_section([]))


def test_build_report_with_oracle_includes_gap_section():
    class StubOracle:
        def sweep(self, benchmarks=None, configs=None):
            return [_gap_payload()]

    text = build_report(StubRunner(), oracle=StubOracle())
    assert "## Heuristic gap (scheduling oracle)" in text
    assert "| ora | 1.0500" in text
