"""Report generator against a stub runner."""

from repro.harness.report import HEADLINE_METRICS, build_report, write_report
from tests.harness.test_tables import StubRunner


def test_headline_metrics_cover_the_paper_claims():
    names = [m.name for m in HEADLINE_METRICS]
    assert any("no optimizations" in n for n in names)
    assert any("LU8" in n for n in names)
    assert any("locality" in n for n in names)
    assert any("load-interlock" in n for n in names)
    assert len(HEADLINE_METRICS) >= 10


def test_build_report_renders_markdown():
    text = build_report(StubRunner())
    assert text.startswith("# Reproduction report")
    assert "| Metric | Paper | Measured | Verdict |" in text
    # One row per metric plus header rows.
    assert text.count("| ") >= len(HEADLINE_METRICS)
    assert "headline" in text


def test_verdicts_are_close_or_deviates():
    text = build_report(StubRunner())
    for line in text.splitlines():
        if line.startswith("| BS"):
            assert "close" in line or "deviates" in line


def test_write_report(tmp_path):
    path = tmp_path / "report.md"
    text = write_report(path, StubRunner())
    assert path.read_text().strip() == text.strip()
