"""Experiment runner: configs, caching, means."""

import pytest

from repro.harness.experiment import (
    CONFIGS,
    ExperimentRunner,
    RunResult,
    arithmetic_mean,
    geometric_mean,
    options_for,
)


def test_config_grid_matches_paper_axes():
    assert set(CONFIGS) == {
        "base", "lu4", "lu8", "trs4", "trs8",
        "la", "la+lu4", "la+lu8", "la+trs4", "la+trs8",
        "swp", "la+swp",
    }


def test_options_for_swp_configs():
    options = options_for("balanced", "swp")
    assert options.swp and not options.locality
    options = options_for("balanced", "la+swp")
    assert options.swp and options.locality


def test_options_for_builds_correct_knobs():
    options = options_for("traditional", "la+trs8")
    assert options.scheduler == "traditional"
    assert options.unroll == 8
    assert options.trace
    assert options.locality
    base = options_for("balanced", "base")
    assert base.unroll == 0 and not base.trace and not base.locality


def test_means():
    assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0
    assert arithmetic_mean([]) == 0.0
    assert abs(geometric_mean([1.0, 4.0]) - 2.0) < 1e-12
    assert geometric_mean([]) == 0.0


class TestGeometricMeanExtremes:
    """Log-domain regression: raw products overflow/underflow."""

    def test_no_overflow_on_large_magnitudes(self):
        # 400 cycle-count-sized values: the raw product is ~1e3200,
        # far beyond float range; the mean itself is ordinary.
        values = [1e8] * 400
        assert geometric_mean(values) == pytest.approx(1e8, rel=1e-9)

    def test_no_underflow_on_tiny_magnitudes(self):
        values = [1e-8] * 400
        result = geometric_mean(values)
        assert result == pytest.approx(1e-8, rel=1e-9)
        assert result > 0.0

    def test_mixed_extremes(self):
        assert geometric_mean([1e300, 1e-300]) == pytest.approx(1.0)

    def test_long_ratio_lists_stay_finite(self):
        import math
        values = [1.05] * 10_000
        result = geometric_mean(values)
        assert math.isfinite(result)
        assert result == pytest.approx(1.05)

    def test_non_positive_values_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0, 2.0])
        with pytest.raises(ValueError):
            geometric_mean([-1.0])


class TestRunnerCaching:
    def test_disk_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        runner = ExperimentRunner(cache_dir=tmp_path)
        first = runner.run("ora", "balanced", "base")
        assert isinstance(first, RunResult)
        cached_files = [f for f in tmp_path.rglob("*.json")
                        if f.name != "run-manifest.json"]
        assert len(cached_files) == 1
        # A fresh runner must reuse the file rather than re-simulating.
        runner2 = ExperimentRunner(cache_dir=tmp_path)
        second = runner2.run("ora", "balanced", "base")
        assert second == first

    def test_memory_cache_returns_same_object(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        a = runner.run("ora", "balanced", "base")
        b = runner.run("ora", "balanced", "base")
        assert a is b

    def test_no_cache_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        runner = ExperimentRunner(cache_dir=tmp_path)
        runner.run("ora", "balanced", "base")
        assert not list(tmp_path.rglob("*.json"))

    def test_corrupt_cache_entry_recomputed(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        runner = ExperimentRunner(cache_dir=tmp_path)
        result = runner.run("ora", "balanced", "base")
        (path,) = tmp_path.rglob("*.json")
        path.write_text("{not json")
        runner2 = ExperimentRunner(cache_dir=tmp_path)
        again = runner2.run("ora", "balanced", "base")
        assert again.total_cycles == result.total_cycles


def test_run_result_fields_sane(tmp_path):
    runner = ExperimentRunner(cache_dir=tmp_path)
    result = runner.run("ora", "balanced", "base")
    assert result.benchmark == "ora"
    assert result.total_cycles > result.instructions // 2
    assert result.loads >= result.spill_loads
    assert 0.0 <= result.load_interlock_fraction <= 1.0
    assert result.static_instructions > 0


def test_sweep_covers_requested_grid(tmp_path):
    runner = ExperimentRunner(cache_dir=tmp_path)
    results = runner.sweep(benchmarks=["ora"],
                           schedulers=("balanced",),
                           configs=["base", "lu4"])
    assert len(results) == 2
    assert {r.config for r in results} == {"base", "lu4"}
