"""Table generators against the real runner on two small benchmarks.

Complements test_tables.py (stub runner): here we validate that the
whole harness wiring — runner, cache, table math — holds together on
actual simulations of the two cheapest benchmarks.
"""

import pytest

from repro.harness import (
    ExperimentRunner,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
)

BENCHES = ["ora", "DYFESM"]


@pytest.fixture(scope="module")
def runner(tmp_path_factory):
    return ExperimentRunner(cache_dir=tmp_path_factory.mktemp("cache"))


def test_table4_live(runner):
    table = table4(runner, benchmarks=BENCHES)
    assert [row[0] for row in table.rows] == BENCHES + ["AVERAGE"]
    for row in table.rows[:-1]:
        assert float(row[2]) > 0.5      # a sane speedup

def test_table5_live(runner):
    table = table5(runner, benchmarks=BENCHES)
    ora = table.rows[0]
    assert ora[0] == "ora"
    assert abs(float(ora[1]) - 1.0) < 0.05


def test_table6_live(runner):
    table = table6(runner, benchmarks=BENCHES)
    assert len(table.rows) == len(BENCHES) + 1
    for cell in table.rows[0][1:]:
        assert float(cell) > 0.5


def test_table7_live(runner):
    table = table7(runner, benchmarks=BENCHES)
    assert len(table.rows[0]) == 6


def test_table8_live(runner):
    table = table8(runner, benchmarks=BENCHES)
    assert len(table.rows) == 5


def test_table9_live(runner):
    table = table9(runner, benchmarks=BENCHES)
    assert table.rows[0][1] == "n.a."
    for row in table.rows:
        assert float(row[2]) > 0.5
