"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main

SOURCE = """
array A[16] : float;
var n : int = 16;
func main() {
    var i : int;
    for (i = 0; i < n; i = i + 1) { A[i] = float(i) * 2.0; }
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "kernel.mf"
    path.write_text(SOURCE)
    return str(path)


def test_compile_prints_listing(source_file, capsys):
    assert main(["compile", source_file]) == 0
    out = capsys.readouterr().out
    assert "HALT" in out
    assert "FST" in out or "ST" in out


def test_compile_cfg_view(source_file, capsys):
    assert main(["compile", source_file, "--cfg"]) == 0
    out = capsys.readouterr().out
    assert "entry:" in out


def test_run_prints_metrics_and_symbols(source_file, capsys):
    assert main(["run", source_file, "--dump", "A"]) == 0
    out = capsys.readouterr().out
    assert "cycles" in out
    assert "A = [0.0, 2.0" in out


def test_run_with_flags(source_file, capsys):
    assert main(["run", source_file, "--scheduler", "traditional",
                 "--unroll", "4", "--issue-width", "2"]) == 0
    assert "cycles" in capsys.readouterr().out


def test_workloads_listing(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "tomcatv" in out and "ARC2D" in out


def test_tables_static(capsys):
    assert main(["tables", "3"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out and "integer multiply" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
