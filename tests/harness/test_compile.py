"""Compilation driver: options, pipeline composition, profiles."""

import pytest

from repro.harness.compile import (
    Options,
    compile_and_run,
    compile_source,
    make_weight_model,
    run_compiled,
)
from repro.sched import BalancedWeights, TraditionalWeights


def test_options_labels():
    assert Options().label() == "balanced"
    assert Options(scheduler="traditional", unroll=4).label() == \
        "traditional+lu4"
    assert Options(unroll=8, trace=True, locality=True).label() == \
        "balanced+la+lu8+trs"


def test_options_labels_cover_every_codegen_knob():
    # Every knob that changes generated code must show up, so cache
    # keys and manifests stay unambiguous across ablation runs.
    assert Options(swp=True).label() == "balanced+swp"
    assert Options(predicate=False).label() == "balanced+nopred"
    assert Options(extra_opts=True).label() == "balanced+xopts"
    assert Options(scheduler="traditional", locality=True, unroll=4,
                   swp=True, predicate=False, extra_opts=True).label() == \
        "traditional+la+lu4+swp+nopred+xopts"
    # Distinct option sets never collide on a label.
    labels = {Options(swp=swp, predicate=pred, extra_opts=xtr).label()
              for swp in (False, True) for pred in (False, True)
              for xtr in (False, True)}
    assert len(labels) == 8


def test_options_validation():
    with pytest.raises(ValueError):
        Options(scheduler="bogus").validate()
    with pytest.raises(ValueError):
        Options(unroll=3).validate()
    with pytest.raises(ValueError):
        Options(scheduler="none", swp=True).validate()


def test_weight_model_selection():
    assert isinstance(make_weight_model(Options(scheduler="balanced")),
                      BalancedWeights)
    assert isinstance(make_weight_model(Options(scheduler="traditional")),
                      TraditionalWeights)
    assert make_weight_model(Options(scheduler="none")) is None


def test_locality_flag_enables_selective_weights():
    model = make_weight_model(Options(scheduler="balanced", locality=True))
    assert model.use_locality
    model = make_weight_model(Options(scheduler="balanced"))
    assert not model.use_locality


def test_compile_and_run_roundtrip(stencil_source):
    result, metrics = compile_and_run(stencil_source, Options())
    assert metrics.instructions > 0
    assert metrics.total_cycles > metrics.instructions // 2


def test_trace_compilation_collects_profile(stencil_source):
    result = compile_source(stencil_source,
                            Options(scheduler="balanced", trace=True))
    assert result.profile is not None
    assert result.profile.block_counts
    assert result.trace_stats is not None


def test_profile_not_collected_without_trace(stencil_source):
    result = compile_source(stencil_source, Options(scheduler="balanced"))
    assert result.profile is None


def test_unroll_stats_reported(stencil_source):
    result = compile_source(stencil_source,
                            Options(scheduler="balanced", unroll=4))
    assert result.unroll_stats is not None
    assert result.unroll_stats.unrolled >= 1


def test_locality_stats_reported(stencil_source):
    result = compile_source(stencil_source,
                            Options(scheduler="balanced", locality=True))
    assert result.locality_stats is not None


def test_classic_opts_shrink_code(stencil_source):
    optimized = compile_source(stencil_source, Options())
    naive = compile_source(stencil_source, Options(classic_opts=False))
    assert optimized.static_instructions < naive.static_instructions


def test_run_compiled_respects_limit(stencil_source):
    from repro.machine import SimulationError
    result = compile_source(stencil_source, Options())
    with pytest.raises(SimulationError):
        run_compiled(result, max_instructions=10)
