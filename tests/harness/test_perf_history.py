"""Perf-trajectory records (BENCH_<n>.json) and the regression gate."""

from __future__ import annotations

import json

import pytest

from repro.harness import (ExperimentRunner, append_record,
                           check_history, format_history, load_history,
                           load_manifest, record_from_manifest)
from repro.harness.perf import BENCH_SCHEMA, git_sha


@pytest.fixture(scope="module")
def manifest(tmp_path_factory):
    runner = ExperimentRunner(
        cache_dir=tmp_path_factory.mktemp("cache"))
    runner.sweep(benchmarks=["ora"], schedulers=("balanced",),
                 configs=["base"])
    return load_manifest(runner.manifest_path)


# ------------------------------------------------------------- records
def test_record_from_manifest_shape(manifest):
    record = record_from_manifest(manifest, sha="cafebabe")
    assert record["schema"] == BENCH_SCHEMA
    assert record["git_sha"] == "cafebabe"
    assert record["grid_points"] == 1 and record["executed"] == 1
    assert record["cycles"]["ora/balanced/base"] > 0
    assert record["phase_seconds"]["simulate"] > 0
    # One engine ran; its IPS is the aggregate ratio.
    assert record["sim_ips"]
    for ips in record["sim_ips"].values():
        assert ips > 0
    json.dumps(record)      # must be plain JSON


def test_cached_points_carry_no_wall_signal(manifest):
    cached = json.loads(json.dumps(manifest.to_json()))
    for run in cached["runs"]:
        run["cached"] = True
    from repro.harness import parse_manifest
    record = record_from_manifest(parse_manifest(cached), sha="x")
    # Cycles persist (deterministic) but timings drop out.
    assert record["cycles"]
    assert record["phase_seconds"] == {}
    assert record["sim_ips"] == {}


def test_git_sha_resolves_in_repo_and_degrades(tmp_path):
    assert len(git_sha()) == 40
    assert git_sha(cwd=tmp_path) == "unknown"


# ------------------------------------------------------ append / load
def _record(cycles, ips=1e6, sha="aa"):
    return {"schema": BENCH_SCHEMA, "git_sha": sha,
            "grid_points": len(cycles), "executed": len(cycles),
            "cached": 0, "wall_seconds": 1.0, "phase_seconds": {},
            "sim_ips": {"fast": ips}, "cycles": dict(cycles)}


def test_append_assigns_consecutive_indices(tmp_path):
    assert append_record(tmp_path, _record({"a": 1})).name \
        == "BENCH_0.json"
    assert append_record(tmp_path, _record({"a": 1})).name \
        == "BENCH_1.json"
    records = load_history(tmp_path)
    assert [r["_index"] for r in records] == [0, 1]


def test_load_rejects_torn_and_future_records(tmp_path):
    (tmp_path / "BENCH_0.json").write_text("{not json")
    with pytest.raises(ValueError, match="unreadable"):
        load_history(tmp_path)
    (tmp_path / "BENCH_0.json").write_text(
        json.dumps({"schema": BENCH_SCHEMA + 1}))
    with pytest.raises(ValueError, match="newer"):
        load_history(tmp_path)
    (tmp_path / "BENCH_0.json").write_text("[]")
    with pytest.raises(ValueError, match="JSON object"):
        load_history(tmp_path)


# ---------------------------------------------------------------- gate
def _indexed(*records):
    return [dict(r, _index=i) for i, r in enumerate(records)]


def test_check_passes_vacuously_below_two_records():
    assert check_history([]).ok
    assert check_history(_indexed(_record({"a": 100}))).ok


def test_check_passes_on_identical_records():
    records = _indexed(_record({"a": 100, "b": 200}),
                       _record({"a": 100, "b": 200}))
    check = check_history(records)
    assert check.ok
    assert check.compared_cycles == 2
    assert check.compared_engines == 1


def test_check_flags_cycle_regression():
    records = _indexed(_record({"a": 100}), _record({"a": 200}))
    check = check_history(records)
    assert not check.ok
    assert "cycles a: 100 -> 200" in check.regressions[0]


def test_check_flags_ips_collapse_but_tolerates_noise():
    slow = check_history(_indexed(_record({"a": 1}, ips=1e6),
                                  _record({"a": 1}, ips=3e5)))
    assert not slow.ok and "sim-IPS" in slow.regressions[0]
    noisy = check_history(_indexed(_record({"a": 1}, ips=1e6),
                                   _record({"a": 1}, ips=5e5)))
    assert noisy.ok      # -50% is inside the lenient 60% gate


def test_check_compares_only_shared_keys():
    """Growing or shrinking the benchmark set never fabricates a
    regression: unshared cycle keys and engines are skipped."""
    records = _indexed(
        _record({"a": 100}),
        {**_record({"b": 999_999}), "sim_ips": {"compiled": 1.0}})
    check = check_history(records)
    assert check.ok
    assert check.compared_cycles == 0
    assert check.compared_engines == 0


def test_check_uses_newest_pair_only():
    records = _indexed(_record({"a": 400}), _record({"a": 100}),
                       _record({"a": 101}))
    check = check_history(records)
    assert check.ok and check.base_index == 1 and check.new_index == 2


def test_format_history_renders_rows():
    text = format_history(_indexed(_record({"a": 100}, sha="deadbeef")))
    assert "deadbeef" in text and "100" in text
    assert format_history([]) == "(no BENCH_*.json records)"


# ---------------------------------------------- committed seed record
def test_committed_seed_record_is_valid():
    """BENCH_0.json at the repo root must load and pass the gate —
    it is the baseline CI compares against."""
    from pathlib import Path
    root = Path(__file__).resolve().parents[2]
    records = load_history(root)
    assert records, "BENCH_0.json seed missing from repo root"
    seed = records[0]
    assert seed["schema"] == BENCH_SCHEMA
    assert seed["cycles"]
    assert check_history(records).ok
