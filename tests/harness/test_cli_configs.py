"""``--configs`` / ``REPRO_CONFIGS`` / ``--jobs`` CLI hygiene.

Bad inputs must exit non-zero with a one-line error, never a
traceback; the message must name the offending value."""

import argparse
import os

import pytest

from repro.__main__ import _resolve_configs, _resolve_jobs, main


def _args(configs):
    return argparse.Namespace(configs=configs)


def test_comma_and_space_separated_forms(monkeypatch):
    monkeypatch.delenv("REPRO_CONFIGS", raising=False)
    assert _resolve_configs(_args(["swp,la+swp"])) == ["swp", "la+swp"]
    assert _resolve_configs(_args(["base", "lu4"])) == ["base", "lu4"]
    assert _resolve_configs(_args(["base,lu4", "swp"])) == \
        ["base", "lu4", "swp"]


def test_duplicates_removed_in_order(monkeypatch):
    monkeypatch.delenv("REPRO_CONFIGS", raising=False)
    assert _resolve_configs(_args(["swp,base,swp"])) == ["swp", "base"]


def test_env_fallback(monkeypatch):
    monkeypatch.setenv("REPRO_CONFIGS", "swp,base")
    assert _resolve_configs(_args(None)) == ["swp", "base"]


def test_flag_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_CONFIGS", "base")
    assert _resolve_configs(_args(["swp"])) == ["swp"]


def test_unset_means_no_filter(monkeypatch):
    monkeypatch.delenv("REPRO_CONFIGS", raising=False)
    assert _resolve_configs(_args(None)) is None


def test_unknown_config_rejected(monkeypatch):
    monkeypatch.delenv("REPRO_CONFIGS", raising=False)
    with pytest.raises(SystemExit, match="unknown config"):
        _resolve_configs(_args(["bogus"]))


def test_bench_runs_selected_config(monkeypatch, capsys, tmp_path):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.delenv("REPRO_CONFIGS", raising=False)
    assert main(["bench", "ora", "--configs", "swp"]) == 0
    out = capsys.readouterr().out
    assert "swp" in out
    assert "lu4" not in out


def test_tables_skips_uncovered_tables(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.delenv("REPRO_CONFIGS", raising=False)
    # Only static tables are covered by an empty-ish selection.
    assert main(["tables", "1", "4", "--configs", "base"]) == 0
    captured = capsys.readouterr()
    assert "Table 1" in captured.out
    assert "Table 4" not in captured.out
    assert "skipping table(s) [4]" in captured.err


def test_resolve_jobs_values(monkeypatch):
    assert _resolve_jobs("4") == 4
    assert _resolve_jobs(2) == 2
    assert _resolve_jobs(0) == (os.cpu_count() or 1)


@pytest.mark.parametrize("bad", ["abc", "1.5", "", None])
def test_resolve_jobs_rejects_non_integers(bad):
    with pytest.raises(SystemExit) as excinfo:
        _resolve_jobs(bad)
    message = str(excinfo.value.code)
    assert "invalid --jobs/REPRO_JOBS" in message
    assert repr(bad) in message
    assert "\n" not in message


def test_resolve_jobs_rejects_negative():
    with pytest.raises(SystemExit, match="must be >= 0"):
        _resolve_jobs(-2)


def test_bench_bad_jobs_flag_exits_with_one_liner(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    with pytest.raises(SystemExit) as excinfo:
        main(["bench", "ora", "--configs", "base", "--jobs", "abc"])
    assert "invalid --jobs/REPRO_JOBS value 'abc'" in \
        str(excinfo.value.code)


def test_bench_bad_jobs_env_exits_with_one_liner(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "lots")
    with pytest.raises(SystemExit) as excinfo:
        main(["bench", "ora", "--configs", "base"])
    assert "invalid --jobs/REPRO_JOBS value 'lots'" in \
        str(excinfo.value.code)


def test_bad_configs_flag_exits_with_one_liner(monkeypatch):
    monkeypatch.delenv("REPRO_CONFIGS", raising=False)
    with pytest.raises(SystemExit) as excinfo:
        main(["bench", "ora", "--configs", "nope"])
    message = str(excinfo.value.code)
    assert "unknown config(s): nope" in message
    assert "\n" not in message


def test_bad_configs_env_exits_with_one_liner(monkeypatch):
    monkeypatch.setenv("REPRO_CONFIGS", "bogus,base")
    with pytest.raises(SystemExit, match="unknown config"):
        main(["bench", "ora"])


def test_bad_sim_env_exits_with_one_liner(monkeypatch):
    monkeypatch.setenv("REPRO_SIM", "turbo")
    with pytest.raises(SystemExit) as excinfo:
        main(["bench", "ora", "--configs", "base"])
    message = str(excinfo.value.code)
    assert "invalid REPRO_SIM value 'turbo'" in message
    assert "\n" not in message


def test_sim_flag_overrides_bad_env(monkeypatch, tmp_path):
    # --sim auto clears a stale REPRO_SIM instead of tripping on it.
    monkeypatch.setenv("REPRO_SIM", "turbo")
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    assert main(["bench", "ora", "--configs", "base",
                 "--sim", "auto"]) == 0
    assert "REPRO_SIM" not in os.environ


def test_profile_unknown_benchmark_exits_with_one_liner():
    with pytest.raises(SystemExit) as excinfo:
        main(["profile", "not-a-benchmark"])
    message = str(excinfo.value.code)
    assert "unknown benchmark 'not-a-benchmark'" in message


def test_obs_diff_missing_file_exits_with_one_liner(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main(["obs-diff", str(tmp_path / "a.json"),
              str(tmp_path / "b.json")])
    assert str(excinfo.value.code).startswith("repro obs-diff:")


def test_obs_diff_bad_json_exits_with_one_liner(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(SystemExit) as excinfo:
        main(["obs-diff", str(bad), str(bad)])
    assert str(excinfo.value.code).startswith("repro obs-diff:")


def test_bench_record_without_cache_exits_with_one_liner(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.delenv("REPRO_CONFIGS", raising=False)
    with pytest.raises(SystemExit) as excinfo:
        main(["bench", "ora", "--configs", "base", "--record"])
    message = str(excinfo.value.code)
    assert "needs the run manifest" in message
    assert "REPRO_NO_CACHE" in message
    assert "\n" not in message


def test_bench_record_target_must_be_directory(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CONFIGS", raising=False)
    clobber = tmp_path / "a-file"
    clobber.write_text("")
    with pytest.raises(SystemExit) as excinfo:
        main(["bench", "ora", "--configs", "base",
              "--record", str(clobber)])
    assert "is not a directory" in str(excinfo.value.code)


def test_bench_record_then_history_check_roundtrip(
        monkeypatch, tmp_path, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CONFIGS", raising=False)
    records = tmp_path / "perf"
    argv = ["bench", "ora", "--configs", "base",
            "--record", str(records)]
    assert main(argv) == 0
    assert main(argv) == 0          # second record: identical sweep
    assert (records / "BENCH_1.json").exists()
    assert main(["perf-history", str(records), "--check"]) == 0
    captured = capsys.readouterr()
    assert "BENCH_0 -> BENCH_1" in captured.err
    # The gate actually bites: double every cycle count in a third
    # record and --check must exit non-zero with REGRESSION lines.
    import json as _json
    slow = _json.loads((records / "BENCH_1.json").read_text())
    slow["cycles"] = {point: cycles * 2
                      for point, cycles in slow["cycles"].items()}
    (records / "BENCH_2.json").write_text(_json.dumps(slow))
    assert main(["perf-history", str(records), "--check"]) == 1
    assert "REGRESSION: cycles" in capsys.readouterr().err


def test_perf_history_bad_inputs_exit_with_one_liner(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main(["perf-history", str(tmp_path / "nope")])
    assert "no such directory" in str(excinfo.value.code)

    with pytest.raises(SystemExit) as excinfo:
        main(["perf-history", str(tmp_path),
              "--cycle-threshold", "-1"])
    assert "thresholds must be >= 0" in str(excinfo.value.code)

    with pytest.raises(SystemExit) as excinfo:
        main(["perf-history", str(tmp_path)])
    assert "no BENCH_*.json records" in str(excinfo.value.code)

    (tmp_path / "BENCH_0.json").write_text("{torn")
    with pytest.raises(SystemExit) as excinfo:
        main(["perf-history", str(tmp_path)])
    message = str(excinfo.value.code)
    assert "unreadable record" in message
    assert "\n" not in message


def test_serve_metrics_bad_inputs_exit_with_one_liner(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main(["serve-metrics", "--timeout", "0"])
    assert "--timeout must be > 0" in str(excinfo.value.code)

    with pytest.raises(SystemExit) as excinfo:
        main(["serve-metrics", "--socket",
              str(tmp_path / "no-daemon.sock"), "--timeout", "2"])
    message = str(excinfo.value.code)
    assert message.startswith("repro serve-metrics: cannot reach")
    assert "\n" not in message


def test_compile_swp_flag(tmp_path, capsys):
    source = """
array A[64] : float;
func main() {
    var i : int;
    for (i = 0; i < 64; i = i + 1) { A[i] = float(i) * 2.0; }
}
"""
    path = tmp_path / "k.mf"
    path.write_text(source)
    assert main(["compile", str(path), "--swp"]) == 0
    out = capsys.readouterr().out
    assert "HALT" in out
