"""``--configs`` / ``REPRO_CONFIGS`` filtering on the CLI."""

import argparse

import pytest

from repro.__main__ import _resolve_configs, main


def _args(configs):
    return argparse.Namespace(configs=configs)


def test_comma_and_space_separated_forms(monkeypatch):
    monkeypatch.delenv("REPRO_CONFIGS", raising=False)
    assert _resolve_configs(_args(["swp,la+swp"])) == ["swp", "la+swp"]
    assert _resolve_configs(_args(["base", "lu4"])) == ["base", "lu4"]
    assert _resolve_configs(_args(["base,lu4", "swp"])) == \
        ["base", "lu4", "swp"]


def test_duplicates_removed_in_order(monkeypatch):
    monkeypatch.delenv("REPRO_CONFIGS", raising=False)
    assert _resolve_configs(_args(["swp,base,swp"])) == ["swp", "base"]


def test_env_fallback(monkeypatch):
    monkeypatch.setenv("REPRO_CONFIGS", "swp,base")
    assert _resolve_configs(_args(None)) == ["swp", "base"]


def test_flag_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_CONFIGS", "base")
    assert _resolve_configs(_args(["swp"])) == ["swp"]


def test_unset_means_no_filter(monkeypatch):
    monkeypatch.delenv("REPRO_CONFIGS", raising=False)
    assert _resolve_configs(_args(None)) is None


def test_unknown_config_rejected(monkeypatch):
    monkeypatch.delenv("REPRO_CONFIGS", raising=False)
    with pytest.raises(SystemExit, match="unknown config"):
        _resolve_configs(_args(["bogus"]))


def test_bench_runs_selected_config(monkeypatch, capsys, tmp_path):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.delenv("REPRO_CONFIGS", raising=False)
    assert main(["bench", "ora", "--configs", "swp"]) == 0
    out = capsys.readouterr().out
    assert "swp" in out
    assert "lu4" not in out


def test_tables_skips_uncovered_tables(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.delenv("REPRO_CONFIGS", raising=False)
    # Only static tables are covered by an empty-ish selection.
    assert main(["tables", "1", "4", "--configs", "base"]) == 0
    captured = capsys.readouterr()
    assert "Table 1" in captured.out
    assert "Table 4" not in captured.out
    assert "skipping table(s) [4]" in captured.err


def test_compile_swp_flag(tmp_path, capsys):
    source = """
array A[64] : float;
func main() {
    var i : int;
    for (i = 0; i < 64; i = i + 1) { A[i] = float(i) * 2.0; }
}
"""
    path = tmp_path / "k.mf"
    path.write_text(source)
    assert main(["compile", str(path), "--swp"]) == 0
    out = capsys.readouterr().out
    assert "HALT" in out
