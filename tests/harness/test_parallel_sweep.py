"""Parallel sweep: process-pool fan-out equals the serial path, in
deterministic grid order, and the run manifest records observability."""

from __future__ import annotations

import json

import pytest

from repro.harness.experiment import (
    ExperimentRunner,
    MANIFEST_NAME,
    RunTiming,
)

GRID = dict(benchmarks=["ora", "alvinn"], schedulers=("balanced",),
            configs=["base", "lu4"])


@pytest.fixture(autouse=True)
def _cache_on(monkeypatch):
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)


def test_parallel_equals_serial(tmp_path):
    serial = ExperimentRunner(cache_dir=tmp_path / "serial")
    parallel = ExperimentRunner(cache_dir=tmp_path / "parallel", jobs=4)
    expected = serial.sweep(**GRID)
    got = parallel.sweep(**GRID)
    assert got == expected
    # Identical order too: benchmark-major, then scheduler, then config.
    keys = [(r.benchmark, r.scheduler, r.config) for r in got]
    assert keys == [(b, s, c) for b in GRID["benchmarks"]
                    for s in GRID["schedulers"] for c in GRID["configs"]]


def test_parallel_sweep_jobs_argument_overrides(tmp_path):
    runner = ExperimentRunner(cache_dir=tmp_path)
    results = runner.sweep(benchmarks=["ora"], schedulers=("balanced",),
                           configs=["base", "lu4"], jobs=2)
    assert len(results) == 2
    assert all(r.benchmark == "ora" for r in results)


def test_parallel_sweep_populates_memory_cache(tmp_path):
    runner = ExperimentRunner(cache_dir=tmp_path, jobs=2)
    (first, second) = runner.sweep(benchmarks=["ora"],
                                   schedulers=("balanced",),
                                   configs=["base", "lu4"])
    # run() after a parallel sweep is a pure memory hit.
    assert runner.run("ora", "balanced", "base") is first
    assert runner.run("ora", "balanced", "lu4") is second


def test_second_sweep_hits_disk_cache(tmp_path):
    ExperimentRunner(cache_dir=tmp_path, jobs=2).sweep(**GRID)
    rerun = ExperimentRunner(cache_dir=tmp_path)
    results = rerun.sweep(**GRID)
    assert all(rerun.timings[(r.benchmark, r.scheduler, r.config)].cached
               for r in results)


def test_manifest_records_phases_and_throughput(tmp_path):
    runner = ExperimentRunner(cache_dir=tmp_path, jobs=2)
    runner.sweep(benchmarks=["ora"], schedulers=("balanced",),
                 configs=["base", "lu4"])
    manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
    assert manifest["fingerprint"] == runner._fingerprint
    assert manifest["grid_points"] == 2
    assert manifest["executed"] == 2 and manifest["cached"] == 0
    assert manifest["wall_seconds"] > 0
    for entry in manifest["runs"]:
        assert {"compile", "schedule", "regalloc", "simulate"} <= \
            set(entry["phase_seconds"]) <= {
                "compile", "schedule", "regalloc", "simulate",
                "sim_codegen"}
        assert all(value >= 0 for value in entry["phase_seconds"].values())
        assert entry["instructions_per_second"] > 0
        assert entry["simulated_instructions"] > 0
        assert entry["total_cycles"] > 0
        assert entry["sim_mode"] in ("fast", "reference")


def test_manifest_marks_cached_points(tmp_path):
    grid = dict(benchmarks=["ora"], schedulers=("balanced",),
                configs=["base"])
    ExperimentRunner(cache_dir=tmp_path).sweep(**grid)
    ExperimentRunner(cache_dir=tmp_path).sweep(**grid)
    manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
    assert manifest["executed"] == 0 and manifest["cached"] == 1
    assert manifest["runs"][0]["cached"] is True


def test_no_cache_env_skips_disk_and_manifest(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    runner = ExperimentRunner(cache_dir=tmp_path, jobs=2)
    results = runner.sweep(benchmarks=["ora"], schedulers=("balanced",),
                           configs=["base", "lu4"])
    assert len(results) == 2
    assert not tmp_path.exists() or not list(tmp_path.iterdir())


def test_run_timing_instructions_per_second():
    timing = RunTiming(benchmark="ora", scheduler="balanced",
                       config="base", cached=False,
                       phase_seconds={"simulate": 2.0},
                       simulated_instructions=1000)
    assert timing.instructions_per_second == 500.0
    assert RunTiming(benchmark="ora", scheduler="balanced",
                     config="base", cached=True).instructions_per_second \
        == 0.0
