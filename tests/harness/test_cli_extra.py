"""CLI: bench and dump paths that need real (small) runs."""

import json

import pytest

from repro.__main__ import main
from repro.harness.experiment import MANIFEST_NAME


def test_bench_subset(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["bench", "ora", "--configs", "base"]) == 0
    out = capsys.readouterr().out
    assert "ora" in out
    assert "balanced" in out and "traditional" in out
    # Two data rows (one per scheduler); "running" progress lines also
    # mention the benchmark name, so filter to table rows.
    data_rows = [line for line in out.splitlines()
                 if line.startswith("ora")]
    assert len(data_rows) == 2


def test_bench_jobs_flag_parallel(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["bench", "ora", "--configs", "base", "lu4",
                 "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    data_rows = [line for line in out.splitlines()
                 if line.startswith("ora")]
    assert len(data_rows) == 4          # 2 configs x 2 schedulers
    manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
    assert manifest["jobs"] == 2
    assert manifest["grid_points"] == 4


def test_bench_jobs_env_default(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_JOBS", "2")
    assert main(["bench", "ora", "--configs", "base"]) == 0
    out = capsys.readouterr().out
    assert len([l for l in out.splitlines() if l.startswith("ora")]) == 2


def test_compile_with_all_flags(tmp_path, capsys):
    path = tmp_path / "k.mf"
    path.write_text("""
array A[32] : float;
var n : int = 32;
func main() {
    var i : int;
    for (i = 0; i < n; i = i + 1) { A[i] = float(i) * 0.5; }
}
""")
    assert main(["compile", str(path), "--unroll", "4", "--locality",
                 "--trace", "--scheduler", "traditional"]) == 0
    out = capsys.readouterr().out
    assert "HALT" in out


def test_run_reports_dual_issue_difference(tmp_path, capsys):
    path = tmp_path / "k.mf"
    path.write_text("""
array A[64] : float;
var n : int = 64;
func main() {
    var i : int;
    for (i = 0; i < n; i = i + 1) { A[i] = float(i) + float(i * 2); }
}
""")
    assert main(["run", str(path)]) == 0
    narrow = capsys.readouterr().out
    assert main(["run", str(path), "--issue-width", "2"]) == 0
    wide = capsys.readouterr().out

    def cycles(text):
        for line in text.splitlines():
            if line.startswith("cycles"):
                return int(line.split()[-1])
        raise AssertionError(text)

    assert cycles(wide) < cycles(narrow)
