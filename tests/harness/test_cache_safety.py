"""Regression tests: cache atomicity, fingerprint path-sensitivity,
and RunResult round-trips (the concurrency-safety bugfixes)."""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.harness.experiment import (
    ExperimentRunner,
    RunResult,
    _atomic_write_json,
    _package_fingerprint,
)


@pytest.fixture()
def runner(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    return ExperimentRunner(cache_dir=tmp_path / "cache")


class TestAtomicStore:
    def test_store_leaves_no_temp_files(self, runner):
        result = runner.run("ora", "balanced", "base")
        files = sorted(p for p in runner.cache_dir.rglob("*")
                       if p.is_file())
        assert len(files) == 1
        assert files[0].name.endswith(".json")
        # Entries are sharded: <cache>/<2-hex-digits>/<entry>.json.
        assert files[0].parent.parent == runner.cache_dir
        assert len(files[0].parent.name) == 2
        assert not [p for p in files if p.name.endswith(".tmp")]
        data = json.loads(files[0].read_text())
        assert data["total_cycles"] == result.total_cycles

    def test_atomic_write_replaces_existing(self, tmp_path):
        target = tmp_path / "entry.json"
        target.write_text(json.dumps({"old": True}))
        _atomic_write_json(target, {"old": False, "n": 3})
        assert json.loads(target.read_text()) == {"old": False, "n": 3}
        assert list(tmp_path.iterdir()) == [target]

    def test_atomic_write_failure_cleans_temp(self, tmp_path):
        target = tmp_path / "entry.json"
        with pytest.raises(TypeError):
            _atomic_write_json(target, {"bad": object()})
        assert list(tmp_path.iterdir()) == []


class TestTornCacheFile:
    def test_truncated_entry_recomputed_not_crashed(self, runner):
        result = runner.run("ora", "balanced", "base")
        (path,) = runner.cache_dir.rglob("ora-*.json")
        full = path.read_text()
        # A torn write: only the first half of the JSON made it out.
        path.write_text(full[:len(full) // 2])
        fresh = ExperimentRunner(cache_dir=runner.cache_dir)
        again = fresh.run("ora", "balanced", "base")
        assert again == result

    def test_truncated_entry_is_refreshed_on_disk(self, runner):
        runner.run("ora", "balanced", "base")
        (path,) = runner.cache_dir.rglob("ora-*.json")
        path.write_text("{\"benchmark\": \"ora\", ")
        fresh = ExperimentRunner(cache_dir=runner.cache_dir)
        fresh.run("ora", "balanced", "base")
        # The torn entry was replaced by a complete one.
        data = json.loads(path.read_text())
        assert data["benchmark"] == "ora"
        assert data["total_cycles"] > 0


class TestCacheRoundTrip:
    def test_store_load_reproduces_every_field(self, runner):
        stored = runner.run("ora", "balanced", "base")
        fresh = ExperimentRunner(cache_dir=runner.cache_dir)
        loaded = fresh.run("ora", "balanced", "base")
        assert loaded is not stored
        for field in dataclasses.fields(RunResult):
            assert getattr(loaded, field.name) == \
                getattr(stored, field.name), field.name
        assert loaded == stored


class TestPackageFingerprint:
    def _tree(self, tmp_path: Path, files: dict[str, str]) -> Path:
        root = tmp_path / "pkg"
        if root.exists():
            for path in root.rglob("*.py"):
                path.unlink()
        for name, body in files.items():
            path = root / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(body)
        return root

    def test_stable_for_identical_tree(self, tmp_path):
        root = self._tree(tmp_path, {"a.py": "x = 1\n", "b.py": "y = 2\n"})
        assert _package_fingerprint(root) == _package_fingerprint(root)

    def test_rename_changes_fingerprint(self, tmp_path):
        before = _package_fingerprint(
            self._tree(tmp_path, {"a.py": "x = 1\n"}))
        after = _package_fingerprint(
            self._tree(tmp_path, {"renamed.py": "x = 1\n"}))
        assert before != after

    def test_moving_code_between_files_changes_fingerprint(self, tmp_path):
        # Same concatenated bytes in sorted order, different split.
        before = _package_fingerprint(self._tree(
            tmp_path, {"a.py": "x = 1\ny = 2\n", "b.py": ""}))
        after = _package_fingerprint(self._tree(
            tmp_path, {"a.py": "x = 1\n", "b.py": "y = 2\n"}))
        assert before != after

    def test_content_change_changes_fingerprint(self, tmp_path):
        before = _package_fingerprint(
            self._tree(tmp_path, {"a.py": "x = 1\n"}))
        after = _package_fingerprint(
            self._tree(tmp_path, {"a.py": "x = 2\n"}))
        assert before != after
