"""The ``repro check`` command and the ``--validate-ir`` flag."""

import io

import pytest

from repro.__main__ import main
from repro.check.cli import check_program, run_check
from repro.harness.compile import Options


def test_run_check_clean_benchmarks_exit_zero(capsys):
    status = run_check(names=["ora"], configs=["base"])
    out = capsys.readouterr().out
    assert status == 0
    assert "checked 1 compile(s): 0 error(s)" in out


def test_run_check_multiple_configs(capsys):
    status = run_check(names=["ora"], configs=["base", "lu4"])
    out = capsys.readouterr().out
    assert status == 0
    assert "checked 2 compile(s)" in out


def test_run_check_reports_notes(capsys):
    # tomcatv has write-only result arrays: note-severity lints.
    status = run_check(names=["tomcatv"], configs=["base"])
    out = capsys.readouterr().out
    assert status == 0
    assert "store-never-loaded" in out


def test_run_check_no_lint_suppresses_notes(capsys):
    status = run_check(names=["tomcatv"], configs=["base"], lint=False)
    out = capsys.readouterr().out
    assert status == 0
    assert "store-never-loaded" not in out


def test_run_check_rejects_unknown_names():
    with pytest.raises(SystemExit):
        run_check(names=["nope"])
    with pytest.raises(SystemExit):
        run_check(names=["ora"], configs=["nope"])


def test_run_check_exit_nonzero_iff_error(monkeypatch, capsys):
    # Seed a scheduler bug: every checked compile now carries
    # error-severity diagnostics, so the exit status must flip to 1.
    import repro.harness.compile as hc

    real = hc.schedule_cfg

    def dropper(cfg, model, observer=None, **kw):
        real(cfg, model)
        block = next(b for b in cfg if len(b.body) > 1)
        del block.instrs[0]

    monkeypatch.setattr(hc, "schedule_cfg", dropper)
    status = run_check(names=["ora"], configs=["base"])
    out = capsys.readouterr().out
    assert status == 1
    assert "error: schedule-permutation:" in out


def test_check_program_returns_sorted_diagnostics():
    source = """array OUT[8] : int;
func main() {
    var unused : int;
    var i : int;
    for (i = 0; i < 8; i = i + 1) { OUT[i] = i; }
}
"""
    diags = check_program(source, Options(), "t")
    assert any(d.rule == "unused-variable" for d in diags)
    assert all(not d.is_error for d in diags)


def test_cli_check_command(capsys):
    status = main(["check", "ora", "--configs", "base"])
    out = capsys.readouterr().out
    assert status == 0
    assert "checked 1 compile(s)" in out


def test_cli_check_honours_no_lint(capsys):
    status = main(["check", "tomcatv", "--no-lint",
                   "--configs", "base"])
    out = capsys.readouterr().out
    assert status == 0
    assert "note:" not in out


def test_validate_ir_flag_sets_environment(monkeypatch):
    monkeypatch.delenv("REPRO_VALIDATE_IR", raising=False)
    import os

    from repro.__main__ import _apply_validate_flag

    class Args:
        validate_ir = True

    _apply_validate_flag(Args())
    assert os.environ.get("REPRO_VALIDATE_IR") == "1"
