"""Register interning and virtual register allocation."""

import pytest

from repro.isa import FZERO, SP, ZERO, Reg, VirtualRegAllocator, freg, ireg


def test_registers_are_interned():
    assert ireg(5) is ireg(5)
    assert freg(7) is freg(7)
    assert Reg("i", 3, True) is Reg("i", 3, True)


def test_distinct_kinds_are_distinct_objects():
    assert ireg(5) is not freg(5)
    assert Reg("i", 5) is not Reg("i", 5, virtual=True)


def test_zero_registers():
    assert ZERO.is_zero
    assert FZERO.is_zero
    assert FZERO.is_fp
    assert not ireg(0).is_zero
    assert not Reg("i", 31, virtual=True).is_zero  # virtual r31 is ordinary


def test_stack_pointer_is_r30():
    assert SP.num == 30
    assert SP.kind == "i"
    assert not SP.virtual


def test_invalid_registers_rejected():
    with pytest.raises(ValueError):
        Reg("x", 0)
    with pytest.raises(ValueError):
        Reg("i", -1)


def test_repr_distinguishes_virtual_and_physical():
    assert repr(ireg(4)) == "r4"
    assert repr(freg(4)) == "f4"
    assert repr(Reg("i", 4, True)) == "vi4"
    assert repr(Reg("f", 4, True)) == "vf4"


def test_allocator_hands_out_fresh_registers():
    allocator = VirtualRegAllocator()
    a = allocator.new_int()
    b = allocator.new_fp()
    c = allocator.new_int()
    assert a.virtual and b.virtual and c.virtual
    assert a is not c
    assert a.kind == "i" and b.kind == "f"
    assert allocator.count == 3


def test_reduce_roundtrip_preserves_identity():
    import pickle

    reg = Reg("f", 12, True)
    assert pickle.loads(pickle.dumps(reg)) is reg
