"""MachineProgram assembly, labels and listing."""

import pytest

from repro.isa import DataSymbol, Instruction, OpClass, Reg, assemble


def v(i):
    return Reg("i", i, virtual=True)


def _chunks():
    return [
        ("entry", [Instruction("LDI", dest=v(0), imm=1),
                   Instruction("BR", label="end")]),
        ("end", [Instruction("HALT")]),
    ]


def test_assemble_resolves_labels():
    program = assemble(_chunks())
    assert program.labels == {"entry": 0, "end": 2}
    assert len(program) == 3
    assert program.target_index("end") == 2


def test_duplicate_label_rejected():
    chunks = _chunks() + [("entry", [Instruction("NOP")])]
    with pytest.raises(ValueError):
        assemble(chunks)


def test_undefined_branch_target_rejected():
    chunks = [(None, [Instruction("BR", label="nowhere")])]
    with pytest.raises(ValueError):
        assemble(chunks)


def test_static_counts_by_class():
    program = assemble(_chunks())
    counts = program.static_counts()
    assert counts[OpClass.SHORT_INT] == 1
    assert counts[OpClass.BRANCH] == 1


def test_format_interleaves_labels():
    text = assemble(_chunks()).format()
    lines = text.splitlines()
    assert lines[0] == "entry:"
    assert "end:" in lines
    assert any("HALT" in line for line in lines)


def test_symbols_carried_through():
    symbol = DataSymbol(name="A", address=64, size_bytes=128, is_fp=True,
                        dims=(16,))
    program = assemble(_chunks(), symbols={"A": symbol})
    assert program.symbols["A"].address == 64
    assert program.symbols["A"].dims == (16,)
