"""Instruction construction, uses/defs, MemRef disambiguation."""

import pytest

from repro.isa import Instruction, Locality, MemRef, Reg, ZERO, ireg


def v(i, kind="i"):
    return Reg(kind, i, virtual=True)


class TestValidation:
    def test_alu_requires_dest(self):
        with pytest.raises(ValueError):
            Instruction("ADD", srcs=(v(1), v(2)))

    def test_store_rejects_dest(self):
        with pytest.raises(ValueError):
            Instruction("ST", dest=v(0), srcs=(v(1), v(2)))

    def test_branch_requires_label(self):
        with pytest.raises(ValueError):
            Instruction("BEQ", srcs=(v(1),))

    def test_wrong_source_count(self):
        with pytest.raises(ValueError):
            Instruction("ADD", dest=v(0), srcs=(v(1), v(2), v(3)))

    def test_immediate_substitutes_last_source(self):
        instr = Instruction("ADD", dest=v(0), srcs=(v(1),), imm=4)
        assert instr.imm == 4

    def test_missing_immediate_rejected(self):
        with pytest.raises(ValueError):
            Instruction("ADD", dest=v(0), srcs=(v(1),))

    def test_fp_op_rejects_immediate_shape(self):
        with pytest.raises(ValueError):
            Instruction("FADD", dest=v(0, "f"), srcs=(v(1, "f"),), imm=1.0)

    def test_ldi_takes_immediate_only(self):
        instr = Instruction("LDI", dest=v(0), imm=42)
        assert instr.imm == 42
        assert instr.srcs == ()


class TestUsesDefs:
    def test_alu_uses_and_defs(self):
        instr = Instruction("ADD", dest=v(0), srcs=(v(1), v(2)))
        assert set(instr.uses()) == {v(1), v(2)}
        assert instr.defs() == (v(0),)

    def test_zero_register_excluded_from_uses(self):
        instr = Instruction("SUB", dest=v(0), srcs=(ZERO, v(2)))
        assert instr.uses() == (v(2),)

    def test_store_has_no_defs(self):
        instr = Instruction("ST", srcs=(v(1), v(2)), offset=8)
        assert instr.defs() == ()
        assert set(instr.uses()) == {v(1), v(2)}

    def test_cmov_reads_destination(self):
        instr = Instruction("CMOVNE", dest=v(0), srcs=(v(1), v(2)))
        assert v(0) in instr.uses()
        assert instr.defs() == (v(0),)

    def test_write_to_zero_register_discarded(self):
        instr = Instruction("ADD", dest=ireg(31), srcs=(v(1),), imm=1)
        assert instr.defs() == ()

    def test_load_flags(self):
        load = Instruction("FLD", dest=v(0, "f"), srcs=(v(1),), offset=16)
        assert load.is_load and load.is_mem and not load.is_store
        store = Instruction("FST", srcs=(v(0, "f"), v(1)), offset=16)
        assert store.is_store and store.is_mem and not store.is_load


class TestCopy:
    def test_copy_gets_fresh_uid(self):
        instr = Instruction("ADD", dest=v(0), srcs=(v(1),), imm=1)
        clone = instr.copy()
        assert clone.uid != instr.uid
        assert clone.op == instr.op
        assert clone.srcs == instr.srcs

    def test_copy_with_overrides(self):
        instr = Instruction("BEQ", srcs=(v(1),), label="a")
        clone = instr.copy(op="BNE", label="b")
        assert clone.op == "BNE"
        assert clone.label == "b"

    def test_copy_preserves_annotations(self):
        mem = MemRef("data", "A", affine=({}, 3))
        instr = Instruction("LD", dest=v(0), srcs=(v(1),), mem=mem,
                            locality=Locality.MISS, group=7, is_spill=True)
        clone = instr.copy()
        assert clone.mem is mem
        assert clone.locality is Locality.MISS
        assert clone.group == 7
        assert clone.is_spill


class TestMemRef:
    def test_different_symbols_never_conflict(self):
        a = MemRef("data", "A", affine=None)
        b = MemRef("data", "B", affine=None)
        assert not a.conflicts_with(b)

    def test_different_regions_never_conflict(self):
        a = MemRef("data", 0, affine=None)
        b = MemRef("stack", 0, affine=None)
        assert not a.conflicts_with(b)

    def test_unknown_subscripts_conflict(self):
        a = MemRef("data", "A", affine=None)
        b = MemRef("data", "A", affine=({}, 1))
        assert a.conflicts_with(b)
        assert b.conflicts_with(a)

    def test_same_affine_conflicts(self):
        a = MemRef("data", "A", affine=({"i": 1}, 0))
        b = MemRef("data", "A", affine=({"i": 1}, 0))
        assert a.conflicts_with(b)

    def test_distinct_constants_are_independent(self):
        a = MemRef("data", "A", affine=({"i": 1}, 0))
        b = MemRef("data", "A", affine=({"i": 1}, 1))
        assert not a.conflicts_with(b)

    def test_different_coefficients_conflict(self):
        a = MemRef("data", "A", affine=({"i": 1}, 0))
        b = MemRef("data", "A", affine=({"j": 1}, 1))
        assert a.conflicts_with(b)

    def test_stack_slots_disambiguate_by_index(self):
        a = MemRef("stack", 0)
        b = MemRef("stack", 1)
        assert not a.conflicts_with(b)
        assert a.conflicts_with(MemRef("stack", 0))


def test_format_includes_annotations():
    mem = MemRef("data", "A", affine=({}, 0))
    instr = Instruction("LD", dest=v(0), srcs=(v(1),), offset=8, mem=mem,
                        locality=Locality.HIT)
    text = instr.format()
    assert "LD" in text and "hit" in text and "8(" in text
