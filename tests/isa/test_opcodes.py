"""Opcode metadata consistency."""

import pytest

from repro.isa import (
    BRANCH_OPS,
    COMMUTATIVE_OPS,
    LOAD_OPS,
    MEM_OPS,
    OPCODES,
    STORE_OPS,
    OpClass,
    opinfo,
)


def test_every_opcode_has_matching_name():
    for name, info in OPCODES.items():
        assert info.name == name


def test_loads_and_stores_are_mem_ops():
    assert LOAD_OPS == {"LD", "FLD"}
    assert STORE_OPS == {"ST", "FST"}
    assert MEM_OPS == LOAD_OPS | STORE_OPS
    for name in MEM_OPS:
        assert OPCODES[name].is_mem


def test_branch_ops_have_branch_class():
    assert BRANCH_OPS == {"BR", "BEQ", "BNE"}
    for name in BRANCH_OPS:
        assert OPCODES[name].opclass is OpClass.BRANCH
        assert OPCODES[name].is_branch
        assert not OPCODES[name].has_dest


def test_stores_have_no_destination():
    for name in STORE_OPS:
        assert not OPCODES[name].has_dest


def test_loads_have_destination():
    for name in LOAD_OPS:
        assert OPCODES[name].has_dest
        assert OPCODES[name].nsrc == 1


def test_long_latency_classes():
    assert OPCODES["MUL"].opclass is OpClass.LONG_INT
    assert OPCODES["DIVQ"].opclass is OpClass.LONG_INT
    assert OPCODES["FDIV"].opclass is OpClass.LONG_FP
    assert OPCODES["FADD"].opclass is OpClass.SHORT_FP
    assert OPCODES["ADD"].opclass is OpClass.SHORT_INT


def test_fp_ops_do_not_take_immediates():
    for name, info in OPCODES.items():
        if info.dest_fp and info.nsrc == 2:
            assert not info.imm_ok, name


def test_fp_compares_write_integer_registers():
    for name in ("FCMPEQ", "FCMPNE", "FCMPLT", "FCMPLE"):
        info = OPCODES[name]
        assert not info.dest_fp
        assert info.src_fp == (True, True)


def test_cmov_reads_destination():
    for name in ("CMOVEQ", "CMOVNE", "FCMOVEQ", "FCMOVNE"):
        assert OPCODES[name].reads_dest
    assert not OPCODES["ADD"].reads_dest


def test_src_fp_length_matches_nsrc():
    for name, info in OPCODES.items():
        assert len(info.src_fp) == info.nsrc, name


def test_commutative_ops_are_two_source():
    for name in COMMUTATIVE_OPS:
        assert OPCODES[name].nsrc == 2


def test_opinfo_lookup():
    assert opinfo("ADD").name == "ADD"
    with pytest.raises(KeyError):
        opinfo("BOGUS")
