"""Machine configuration: paper Tables 2-3 constants, simple model."""

from repro.isa import OPCODES
from repro.machine import (
    DEFAULT_CONFIG,
    INSTRUCTION_LATENCIES,
    OP_LATENCY,
    MachineConfig,
)
from repro.machine.config import simple_stochastic_config


class TestTable3Latencies:
    def test_paper_values(self):
        assert INSTRUCTION_LATENCIES["integer op"] == 1
        assert INSTRUCTION_LATENCIES["integer multiply"] == 8
        assert INSTRUCTION_LATENCIES["load"] == 2
        assert INSTRUCTION_LATENCIES["store"] == 1
        assert INSTRUCTION_LATENCIES["fp op"] == 4
        assert INSTRUCTION_LATENCIES["fp divide (single)"] == 17
        assert INSTRUCTION_LATENCIES["fp divide (double)"] == 30
        assert INSTRUCTION_LATENCIES["branch"] == 2

    def test_every_opcode_has_a_latency(self):
        assert set(OP_LATENCY) == set(OPCODES)

    def test_representative_opcodes(self):
        assert OP_LATENCY["ADD"] == 1
        assert OP_LATENCY["MUL"] == 8
        assert OP_LATENCY["FADD"] == 4
        assert OP_LATENCY["FDIV"] == 30
        assert OP_LATENCY["LD"] == 2
        assert OP_LATENCY["ST"] == 1


class TestTable2Memory:
    def test_hierarchy_geometry(self):
        config = DEFAULT_CONFIG
        assert config.l1d.size_bytes == 8 * 1024
        assert config.l1d.assoc == 1
        assert config.l1d.line_bytes == 32
        assert config.l1d.latency == 2
        assert config.l2.size_bytes == 96 * 1024
        assert config.l2.assoc == 3
        assert config.memory_latency == 50      # the paper's max latency

    def test_weight_cap_equals_memory_latency(self):
        assert DEFAULT_CONFIG.max_load_weight == 50
        assert DEFAULT_CONFIG.load_hit_latency == 2

    def test_memory_table_rows(self):
        rows = DEFAULT_CONFIG.memory_table()
        names = [row[0] for row in rows]
        assert names == ["L1D", "L1I", "L2", "L3", "Memory",
                         "D-TLB", "I-TLB"]

    def test_latencies_strictly_increase_down_the_hierarchy(self):
        config = DEFAULT_CONFIG
        assert config.l1d.latency < config.l2.latency \
            < config.l3.latency < config.memory_latency


class TestSimpleModel:
    def test_flat_latencies_except_loads(self):
        config = simple_stochastic_config()
        assert config.op_latency["MUL"] == 1
        assert config.op_latency["FDIV"] == 1
        assert config.op_latency["LD"] == 2

    def test_idealizations(self):
        config = simple_stochastic_config()
        assert config.perfect_icache
        assert config.perfect_dtlb
        assert config.memory_model == "stochastic"

    def test_hit_rate_parameter(self):
        config = simple_stochastic_config(hit_rate=0.8)
        assert config.stochastic_hit_rate == 0.8

    def test_default_config_untouched(self):
        simple_stochastic_config()
        assert DEFAULT_CONFIG.memory_model == "hierarchy"
        assert DEFAULT_CONFIG.op_latency["MUL"] == 8

    def test_config_is_immutable(self):
        import pytest
        with pytest.raises(Exception):
            DEFAULT_CONFIG.memory_latency = 10  # frozen dataclass
