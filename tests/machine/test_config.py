"""Machine configuration: paper Tables 2-3 constants, simple model."""

from dataclasses import replace

import pytest

from repro.isa import OPCODES, Instruction, assemble
from repro.machine import (
    DEFAULT_CONFIG,
    INSTRUCTION_LATENCIES,
    OP_LATENCY,
    CacheLevelConfig,
    ConfigError,
    MachineConfig,
    Simulator,
    TlbConfig,
)
from repro.machine.config import simple_stochastic_config


class TestTable3Latencies:
    def test_paper_values(self):
        assert INSTRUCTION_LATENCIES["integer op"] == 1
        assert INSTRUCTION_LATENCIES["integer multiply"] == 8
        assert INSTRUCTION_LATENCIES["load"] == 2
        assert INSTRUCTION_LATENCIES["store"] == 1
        assert INSTRUCTION_LATENCIES["fp op"] == 4
        assert INSTRUCTION_LATENCIES["fp divide (single)"] == 17
        assert INSTRUCTION_LATENCIES["fp divide (double)"] == 30
        assert INSTRUCTION_LATENCIES["branch"] == 2

    def test_every_opcode_has_a_latency(self):
        assert set(OP_LATENCY) == set(OPCODES)

    def test_representative_opcodes(self):
        assert OP_LATENCY["ADD"] == 1
        assert OP_LATENCY["MUL"] == 8
        assert OP_LATENCY["FADD"] == 4
        assert OP_LATENCY["FDIV"] == 30
        assert OP_LATENCY["LD"] == 2
        assert OP_LATENCY["ST"] == 1


class TestTable2Memory:
    def test_hierarchy_geometry(self):
        config = DEFAULT_CONFIG
        assert config.l1d.size_bytes == 8 * 1024
        assert config.l1d.assoc == 1
        assert config.l1d.line_bytes == 32
        assert config.l1d.latency == 2
        assert config.l2.size_bytes == 96 * 1024
        assert config.l2.assoc == 3
        assert config.memory_latency == 50      # the paper's max latency

    def test_weight_cap_equals_memory_latency(self):
        assert DEFAULT_CONFIG.max_load_weight == 50
        assert DEFAULT_CONFIG.load_hit_latency == 2

    def test_memory_table_rows(self):
        rows = DEFAULT_CONFIG.memory_table()
        names = [row[0] for row in rows]
        assert names == ["L1D", "L1I", "L2", "L3", "Memory",
                         "D-TLB", "I-TLB"]

    def test_latencies_strictly_increase_down_the_hierarchy(self):
        config = DEFAULT_CONFIG
        assert config.l1d.latency < config.l2.latency \
            < config.l3.latency < config.memory_latency


class TestSimpleModel:
    def test_flat_latencies_except_loads(self):
        config = simple_stochastic_config()
        assert config.op_latency["MUL"] == 1
        assert config.op_latency["FDIV"] == 1
        assert config.op_latency["LD"] == 2

    def test_idealizations(self):
        config = simple_stochastic_config()
        assert config.perfect_icache
        assert config.perfect_dtlb
        assert config.memory_model == "stochastic"

    def test_hit_rate_parameter(self):
        config = simple_stochastic_config(hit_rate=0.8)
        assert config.stochastic_hit_rate == 0.8

    def test_default_config_untouched(self):
        simple_stochastic_config()
        assert DEFAULT_CONFIG.memory_model == "hierarchy"
        assert DEFAULT_CONFIG.op_latency["MUL"] == 8

    def test_config_is_immutable(self):
        import pytest
        with pytest.raises(Exception):
            DEFAULT_CONFIG.memory_latency = 10  # frozen dataclass


class TestValidate:
    """MachineConfig.validate(): structurally bad configs are rejected
    at Simulator construction (regression: a custom config with
    ``l1i.latency > l2.latency`` used to yield a *negative* fill
    latency that silently rewound simulated time)."""

    def _reject(self, match, **overrides):
        config = replace(DEFAULT_CONFIG, **overrides)
        with pytest.raises(ConfigError, match=match):
            config.validate()
        program = assemble(
            [("entry", [Instruction("HALT")])])
        with pytest.raises(ConfigError, match=match):
            Simulator(program, config=config)

    def test_default_config_validates(self):
        DEFAULT_CONFIG.validate()

    def test_non_monotone_l1i_latency_rejected(self):
        self._reject("non-monotone",
                     l1i=CacheLevelConfig("L1I", 8192, 1, 32, 15))

    def test_non_monotone_l1d_latency_rejected(self):
        self._reject("non-monotone",
                     l1d=CacheLevelConfig("L1D", 8192, 1, 32, 15))

    def test_l2_slower_than_l3_rejected(self):
        self._reject("L2 latency",
                     l2=CacheLevelConfig("L2", 98304, 3, 32, 25))

    def test_l3_slower_than_memory_rejected(self):
        self._reject("L3 latency", memory_latency=10)

    def test_non_power_of_two_line_rejected(self):
        self._reject("power",
                     l1d=CacheLevelConfig("L1D", 8192, 1, 48, 2))

    def test_zero_latency_level_rejected(self):
        self._reject("latency must be positive",
                     l1d=CacheLevelConfig("L1D", 8192, 1, 32, 0))

    def test_negative_size_rejected(self):
        self._reject("size must be positive",
                     l1d=CacheLevelConfig("L1D", -8192, 1, 32, 2))

    def test_zero_mshrs_rejected(self):
        self._reject("mshr_entries", mshr_entries=0)

    def test_zero_issue_width_rejected(self):
        self._reject("issue_width", issue_width=0)

    def test_zero_mem_ports_rejected(self):
        self._reject("mem_ports", mem_ports=0)

    def test_negative_mispredict_penalty_rejected(self):
        self._reject("branch_mispredict_penalty",
                     branch_mispredict_penalty=-1)

    def test_unknown_memory_model_rejected(self):
        self._reject("unknown memory model", memory_model="oracle")

    def test_bad_hit_rate_rejected(self):
        self._reject("stochastic_hit_rate", stochastic_hit_rate=1.5)

    def test_bad_tlb_rejected(self):
        self._reject("D-TLB", dtlb=TlbConfig(0, 8192, 30))
        self._reject("page size", dtlb=TlbConfig(64, 3000, 30))

    def test_nonpositive_op_latency_rejected(self):
        bad = dict(OP_LATENCY)
        bad["ADD"] = 0
        self._reject("op latency", op_latency=bad)

    def test_stochastic_model_skips_hierarchy_monotonicity(self):
        # The stochastic model never derives fill latencies, so a
        # non-monotone hierarchy is irrelevant there.
        config = replace(simple_stochastic_config(),
                         l1i=CacheLevelConfig("L1I", 8192, 1, 32, 15))
        config.validate()


class TestConfigIdentity:
    """JSON round-trip + stable hashing (the daemon's cache-key leg)."""

    def test_roundtrip_default(self):
        from repro.machine import config_from_json, config_to_json
        assert config_from_json(config_to_json(DEFAULT_CONFIG)) == \
            DEFAULT_CONFIG

    def test_roundtrip_stochastic_model(self):
        from repro.machine import config_from_json, config_to_json
        config = simple_stochastic_config()
        assert config_from_json(config_to_json(config)) == config

    def test_sparse_overrides_on_default(self):
        from repro.machine import config_from_json
        config = config_from_json({"issue_width": 2,
                                   "memory_latency": 80})
        assert config.issue_width == 2
        assert config.memory_latency == 80
        assert config.l1d == DEFAULT_CONFIG.l1d

    def test_nested_levels_accepted_as_dicts(self):
        from dataclasses import asdict
        from repro.machine import config_from_json
        l1d = dict(asdict(DEFAULT_CONFIG.l1d), latency=3)
        config = config_from_json({"l1d": l1d})
        assert config.l1d.latency == 3
        assert config.l1d.name == "L1D"

    def test_unknown_field_rejected(self):
        from repro.machine import config_from_json
        with pytest.raises(TypeError, match="isue_width"):
            config_from_json({"isue_width": 2})

    def test_hash_stable_and_sensitive(self):
        from repro.machine import config_hash
        assert config_hash(DEFAULT_CONFIG) == config_hash(MachineConfig())
        wide = replace(DEFAULT_CONFIG, issue_width=2)
        assert config_hash(wide) != config_hash(DEFAULT_CONFIG)
        assert len(config_hash(DEFAULT_CONFIG)) == 12

    def test_hash_ignores_dict_insertion_order(self):
        from repro.machine import config_hash
        a = replace(DEFAULT_CONFIG,
                    op_latency=dict(DEFAULT_CONFIG.op_latency))
        reordered = dict(reversed(list(
            DEFAULT_CONFIG.op_latency.items())))
        b = replace(DEFAULT_CONFIG, op_latency=reordered)
        assert config_hash(a) == config_hash(b)


class TestRegisterFileDerivation:
    """allocatable banks and the pressure limit derive from the files."""

    def test_default_allocatable_counts(self):
        assert DEFAULT_CONFIG.allocatable_int_regs == 28
        assert DEFAULT_CONFIG.allocatable_fp_regs == 29

    def test_default_pressure_limit_is_24(self):
        # 32+32 files: min(28, 29) - 4 headroom.
        assert DEFAULT_CONFIG.pressure_limit == 24

    def test_pressure_limit_tracks_file_sizes(self):
        from repro.machine.config import (
            PRESSURE_HEADROOM,
            RESERVED_FP_REGS,
            RESERVED_INT_REGS,
        )
        big = replace(DEFAULT_CONFIG, int_regs=64, fp_regs=48)
        assert big.allocatable_int_regs == 64 - RESERVED_INT_REGS
        assert big.allocatable_fp_regs == 48 - RESERVED_FP_REGS
        assert big.pressure_limit == (
            min(big.allocatable_int_regs, big.allocatable_fp_regs)
            - PRESSURE_HEADROOM)

    def test_tiny_register_files_rejected(self):
        with pytest.raises(ConfigError, match="int_regs"):
            replace(DEFAULT_CONFIG, int_regs=4).validate()
        with pytest.raises(ConfigError, match="fp_regs"):
            replace(DEFAULT_CONFIG, fp_regs=3).validate()

    def test_pressure_limit_underflow_rejected(self):
        # 8+8 files leave 4/5 allocatable: minus 4 headroom = 0.
        with pytest.raises(ConfigError, match="pressure limit"):
            replace(DEFAULT_CONFIG, int_regs=8, fp_regs=8).validate()

    def test_reserved_counts_match_allocator_table(self):
        # config.RESERVED_* mirror regalloc's reservation scheme:
        # int bank reserves zero + SP + spill scratch, fp bank zero +
        # spill scratch; the allocatable counts must agree exactly
        # with the allocator's free-list sizes.
        from repro.codegen.regalloc import N_ALLOCATABLE, SPILL_SCRATCH
        from repro.machine.config import (
            RESERVED_FP_REGS,
            RESERVED_INT_REGS,
        )
        assert RESERVED_INT_REGS == len(SPILL_SCRATCH["i"]) + 2
        assert RESERVED_FP_REGS == len(SPILL_SCRATCH["f"]) + 1
        assert N_ALLOCATABLE == {
            "i": DEFAULT_CONFIG.allocatable_int_regs,
            "f": DEFAULT_CONFIG.allocatable_fp_regs}
