"""Compiled fast engine: bit-identity vs. the reference interpreter,
replay memoization, MSHR bookkeeping under the heap, and the engine
selection API (mode=, REPRO_SIM)."""

from __future__ import annotations

import pytest

from repro.harness.compile import Options, compile_source
from repro.isa import DataSymbol, Instruction, assemble, freg, ireg, Reg
from repro.machine import DEFAULT_CONFIG, SimulationError, Simulator
from tests.conftest import SMALL_KERNEL, STENCIL_KERNEL


def v(i, kind="i"):
    return Reg(kind, i, virtual=True)


def sym(name="A", address=64, elems=16, is_fp=True):
    return {name: DataSymbol(name=name, address=address,
                             size_bytes=elems * 8, is_fp=is_fp,
                             dims=(elems,))}


def assemble_instrs(instrs, symbols=None):
    return assemble([("entry", list(instrs) + [Instruction("HALT")])],
                    symbols=symbols,
                    data_size=max((s.address + s.size_bytes
                                   for s in (symbols or {}).values()),
                                  default=0))


def state_dict(sim):
    """Every contractual observable: metrics counters (including the
    nested cache/TLB stats), final memory, final registers."""
    d = {}
    for key, value in vars(sim.metrics).items():
        if key == "run_seconds":
            continue
        if hasattr(value, "__dict__"):
            for k2, v2 in vars(value).items():
                d[f"{key}.{k2}"] = v2
        elif isinstance(value, (int, float)):
            d[key] = value
    d["memory"] = list(sim.memory)
    d["regs"] = list(sim.regs)
    return d


def run_both(program, config=DEFAULT_CONFIG, arrays=None):
    sims = []
    for mode in ("reference", "fast"):
        sim = Simulator(program, config=config, mode=mode)
        for name, values in (arrays or {}).items():
            sim.set_symbol(name, values)
        sim.run()
        assert sim.mode_used == mode
        sims.append(sim)
    return sims


def assert_identical(program, config=DEFAULT_CONFIG, arrays=None):
    ref, fast = run_both(program, config=config, arrays=arrays)
    assert state_dict(ref) == state_dict(fast)
    return ref, fast


class TestBitIdentity:
    @pytest.mark.parametrize("scheduler", ["balanced", "traditional"])
    @pytest.mark.parametrize("source", [SMALL_KERNEL, STENCIL_KERNEL],
                             ids=["small", "stencil"])
    def test_compiled_kernels(self, source, scheduler):
        program = compile_source(
            source, Options(scheduler=scheduler)).program
        assert_identical(program)

    def test_unrolled_kernel(self):
        program = compile_source(
            SMALL_KERNEL, Options(scheduler="balanced",
                                  unroll=4)).program
        assert_identical(program)

    def test_mshr_pressure(self):
        """More concurrent misses than MSHRs: the heap-based occupancy
        bookkeeping must reproduce the interpreter's stall cycles."""
        symbols = {"BIG": DataSymbol(name="BIG", address=64,
                                     size_bytes=64 * 1024, is_fp=True,
                                     dims=(8192,))}
        instrs = [Instruction("LDI", dest=v(0), imm=64)]
        for i in range(DEFAULT_CONFIG.mshr_entries + 4):
            instrs.append(Instruction("FLD", dest=v(1 + i, "f"),
                                      srcs=(v(0),), offset=i * 4096))
        program = assemble_instrs(instrs, symbols=symbols)
        ref, fast = assert_identical(program)
        assert fast.metrics.mshr_stall_cycles > 0

    def test_mshr_merge_same_line(self):
        """A second miss to an in-flight line merges into the existing
        MSHR (no new entry, no stall) in both engines."""
        symbols = {"BIG": DataSymbol(name="BIG", address=64,
                                     size_bytes=64 * 1024, is_fp=True,
                                     dims=(8192,))}
        instrs = [
            Instruction("LDI", dest=v(0), imm=64),
            Instruction("FLD", dest=v(1, "f"), srcs=(v(0),), offset=0),
            # Same 32-byte line, still in flight: merges.
            Instruction("FLD", dest=v(2, "f"), srcs=(v(0),), offset=8),
            Instruction("FADD", dest=v(3, "f"),
                        srcs=(v(1, "f"), v(2, "f"))),
        ]
        program = assemble_instrs(instrs, symbols=symbols)
        ref, fast = assert_identical(program)
        assert fast.metrics.l1d.misses == 1


class TestReplay:
    def test_replay_fires_on_converged_loop(self):
        """A steady-state scalar loop replays after its cache/TLB/
        predictor state converges, bit-identically."""
        program = assemble([
            ("entry", [
                Instruction("LDI", dest=v(0), imm=64),
                Instruction("LDI", dest=v(1), imm=0),
                Instruction("FLDI", dest=v(2, "f"), imm=0.0),
            ]),
            ("loop", [
                Instruction("FLD", dest=v(3, "f"), srcs=(v(0),),
                            offset=0),
                Instruction("FADD", dest=v(2, "f"),
                            srcs=(v(2, "f"), v(3, "f"))),
                Instruction("ADD", dest=v(1), srcs=(v(1),), imm=1),
                Instruction("CMPLT", dest=v(4), srcs=(v(1),), imm=200),
                Instruction("BNE", srcs=(v(4),), label="loop"),
                Instruction("HALT"),
            ]),
        ], symbols=sym(), data_size=64 + 16 * 8)
        sim = Simulator(program, mode="fast")
        from repro.machine.fastsim import build_engine

        engine = build_engine(sim)
        assert engine is not None
        replayed = [0]
        for entry in engine.table.values():
            if entry[2] is not None:
                orig = entry[2]

                def counting(t, lastL, lastP, _orig=orig):
                    result = _orig(t, lastL, lastP)
                    if result is not None:
                        replayed[0] += 1
                    return result

                entry[2] = counting
        sim._fast_engine = engine
        sim.run()
        assert replayed[0] > 100
        ref = Simulator(program, mode="reference")
        ref.run()
        assert state_dict(ref) == state_dict(sim)


class TestZeroRegisterScratch:
    def test_prefetch_then_zero_dest_cmov_no_phantom_interlock(self):
        """A discarded load (prefetch idiom) followed by a zero-dest
        CMOV must not charge interlock cycles against the discarded
        value (regression: the shared scratch slot used to receive
        ready-time updates)."""
        instrs = [
            Instruction("LDI", dest=v(0), imm=64),
            Instruction("LDI", dest=v(1), imm=7),
            # Prefetch: load whose result is architecturally discarded.
            Instruction("LD", dest=ireg(31), srcs=(v(0),), offset=0),
            # Zero-dest CMOV reads its (discarded) destination.
            Instruction("CMOVNE", dest=ireg(31), srcs=(v(1), v(1))),
        ]
        program = assemble_instrs(instrs, symbols=sym(is_fp=False))
        for mode in ("reference", "fast"):
            sim = Simulator(program, mode=mode)
            metrics = sim.run()
            assert metrics.load_interlock_cycles == 0, mode
            assert metrics.fixed_interlock_cycles == 0, mode

    def test_int_and_fp_discards_do_not_collide(self):
        """An integer discard and an fp discard use separate slots: the
        fp zero-dest consumer cannot see the int discard's value or
        timing."""
        instrs = [
            Instruction("LDI", dest=v(0), imm=64),
            Instruction("LD", dest=ireg(31), srcs=(v(0),), offset=0),
            Instruction("FLDI", dest=v(1, "f"), imm=2.0),
            Instruction("FCMOVNE", dest=freg(31),
                        srcs=(v(1, "f"), v(1, "f"))),
        ]
        program = assemble_instrs(instrs, symbols=sym(is_fp=False))
        for mode in ("reference", "fast"):
            metrics = Simulator(program, mode=mode).run()
            assert metrics.load_interlock_cycles == 0, mode

    def test_zero_reg_still_reads_zero(self):
        instrs = [
            Instruction("LDI", dest=v(0), imm=64),
            Instruction("LD", dest=ireg(31), srcs=(v(0),), offset=0),
            Instruction("SUB", dest=v(1), srcs=(ireg(31), v(0))),
        ]
        program = assemble_instrs(instrs, symbols=sym(is_fp=False))
        for mode in ("reference", "fast"):
            sim = Simulator(program, mode=mode)
            sim.run()
            assert sim.reg_value(v(1)) == -64, mode


class TestRunContract:
    def test_run_is_single_shot(self):
        program = assemble_instrs([Instruction("LDI", dest=v(0),
                                               imm=1)])
        sim = Simulator(program)
        sim.run()
        with pytest.raises(SimulationError, match="single-shot"):
            sim.run()

    def test_single_shot_applies_to_reference_mode(self):
        program = assemble_instrs([Instruction("LDI", dest=v(0),
                                               imm=1)])
        sim = Simulator(program, mode="reference")
        sim.run()
        with pytest.raises(SimulationError, match="single-shot"):
            sim.run()

    def test_failed_run_counts_as_the_single_shot(self):
        program = assemble([("loop", [Instruction("BR",
                                                  label="loop")])])
        sim = Simulator(program)
        with pytest.raises(SimulationError):
            sim.run(max_instructions=100)
        with pytest.raises(SimulationError, match="single-shot"):
            sim.run()


class TestModeSelection:
    def test_env_forces_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM", "reference")
        program = assemble_instrs([Instruction("LDI", dest=v(0),
                                               imm=1)])
        sim = Simulator(program)
        sim.run()
        assert sim.mode_used == "reference"

    def test_env_rejects_unknown_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM", "turbo")
        program = assemble_instrs([Instruction("LDI", dest=v(0),
                                               imm=1)])
        with pytest.raises(ValueError, match="REPRO_SIM"):
            Simulator(program).run()

    def test_explicit_fast_rejects_unsupported_config(self):
        from dataclasses import replace

        config = replace(DEFAULT_CONFIG, issue_width=2)
        program = assemble_instrs([Instruction("LDI", dest=v(0),
                                               imm=1)])
        with pytest.raises(ValueError, match="fast"):
            Simulator(program, config=config, mode="fast").run()

    def test_auto_falls_back_for_unsupported_config(self):
        from dataclasses import replace

        config = replace(DEFAULT_CONFIG, issue_width=2)
        program = assemble_instrs([Instruction("LDI", dest=v(0),
                                               imm=1)])
        sim = Simulator(program, config=config)
        sim.run()
        assert sim.mode_used == "reference"

    def test_profile_mode_requires_profile_flag(self):
        program = assemble_instrs([Instruction("LDI", dest=v(0),
                                               imm=1)])
        with pytest.raises(ValueError, match="profile"):
            Simulator(program, mode="profile")

    def test_profile_mode_matches_reference_counts(self):
        program = compile_source(
            SMALL_KERNEL, Options(scheduler="none")).program
        fast = Simulator(program, profile=True, mode="profile")
        fast.run()
        ref = Simulator(program, profile=True, mode="reference")
        ref.run()
        assert fast.mode_used == "profile"
        assert fast.block_counts == ref.block_counts
        assert fast.edge_counts == ref.edge_counts
        assert fast.memory == ref.memory
