"""The stochastic memory model (Kerns & Eggers simple machine)."""

from dataclasses import replace

from repro.isa import DataSymbol, Instruction, Reg, assemble
from repro.machine import Simulator
from repro.machine.config import simple_stochastic_config


def v(i, kind="i"):
    return Reg(kind, i, virtual=True)


def load_heavy_program(n_loads=200):
    symbols = {"A": DataSymbol(name="A", address=64,
                               size_bytes=n_loads * 8, is_fp=True,
                               dims=(n_loads,))}
    instrs = [Instruction("LDI", dest=v(0), imm=64)]
    for i in range(n_loads):
        instrs.append(Instruction("FLD", dest=v(1 + i % 20, "f"),
                                  srcs=(v(0),), offset=8 * i))
    instrs.append(Instruction("HALT"))
    return assemble([("entry", instrs)], symbols=symbols,
                    data_size=64 + n_loads * 8)


def test_hit_rate_controls_miss_count():
    program = load_heavy_program()
    low = Simulator(program, config=simple_stochastic_config(0.5))
    high = Simulator(program, config=simple_stochastic_config(0.95))
    low.run()
    high.run()
    assert low.l1d.stats.misses > high.l1d.stats.misses
    # Roughly the configured rates (binomial, wide margins).
    assert 60 <= low.l1d.stats.misses <= 140
    assert high.l1d.stats.misses <= 30


def test_miss_latencies_cluster_around_mean():
    config = simple_stochastic_config(hit_rate=0.0, miss_mean=20.0,
                                      miss_std=2.0)
    sim = Simulator(load_heavy_program(50), config=config)
    latencies = [sim._stochastic_latency() for _ in range(300)]
    mean = sum(latencies) / len(latencies)
    assert 18.0 < mean < 22.0
    assert all(lat > config.l1d.latency for lat in latencies)


def test_deterministic_across_runs():
    program = load_heavy_program()
    config = simple_stochastic_config(0.8)
    a = Simulator(program, config=config).run().total_cycles
    b = Simulator(program, config=config).run().total_cycles
    assert a == b


def test_perfect_icache_removes_fetch_stalls():
    program = load_heavy_program()
    simple = Simulator(program, config=simple_stochastic_config(0.9))
    metrics = simple.run()
    assert metrics.icache_stall_cycles == 0


def test_stores_have_no_cache_side_effects():
    symbols = {"A": DataSymbol(name="A", address=64, size_bytes=64,
                               is_fp=True, dims=(8,))}
    instrs = [
        Instruction("LDI", dest=v(0), imm=64),
        Instruction("FLDI", dest=v(1, "f"), imm=3.5),
        Instruction("FST", srcs=(v(1, "f"), v(0)), offset=0),
        Instruction("FLD", dest=v(2, "f"), srcs=(v(0),), offset=0),
        Instruction("HALT"),
    ]
    program = assemble([("entry", instrs)], symbols=symbols, data_size=128)
    sim = Simulator(program, config=simple_stochastic_config(1.0))
    sim.run()
    assert sim.reg_value(v(2, "f")) == 3.5


def test_hit_rate_one_gives_uniform_hit_latency():
    program = load_heavy_program(50)
    sim = Simulator(program, config=simple_stochastic_config(1.0))
    metrics = sim.run()
    assert metrics.l1d.misses == 0
    assert metrics.load_interlock_cycles == 0   # no consumers -> no stalls
