"""Instruction-cache behaviour: code footprint effects (paper: doduc's
unroll-by-8 regression came from instruction-cache pressure)."""

from repro.isa import Instruction, Reg, assemble
from repro.machine import DEFAULT_CONFIG, Simulator


def v(i):
    return Reg("i", i, virtual=True)


def looped_straightline(n_body: int, iterations: int):
    """A loop over a straight-line body of *n_body* instructions."""
    body = [Instruction("ADD", dest=v(1 + i % 8), srcs=(v(0),), imm=i)
            for i in range(n_body)]
    return assemble([
        ("entry", [Instruction("LDI", dest=v(0), imm=0)]),
        ("loop", body + [
            Instruction("ADD", dest=v(0), srcs=(v(0),), imm=1),
            Instruction("CMPLT", dest=v(9), srcs=(v(0),),
                        imm=iterations),
            Instruction("BNE", srcs=(v(9),), label="loop"),
        ]),
        ("exit", [Instruction("HALT")]),
    ])


def icache_stalls_per_instruction(n_body: int) -> float:
    program = looped_straightline(n_body, iterations=30)
    metrics = Simulator(program).run()
    return metrics.icache_stall_cycles / metrics.instructions


def test_small_loops_fit_in_the_icache():
    # 200 instructions = 800 bytes: cold misses once, then hits.
    assert icache_stalls_per_instruction(200) < 0.2


def test_oversized_loops_thrash_the_icache():
    # 4096 instructions = 16 KB of code vs an 8 KB I-cache: the loop
    # re-misses every iteration.
    capacity_instrs = DEFAULT_CONFIG.l1i.size_bytes // 4
    small = icache_stalls_per_instruction(capacity_instrs // 2)
    large = icache_stalls_per_instruction(capacity_instrs * 2)
    assert large > 4 * small


def test_icache_stalls_counted_separately_from_interlocks():
    program = looped_straightline(4096, iterations=3)
    metrics = Simulator(program).run()
    assert metrics.icache_stall_cycles > 0
    # Independent ADDs: no data interlocks regardless of fetch stalls.
    assert metrics.load_interlock_cycles == 0
