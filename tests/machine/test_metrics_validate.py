"""Metrics.validate(): real runs pass, corrupted counters fail."""

from __future__ import annotations

import copy

import pytest

from repro.machine import MetricsInvariantError, Simulator
from tests.conftest import compile_and_simulate, SMALL_KERNEL


@pytest.fixture(scope="module")
def real_metrics():
    _, _, metrics = compile_and_simulate(SMALL_KERNEL)
    return metrics


def test_real_run_passes(real_metrics):
    real_metrics.validate()     # must not raise


def _corrupt(metrics, **changes):
    bad = copy.deepcopy(metrics)
    for name, value in changes.items():
        setattr(bad, name, value)
    return bad


def test_instruction_class_mismatch(real_metrics):
    bad = _corrupt(real_metrics,
                   instructions=real_metrics.instructions + 1)
    with pytest.raises(MetricsInvariantError, match="class counts"):
        bad.validate()


def test_interlocks_exceed_total_cycles(real_metrics):
    bad = _corrupt(real_metrics,
                   load_interlock_cycles=real_metrics.total_cycles + 1)
    with pytest.raises(MetricsInvariantError, match="interlock"):
        bad.validate()


def test_negative_counter(real_metrics):
    bad = _corrupt(real_metrics, stores=-1)
    with pytest.raises(MetricsInvariantError, match="negative"):
        bad.validate()


def test_cache_misses_exceed_accesses(real_metrics):
    bad = copy.deepcopy(real_metrics)
    bad.l1d.misses = bad.l1d.accesses + 1
    with pytest.raises(MetricsInvariantError, match="l1d"):
        bad.validate()


def test_spills_bounded_by_class_counts(real_metrics):
    bad = _corrupt(real_metrics, spill_loads=real_metrics.loads + 1)
    with pytest.raises(MetricsInvariantError, match="spill_loads"):
        bad.validate()


def test_too_few_cycles_for_issue_width(real_metrics):
    bad = _corrupt(real_metrics,
                   total_cycles=real_metrics.instructions // 2)
    with pytest.raises(MetricsInvariantError):
        bad.validate(issue_width=1)


def test_mshr_stalls_bounded_by_load_interlocks(real_metrics):
    bad = _corrupt(
        real_metrics,
        mshr_stall_cycles=real_metrics.load_interlock_cycles + 1)
    with pytest.raises(MetricsInvariantError, match="mshr"):
        bad.validate()


def test_simulator_env_gate_runs_validate(monkeypatch, run_source):
    """The suite-wide REPRO_VALIDATE_METRICS gate reaches Simulator.run:
    every conftest-driven simulation in this suite has already passed
    validate(); here we only confirm the gate is on."""
    import os
    assert os.environ.get("REPRO_VALIDATE_METRICS") == "1"
    _, _, metrics = run_source(SMALL_KERNEL)
    metrics.validate()
