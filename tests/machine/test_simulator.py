"""Execution-driven simulator: semantics, timing, stall attribution."""

import pytest

from repro.isa import DataSymbol, Instruction, MemRef, Reg, assemble, ireg
from repro.machine import DEFAULT_CONFIG, SimulationError, Simulator


def v(i, kind="i"):
    return Reg(kind, i, virtual=True)


def run_instrs(instrs, symbols=None, arrays=None):
    program = assemble([("entry", list(instrs) + [Instruction("HALT")])],
                       symbols=symbols,
                       data_size=max((s.address + s.size_bytes
                                      for s in (symbols or {}).values()),
                                     default=0))
    sim = Simulator(program)
    for name, values in (arrays or {}).items():
        sim.set_symbol(name, values)
    metrics = sim.run()
    return sim, metrics


def sym(name="A", address=64, elems=16, is_fp=True):
    return {name: DataSymbol(name=name, address=address,
                             size_bytes=elems * 8, is_fp=is_fp,
                             dims=(elems,))}


class TestArithmetic:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("ADD", 7, 5, 12), ("SUB", 7, 5, 2), ("MUL", 7, 5, 35),
        ("AND", 6, 3, 2), ("OR", 6, 3, 7), ("XOR", 6, 3, 5),
        ("SLL", 3, 2, 12), ("SRA", -8, 1, -4),
        ("CMPEQ", 4, 4, 1), ("CMPNE", 4, 4, 0),
        ("CMPLT", 3, 4, 1), ("CMPLE", 4, 4, 1),
        ("DIVQ", 17, 5, 3), ("REMQ", 17, 5, 2),
        ("DIVQ", -17, 5, -3), ("REMQ", -17, 5, -2),
    ])
    def test_int_ops(self, op, a, b, expected):
        sim, _ = run_instrs([
            Instruction("LDI", dest=v(0), imm=a),
            Instruction("LDI", dest=v(1), imm=b),
            Instruction(op, dest=v(2), srcs=(v(0), v(1))),
        ])
        assert sim.reg_value(v(2)) == expected

    @pytest.mark.parametrize("op,a,b,expected", [
        ("FADD", 1.5, 2.25, 3.75), ("FSUB", 1.5, 0.25, 1.25),
        ("FMUL", 1.5, 2.0, 3.0), ("FDIV", 3.0, 2.0, 1.5),
        ("FCMPLT", 1.0, 2.0, 1), ("FCMPLE", 2.0, 2.0, 1),
        ("FCMPEQ", 2.0, 3.0, 0), ("FCMPNE", 2.0, 3.0, 1),
    ])
    def test_fp_ops(self, op, a, b, expected):
        dest_kind = "i" if op.startswith("FCMP") else "f"
        sim, _ = run_instrs([
            Instruction("FLDI", dest=v(0, "f"), imm=a),
            Instruction("FLDI", dest=v(1, "f"), imm=b),
            Instruction(op, dest=v(2, dest_kind), srcs=(v(0, "f"),
                                                        v(1, "f"))),
        ])
        assert sim.reg_value(v(2, dest_kind)) == expected

    def test_srl_is_logical(self):
        sim, _ = run_instrs([
            Instruction("LDI", dest=v(0), imm=-8),
            Instruction("LDI", dest=v(1), imm=60),
            Instruction("SRL", dest=v(2), srcs=(v(0), v(1))),
        ])
        assert sim.reg_value(v(2)) == 15

    def test_immediate_operand(self):
        sim, _ = run_instrs([
            Instruction("LDI", dest=v(0), imm=40),
            Instruction("ADD", dest=v(1), srcs=(v(0),), imm=2),
        ])
        assert sim.reg_value(v(1)) == 42

    def test_conversions(self):
        sim, _ = run_instrs([
            Instruction("LDI", dest=v(0), imm=3),
            Instruction("CVTIF", dest=v(1, "f"), srcs=(v(0),)),
            Instruction("FLDI", dest=v(2, "f"), imm=2.75),
            Instruction("CVTFI", dest=v(3), srcs=(v(2, "f"),)),
        ])
        assert sim.reg_value(v(1, "f")) == 3.0
        assert sim.reg_value(v(3)) == 2

    def test_zero_register_reads_zero(self):
        sim, _ = run_instrs([
            Instruction("LDI", dest=v(0), imm=5),
            Instruction("SUB", dest=v(1), srcs=(ireg(31), v(0))),
        ])
        assert sim.reg_value(v(1)) == -5

    def test_cmov(self):
        sim, _ = run_instrs([
            Instruction("LDI", dest=v(0), imm=1),      # condition true
            Instruction("LDI", dest=v(1), imm=10),
            Instruction("LDI", dest=v(2), imm=20),
            Instruction("CMOVNE", dest=v(1), srcs=(v(0), v(2))),
            Instruction("LDI", dest=v(3), imm=0),      # condition false
            Instruction("LDI", dest=v(4), imm=30),
            Instruction("CMOVNE", dest=v(4), srcs=(v(3), v(2))),
        ])
        assert sim.reg_value(v(1)) == 20
        assert sim.reg_value(v(4)) == 30

    def test_division_by_zero_raises(self):
        with pytest.raises(SimulationError):
            run_instrs([
                Instruction("LDI", dest=v(0), imm=1),
                Instruction("LDI", dest=v(1), imm=0),
                Instruction("DIVQ", dest=v(2), srcs=(v(0), v(1))),
            ])


class TestMemory:
    def test_store_load_roundtrip(self):
        sim, _ = run_instrs([
            Instruction("LDI", dest=v(0), imm=64),
            Instruction("FLDI", dest=v(1, "f"), imm=2.5),
            Instruction("FST", srcs=(v(1, "f"), v(0)), offset=8),
            Instruction("FLD", dest=v(2, "f"), srcs=(v(0),), offset=8),
        ], symbols=sym())
        assert sim.reg_value(v(2, "f")) == 2.5
        assert sim.get_symbol("A")[1] == 2.5

    def test_set_symbol_nested(self):
        symbols = {"M": DataSymbol(name="M", address=64, size_bytes=32,
                                   is_fp=True, dims=(2, 2))}
        sim, _ = run_instrs([Instruction("NOP")], symbols=symbols,
                            arrays={"M": [[1.0, 2.0], [3.0, 4.0]]})
        assert sim.get_symbol("M") == [1.0, 2.0, 3.0, 4.0]

    def test_out_of_range_load_raises(self):
        with pytest.raises(SimulationError):
            run_instrs([
                Instruction("LDI", dest=v(0), imm=10 ** 9),
                Instruction("LD", dest=v(1), srcs=(v(0),), offset=0),
            ])

    def test_negative_address_raises(self):
        with pytest.raises(SimulationError):
            run_instrs([
                Instruction("LDI", dest=v(0), imm=-8),
                Instruction("LD", dest=v(1), srcs=(v(0),), offset=0),
            ])


class TestTiming:
    def test_single_issue_baseline(self):
        _, metrics = run_instrs([
            Instruction("LDI", dest=v(i), imm=i) for i in range(10)
        ])
        # Ten independent LDIs + HALT: one per cycle, plus cold-start
        # instruction-fetch stalls (ITLB + I-cache compulsory misses).
        assert metrics.total_cycles == 11 + metrics.icache_stall_cycles
        assert metrics.interlock_cycles == 0

    def test_fixed_latency_interlock_attribution(self):
        _, metrics = run_instrs([
            Instruction("LDI", dest=v(0), imm=3),
            Instruction("MUL", dest=v(1), srcs=(v(0), v(0))),
            Instruction("ADD", dest=v(2), srcs=(v(1),), imm=1),
        ])
        # MUL latency 8: consumer waits 7 extra cycles.
        assert metrics.fixed_interlock_cycles == 7
        assert metrics.load_interlock_cycles == 0

    def test_load_interlock_attribution(self):
        _, metrics = run_instrs([
            Instruction("LDI", dest=v(0), imm=64),
            Instruction("LD", dest=v(1), srcs=(v(0),), offset=0),
            Instruction("ADD", dest=v(2), srcs=(v(1),), imm=1),
        ], symbols=sym(is_fp=False))
        assert metrics.load_interlock_cycles > 0
        assert metrics.fixed_interlock_cycles == 0

    def test_nonblocking_loads_overlap(self):
        """Two misses to different lines overlap; serial uses stall twice."""
        symbols = sym(elems=64)
        overlapped = [
            Instruction("LDI", dest=v(0), imm=64),
            Instruction("FLD", dest=v(1, "f"), srcs=(v(0),), offset=0),
            Instruction("FLD", dest=v(2, "f"), srcs=(v(0),), offset=256),
            Instruction("FADD", dest=v(3, "f"), srcs=(v(1, "f"),
                                                      v(2, "f"))),
        ]
        _, m_overlap = run_instrs(overlapped, symbols=symbols)
        serial = [
            Instruction("LDI", dest=v(0), imm=64),
            Instruction("FLD", dest=v(1, "f"), srcs=(v(0),), offset=0),
            Instruction("FADD", dest=v(4, "f"), srcs=(v(1, "f"),
                                                      v(1, "f"))),
            Instruction("FLD", dest=v(2, "f"), srcs=(v(0),), offset=256),
            Instruction("FADD", dest=v(3, "f"), srcs=(v(2, "f"),
                                                      v(2, "f"))),
        ]
        _, m_serial = run_instrs(serial, symbols=symbols)
        assert m_overlap.load_interlock_cycles < \
            m_serial.load_interlock_cycles

    def test_independent_work_hides_load_latency(self):
        symbols = sym(elems=64)
        stalled = [
            Instruction("LDI", dest=v(0), imm=64),
            Instruction("FLD", dest=v(1, "f"), srcs=(v(0),), offset=0),
            Instruction("FADD", dest=v(2, "f"), srcs=(v(1, "f"),
                                                      v(1, "f"))),
        ] + [Instruction("LDI", dest=v(10 + i), imm=i) for i in range(12)]
        hidden = [
            Instruction("LDI", dest=v(0), imm=64),
            Instruction("FLD", dest=v(1, "f"), srcs=(v(0),), offset=0),
        ] + [Instruction("LDI", dest=v(10 + i), imm=i) for i in range(12)] \
          + [Instruction("FADD", dest=v(2, "f"), srcs=(v(1, "f"),
                                                       v(1, "f")))]
        _, m_stalled = run_instrs(stalled, symbols=symbols)
        _, m_hidden = run_instrs(hidden, symbols=symbols)
        assert m_hidden.load_interlock_cycles < \
            m_stalled.load_interlock_cycles
        assert m_hidden.total_cycles < m_stalled.total_cycles

    def test_mshr_limit_stalls_extra_misses(self):
        config = DEFAULT_CONFIG
        symbols = {"BIG": DataSymbol(name="BIG", address=64,
                                     size_bytes=64 * 1024, is_fp=True,
                                     dims=(8192,))}
        # Issue more concurrent misses than there are MSHRs.
        instrs = [Instruction("LDI", dest=v(0), imm=64)]
        for i in range(config.mshr_entries + 3):
            instrs.append(Instruction(
                "FLD", dest=v(1 + i, "f"), srcs=(v(0),),
                offset=i * 4096))
        _, metrics = run_instrs(instrs, symbols=symbols)
        assert metrics.mshr_stall_cycles > 0

    def test_second_sweep_hits_in_cache(self):
        symbols = sym(elems=4)
        loads = [Instruction("LDI", dest=v(0), imm=64)]
        loads += [Instruction("FLD", dest=v(1 + i, "f"), srcs=(v(0),),
                              offset=8 * i) for i in range(4)]
        loads += [Instruction("FLD", dest=v(10 + i, "f"), srcs=(v(0),),
                              offset=8 * i) for i in range(4)]
        _, metrics = run_instrs(loads, symbols=symbols)
        assert metrics.l1d.misses == 1          # one line, one cold miss
        assert metrics.l1d.accesses == 8


class TestControl:
    def test_branch_taken_and_fallthrough(self):
        program = assemble([
            ("entry", [
                Instruction("LDI", dest=v(0), imm=0),
                Instruction("BEQ", srcs=(v(0),), label="skip"),
                Instruction("LDI", dest=v(1), imm=111),
            ]),
            ("skip", [
                Instruction("LDI", dest=v(2), imm=222),
                Instruction("HALT"),
            ]),
        ])
        sim = Simulator(program)
        sim.run()
        assert sim.reg_value(v(1)) == 0        # skipped
        assert sim.reg_value(v(2)) == 222

    def test_loop_executes_n_times(self):
        program = assemble([
            ("entry", [
                Instruction("LDI", dest=v(0), imm=0),
            ]),
            ("loop", [
                Instruction("ADD", dest=v(0), srcs=(v(0),), imm=1),
                Instruction("CMPLT", dest=v(1), srcs=(v(0),), imm=10),
                Instruction("BNE", srcs=(v(1),), label="loop"),
                Instruction("HALT"),
            ]),
        ])
        sim = Simulator(program)
        metrics = sim.run()
        assert sim.reg_value(v(0)) == 10
        assert metrics.branches == 10

    def test_mispredicts_counted(self):
        # A data-dependent alternating branch defeats the predictor.
        program = assemble([
            ("entry", [Instruction("LDI", dest=v(0), imm=0)]),
            ("loop", [
                Instruction("ADD", dest=v(0), srcs=(v(0),), imm=1),
                Instruction("REMQ", dest=v(2), srcs=(v(0),), imm=2),
                Instruction("BEQ", srcs=(v(2),), label="even"),
            ]),
            ("even", [
                Instruction("CMPLT", dest=v(1), srcs=(v(0),), imm=40),
                Instruction("BNE", srcs=(v(1),), label="loop"),
                Instruction("HALT"),
            ]),
        ])
        program.instructions  # noqa: B018 - touch for clarity
        sim = Simulator(program)
        metrics = sim.run()
        assert metrics.branch_mispredicts > 5

    def test_instruction_limit_enforced(self):
        program = assemble([
            ("loop", [Instruction("BR", label="loop")]),
        ])
        with pytest.raises(SimulationError):
            Simulator(program).run(max_instructions=100)


class TestProfiling:
    def test_block_and_edge_counts(self):
        program = assemble([
            ("entry", [Instruction("LDI", dest=v(0), imm=0)]),
            ("loop", [
                Instruction("ADD", dest=v(0), srcs=(v(0),), imm=1),
                Instruction("CMPLT", dest=v(1), srcs=(v(0),), imm=5),
                Instruction("BNE", srcs=(v(1),), label="loop"),
            ]),
            ("exit", [Instruction("HALT")]),
        ])
        sim = Simulator(program, profile=True)
        sim.run()
        assert sim.block_counts["loop"] == 5
        assert sim.block_counts["entry"] == 1
        assert sim.edge_counts[("loop", "loop")] == 4
        assert sim.edge_counts[("loop", "exit")] == 1


class TestCounts:
    def test_class_counts(self):
        _, metrics = run_instrs([
            Instruction("LDI", dest=v(0), imm=64),
            Instruction("MUL", dest=v(1), srcs=(v(0), v(0))),
            Instruction("FLDI", dest=v(2, "f"), imm=1.0),
            Instruction("FDIV", dest=v(3, "f"), srcs=(v(2, "f"),
                                                      v(2, "f"))),
            Instruction("FLD", dest=v(4, "f"), srcs=(v(0),), offset=0),
            Instruction("FST", srcs=(v(4, "f"), v(0)), offset=8),
        ], symbols=sym())
        assert metrics.long_int == 1
        assert metrics.long_fp == 1
        assert metrics.loads == 1
        assert metrics.stores == 1
        assert metrics.short_fp >= 1       # the FLDI

    def test_spill_instructions_counted(self):
        spill_mem = MemRef("stack", 0)
        _, metrics = run_instrs([
            Instruction("LDI", dest=v(0), imm=64),
            Instruction("ST", srcs=(v(0), v(0)), offset=0, mem=spill_mem,
                        is_spill=True),
            Instruction("LD", dest=v(1), srcs=(v(0),), offset=0,
                        mem=spill_mem, is_spill=True),
        ], symbols=sym(is_fp=False))
        assert metrics.spill_stores == 1
        assert metrics.spill_loads == 1
