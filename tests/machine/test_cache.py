"""Cache, TLB and branch-predictor models."""

import pytest

from repro.machine import BranchPredictor, Cache, CacheLevelConfig, Tlb


def small_cache(size=256, assoc=1, line=32):
    return Cache(CacheLevelConfig("T", size, assoc, line, 2))


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.lookup(0)
        assert cache.lookup(0)
        assert cache.lookup(31)           # same 32-byte line
        assert not cache.lookup(32)       # next line

    def test_direct_mapped_conflict(self):
        cache = small_cache(size=64, assoc=1, line=32)  # 2 sets
        assert not cache.lookup(0)
        assert not cache.lookup(64)       # same set, evicts line 0
        assert not cache.lookup(0)        # miss again

    def test_two_way_avoids_conflict(self):
        cache = small_cache(size=128, assoc=2, line=32)  # 2 sets, 2-way
        cache.lookup(0)
        cache.lookup(64)
        assert cache.lookup(0)
        assert cache.lookup(64)

    def test_lru_replacement(self):
        cache = small_cache(size=128, assoc=2, line=32)
        cache.lookup(0)       # set 0
        cache.lookup(64)      # set 0
        cache.lookup(0)       # refresh 0 -> 64 is LRU
        cache.lookup(128)     # evicts 64
        assert cache.lookup(0)
        assert not cache.lookup(64)

    def test_no_allocate_probe(self):
        cache = small_cache()
        cache.lookup(0, allocate=False)
        assert not cache.contains(0)

    def test_invalidate(self):
        cache = small_cache()
        cache.lookup(0)
        cache.invalidate(0)
        assert not cache.contains(0)

    def test_stats(self):
        cache = small_cache()
        cache.lookup(0)
        cache.lookup(0)
        cache.lookup(32)
        assert cache.stats.accesses == 3
        assert cache.stats.misses == 2
        assert cache.stats.hits == 1

    def test_fully_associative(self):
        cache = Cache(CacheLevelConfig("F", 128, 0, 32, 2))
        for addr in (0, 64, 128, 192):
            cache.lookup(addr)
        assert all(cache.contains(a) for a in (0, 64, 128, 192))

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache(CacheLevelConfig("X", 96, 1, 33, 2))

    def test_reset(self):
        cache = small_cache()
        cache.lookup(0)
        cache.reset()
        assert not cache.contains(0)
        assert cache.stats.accesses == 0


class TestTlb:
    def test_page_granularity(self):
        tlb = Tlb(entries=4, page_bytes=8192)
        assert not tlb.lookup(0)
        assert tlb.lookup(8191)
        assert not tlb.lookup(8192)

    def test_lru_eviction(self):
        tlb = Tlb(entries=2, page_bytes=8192)
        tlb.lookup(0)
        tlb.lookup(8192)
        tlb.lookup(0)              # refresh page 0
        tlb.lookup(16384)          # evicts page 1
        assert tlb.lookup(0)
        assert not tlb.lookup(8192)

    def test_miss_count(self):
        tlb = Tlb(entries=4, page_bytes=8192)
        tlb.lookup(0)
        tlb.lookup(0)
        tlb.lookup(8192)
        assert tlb.misses == 2


class TestBranchPredictor:
    def test_learns_always_taken(self):
        predictor = BranchPredictor(entries=64)
        results = [predictor.predict_and_update(4, True) for _ in range(6)]
        assert results[-1]                 # converged to taken
        assert not all(results)            # initial miss allowed

    def test_learns_not_taken_immediately(self):
        predictor = BranchPredictor(entries=64)
        assert predictor.predict_and_update(4, False)  # weakly not-taken

    def test_alternating_pattern_mispredicts(self):
        predictor = BranchPredictor(entries=64)
        outcomes = [bool(i % 2) for i in range(40)]
        correct = sum(predictor.predict_and_update(8, t) for t in outcomes)
        assert correct < 30                # 2-bit counters struggle

    def test_distinct_pcs_use_distinct_counters(self):
        predictor = BranchPredictor(entries=64)
        for _ in range(4):
            predictor.predict_and_update(1, True)
            predictor.predict_and_update(2, False)
        assert predictor.predict_and_update(1, True)
        assert predictor.predict_and_update(2, False)

    def test_mispredict_count(self):
        predictor = BranchPredictor(entries=64)
        predictor.predict_and_update(0, True)   # weakly NT -> wrong
        predictor.predict_and_update(0, True)   # weakly T?  counter was 1->2
        assert predictor.mispredicts >= 1
