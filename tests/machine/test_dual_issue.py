"""Multi-issue extension: width-2 timing semantics."""

from dataclasses import replace

from repro.isa import DataSymbol, Instruction, Reg, assemble
from repro.machine import DEFAULT_CONFIG, Simulator

WIDE = replace(DEFAULT_CONFIG, issue_width=2)


def v(i, kind="i"):
    return Reg(kind, i, virtual=True)


def run(instrs, config=DEFAULT_CONFIG, symbols=None):
    program = assemble([("entry", list(instrs) + [Instruction("HALT")])],
                       symbols=symbols,
                       data_size=max((s.address + s.size_bytes
                                      for s in (symbols or {}).values()),
                                     default=0))
    sim = Simulator(program, config=config)
    return sim, sim.run()


def test_width2_pairs_independent_instructions():
    instrs = [Instruction("LDI", dest=v(i), imm=i) for i in range(8)]
    _, narrow = run(instrs)
    _, wide = run(instrs, config=WIDE)
    useful_narrow = narrow.total_cycles - narrow.icache_stall_cycles
    useful_wide = wide.total_cycles - wide.icache_stall_cycles
    assert useful_wide < useful_narrow
    # 8 independent LDIs: 4 cycles at width 2 (plus the HALT).
    assert useful_wide <= useful_narrow // 2 + 2


def test_width2_preserves_semantics():
    instrs = [
        Instruction("LDI", dest=v(0), imm=6),
        Instruction("LDI", dest=v(1), imm=7),
        Instruction("MUL", dest=v(2), srcs=(v(0), v(1))),
        Instruction("ADD", dest=v(3), srcs=(v(2),), imm=1),
    ]
    sim, _ = run(instrs, config=WIDE)
    assert sim.reg_value(v(2)) == 42
    assert sim.reg_value(v(3)) == 43


def test_dependent_chain_gains_nothing_from_width():
    chain = [Instruction("LDI", dest=v(0), imm=1)]
    chain += [Instruction("ADD", dest=v(i + 1), srcs=(v(i),), imm=1)
              for i in range(10)]
    _, narrow = run(chain)
    _, wide = run(chain, config=WIDE)
    useful_narrow = narrow.total_cycles - narrow.icache_stall_cycles
    useful_wide = wide.total_cycles - wide.icache_stall_cycles
    # A serial chain issues one per cycle regardless of width (small
    # slack: the ends of the chain pair with LDI/HALT).
    assert useful_wide >= useful_narrow - 2


def test_single_memory_port_serializes_mem_ops():
    symbols = {"A": DataSymbol(name="A", address=64, size_bytes=256,
                               is_fp=False, dims=(32,))}
    mems = [Instruction("LDI", dest=v(0), imm=64)]
    mems += [Instruction("LD", dest=v(1 + i), srcs=(v(0),), offset=8 * i)
             for i in range(8)]
    _, wide = run(mems, config=WIDE)
    alus = [Instruction("LDI", dest=v(100 + i), imm=i) for i in range(8)]
    _, wide_alu = run([Instruction("LDI", dest=v(0), imm=64)] + alus,
                      config=WIDE)
    useful_mem = wide.total_cycles - wide.icache_stall_cycles
    useful_alu = wide_alu.total_cycles - wide_alu.icache_stall_cycles
    # Loads are limited to one per cycle; plain ALU ops pair freely.
    assert useful_mem > useful_alu


def test_width1_unchanged_by_extension_fields():
    """The default config must behave exactly like the paper's model."""
    instrs = [
        Instruction("LDI", dest=v(0), imm=3),
        Instruction("MUL", dest=v(1), srcs=(v(0), v(0))),
        Instruction("ADD", dest=v(2), srcs=(v(1),), imm=1),
    ]
    _, metrics = run(instrs)
    assert metrics.fixed_interlock_cycles == 7
