"""Metrics container behaviour."""

from repro.machine import CacheStats, Metrics


def test_cache_stats_derived_values():
    stats = CacheStats(accesses=10, misses=3)
    assert stats.hits == 7
    assert stats.miss_rate == 0.3
    assert CacheStats().miss_rate == 0.0


def test_interlock_totals():
    metrics = Metrics(total_cycles=100, load_interlock_cycles=20,
                      fixed_interlock_cycles=5)
    assert metrics.interlock_cycles == 25
    assert metrics.load_interlock_fraction == 0.2


def test_load_fraction_zero_when_no_cycles():
    assert Metrics().load_interlock_fraction == 0.0


def test_class_counts_keys():
    metrics = Metrics(short_int=1, long_int=2, short_fp=3, long_fp=4,
                      loads=5, stores=6, branches=7, spill_loads=1,
                      spill_stores=2)
    counts = metrics.class_counts()
    assert counts["long_int"] == 2
    assert counts["spill_stores"] == 2
    assert set(counts) == {"short_int", "long_int", "short_fp", "long_fp",
                           "loads", "stores", "branches", "spill_loads",
                           "spill_stores"}


def test_summary_mentions_key_counters():
    metrics = Metrics(total_cycles=1234, instructions=1000,
                      load_interlock_cycles=99)
    text = metrics.summary()
    assert "1234" in text
    assert "99" in text
    assert "load interlocks" in text
