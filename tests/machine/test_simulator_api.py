"""Simulator public API: symbols, register access, misuse handling."""

import pytest

from repro.isa import DataSymbol, Instruction, Reg, assemble
from repro.machine import Simulator


def v(i, kind="i"):
    return Reg(kind, i, virtual=True)


def trivial_program(symbols=None):
    return assemble([("entry", [Instruction("HALT")])],
                    symbols=symbols or {},
                    data_size=max((s.address + s.size_bytes
                                   for s in (symbols or {}).values()),
                                  default=0))


def matrix_symbol():
    return {"M": DataSymbol(name="M", address=64, size_bytes=4 * 8,
                            is_fp=True, dims=(2, 2))}


class TestSymbols:
    def test_set_and_get_flat(self):
        sim = Simulator(trivial_program(matrix_symbol()))
        sim.set_symbol("M", [1.0, 2.0, 3.0, 4.0])
        assert sim.get_symbol("M") == [1.0, 2.0, 3.0, 4.0]

    def test_set_nested_and_scalars_coerced(self):
        sim = Simulator(trivial_program(matrix_symbol()))
        sim.set_symbol("M", [[1, 2], [3, 4]])       # ints -> floats
        assert sim.get_symbol("M") == [1.0, 2.0, 3.0, 4.0]

    def test_int_symbol_coerces_floats(self):
        symbols = {"K": DataSymbol(name="K", address=64, size_bytes=16,
                                   is_fp=False, dims=(2,))}
        sim = Simulator(trivial_program(symbols))
        sim.set_symbol("K", [1.9, 2.1])
        assert sim.get_symbol("K") == [1, 2]

    def test_scalar_symbol_roundtrip(self):
        symbols = {"s": DataSymbol(name="s", address=64, size_bytes=8,
                                   is_fp=True)}
        sim = Simulator(trivial_program(symbols))
        sim.set_symbol("s", 7.25)
        assert sim.get_symbol("s") == 7.25

    def test_too_many_values_rejected(self):
        sim = Simulator(trivial_program(matrix_symbol()))
        with pytest.raises(ValueError):
            sim.set_symbol("M", [0.0] * 5)

    def test_unknown_symbol_rejected(self):
        sim = Simulator(trivial_program(matrix_symbol()))
        with pytest.raises(KeyError):
            sim.set_symbol("NOPE", [1.0])

    def test_initial_values_applied_at_construction(self):
        symbols = matrix_symbol()
        symbols["M"].initial = [9.0, 8.0, 7.0, 6.0]
        sim = Simulator(trivial_program(symbols))
        assert sim.get_symbol("M") == [9.0, 8.0, 7.0, 6.0]

    def test_fp_arrays_zero_filled(self):
        sim = Simulator(trivial_program(matrix_symbol()))
        assert sim.get_symbol("M") == [0.0, 0.0, 0.0, 0.0]
        assert all(isinstance(value, float)
                   for value in sim.get_symbol("M"))


class TestRegisters:
    def test_untouched_register_reads_zero(self):
        sim = Simulator(trivial_program())
        assert sim.reg_value(v(5)) == 0
        assert sim.reg_value(v(5, "f")) == 0.0

    def test_zero_registers_always_zero(self):
        from repro.isa import FZERO, ZERO
        sim = Simulator(trivial_program())
        assert sim.reg_value(ZERO) == 0
        assert sim.reg_value(FZERO) == 0.0

    def test_stack_pointer_initialized(self):
        from repro.isa import SP
        program = assemble([("entry", [
            Instruction("ADD", dest=v(0), srcs=(SP,), imm=0),
            Instruction("HALT"),
        ])])
        sim = Simulator(program)
        sim.run()
        assert sim.reg_value(v(0)) == sim.stack_base
        assert sim.stack_base % 8 == 0


def test_metrics_accessible_before_and_after_run():
    sim = Simulator(trivial_program())
    assert sim.metrics.total_cycles == 0
    metrics = sim.run()
    assert metrics is sim.metrics
    assert metrics.instructions == 1
