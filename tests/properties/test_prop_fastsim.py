"""Property tests: the compiled fast engine is bit-identical to the
reference interpreter on generated loop kernels.

The generator builds small array kernels (loads, stores, fp
arithmetic, conditionals, reductions) whose steady-state iterations
exercise the engine's block memoization; every metrics counter,
including the interlock split and the cache/TLB stats, plus final
memory and registers must match the interpreter exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.compile import Options, compile_source
from repro.machine import Simulator


def _state(sim):
    d = {}
    for key, value in vars(sim.metrics).items():
        if key == "run_seconds":
            continue
        if hasattr(value, "__dict__"):
            for k2, v2 in vars(value).items():
                d[f"{key}.{k2}"] = v2
        elif isinstance(value, (int, float)):
            d[key] = value
    d["memory"] = list(sim.memory)
    d["regs"] = list(sim.regs)
    return d


@st.composite
def loop_kernels(draw):
    n = draw(st.integers(4, 48))
    c1 = draw(st.integers(-9, 9))
    c2 = draw(st.floats(-4.0, 4.0, allow_nan=False, width=32))
    lag = draw(st.integers(1, 3))
    body = []
    for _ in range(draw(st.integers(1, 4))):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            body.append(f"B[i] = A[i] * {c2:.3f} + A[i - {lag}];")
        elif kind == 1:
            body.append(f"if (A[i] < {c2:.3f}) "
                        f"{{ B[i] = 0.0 - A[i]; }}")
        elif kind == 2:
            body.append("acc = acc + B[i] * 0.5;")
        else:
            body.append(f"A[i] = A[i - {lag}] + float({c1});")
    stmts = "\n            ".join(body)
    source = f"""
array A[{n}] : float;
array B[{n}] : float;
var n : int = {n};

func main() {{
    var i : int;
    var acc : float;
    acc = 0.0;
    for (i = 0; i < n; i = i + 1) {{
        A[i] = float(i * {c1}) * 0.25 + {c2:.3f};
        B[i] = 0.0;
    }}
    for (i = {lag}; i < n; i = i + 1) {{
        {stmts}
    }}
    B[0] = acc;
}}
"""
    scheduler = draw(st.sampled_from(["balanced", "traditional",
                                      "none"]))
    return source, scheduler


@given(loop_kernels())
@settings(max_examples=25, deadline=None)
def test_fast_engine_matches_reference(case):
    source, scheduler = case
    program = compile_source(source,
                             Options(scheduler=scheduler)).program
    ref = Simulator(program, mode="reference")
    ref.run(max_instructions=2_000_000)
    fast = Simulator(program, mode="fast")
    fast.run(max_instructions=2_000_000)
    assert fast.mode_used == "fast"
    assert _state(ref) == _state(fast), scheduler
