"""Property tests: affine forms agree with direct evaluation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import AffineForm, affine_of
from repro.frontend import parse

NAMES = ("i", "j", "k")

coeff_lists = st.lists(
    st.tuples(st.sampled_from(NAMES), st.integers(-20, 20)),
    max_size=5)
envs = st.fixed_dictionaries({n: st.integers(-100, 100) for n in NAMES})


def evaluate(form: AffineForm, env: dict) -> int:
    return sum(c * env[n] for n, c in form.coeffs) + form.const


def build(pairs, const) -> AffineForm:
    form = AffineForm.constant(const)
    for name, coeff in pairs:
        form = form.add(AffineForm.variable(name).scale(coeff))
    return form


@given(coeff_lists, st.integers(-50, 50), coeff_lists,
       st.integers(-50, 50), envs)
@settings(max_examples=100, deadline=None)
def test_addition_is_pointwise(pairs_a, ca, pairs_b, cb, env):
    a, b = build(pairs_a, ca), build(pairs_b, cb)
    assert evaluate(a.add(b), env) == evaluate(a, env) + evaluate(b, env)
    assert evaluate(a.add(b, -1), env) == evaluate(a, env) - evaluate(b, env)


@given(coeff_lists, st.integers(-50, 50), st.integers(-10, 10), envs)
@settings(max_examples=100, deadline=None)
def test_scaling_is_pointwise(pairs, const, factor, env):
    form = build(pairs, const)
    assert evaluate(form.scale(factor), env) == factor * evaluate(form, env)


@given(coeff_lists, st.integers(-50, 50))
@settings(max_examples=100, deadline=None)
def test_zero_coefficients_are_normalized_away(pairs, const):
    form = build(pairs, const)
    assert all(c != 0 for _, c in form.coeffs)


@st.composite
def affine_source_exprs(draw, depth=0):
    """Textual expressions that are affine by construction."""
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return str(draw(st.integers(-9, 9)))
        return draw(st.sampled_from(NAMES))
    kind = draw(st.integers(0, 2))
    left = draw(affine_source_exprs(depth=depth + 1))
    right = draw(affine_source_exprs(depth=depth + 1))
    if kind == 0:
        return f"({left} + {right})"
    if kind == 1:
        return f"({left} - {right})"
    scale = draw(st.integers(-6, 6))
    return f"({scale} * {left})"


@given(affine_source_exprs(), envs)
@settings(max_examples=100, deadline=None)
def test_affine_of_matches_python_eval(text, env):
    program = parse(f"func main() {{ x = {text}; }}")
    expr = program.function("main").body.statements[0].value
    form = affine_of(expr)
    assert form is not None
    assert evaluate(form, env) == eval(text, {}, dict(env))  # noqa: S307
