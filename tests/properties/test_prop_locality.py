"""Property tests: locality analysis on generated affine loops.

For arbitrary (aligned) array geometries and constant offsets, the
analysis must mark at most one MISS per reuse group per straight-line
region, never mark a non-affine reference, and always preserve
semantics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_locality
from repro.frontend import frontend
from repro.harness.compile import Options, compile_source
from repro.isa import Locality
from repro.machine import Simulator


@st.composite
def spatial_loops(draw):
    rows = draw(st.sampled_from([8, 16, 32]))
    cols = draw(st.sampled_from([8, 16, 32, 64]))
    offset = draw(st.integers(0, 3))
    lo = draw(st.integers(0, 2))
    scale = draw(st.sampled_from(["0.5", "0.25", "2.0"]))
    hi = cols - 4
    source = f"""
array A[{rows}][{cols}] : float;
array C[{rows}][{cols}] : float;
var n : int = {rows};
func main() {{
    var i : int; var j : int;
    for (i = 0; i < n; i = i + 1) {{
        for (j = 0; j < {cols}; j = j + 1) {{
            A[i][j] = float(i * {cols} + j) * 0.125;
        }}
    }}
    for (i = 0; i < n; i = i + 1) {{
        for (j = {lo}; j < {hi}; j = j + 1) {{
            C[i][j] = A[i][j + {offset}] * {scale};
        }}
    }}
}}
"""
    return source


@given(spatial_loops())
@settings(max_examples=20, deadline=None)
def test_marking_is_consistent(source):
    program = frontend(source)
    stats = analyze_locality(program)
    # With line-aligned rows, the stride-1 reference must be spatial.
    assert stats.refs_spatial >= 1
    result = compile_source(source, Options(scheduler="balanced",
                                            locality=True))
    # Per reuse group: at most one MISS among the loads of the group
    # within the final program's unrolled body.
    by_group: dict = {}
    for instr in result.program.instructions:
        if instr.is_load and instr.group is not None:
            by_group.setdefault(instr.group, []).append(instr.locality)
    for group, hints in by_group.items():
        assert hints.count(Locality.MISS) <= 1, group


@given(spatial_loops())
@settings(max_examples=15, deadline=None)
def test_locality_transform_preserves_results(source):
    base = compile_source(source, Options(scheduler="balanced"))
    with_la = compile_source(source, Options(scheduler="balanced",
                                             locality=True))
    sim_a, sim_b = Simulator(base.program), Simulator(with_la.program)
    sim_a.run(max_instructions=2_000_000)
    sim_b.run(max_instructions=2_000_000)
    assert sim_a.get_symbol("C") == sim_b.get_symbol("C")
