"""Property tests: scheduling on random DAGs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import DEFAULT_CONFIG
from repro.sched import (
    BalancedWeights,
    TraditionalWeights,
    list_schedule,
    priorities,
)
from repro.workloads import random_dag

dag_params = st.tuples(
    st.integers(min_value=1, max_value=120),      # size
    st.integers(min_value=1, max_value=10_000),   # seed
    st.integers(min_value=0, max_value=8),        # load tenths
)


def make_dag(params):
    size, seed, load_tenths = params
    return random_dag(size, seed=seed, load_fraction=load_tenths / 10)


@given(dag_params)
@settings(max_examples=60, deadline=None)
def test_balanced_schedule_is_valid_topological_order(params):
    dag = make_dag(params)
    order = list_schedule(dag, BalancedWeights())
    assert sorted(order) == list(range(len(dag.instrs)))
    assert dag.topological_check(order)


@given(dag_params)
@settings(max_examples=60, deadline=None)
def test_traditional_schedule_is_valid_topological_order(params):
    dag = make_dag(params)
    order = list_schedule(dag, TraditionalWeights())
    assert dag.topological_check(order)


@given(dag_params)
@settings(max_examples=60, deadline=None)
def test_balanced_weights_bounded(params):
    dag = make_dag(params)
    weights = BalancedWeights().weights(dag)
    floor = DEFAULT_CONFIG.load_hit_latency
    cap = DEFAULT_CONFIG.max_load_weight
    for node in dag.load_indices():
        assert floor <= weights[node] <= cap


@given(dag_params)
@settings(max_examples=40, deadline=None)
def test_non_load_weights_equal_fixed_latencies(params):
    dag = make_dag(params)
    balanced = BalancedWeights().weights(dag)
    traditional = TraditionalWeights().weights(dag)
    for index, instr in enumerate(dag.instrs):
        if not instr.is_load:
            assert balanced[index] == traditional[index]


@given(dag_params)
@settings(max_examples=40, deadline=None)
def test_priorities_monotone_along_edges(params):
    dag = make_dag(params)
    weights = TraditionalWeights().weights(dag)
    prio = priorities(dag, weights)
    for src in range(len(dag.instrs)):
        for dst in dag.succs[src]:
            assert prio[src] > prio[dst] or weights[src] == 0


@given(dag_params)
@settings(max_examples=30, deadline=None)
def test_uniform_sharing_never_exceeds_component_sharing(params):
    """Splitting a contributor over all loads gives each at most the
    component share (components partition, so shares are larger)."""
    dag = make_dag(params)
    component = BalancedWeights(component_sharing=True, cap=None)
    uniform = BalancedWeights(component_sharing=False, cap=None)
    w_component = component.weights(dag)
    w_uniform = uniform.weights(dag)
    for node in dag.load_indices():
        assert w_uniform[node] <= w_component[node] + 1e-9
