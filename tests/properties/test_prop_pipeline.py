"""Property tests: whole-pipeline fuzz over float array kernels.

Generates loop kernels over float arrays (stencil offsets, guarded
updates, scalar accumulators), computes the expected result with a
small Python interpreter of the same kernel, and checks the compiled
program under aggressive optimization settings.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.compile import Options, compile_source
from repro.machine import Simulator

N = 24


@st.composite
def stencil_kernels(draw):
    """A guarded stencil update over a float array, plus an oracle."""
    coeff_a = draw(st.integers(-3, 3))
    coeff_b = draw(st.integers(-3, 3))
    offset = draw(st.integers(1, 2))
    threshold = draw(st.integers(-20, 20))
    init_scale = draw(st.integers(1, 5))
    use_guard = draw(st.booleans())

    guard = (f"if (B[i] < {threshold}.0) "
             f"{{ OUT[i] = OUT[i] + 1.0; }}" if use_guard else "")
    source = f"""
array B[{N}] : float;
array OUT[{N}] : float;
var n : int = {N};
var acc : float = 0.0;
func main() {{
    var i : int;
    for (i = 0; i < n; i = i + 1) {{
        B[i] = float(i * {init_scale} % 17) - 6.0;
    }}
    for (i = {offset}; i < {N - offset}; i = i + 1) {{
        OUT[i] = B[i - {offset}] * {coeff_a}.0
               + B[i + {offset}] * {coeff_b}.0;
        {guard}
        acc = acc + OUT[i];
    }}
}}
"""
    b = [float(i * init_scale % 17) - 6.0 for i in range(N)]
    out = [0.0] * N
    acc = 0.0
    for i in range(offset, N - offset):
        out[i] = b[i - offset] * coeff_a + b[i + offset] * coeff_b
        if use_guard and b[i] < threshold:
            out[i] += 1.0
        acc += out[i]
    return source, out, acc


CONFIGS = [
    Options(scheduler="balanced", unroll=4),
    Options(scheduler="balanced", unroll=8, locality=True),
    Options(scheduler="traditional", unroll=4, trace=True),
    Options(scheduler="balanced", unroll=4, trace=True, locality=True),
    Options(scheduler="balanced", unroll=4, extra_opts=True),
    Options(scheduler="traditional", locality=True, extra_opts=True),
]


@given(stencil_kernels())
@settings(max_examples=25, deadline=None)
def test_stencil_kernels_match_oracle(case):
    source, expected_out, expected_acc = case
    for options in CONFIGS:
        result = compile_source(source, options)
        sim = Simulator(result.program)
        sim.run(max_instructions=500_000)
        got = sim.get_symbol("OUT")
        for i, (value, expect) in enumerate(zip(got, expected_out)):
            assert abs(value - expect) < 1e-9, (options.label(), i)
        assert abs(sim.get_symbol("acc") - expected_acc) < 1e-6, \
            options.label()


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=20, deadline=None)
def test_dynamic_counts_invariant_across_schedulers(seed):
    """Scheduling never changes what executes, only when."""
    from repro.workloads import KernelSpec, generate_kernel

    spec = KernelSpec(loads_per_iteration=1 + seed % 4,
                      flops_per_load=1 + seed % 3,
                      array_kb=4, sweeps=1,
                      serial_chain=bool(seed & 1))
    source = generate_kernel(spec)
    counts = []
    for scheduler in ("balanced", "traditional"):
        result = compile_source(source, Options(scheduler=scheduler))
        metrics = Simulator(result.program).run(max_instructions=2_000_000)
        counts.append((metrics.instructions, metrics.loads,
                       metrics.stores, metrics.branches))
    assert counts[0] == counts[1]
