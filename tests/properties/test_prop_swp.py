"""Property test: software pipelining preserves program semantics.

Random :mod:`repro.workloads.generator` kernels (the parametric
sensitivity-study generator) are compiled with and without ``swp``
under randomly drawn scheduler/unroll/extra-opts combinations; the
simulator-observable result — the final contents of every data symbol
— must be identical.  The ``swp`` acceptance bar is >= 200 generated
programs, split across the Hypothesis cases here (each case checks one
program under both schedulers when it pipelines anything).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.compile import Options, compile_source
from repro.machine import Simulator
from repro.workloads.generator import KernelSpec, generate_kernel

#: Count of (program, config) comparisons performed, for the >= 200
#: acceptance bar; asserted by test_comparison_volume below (pytest
#: runs tests in file order).
_COMPARISONS = [0]


def _final_symbols(source, options):
    result = compile_source(source, options, "gen")
    sim = Simulator(result.program)
    sim.run()
    symbols = {name: sim.get_symbol(name)
               for name in result.program.symbols}
    return result, symbols


def _spec_strategy():
    return st.builds(
        KernelSpec,
        loads_per_iteration=st.integers(1, 4),
        flops_per_load=st.integers(0, 3),
        array_kb=st.just(1),          # smallest arrays: fast simulation
        serial_chain=st.booleans(),
        sweeps=st.integers(1, 2))


@given(spec=_spec_strategy(),
       scheduler=st.sampled_from(["balanced", "traditional"]),
       unroll=st.sampled_from([0, 4]),
       extra_opts=st.booleans())
@settings(max_examples=150, deadline=None)
def test_swp_preserves_generated_kernel_semantics(spec, scheduler,
                                                  unroll, extra_opts):
    source = generate_kernel(spec)
    base_opts = Options(scheduler=scheduler, unroll=unroll,
                        extra_opts=extra_opts)
    swp_opts = Options(scheduler=scheduler, unroll=unroll,
                       extra_opts=extra_opts, swp=True)
    _, expected = _final_symbols(source, base_opts)
    result, observed = _final_symbols(source, swp_opts)
    _COMPARISONS[0] += 1
    assert observed == expected
    # The stats must cover every candidate loop, pipelined or bailed.
    stats = result.modulo_stats
    assert stats is not None
    for loop in stats.loops:
        if loop.pipelined:
            assert loop.mii <= loop.ii <= 2 * loop.mii


@given(spec=_spec_strategy())
@settings(max_examples=80, deadline=None)
def test_swp_la_preserves_generated_kernel_semantics(spec):
    source = generate_kernel(spec)
    _, expected = _final_symbols(source, Options(locality=True))
    _, observed = _final_symbols(
        source, Options(locality=True, swp=True))
    _COMPARISONS[0] += 1
    assert observed == expected


def test_comparison_volume():
    """The acceptance bar: >= 200 with/without-swp comparisons ran."""
    assert _COMPARISONS[0] >= 200


def test_generator_kernels_actually_pipeline():
    """Guard against silently testing nothing: the canonical generated
    kernel must pipeline at least one loop."""
    source = generate_kernel(KernelSpec(loads_per_iteration=2,
                                        flops_per_load=2, array_kb=1))
    result = compile_source(source, Options(swp=True), "gen")
    assert result.modulo_stats.pipelined >= 1
