"""Property tests: the oracle against heuristics and brute force.

Three levels of evidence on random DAGs:

* the oracle's certified makespan never exceeds any list-scheduling
  heuristic's (it minimizes over a superset of schedules);
* every oracle witness is a legal schedule (topological, latencies
  respected, one op per issue slot);
* on tiny DAGs (<= 7 nodes) the certified optima match exhaustive
  enumeration of all topological orders: equality for the makespan
  (in-order greedy timing loses nothing at a fixed order set) and
  <= for the lexicographic and combined costs (the oracle may insert
  idle slots no in-order schedule can express).
"""

from itertools import permutations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import DEFAULT_CONFIG
from repro.oracle.block import (
    STATUS_OPTIMAL,
    block_problem,
    greedy_issue_times,
    makespan,
    oracle_block,
    oracle_order,
    schedule_cost,
    stall_loads,
)
from repro.sched import BalancedWeights, TraditionalWeights, list_schedule
from repro.workloads import random_dag

dag_params = st.tuples(
    st.integers(min_value=1, max_value=12),       # size
    st.integers(min_value=1, max_value=10_000),   # seed
    st.integers(min_value=0, max_value=8),        # load tenths
)


def _oracle(dag):
    balanced = BalancedWeights()
    weights = balanced.weights(dag)
    seeds = {
        "balanced": list_schedule(dag, balanced),
        "traditional": list_schedule(dag, TraditionalWeights()),
    }
    return oracle_block(dag, DEFAULT_CONFIG, weights, seeds), weights


@given(dag_params)
@settings(max_examples=40, deadline=None)
def test_oracle_cost_bounds_every_heuristic(params):
    size, seed, load_tenths = params
    dag = random_dag(size, seed=seed, load_fraction=load_tenths / 10)
    result, _ = _oracle(dag)
    assert result.status == STATUS_OPTIMAL
    for name, (h_makespan, h_stall) in result.heuristics.items():
        assert result.makespan <= h_makespan, name
        assert (result.makespan, result.stall) \
            <= (h_makespan, h_stall), name
        assert result.total <= h_makespan + h_stall, name


@given(dag_params)
@settings(max_examples=40, deadline=None)
def test_oracle_witness_is_legal(params):
    size, seed, load_tenths = params
    dag = random_dag(size, seed=seed, load_fraction=load_tenths / 10)
    result, _ = _oracle(dag)
    order = oracle_order(result)
    assert sorted(order) == list(range(len(dag.instrs)))
    assert dag.topological_check(order)
    problem = block_problem(dag, DEFAULT_CONFIG)
    for arc in problem.arcs:
        assert result.times[arc.dst] - result.times[arc.src] \
            >= arc.latency
    assert len(set(result.times)) == len(result.times)  # single issue


def _all_topological_orders(dag):
    n = len(dag.instrs)
    for perm in permutations(range(n)):
        if dag.topological_check(list(perm)):
            yield list(perm)


def test_tiny_dags_match_exhaustive_enumeration():
    for seed in (1, 2, 3, 17, 99):
        for load_tenths in (2, 6):
            dag = random_dag(6, seed=seed,
                             load_fraction=load_tenths / 10)
            assert len(dag.instrs) <= 7
            result, weights = _oracle(dag)
            assert result.status == STATUS_OPTIMAL
            loads = stall_loads(dag, weights)
            best_makespan = None
            best_lex = None
            best_total = None
            for order in _all_topological_orders(dag):
                times = greedy_issue_times(dag, order, DEFAULT_CONFIG)
                cost = schedule_cost(times, loads)
                total = makespan(times) + cost[1]
                if best_makespan is None or cost[0] < best_makespan:
                    best_makespan = cost[0]
                if best_lex is None or cost < best_lex:
                    best_lex = cost
                if best_total is None or total < best_total:
                    best_total = total
            # Greedy in-order timing of the best order is itself a
            # valid assignment, so the oracle can only match or beat
            # it; for the makespan the two formulations coincide.
            assert result.makespan == best_makespan, seed
            assert (result.makespan, result.stall) <= best_lex, seed
            assert result.total <= best_total, seed
