"""Property tests: generated programs compute what Python computes.

A small expression generator builds straight-line programs over int
scalars (with safe operators only), evaluates them in Python, then
checks the compiled + simulated result under several pipeline
configurations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.compile import Options, compile_source
from repro.machine import Simulator

VARS = ["a", "b", "c"]


def _binop(op, left, right):
    return f"({left} {op} {right})"


@st.composite
def int_exprs(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 3))
        if choice == 0:
            return str(draw(st.integers(-50, 50)))
        return draw(st.sampled_from(VARS))
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(int_exprs(depth=depth + 1))
    right = draw(int_exprs(depth=depth + 1))
    return _binop(op, left, right)


@st.composite
def straightline_programs(draw):
    """(source, expected OUT values)."""
    env = {"a": draw(st.integers(-20, 20)),
           "b": draw(st.integers(-20, 20)),
           "c": draw(st.integers(-20, 20))}
    lines = [f"    {name} = {value};" for name, value in env.items()]
    n_stmts = draw(st.integers(1, 5))
    expected = []
    for index in range(n_stmts):
        target = draw(st.sampled_from(VARS))
        expr = draw(int_exprs())
        env[target] = eval(expr, {}, dict(env))  # noqa: S307 - test oracle
        lines.append(f"    {target} = {expr};")
    for slot, name in enumerate(VARS):
        lines.append(f"    OUT[{slot}] = {name};")
        expected.append(env[name])
    body = "\n".join(lines)
    source = f"""
array OUT[3] : int;
func main() {{
    var a : int; var b : int; var c : int;
{body}
}}
"""
    return source, expected


CONFIGS = [
    Options(scheduler="none"),
    Options(scheduler="traditional"),
    Options(scheduler="balanced"),
    Options(scheduler="balanced", classic_opts=False),
]


@given(straightline_programs())
@settings(max_examples=40, deadline=None)
def test_generated_programs_match_python(case):
    source, expected = case
    for options in CONFIGS:
        result = compile_source(source, options)
        sim = Simulator(result.program)
        sim.run(max_instructions=500_000)
        assert sim.get_symbol("OUT") == expected, options.label()


@st.composite
def loop_programs(draw):
    """Counted loops with a guarded accumulation; oracle in Python."""
    lo = draw(st.integers(0, 4))
    hi = draw(st.integers(0, 24))
    step = draw(st.integers(1, 3))
    scale = draw(st.integers(-4, 4))
    threshold = draw(st.integers(-10, 40))
    source = f"""
array OUT[2] : int;
func main() {{
    var i : int; var acc : int; var hits : int;
    acc = 0;
    hits = 0;
    for (i = {lo}; i < {hi}; i = i + {step}) {{
        acc = acc + i * {scale};
        if (acc < {threshold}) {{ hits = hits + 1; }}
    }}
    OUT[0] = acc;
    OUT[1] = hits;
}}
"""
    acc = 0
    hits = 0
    i = lo
    while i < hi:
        acc += i * scale
        if acc < threshold:
            hits += 1
        i += step
    return source, [acc, hits]


@given(loop_programs())
@settings(max_examples=40, deadline=None)
def test_generated_loops_match_python(case):
    source, expected = case
    for options in (Options(scheduler="balanced", unroll=4),
                    Options(scheduler="traditional", unroll=8),
                    Options(scheduler="balanced", trace=True),
                    Options(scheduler="balanced", unroll=4,
                            extra_opts=True)):
        result = compile_source(source, options)
        sim = Simulator(result.program)
        sim.run(max_instructions=500_000)
        assert sim.get_symbol("OUT") == expected, options.label()
