"""Property test: random generated kernels survive validated compiles.

Draws random :class:`~repro.workloads.generator.KernelSpec` points from
seeded RNGs and pushes each generated program through the full pipeline
under every major config family (base / unroll / trace / locality /
swp) with a raising :class:`~repro.check.PipelineValidator` attached.
Any pass that breaks an IR invariant or reorders a dependence fails
the compile; the failure message carries the seed so the exact program
is reproducible with ``random.Random(seed)``.
"""

import random

import pytest

from repro.check import CheckError, PipelineValidator
from repro.harness.compile import Options, compile_source
from repro.workloads.generator import KernelSpec, generate_kernel

SEEDS = list(range(10))

CONFIGS = {
    "base": Options(),
    "lu4": Options(unroll=4),
    "trs4": Options(unroll=4, trace=True),
    "la": Options(locality=True),
    "swp": Options(swp=True),
}


def spec_for_seed(seed: int) -> KernelSpec:
    rng = random.Random(seed)
    return KernelSpec(
        loads_per_iteration=rng.randint(1, 6),
        flops_per_load=rng.randint(1, 4),
        array_kb=rng.choice([1, 2, 4]),
        serial_chain=rng.random() < 0.5,
        sweeps=1,
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_random_kernels_validate_under_all_configs(seed):
    spec = spec_for_seed(seed)
    source = generate_kernel(spec)
    for label, options in CONFIGS.items():
        validator = PipelineValidator(mode="raise")
        try:
            result = compile_source(source, options,
                                    name=f"fuzz-{seed}",
                                    validator=validator)
        except CheckError as exc:
            pytest.fail(
                f"seed={seed} ({spec.describe()}) config={label}: "
                f"{exc}")
        assert not validator.diagnostics, (
            f"seed={seed} ({spec.describe()}) config={label}: "
            f"{[str(d) for d in validator.diagnostics]}")
        # The validator saw every boundary it should have.
        assert "lower" in validator.boundaries
        assert "codegen.regalloc" in validator.boundaries
        if options.trace:
            assert "sched.trace" in validator.boundaries
        else:
            assert "sched.block" in validator.boundaries
        if options.swp:
            assert "sched.modulo" in validator.boundaries
        assert len(result.program) > 0


def test_seed_is_deterministic():
    """The seed fully determines the generated program (the failure
    message's reproduction contract)."""
    for seed in SEEDS[:3]:
        assert generate_kernel(spec_for_seed(seed)) == \
            generate_kernel(spec_for_seed(seed))
