"""Basic-block scheduling driver."""

from repro.frontend import frontend
from repro.codegen.lower import lower
from repro.ir import build_dag
from repro.isa import Instruction, Reg
from repro.sched import BalancedWeights, TraditionalWeights
from repro.sched.block import schedule_block, schedule_cfg


def v(i, kind="i"):
    return Reg(kind, i, virtual=True)


def test_schedule_block_keeps_singletons():
    instrs = [Instruction("NOP")]
    assert schedule_block(instrs, BalancedWeights()) == instrs
    assert schedule_block([], BalancedWeights()) == []


def test_schedule_block_is_permutation():
    instrs = [
        Instruction("LDI", dest=v(0), imm=1),
        Instruction("LDI", dest=v(1), imm=2),
        Instruction("ADD", dest=v(2), srcs=(v(0), v(1))),
        Instruction("MUL", dest=v(3), srcs=(v(2), v(2))),
    ]
    out = schedule_block(instrs, TraditionalWeights())
    assert sorted(i.uid for i in out) == sorted(i.uid for i in instrs)


def test_schedule_block_respects_dependences():
    instrs = [
        Instruction("LDI", dest=v(0), imm=1),
        Instruction("ADD", dest=v(1), srcs=(v(0),), imm=1),
        Instruction("ADD", dest=v(2), srcs=(v(1),), imm=1),
        Instruction("LDI", dest=v(9), imm=9),
    ]
    out = schedule_block(instrs, BalancedWeights())
    position = {i.uid: k for k, i in enumerate(out)}
    assert position[instrs[0].uid] < position[instrs[1].uid]
    assert position[instrs[1].uid] < position[instrs[2].uid]


def test_schedule_cfg_preserves_structure(stencil_source):
    cfg = lower(frontend(stencil_source))
    labels = list(cfg.order)
    counts = {b.label: len(b.instrs) for b in cfg}
    schedule_cfg(cfg, BalancedWeights())
    assert cfg.order == labels
    assert {b.label: len(b.instrs) for b in cfg} == counts
    cfg.verify()        # terminators still at block ends


def test_schedule_cfg_keeps_terminators_last(stencil_source):
    cfg = lower(frontend(stencil_source))
    schedule_cfg(cfg, TraditionalWeights())
    for block in cfg:
        for instr in block.instrs[:-1]:
            assert not instr.is_branch
            assert instr.op != "HALT"
