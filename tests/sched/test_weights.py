"""Balanced and traditional weight models (paper section 2 / Figure 1)."""

from repro.ir import TRUE, Dag, build_dag
from repro.isa import Instruction, Locality, MemRef, Reg
from repro.machine import DEFAULT_CONFIG
from repro.sched import BalancedWeights, TraditionalWeights
from repro.workloads import figure1_dag, parallel_loads_dag, serial_loads_dag


def v(i, kind="i"):
    return Reg(kind, i, virtual=True)


def ld(dest, base, locality=Locality.UNKNOWN):
    return Instruction("LD", dest=v(dest), srcs=(v(base),),
                       mem=MemRef("data", "A", affine=None),
                       locality=locality)


class TestTraditional:
    def test_fixed_architectural_latencies(self):
        dag = build_dag([
            Instruction("LDI", dest=v(0), imm=64),
            ld(1, 0),
            Instruction("MUL", dest=v(2), srcs=(v(1), v(1))),
            Instruction("FADD", dest=v(3, "f"), srcs=(v(4, "f"), v(5, "f"))),
            Instruction("FDIV", dest=v(6, "f"), srcs=(v(3, "f"), v(4, "f"))),
        ])
        weights = TraditionalWeights().weights(dag)
        assert weights == [1.0, 2.0, 8.0, 4.0, 30.0]

    def test_loads_get_optimistic_hit_latency(self):
        dag = build_dag([Instruction("LDI", dest=v(0), imm=64), ld(1, 0)])
        assert TraditionalWeights().weights(dag)[1] == \
            DEFAULT_CONFIG.load_hit_latency


class TestBalancedFigure1:
    def test_paper_figure1_weights(self):
        """Parallel loads weigh 3, the serial chain weighs 2."""
        dag = figure1_dag()
        weights = BalancedWeights().weights(dag)
        assert weights[1] == 3.0 and weights[2] == 3.0     # L0, L1
        assert weights[3] == 2.0 and weights[4] == 2.0     # L2, L3

    def test_non_loads_keep_fixed_weights(self):
        dag = figure1_dag()
        weights = BalancedWeights().weights(dag)
        for node in (0, 5, 6, 7):
            assert weights[node] == 1.0


class TestBalancedProperties:
    def test_weights_floored_at_hit_latency(self):
        # A load with no independent instructions at all.
        dag = build_dag([
            Instruction("LDI", dest=v(0), imm=64),
            ld(1, 0),
            Instruction("ADD", dest=v(2), srcs=(v(1),), imm=1),
        ])
        weights = BalancedWeights().weights(dag)
        assert weights[1] == DEFAULT_CONFIG.load_hit_latency

    def test_weights_capped_at_memory_latency(self):
        dag = parallel_loads_dag(n_loads=1, n_alu=200)
        weights = BalancedWeights().weights(dag)
        load = dag.load_indices()[0]
        assert weights[load] == DEFAULT_CONFIG.max_load_weight

    def test_custom_cap(self):
        dag = parallel_loads_dag(n_loads=1, n_alu=200)
        weights = BalancedWeights(cap=10).weights(dag)
        assert weights[dag.load_indices()[0]] == 10

    def test_parallel_loads_share_equally(self):
        dag = parallel_loads_dag(n_loads=4, n_alu=8)
        weights = BalancedWeights().weights(dag)
        loads = dag.load_indices()
        values = {weights[i] for i in loads}
        assert len(values) == 1                  # symmetric -> equal

    def test_serial_chain_gets_less_than_parallel(self):
        parallel = parallel_loads_dag(n_loads=4, n_alu=8)
        serial = serial_loads_dag(n_loads=4, n_alu=8)
        wp = BalancedWeights().weights(parallel)
        ws = BalancedWeights().weights(serial)
        # In the chain, the 8 free instructions are shared by 4 loads
        # in series; in the parallel DAG every load is covered fully.
        parallel_weight = wp[parallel.load_indices()[0]]
        serial_weight = ws[serial.load_indices()[1]]
        assert serial_weight < parallel_weight

    def test_more_alu_work_raises_weights(self):
        small = parallel_loads_dag(n_loads=2, n_alu=2)
        big = parallel_loads_dag(n_loads=2, n_alu=12)
        w_small = BalancedWeights().weights(small)
        w_big = BalancedWeights().weights(big)
        assert w_big[big.load_indices()[0]] > \
            w_small[small.load_indices()[0]]


class TestLocalitySelectivity:
    def _dag(self):
        return build_dag([
            Instruction("LDI", dest=v(0), imm=64),
            ld(1, 0, locality=Locality.HIT),
            ld(2, 0, locality=Locality.MISS),
            Instruction("ADD", dest=v(3), srcs=(v(0),), imm=1),
            Instruction("ADD", dest=v(4), srcs=(v(0),), imm=2),
        ])

    def test_hit_loads_keep_optimistic_weight(self):
        weights = BalancedWeights(use_locality=True).weights(self._dag())
        assert weights[1] == DEFAULT_CONFIG.load_hit_latency

    def test_hit_loads_contribute_to_miss_loads(self):
        with_locality = BalancedWeights(use_locality=True)
        without = BalancedWeights(use_locality=False)
        dag = self._dag()
        w_with = with_locality.weights(dag)
        w_without = without.weights(dag)
        # With locality, the hit load frees its share for the miss.
        assert w_with[2] > w_without[2]

    def test_locality_ignored_when_disabled(self):
        weights = BalancedWeights(use_locality=False).weights(self._dag())
        assert weights[1] == weights[2]


class TestComponentSharingAblation:
    def test_uniform_sharing_differs_on_figure1(self):
        dag = figure1_dag()
        component = BalancedWeights(component_sharing=True).weights(dag)
        uniform = BalancedWeights(component_sharing=False).weights(dag)
        # Uniform: X1/X2 each give 1/4 to all four loads -> all 2.0
        # under the hit floor; component sharing separates them.
        assert uniform[1] == uniform[3]
        assert component[1] > component[3]

    def test_both_rules_agree_with_no_serial_loads(self):
        dag = parallel_loads_dag(n_loads=3, n_alu=6)
        a = BalancedWeights(component_sharing=True).weights(dag)
        b = BalancedWeights(component_sharing=False).weights(dag)
        loads = dag.load_indices()
        # All loads are mutually... NOT independent of each other's
        # consumers, but pairwise parallel: each contributor covers all
        # three at once under component sharing, 1/3 each under uniform.
        assert all(a[i] >= b[i] for i in loads)


def test_empty_dag():
    dag = Dag([])
    assert BalancedWeights().weights(dag) == []
    assert TraditionalWeights().weights(dag) == []
