"""Trace-scheduling bookkeeping on hand-built CFGs.

These tests build small CFGs directly, force a profile, trace-schedule,
and then *execute* the result to verify that split and join bookkeeping
preserves behaviour on both the hot and the cold path.
"""

from repro.ir import BasicBlock, Cfg
from repro.isa import DataSymbol, Instruction, MemRef, Reg
from repro.machine import Simulator
from repro.sched import BalancedWeights, ProfileData, trace_schedule
from repro.sched.trace import TraceScheduler


def v(i, kind="i"):
    return Reg(kind, i, virtual=True)


def out_symbol(elems=8):
    return {"OUT": DataSymbol(name="OUT", address=64,
                              size_bytes=elems * 8, is_fp=False,
                              dims=(elems,))}


def store(value_reg, element):
    return Instruction("ST", srcs=(value_reg, Reg("i", 31)),
                       offset=64 + 8 * element,
                       mem=MemRef("data", "OUT", affine=({}, element)))


def build_diamond(cond_value: int) -> Cfg:
    """entry(cond) -> hot | cold -> join -> exit; join computes from
    values set on either path and stores several results."""
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock("entry", [
        Instruction("LDI", dest=v(0), imm=cond_value),
        Instruction("LDI", dest=v(10), imm=100),
        Instruction("BEQ", srcs=(v(0),), label="cold"),
    ], fallthrough="hot"))
    cfg.add_block(BasicBlock("hot", [
        Instruction("LDI", dest=v(1), imm=7),
        Instruction("ADD", dest=v(2), srcs=(v(1),), imm=1),
    ], fallthrough="join"))
    cfg.add_block(BasicBlock("cold", [
        Instruction("LDI", dest=v(1), imm=70),
        Instruction("ADD", dest=v(2), srcs=(v(1),), imm=2),
    ], fallthrough="join"))
    # The join block has plenty of hoistable work.
    cfg.add_block(BasicBlock("join", [
        Instruction("ADD", dest=v(3), srcs=(v(10),), imm=5),
        Instruction("ADD", dest=v(4), srcs=(v(3),), imm=5),
        Instruction("ADD", dest=v(5), srcs=(v(2), v(4))),
        store(v(5), 0),
        store(v(2), 1),
        store(v(4), 2),
    ], fallthrough="exit"))
    cfg.add_block(BasicBlock("exit", [Instruction("HALT")]))
    return cfg


HOT_PROFILE = ProfileData(
    block_counts={"entry": 100, "hot": 97, "cold": 3, "join": 100,
                  "exit": 100},
    edge_counts={("entry", "hot"): 97, ("entry", "cold"): 3,
                 ("hot", "join"): 97, ("cold", "join"): 3,
                 ("join", "exit"): 100})


def run_cfg(cfg: Cfg) -> list:
    program = cfg.linearize()
    sim = Simulator(program)
    sim.run()
    return sim.get_symbol("OUT")


def expected(cond_value: int) -> list:
    if cond_value != 0:            # BEQ not taken -> hot path
        v2 = 7 + 1
    else:
        v2 = 70 + 2
    v4 = 100 + 5 + 5
    return [v2 + v4, v2, v4, 0, 0, 0, 0, 0]


def test_hot_path_result_after_tracing():
    cfg = build_diamond(cond_value=1)
    cfg.symbols = out_symbol()
    cfg.data_size = 128
    reference = run_cfg(build_reference(1))
    trace_schedule(cfg, HOT_PROFILE, BalancedWeights())
    assert run_cfg(cfg) == reference == expected(1)


def test_cold_path_goes_through_compensation():
    cfg = build_diamond(cond_value=0)
    cfg.symbols = out_symbol()
    cfg.data_size = 128
    reference = run_cfg(build_reference(0))
    stats = trace_schedule(cfg, HOT_PROFILE, BalancedWeights())
    assert stats.multi_block_traces >= 1
    assert run_cfg(cfg) == reference == expected(0)


def build_reference(cond_value: int) -> Cfg:
    cfg = build_diamond(cond_value)
    cfg.symbols = out_symbol()
    cfg.data_size = 128
    return cfg


def test_join_hoisting_produces_compensation_code():
    """With a cold entering edge, join-block work hoists above the
    marker and must appear in a compensation block."""
    cfg = build_diamond(cond_value=1)
    cfg.symbols = out_symbol()
    cfg.data_size = 128
    scheduler = TraceScheduler(cfg, HOT_PROFILE, BalancedWeights())
    stats = scheduler.run()
    comp_blocks = [b for b in cfg if b.label.startswith(".comp")]
    if stats.compensation_instructions:
        assert comp_blocks
        # Compensation blocks flow back into the join label.
        for block in comp_blocks:
            assert block.fallthrough == "join"


def test_speculation_respects_off_trace_liveness():
    """v(1) is written on both sides of the split; the hot side's write
    must not move above the branch (v1 is live into 'cold'... here we
    check semantics rather than structure: the cold path sees its own
    value)."""
    cfg = build_diamond(cond_value=0)
    cfg.symbols = out_symbol()
    cfg.data_size = 128
    trace_schedule(cfg, HOT_PROFILE, BalancedWeights())
    out = run_cfg(cfg)
    assert out[1] == 72                    # the cold path's v(2)


def test_single_block_traces_still_scheduled():
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock("entry", [
        Instruction("LDI", dest=v(0), imm=1),
        Instruction("LDI", dest=v(1), imm=2),
        Instruction("ADD", dest=v(2), srcs=(v(0), v(1))),
        store(v(2), 0),
        Instruction("HALT"),
    ]))
    cfg.symbols = out_symbol()
    cfg.data_size = 128
    profile = ProfileData(block_counts={"entry": 1}, edge_counts={})
    stats = trace_schedule(cfg, profile, BalancedWeights())
    assert stats.traces == 1
    assert run_cfg(cfg)[0] == 3
