"""List scheduler: priorities, tie-breaking, validity, pressure guard."""

from repro.ir import TRUE, Dag, build_dag
from repro.isa import Instruction, MemRef, Reg
from repro.sched import (
    BalancedWeights,
    TraditionalWeights,
    estimate_issue_cycles,
    list_schedule,
    list_schedule_with_weights,
    priorities,
)
from repro.workloads import figure1_dag, parallel_loads_dag, random_dag


def v(i, kind="i"):
    return Reg(kind, i, virtual=True)


def test_priorities_accumulate_along_longest_path():
    dag = build_dag([
        Instruction("LDI", dest=v(0), imm=1),                  # w=1
        Instruction("MUL", dest=v(1), srcs=(v(0), v(0))),      # w=8
        Instruction("ADD", dest=v(2), srcs=(v(1),), imm=1),    # w=1
    ])
    weights = TraditionalWeights().weights(dag)
    prio = priorities(dag, weights)
    assert prio == [10.0, 9.0, 1.0]


def test_schedule_is_topological():
    dag = figure1_dag()
    order = list_schedule(dag, BalancedWeights())
    assert dag.topological_check(order)


def test_schedule_covers_all_nodes_once():
    dag = random_dag(60, seed=3)       # 60 instructions + 1 base LDI
    order = list_schedule(dag, TraditionalWeights())
    assert sorted(order) == list(range(61))


def test_higher_weight_load_scheduled_earlier():
    """Balanced weights hoist loads ahead of equal-priority ALU work."""
    dag = parallel_loads_dag(n_loads=2, n_alu=6)
    balanced = list_schedule(dag, BalancedWeights())
    loads = set(dag.load_indices())
    load_positions = [i for i, node in enumerate(balanced)
                      if node in loads]
    # Both loads issue within the first three slots (after the base LDI).
    assert max(load_positions) <= 3


def test_original_order_breaks_ties():
    instrs = [Instruction("LDI", dest=v(i), imm=i) for i in range(5)]
    dag = build_dag(instrs)
    order = list_schedule(dag, TraditionalWeights())
    assert order == [0, 1, 2, 3, 4]


def test_empty_dag_schedules_to_empty():
    assert list_schedule(Dag([]), TraditionalWeights()) == []


def test_estimate_issue_cycles_prefers_hoisted_loads():
    """The static estimator sees fewer stalls when loads are spread."""
    dag = parallel_loads_dag(n_loads=3, n_alu=6)
    latencies = [9.0 if ins.is_load else 1.0 for ins in dag.instrs]
    naive = list(range(len(dag.instrs)))
    scheduled = list_schedule_with_weights(
        dag, BalancedWeights().weights(dag))
    assert estimate_issue_cycles(dag, scheduled, latencies) <= \
        estimate_issue_cycles(dag, naive, latencies)


def test_pressure_guard_limits_simultaneous_live_values():
    """With many parallel loads, the guard staggers them."""
    dag = parallel_loads_dag(n_loads=40, n_alu=0)
    order = list_schedule(dag, BalancedWeights())
    # Walk the schedule tracking liveness of load results.
    instrs = dag.instrs
    live = 0
    max_live = 0
    pending_consumer = {}
    for node in order:
        ins = instrs[node]
        if ins.is_load:
            live += 1
            max_live = max(max_live, live)
        for reg in ins.uses():
            if reg in pending_consumer:
                live -= 1
                del pending_consumer[reg]
        if ins.is_load:
            pending_consumer[ins.dest] = node
    from repro.sched.list_scheduler import PRESSURE_LIMIT
    assert max_live <= PRESSURE_LIMIT + 2   # small slack at the boundary


def test_schedules_differ_between_weight_models_when_it_matters():
    """On Figure 1, balanced puts the serial chain's head early."""
    dag = figure1_dag()
    balanced = list_schedule(dag, BalancedWeights())
    traditional = list_schedule(dag, TraditionalWeights())
    assert dag.topological_check(balanced)
    assert dag.topological_check(traditional)
    # The serial chain head L2 (node 3) must issue before the cheap
    # ALU fillers X1/X2 under balanced weights.
    assert balanced.index(3) < balanced.index(5)
