"""Software pipelining: shape matching, MII, scheduler, end-to-end."""

import pytest

from repro.harness.compile import Options, compile_source
from repro.machine import DEFAULT_CONFIG, Simulator
from repro.sched.modulo import pipeline_loops
from repro.sched.modulo.deps import DepEdge, analyze_deps, match_loop
from repro.sched.modulo.mii import compute_mii, rec_mii, res_mii
from repro.sched.modulo.scheduler import modulo_schedule

DAXPY = """
array X[64] : float;
array Y[64] : float;
var a : float = 1.5;

func main() {
    var i : int;
    for (i = 0; i < 64; i = i + 1) { X[i] = float(i) * 0.25; }
    for (i = 0; i < 64; i = i + 1) { Y[i] = a * X[i] + Y[i]; }
}
"""

REDUCTION = """
array X[64] : float;
var acc : float = 0.0;

func main() {
    var i : int;
    for (i = 0; i < 64; i = i + 1) { X[i] = float(i) * 0.5; }
    for (i = 0; i < 64; i = i + 1) { acc = acc + X[i]; }
}
"""


def _compile(source, **kw):
    return compile_source(source, Options(**kw), "t")


def _memories(source, **base_kw):
    """Final data memory with and without swp (same other options)."""
    images = []
    for swp in (False, True):
        result = _compile(source, swp=swp, **base_kw)
        sim = Simulator(result.program)
        sim.run()
        words = result.program.data_size // 8
        images.append(list(sim.memory[:words]))
    return images


# ------------------------------------------------------------ matching
def _scheduled_cfg(source, **kw):
    """The pre-regalloc scheduled CFG (what pipeline_loops sees)."""
    from repro.codegen.lower import lower
    from repro.frontend import frontend
    from repro.harness.compile import make_weight_model
    from repro.opt.constfold import fold_constants
    from repro.opt.copyprop import propagate_copies
    from repro.opt.dce import eliminate_dead_code
    from repro.opt.predication import predicate_program
    from repro.opt.unroll import unroll_program
    from repro.sched import schedule_cfg

    opts = Options(**kw)
    ast = frontend(source, "t")
    if opts.unroll:
        unroll_program(ast, opts.unroll)
    predicate_program(ast)
    cfg = lower(ast)
    fold_constants(cfg)
    propagate_copies(cfg)
    eliminate_dead_code(cfg)
    if opts.extra_opts:
        from repro.opt.cse import eliminate_common_subexpressions
        from repro.opt.licm import hoist_loop_invariants

        eliminate_common_subexpressions(cfg)
        hoist_loop_invariants(cfg)
        propagate_copies(cfg)
        eliminate_dead_code(cfg)
    model = make_weight_model(opts)
    schedule_cfg(cfg, model)
    return cfg, model, opts


def _loop_shapes(source, **kw):
    """match_loop over every single-block self-loop of the program."""
    from repro.ir.liveness import liveness

    cfg, _model, _opts = _scheduled_cfg(source, **kw)
    live_in, _ = liveness(cfg)
    shapes = {}
    for block in cfg:
        term = block.terminator
        if term is None or term.op != "BNE" or term.label != block.label:
            continue
        live_exit = live_in.get(block.fallthrough, set())
        shapes[block.label] = match_loop(cfg, block.label, live_exit)
    return shapes


def test_match_loop_recognizes_counted_loops():
    shapes = _loop_shapes(DAXPY)
    matched = [s for s in shapes.values() if not isinstance(s, str)]
    assert matched, "no counted loop recognized"
    for shape in matched:
        assert shape.step == 1
        assert shape.offset == 0
        assert shape.bound_imm == 64 or shape.bound_reg is not None
        # Dead compare dropped from the schedulable body.
        assert all(ins.op not in ("CMPLT", "CMPLE") for ins in shape.ops)


def test_match_loop_recognizes_unrolled_probe():
    # Unrolling by 4 rewrites the exit test to probe i+3, through a
    # separate temporary; the matcher must see through it.
    shapes = _loop_shapes(DAXPY, unroll=4)
    matched = [s for s in shapes.values() if not isinstance(s, str)]
    assert matched, "no unrolled loop recognized"
    assert any(s.offset > 0 and s.step == 4 for s in matched)


# ------------------------------------------------------ dependence, MII
def _first_deps(source, **kw):
    from repro.harness.compile import make_weight_model

    shapes = _loop_shapes(source, **kw)
    opts = Options(**kw)
    model = make_weight_model(opts)
    for label in sorted(shapes):
        shape = shapes[label]
        if not isinstance(shape, str):
            return analyze_deps(shape.ops, opts.config, model)
    raise AssertionError("no matched loop")


def test_reduction_has_carried_cycle():
    deps = _first_deps(REDUCTION)
    carried = [e for e in deps.edges if e.distance == 1 and e.kind == "true"]
    assert carried, "accumulator must carry a distance-1 true dependence"
    res, rec, mii = compute_mii(deps, DEFAULT_CONFIG)
    assert rec >= 1
    assert mii == max(res, rec)


def test_res_mii_counts_resources():
    deps = _first_deps(DAXPY)
    n_mem = sum(1 for ins in deps.ops if ins.is_mem)
    expected = max(
        -(-len(deps.ops) // DEFAULT_CONFIG.issue_width),
        -(-n_mem // DEFAULT_CONFIG.mem_ports))
    assert res_mii(deps, DEFAULT_CONFIG) == expected


def test_rec_mii_lower_bounds_cycles():
    # A 2-op cycle with total latency 6 over total distance 1 forces
    # II >= 6 (latency sum / distance sum along the cycle).
    deps = _first_deps(REDUCTION)
    other = min(1, len(deps.ops) - 1)
    deps.edges.append(DepEdge(0, other, "true", 5, 0))
    deps.edges.append(DepEdge(other, 0, "true", 1, 1))
    assert rec_mii(deps) >= 6


# ------------------------------------------------------------ scheduler
def test_modulo_schedule_respects_constraints():
    deps = _first_deps(DAXPY)
    _res, _rec, mii = compute_mii(deps, DEFAULT_CONFIG)
    sched = None
    for ii in range(mii, 2 * mii + 1):
        sched = modulo_schedule(deps, DEFAULT_CONFIG, ii, lat_cap=3 * ii)
        if sched is not None:
            break
    assert sched is not None
    times = sched.times
    # Modulo reservation: issue rows and memory rows within capacity.
    rows: dict[int, int] = {}
    mem_rows: dict[int, int] = {}
    for op, t in enumerate(times):
        rows[t % sched.ii] = rows.get(t % sched.ii, 0) + 1
        if deps.ops[op].is_mem:
            mem_rows[t % sched.ii] = mem_rows.get(t % sched.ii, 0) + 1
    assert all(n <= DEFAULT_CONFIG.issue_width for n in rows.values())
    assert all(n <= DEFAULT_CONFIG.mem_ports for n in mem_rows.values())
    # Dependences: t[dst] >= t[src] + lat - d*II (capped latency).
    for e in deps.edges:
        lat = min(e.latency, 3 * sched.ii)
        assert times[e.dst] >= times[e.src] + lat - e.distance * sched.ii


def test_modulo_schedule_infeasible_ii_returns_none():
    deps = _first_deps(REDUCTION)
    deps.edges.append(DepEdge(0, 0, "true", 4, 1))   # self-cycle: II >= 4
    assert modulo_schedule(deps, DEFAULT_CONFIG, 1, lat_cap=100) is None


# ----------------------------------------------------------- end-to-end
def test_daxpy_swp_identical_memory_and_faster():
    base, swp = _memories(DAXPY)
    assert base == swp
    r_base = _compile(DAXPY)
    r_swp = _compile(DAXPY, swp=True)
    assert r_swp.modulo_stats is not None
    assert r_swp.modulo_stats.pipelined >= 1
    m_base = Simulator(r_base.program).run()
    m_swp = Simulator(r_swp.program).run()
    assert m_swp.total_cycles < m_base.total_cycles


def test_reduction_swp_identical_memory():
    base, swp = _memories(REDUCTION)
    assert base == swp


@pytest.mark.parametrize("kw", [
    {"unroll": 4},
    {"locality": True},
    {"scheduler": "traditional"},
    {"extra_opts": True},
])
def test_swp_composes_with_other_axes(kw):
    base, swp = _memories(DAXPY, **kw)
    assert base == swp


def test_pipelined_loops_report_ii_within_bound():
    result = _compile(DAXPY, swp=True)
    stats = result.modulo_stats
    for loop in stats.loops:
        if loop.pipelined:
            assert loop.mii <= loop.ii <= 2 * loop.mii
            assert 2 <= loop.stages
            assert 1 <= loop.unroll <= 4


def test_short_trip_count_takes_original_loop():
    source = DAXPY.replace("i < 64", "i < 2")
    base, swp = _memories(source)
    assert base == swp


def test_swp_off_leaves_stats_none():
    assert _compile(DAXPY).modulo_stats is None


def test_bail_reasons_are_recorded():
    result = _compile(REDUCTION, swp=True)
    stats = result.modulo_stats
    assert stats.attempted == len(stats.loops)
    for loop in stats.loops:
        assert loop.pipelined or loop.reason


def test_cfg_still_verifies_after_pipelining():
    result = _compile(DAXPY, swp=True)
    result.cfg.verify()           # raises on malformed CFG


def test_pipeline_loops_requires_scheduled_cfg():
    # Options.validate refuses swp without a scheduler.
    with pytest.raises(ValueError):
        Options(scheduler="none", swp=True).validate()


# ------------------------------------------------------- RecMII witness
def test_recurrence_witness_pins_grafted_cycle():
    from repro.sched.modulo.mii import recurrence_witness

    # Graft a 2-op recurrence: latency 6 over distance 1 => RecMII 6.
    deps = _first_deps(REDUCTION)
    other = min(1, len(deps.ops) - 1)
    deps.edges.append(DepEdge(0, other, "true", 5, 0))
    deps.edges.append(DepEdge(other, 0, "true", 1, 1))
    rec = rec_mii(deps)
    assert rec >= 6
    witness = recurrence_witness(deps)
    assert witness is not None
    # The witness is exact: extracted at rec-1 where the cycle is
    # still positive, so its bound equals RecMII, not just <= it.
    assert witness.ii_bound == rec
    # Every hop of the cycle is a real dependence edge.
    k = len(witness.ops)
    assert k == len(witness.kinds) >= 1
    for i in range(k):
        src, dst = witness.ops[i], witness.ops[(i + 1) % k]
        assert any(e.src == src and e.dst == dst
                   and e.kind == witness.kinds[i]
                   for e in deps.edges), (src, dst)
    assert witness.distance >= 1
    data = witness.to_json()
    assert data["ii_bound"] == rec
    assert witness.describe(deps)


def test_recurrence_witness_absent_without_recurrence():
    from repro.sched.modulo.mii import recurrence_witness

    deps = _first_deps(REDUCTION)
    assert recurrence_witness(deps, rec=1) is None


def test_compute_mii_detailed_matches_compute_mii():
    from repro.sched.modulo.mii import compute_mii_detailed

    deps = _first_deps(REDUCTION)
    res, rec, mii = compute_mii(deps, DEFAULT_CONFIG)
    d_res, d_rec, d_mii, witness = compute_mii_detailed(
        deps, DEFAULT_CONFIG)
    assert (d_res, d_rec, d_mii) == (res, rec, mii)
    if rec > 1:
        assert witness is not None and witness.ii_bound == rec
    else:
        assert witness is None


def test_pipeline_stats_record_recurrence():
    result = _compile(REDUCTION, swp=True)
    stats = result.modulo_stats
    bound_loops = [s for s in stats.loops if s.rec_mii > 1]
    assert bound_loops, "reduction must have a recurrence-bound loop"
    for stat in bound_loops:
        assert stat.recurrence is not None
        assert stat.recurrence["ii_bound"] == stat.rec_mii
        assert stat.to_json()["recurrence"] == stat.recurrence
