"""Pressure feedback in the balanced weights (schedule-driven MAXLIVE)."""

import pytest

from repro.harness.compile import Options
from repro.ir import build_dag
from repro.isa import Instruction, MemRef, Reg
from repro.machine import DEFAULT_CONFIG
from repro.sched import BalancedWeights
from repro.sched.weights import _scheduled_maxlive
from repro.workloads import parallel_loads_dag


def vi(n):
    return Reg("i", n, virtual=True)


def vf(n):
    return Reg("f", n, virtual=True)


def _fld(dest, base, element):
    return Instruction("FLD", dest=vf(dest), srcs=(vi(base),),
                       offset=8 * element,
                       mem=MemRef("data", "A", affine=({}, element)))


def _overflow_dag(n_loads=None, n_alu=8):
    """Independent FP loads, all live to the block end, over budget."""
    if n_loads is None:
        n_loads = DEFAULT_CONFIG.allocatable_fp_regs + 5
    instrs = [Instruction("LDI", dest=vi(9000), imm=64)]
    for k in range(n_loads):
        instrs.append(_fld(k, 9000, element=k))
    for k in range(n_alu):
        instrs.append(Instruction("ADD", dest=vi(2000 + k),
                                  srcs=(vi(9000),), imm=k))
    return build_dag(instrs)


# ---------------------------------------------------- scheduled MAXLIVE
def test_scheduled_maxlive_empty():
    dag = build_dag([])
    assert _scheduled_maxlive(dag, []) == {"i": 0, "f": 0}


def test_scheduled_maxlive_chain():
    instrs = [Instruction("LDI", dest=vi(0), imm=1),
              Instruction("ADD", dest=vi(1), srcs=(vi(0),), imm=1),
              Instruction("ADD", dest=vi(2), srcs=(vi(1),), imm=1)]
    dag = build_dag(instrs)
    # v0 live [0,1], v1 live [1,2], v2 (never read) held to the end.
    assert _scheduled_maxlive(dag, [0, 1, 2])["i"] == 2


def test_scheduled_maxlive_counts_live_in():
    # v7 is read before any local def: live from slot 0.
    instrs = [Instruction("LDI", dest=vi(0), imm=1),
              Instruction("ADD", dest=vi(1), srcs=(vi(7),), imm=1)]
    dag = build_dag(instrs)
    assert _scheduled_maxlive(dag, [0, 1])["i"] == 3


def test_scheduled_maxlive_ignores_zero_registers():
    instrs = [Instruction("ADD", dest=vi(0), srcs=(Reg("i", 31),),
                          imm=1)]
    dag = build_dag(instrs)
    assert _scheduled_maxlive(dag, [0]) == {"i": 1, "f": 0}


def test_scheduled_maxlive_separates_banks():
    instrs = [Instruction("LDI", dest=vi(0), imm=8),
              _fld(1, 0, 0), _fld(2, 0, 1),
              Instruction("FADD", dest=vf(3), srcs=(vf(1), vf(2)))]
    dag = build_dag(instrs)
    live = _scheduled_maxlive(dag, [0, 1, 2, 3])
    assert live["f"] == 3           # f1, f2 at the FADD defining f3
    assert live["i"] == 1


# ------------------------------------------------------- feedback loop
def test_feedback_noop_when_block_fits():
    dag = parallel_loads_dag(n_loads=4, n_alu=8)
    base = BalancedWeights().weights(dag)
    fed = BalancedWeights(pressure=True).weights(dag)
    assert fed == base


def test_feedback_demotes_on_overflow():
    dag = _overflow_dag()
    base = BalancedWeights().weights(dag)
    fed = BalancedWeights(pressure=True).weights(dag)
    floor = float(DEFAULT_CONFIG.load_hit_latency)
    loads = [k for k, ins in enumerate(dag.instrs) if ins.is_load]
    # The boosted weights overflow the FP bank, so some loads must be
    # stripped back to the hit floor...
    assert any(fed[k] == floor and base[k] > floor for k in loads)
    # ...and feedback only ever demotes, never boosts.
    assert all(fed[k] <= base[k] for k in range(len(base)))
    # Non-load weights are untouched.
    assert all(fed[k] == base[k]
               for k in range(len(base)) if k not in loads)


def test_feedback_prefers_lowest_weighted_loads():
    # Loads with more parallelism (higher weight) keep their boost
    # longest: build an overflow DAG where one load also feeds a long
    # consumer chain (serial -> lower weight than the parallel rest).
    n = DEFAULT_CONFIG.allocatable_fp_regs + 2
    instrs = [Instruction("LDI", dest=vi(9000), imm=64)]
    for k in range(n):
        instrs.append(_fld(k, 9000, element=k))
    # Chain hanging off load 0 makes every other load strictly richer.
    instrs.append(Instruction("FADD", dest=vf(100),
                              srcs=(vf(0), vf(0))))
    for k in range(6):
        instrs.append(Instruction("FADD", dest=vf(101 + k),
                                  srcs=(vf(100 + k), vf(100 + k))))
    dag = build_dag(instrs)
    base = BalancedWeights().weights(dag)
    fed = BalancedWeights(pressure=True).weights(dag)
    load_nodes = [k for k, ins in enumerate(dag.instrs) if ins.is_load]
    poorest = min(load_nodes, key=lambda k: base[k])
    floor = float(DEFAULT_CONFIG.load_hit_latency)
    if any(fed[k] == floor and base[k] > floor for k in load_nodes):
        assert fed[poorest] == floor


# ------------------------------------------------------- options wiring
def test_pressure_option_label_and_validation():
    opts = Options(pressure=True)
    assert "prs" in opts.label()
    opts.validate()
    with pytest.raises(ValueError):
        Options(scheduler="traditional", pressure=True).validate()


def test_pressure_label_absent_by_default():
    assert "prs" not in Options().label()
