"""Unit tests of the balanced-weight internals (comparability
components and contribution accounting)."""

from repro.ir.dag import Dag, TRUE
from repro.isa import Instruction, MemRef, Reg
from repro.sched.weights import BalancedWeights, _comparability_components


def v(i, kind="i"):
    return Reg(kind, i, virtual=True)


def alu(d, s=90):
    return Instruction("ADD", dest=v(d), srcs=(v(s),), imm=1)


def ld(d, base=98):
    return Instruction("LD", dest=v(d), srcs=(v(base),),
                       mem=MemRef("data", "A", affine=None))


def mask_of(*nodes):
    value = 0
    for node in nodes:
        value |= 1 << node
    return value


class TestComparabilityComponents:
    def test_isolated_nodes_are_singletons(self):
        reach = [0, 0, 0]
        components = _comparability_components(mask_of(0, 1, 2), reach)
        assert sorted(map(sorted, components)) == [[0], [1], [2]]

    def test_direct_chain_is_one_component(self):
        # 0 -> 1 -> 2 (reach is transitive).
        reach = [mask_of(1, 2), mask_of(2), 0]
        components = _comparability_components(mask_of(0, 1, 2), reach)
        assert sorted(map(sorted, components)) == [[0, 1, 2]]

    def test_transitive_connection_through_member(self):
        # 0 -> 1 and 0 -> 2: 1 and 2 incomparable but share component
        # via 0 (comparability graph connectivity).
        reach = [mask_of(1, 2), 0, 0]
        components = _comparability_components(mask_of(0, 1, 2), reach)
        assert sorted(map(sorted, components)) == [[0, 1, 2]]

    def test_mask_restricts_membership(self):
        reach = [mask_of(1, 2), mask_of(2), 0]
        components = _comparability_components(mask_of(0, 2), reach)
        # Only nodes 0 and 2 participate; still connected (0 reaches 2).
        assert sorted(map(sorted, components)) == [[0, 2]]

    def test_two_separate_chains(self):
        # 0 -> 1, 2 -> 3.
        reach = [mask_of(1), 0, mask_of(3), 0]
        components = _comparability_components(mask_of(0, 1, 2, 3), reach)
        assert sorted(map(sorted, components)) == [[0, 1], [2, 3]]


class TestContributionAccounting:
    def test_each_contributor_donates_one_per_component(self):
        """Two parallel loads + one helper: the helper donates a full
        unit to each singleton component."""
        dag = Dag([ld(0), ld(1), alu(2)])
        weights = BalancedWeights().weights(dag)
        assert weights[0] == weights[1] == 2.0      # 1 + 1, floored at 2

    def test_series_loads_split_the_donation(self):
        dag = Dag([ld(0), ld(1), alu(2), alu(3)])
        dag.add_edge(0, 1, TRUE)
        weights = BalancedWeights().weights(dag)
        # Two helpers, each splitting 1 across the {0,1} chain.
        assert weights[0] == weights[1] == 2.0      # 1 + 0.5 + 0.5

    def test_dependent_helper_does_not_contribute(self):
        dag = Dag([ld(0), alu(1)])
        dag.add_edge(0, 1, TRUE)       # helper consumes the load
        weights = BalancedWeights().weights(dag)
        assert weights[0] == 2.0       # floor only; no contribution

    def test_three_way_series_share(self):
        dag = Dag([ld(0), ld(1), ld(2)] + [alu(3 + k) for k in range(6)])
        dag.add_edge(0, 1, TRUE)
        dag.add_edge(1, 2, TRUE)
        weights = BalancedWeights().weights(dag)
        # Six helpers x 1/3 each = 2 -> weight 3 for every chain member.
        assert weights[0] == weights[1] == weights[2] == 3.0

    def test_locality_contributor_accounting(self):
        from repro.isa import Locality

        hit = Instruction("LD", dest=v(0), srcs=(v(98),),
                          mem=MemRef("data", "A", affine=None),
                          locality=Locality.HIT)
        miss = Instruction("LD", dest=v(1), srcs=(v(98),),
                           mem=MemRef("data", "A", affine=None),
                           locality=Locality.MISS)
        dag = Dag([hit, miss])
        weights = BalancedWeights(use_locality=True).weights(dag)
        # The hit load acts as a contributor for the miss load.
        assert weights[0] == 2.0
        assert weights[1] == 2.0       # 1 + 1, floored at 2 either way
        more = Dag([hit.copy(), miss.copy(), alu(2), alu(3)])
        w2 = BalancedWeights(use_locality=True).weights(more)
        assert w2[1] == 4.0            # hit + two helpers = 1 + 3
