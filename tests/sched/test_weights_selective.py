"""Selective balanced scheduling on real locality-marked code.

Section 3.3's mechanism, end to end: when locality analysis marks hit
loads, the balanced scheduler treats them optimistically and the freed
slack goes to the miss loads — visible in the computed weights of the
final hot block.
"""

from repro.codegen.lower import lower
from repro.frontend import frontend
from repro.analysis import analyze_locality
from repro.ir import build_dag
from repro.isa import Locality
from repro.machine import DEFAULT_CONFIG
from repro.sched import BalancedWeights

SOURCE = """
array A[16][16] : float;
array C[16][16] : float;
var n : int = 16;
func main() {
    var i : int; var j : int;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            C[i][j] = A[i][j] * 2.0 + 1.0;
        }
    }
}
"""


def hot_block_dag():
    program = frontend(SOURCE)
    analyze_locality(program)
    cfg = lower(program)
    hot = max(cfg, key=lambda b: sum(1 for i in b.instrs if i.is_load))
    return build_dag(hot.instrs)


def test_hit_loads_weighted_optimistically():
    dag = hot_block_dag()
    weights = BalancedWeights(use_locality=True).weights(dag)
    hits = [i for i, ins in enumerate(dag.instrs)
            if ins.is_load and ins.locality is Locality.HIT]
    misses = [i for i, ins in enumerate(dag.instrs)
              if ins.is_load and ins.locality is Locality.MISS]
    assert hits and misses
    for node in hits:
        assert weights[node] == DEFAULT_CONFIG.load_hit_latency


def test_miss_loads_gain_weight_from_selectivity():
    dag = hot_block_dag()
    selective = BalancedWeights(use_locality=True).weights(dag)
    uniform = BalancedWeights(use_locality=False).weights(dag)
    misses = [i for i, ins in enumerate(dag.instrs)
              if ins.is_load and ins.locality is Locality.MISS]
    assert misses
    for node in misses:
        assert selective[node] >= uniform[node]
    assert any(selective[node] > uniform[node] for node in misses)


def test_miss_load_scheduled_before_its_hits():
    """The locality ORDER arcs pin hit loads below their group's miss."""
    from repro.sched import list_schedule

    dag = hot_block_dag()
    order = list_schedule(dag, BalancedWeights(use_locality=True))
    position = {node: k for k, node in enumerate(order)}
    by_group: dict = {}
    for i, ins in enumerate(dag.instrs):
        if ins.is_load and ins.group is not None:
            by_group.setdefault(ins.group, {"miss": [], "hit": []})
            key = ("miss" if ins.locality is Locality.MISS else
                   "hit" if ins.locality is Locality.HIT else None)
            if key:
                by_group[ins.group][key].append(i)
    checked = 0
    for group, members in by_group.items():
        for miss in members["miss"]:
            for hit in members["hit"]:
                assert position[miss] < position[hit], group
                checked += 1
    assert checked > 0
