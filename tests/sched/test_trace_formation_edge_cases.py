"""Trace formation on awkward CFG shapes."""

from repro.harness.compile import Options, compile_source
from repro.ir import BasicBlock, Cfg
from repro.isa import Instruction, Reg
from repro.machine import Simulator
from repro.sched import ProfileData, form_traces


def v(i):
    return Reg("i", i, virtual=True)


def test_single_block_program_is_one_trace():
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock("entry", [Instruction("HALT")]))
    traces = form_traces(cfg, ProfileData(block_counts={"entry": 1}))
    assert traces == [["entry"]]


def test_unprofiled_blocks_become_singleton_traces():
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock("entry", [], fallthrough="next"))
    cfg.add_block(BasicBlock("next", [Instruction("HALT")]))
    traces = form_traces(cfg, ProfileData())   # empty profile
    flattened = sorted(label for trace in traces for label in trace)
    assert flattened == ["entry", "next"]
    assert all(len(trace) == 1 for trace in traces)


def test_entry_never_becomes_interior():
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock("entry", [], fallthrough="a"))
    cfg.add_block(BasicBlock("a", [
        Instruction("BEQ", srcs=(v(0),), label="entry"),
    ], fallthrough="exit"))
    cfg.add_block(BasicBlock("exit", [Instruction("HALT")]))
    profile = ProfileData(block_counts={"entry": 5, "a": 5, "exit": 1},
                          edge_counts={("entry", "a"): 5,
                                       ("a", "entry"): 4,
                                       ("a", "exit"): 1})
    for trace in form_traces(cfg, profile):
        if "entry" in trace:
            assert trace[0] == "entry"


def test_nested_loop_program_traces_and_runs():
    source = """
array M[24][24] : float;
var n : int = 24;
var acc : float = 0.0;
func main() {
    var i : int; var j : int; var k : int;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            M[i][j] = float(i - j);
            for (k = 0; k < 4; k = k + 1) {
                M[i][j] = M[i][j] * 0.5 + 1.0;
            }
            acc = acc + M[i][j];
        }
    }
}
"""
    plain = compile_source(source, Options(scheduler="balanced"))
    traced = compile_source(source, Options(scheduler="balanced",
                                            trace=True))
    sim_a, sim_b = Simulator(plain.program), Simulator(traced.program)
    sim_a.run()
    sim_b.run()
    assert sim_a.get_symbol("acc") == sim_b.get_symbol("acc")
    assert sim_a.get_symbol("M") == sim_b.get_symbol("M")


def test_while_loop_program_traces_and_runs():
    source = """
array OUT[64] : int;
func main() {
    var i : int; var x : int;
    for (i = 0; i < 64; i = i + 1) {
        x = i + 1;
        while (x % 7 != 0) { x = x + 1; }
        OUT[i] = x;
    }
}
"""
    plain = compile_source(source, Options(scheduler="traditional"))
    traced = compile_source(source, Options(scheduler="traditional",
                                            trace=True))
    sim_a, sim_b = Simulator(plain.program), Simulator(traced.program)
    sim_a.run()
    sim_b.run()
    assert sim_a.get_symbol("OUT") == sim_b.get_symbol("OUT")
    assert sim_a.get_symbol("OUT")[0] == 7
