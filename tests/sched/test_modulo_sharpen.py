"""Symbolic-analyzer sharpening of the modulo scheduler's memory arcs.

Every dropped or distance-sharpened arc must be validated end to end:
the pipelined binary has to produce the same data memory as the
unpipelined one, and the doubled-kernel verifier must reject a
deliberately weakened analyzer (``REPRO_WEAKEN_DEPS``)."""

import pytest

from repro.codegen.verify import VerificationError
from repro.harness.compile import Options, compile_source, \
    make_weight_model
from repro.isa import Reg
from repro.machine import DEFAULT_CONFIG, Simulator
from repro.sched.modulo.deps import analyze_deps, weaken_distances
from repro.sched.modulo.kernel import Mve, plan_mve
from repro.sched.modulo.mii import compute_mii
from repro.sched.modulo.pipeline import MAX_STAGES, MAX_UNROLL
from repro.sched.modulo.scheduler import modulo_schedule
from repro.sched.modulo.stats import REASON_PRESSURE

from .test_modulo import DAXPY, _loop_shapes

RECURRENCE = """
array X[64] : float;
var b : float = 0.5;

func main() {
    var i : int;
    X[0] = 1.0;
    for (i = 1; i < 64; i = i + 1) { X[i] = X[i-1] * b; }
}
"""


def _memory_image(source, **kw):
    result = compile_source(source, Options(**kw), "t")
    sim = Simulator(result.program)
    sim.run()
    words = result.program.data_size // 8
    return list(sim.memory[:words]), result


# ------------------------------------------------- arcs actually sharpen
def test_daxpy_drops_independent_arcs_and_pipelines():
    _, result = _memory_image(DAXPY, swp=True)
    stats = result.modulo_stats
    assert stats is not None and stats.pipelined >= 1
    assert sum(s.mem_dropped for s in stats.loops) >= 4
    # No pair in DAXPY needs the conservative blanket distance.
    assert sum(s.mem_conservative for s in stats.loops) == 0


def test_daxpy_pipelined_memory_matches_sequential():
    base, _ = _memory_image(DAXPY, swp=False)
    swp, _ = _memory_image(DAXPY, swp=True)
    assert swp == base


def test_recurrence_keeps_exact_carried_arc():
    _, result = _memory_image(RECURRENCE, swp=True)
    stats = result.modulo_stats
    assert sum(s.mem_exact for s in stats.loops) >= 1
    base, _ = _memory_image(RECURRENCE, swp=False)
    swp, _ = _memory_image(RECURRENCE, swp=True)
    assert swp == base


# ------------------------------------------------- weakened-analyzer net
def test_weaken_distances_env_parsing(monkeypatch):
    monkeypatch.delenv("REPRO_WEAKEN_DEPS", raising=False)
    assert not weaken_distances()
    monkeypatch.setenv("REPRO_WEAKEN_DEPS", "0")
    assert not weaken_distances()
    monkeypatch.setenv("REPRO_WEAKEN_DEPS", "1")
    assert weaken_distances()


def test_weakened_recurrence_distance_is_caught(monkeypatch):
    monkeypatch.setenv("REPRO_WEAKEN_DEPS", "1")
    with pytest.raises(VerificationError):
        compile_source(RECURRENCE, Options(swp=True), "t")


def test_weaken_flag_off_string_compiles_clean(monkeypatch):
    monkeypatch.setenv("REPRO_WEAKEN_DEPS", "0")
    compile_source(RECURRENCE, Options(swp=True), "t")


# ------------------------------------- MVE pressure counts live-through
def _planned_loop(source):
    shapes = _loop_shapes(source)
    model = make_weight_model(Options())
    for label in sorted(shapes):
        shape = shapes[label]
        if isinstance(shape, str):
            continue
        deps = analyze_deps(shape.ops, DEFAULT_CONFIG, model)
        _res, _rec, mii = compute_mii(deps, DEFAULT_CONFIG)
        for ii in range(mii, 2 * mii + 1):
            sched = modulo_schedule(deps, DEFAULT_CONFIG, ii,
                                    lat_cap=(MAX_STAGES - 1) * ii)
            if sched is not None:
                return deps, sched
    raise AssertionError("no schedulable loop")


def _fresh():
    counter = iter(range(1000, 2000))

    def fresh(kind):
        return Reg(kind, next(counter), virtual=True)

    return fresh


def test_plan_mve_baseline_fits():
    deps, sched = _planned_loop(DAXPY)
    mve = plan_mve(deps, sched, MAX_UNROLL, _fresh())
    assert isinstance(mve, Mve)


def test_plan_mve_live_through_overflow_bails():
    deps, sched = _planned_loop(DAXPY)
    held = frozenset(Reg("f", 500 + k, virtual=True) for k in range(27))
    assert plan_mve(deps, sched, MAX_UNROLL, _fresh(),
                    live_through=held) == REASON_PRESSURE


def test_plan_mve_zero_register_never_counts():
    deps, sched = _planned_loop(DAXPY)
    zeros = frozenset({Reg("i", 31), Reg("f", 31)})
    assert isinstance(plan_mve(deps, sched, MAX_UNROLL, _fresh(),
                               live_through=zeros), Mve)
