"""Trace scheduling: formation rules, bookkeeping, end-to-end semantics."""

from repro.harness.compile import Options, compile_source
from repro.ir import BasicBlock, Cfg
from repro.isa import Instruction, Reg
from repro.machine import Simulator
from repro.sched import BalancedWeights, ProfileData, form_traces, trace_schedule


def v(i):
    return Reg("i", i, virtual=True)


def _profile(blocks, edges):
    return ProfileData(block_counts=dict(blocks), edge_counts=dict(edges))


def branchy_cfg() -> Cfg:
    """entry -> cond -> (hot | cold) -> join -> exit."""
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock("entry", [
        Instruction("LDI", dest=v(0), imm=1),
        Instruction("BEQ", srcs=(v(0),), label="cold"),
    ], fallthrough="hot"))
    cfg.add_block(BasicBlock("hot", [
        Instruction("LDI", dest=v(1), imm=2),
    ], fallthrough="join"))
    cfg.add_block(BasicBlock("cold", [
        Instruction("LDI", dest=v(1), imm=3),
    ], fallthrough="join"))
    cfg.add_block(BasicBlock("join", [
        Instruction("ADD", dest=v(2), srcs=(v(1),), imm=1),
        Instruction("HALT"),
    ]))
    return cfg


class TestTraceFormation:
    def test_hot_path_becomes_one_trace(self):
        cfg = branchy_cfg()
        profile = _profile(
            {"entry": 100, "hot": 95, "cold": 5, "join": 100},
            {("entry", "hot"): 95, ("entry", "cold"): 5,
             ("hot", "join"): 95, ("cold", "join"): 5})
        traces = form_traces(cfg, profile)
        main_trace = traces[0]
        assert main_trace == ["entry", "hot", "join"]

    def test_zero_frequency_edges_not_followed(self):
        cfg = branchy_cfg()
        profile = _profile({"entry": 1, "hot": 0, "cold": 1, "join": 1},
                           {("entry", "cold"): 1, ("cold", "join"): 1})
        traces = form_traces(cfg, profile)
        assert ["entry", "cold", "join"] in traces or \
            ["entry", "cold"] in traces

    def test_back_edges_never_crossed(self):
        cfg = Cfg(entry="entry")
        cfg.add_block(BasicBlock("entry", [], fallthrough="loop"))
        cfg.add_block(BasicBlock("loop", [
            Instruction("BNE", srcs=(v(0),), label="loop"),
        ], fallthrough="exit"))
        cfg.add_block(BasicBlock("exit", [Instruction("HALT")]))
        profile = _profile({"entry": 1, "loop": 100, "exit": 1},
                           {("entry", "loop"): 1, ("loop", "loop"): 99,
                            ("loop", "exit"): 1})
        traces = form_traces(cfg, profile)
        for trace in traces:
            assert trace.count("loop") <= 1

    def test_loop_header_only_heads_traces(self):
        cfg = Cfg(entry="entry")
        cfg.add_block(BasicBlock("entry", [], fallthrough="header"))
        cfg.add_block(BasicBlock("header", [
            Instruction("BNE", srcs=(v(0),), label="header"),
        ], fallthrough="exit"))
        cfg.add_block(BasicBlock("exit", [Instruction("HALT")]))
        profile = _profile({"entry": 10, "header": 10, "exit": 10},
                           {("entry", "header"): 10,
                            ("header", "exit"): 10})
        for trace in form_traces(cfg, profile):
            if "header" in trace:
                assert trace[0] == "header"

    def test_frequency_cliffs_break_traces(self):
        """A 100x hotter block never joins a colder one's trace."""
        cfg = branchy_cfg()
        profile = _profile(
            {"entry": 1, "hot": 1, "cold": 0, "join": 100},
            {("entry", "hot"): 1, ("hot", "join"): 1})
        for trace in form_traces(cfg, profile):
            assert not ("hot" in trace and "join" in trace)

    def test_every_block_in_exactly_one_trace(self):
        cfg = branchy_cfg()
        profile = _profile(
            {"entry": 10, "hot": 6, "cold": 4, "join": 10},
            {("entry", "hot"): 6, ("entry", "cold"): 4,
             ("hot", "join"): 6, ("cold", "join"): 4})
        traces = form_traces(cfg, profile)
        seen = [label for trace in traces for label in trace]
        assert sorted(seen) == sorted(cfg.order)


class TestTraceScheduling:
    def test_compensation_keeps_both_paths_correct(self, run_source):
        source = """
array OUT[8] : float;
var which : int = 1;
var a : float = 0.0;
func main() {
    var i : int;
    for (i = 0; i < 8; i = i + 1) {
        if (i % 3 == 0) {
            a = a + 1.5;
        } else {
            a = a + float(i);
        }
        OUT[i] = a;
    }
}
"""
        base, base_sim, _ = run_source(source, Options(scheduler="balanced"))
        traced, traced_sim, _ = run_source(
            source, Options(scheduler="balanced", trace=True))
        assert traced_sim.get_symbol("OUT") == base_sim.get_symbol("OUT")

    def test_trace_scheduling_reduces_blocks(self, small_kernel_source):
        plain = compile_source(small_kernel_source,
                               Options(scheduler="balanced"))
        traced = compile_source(small_kernel_source,
                                Options(scheduler="balanced", trace=True))
        assert traced.trace_stats is not None
        assert traced.trace_stats.traces >= 1

    def test_trace_schedule_verifies_cfg(self):
        cfg = branchy_cfg()
        profile = _profile(
            {"entry": 100, "hot": 95, "cold": 5, "join": 100},
            {("entry", "hot"): 95, ("entry", "cold"): 5,
             ("hot", "join"): 95, ("cold", "join"): 5})
        stats = trace_schedule(cfg, profile, BalancedWeights())
        cfg.verify()
        assert stats.multi_block_traces >= 1

    def test_off_trace_path_still_reachable(self):
        cfg = branchy_cfg()
        profile = _profile(
            {"entry": 100, "hot": 95, "cold": 5, "join": 100},
            {("entry", "hot"): 95, ("entry", "cold"): 5,
             ("hot", "join"): 95, ("cold", "join"): 5})
        trace_schedule(cfg, profile, BalancedWeights())
        assert "cold" in cfg.blocks

    def test_semantics_preserved_on_workload(self, stencil_source,
                                             run_source):
        base, base_sim, _ = run_source(stencil_source,
                                       Options(scheduler="traditional"))
        _, traced_sim, _ = run_source(
            stencil_source,
            Options(scheduler="traditional", unroll=4, trace=True))
        assert traced_sim.get_symbol("V") == base_sim.get_symbol("V")
