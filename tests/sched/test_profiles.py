"""ProfileData and profile collection during trace compilation."""

from repro.harness.compile import Options, compile_source
from repro.sched import ProfileData


def test_profile_data_defaults():
    profile = ProfileData()
    assert profile.block("anything") == 0
    assert profile.edge("a", "b") == 0


def test_profile_data_lookup():
    profile = ProfileData(block_counts={"x": 5},
                          edge_counts={("x", "y"): 3})
    assert profile.block("x") == 5
    assert profile.edge("x", "y") == 3
    assert profile.edge("y", "x") == 0


def test_collected_profile_matches_loop_structure():
    source = """
array A[64] : float;
var n : int = 64;
func main() {
    var i : int;
    for (i = 0; i < n; i = i + 1) { A[i] = float(i); }
}
"""
    result = compile_source(source, Options(scheduler="balanced",
                                            trace=True))
    profile = result.profile
    # The loop body executed n times; some block has count ~64.
    assert max(profile.block_counts.values()) >= 63
    # Entry executed exactly once.
    assert profile.block_counts.get("entry") == 1
    # Edge counts are consistent: the back edge fires n-1 times.
    back_edges = [count for (src, dst), count
                  in profile.edge_counts.items() if src == dst]
    assert back_edges and max(back_edges) >= 62


def test_profile_reflects_branch_bias():
    source = """
array A[128] : float;
var n : int = 128;
func main() {
    var i : int;
    for (i = 0; i < n; i = i + 1) {
        if (i % 8 == 0) { A[i] = 1.0; } else { A[i] = 2.0; }
        A[i] = A[i] * 0.5;
    }
}
"""
    result = compile_source(
        source, Options(scheduler="balanced", trace=True,
                        predicate=False))
    profile = result.profile
    counts = sorted(profile.block_counts.values(), reverse=True)
    # The else side ran 7x the then side: both appear in the profile.
    assert any(abs(c - 112) <= 1 for c in counts)
    assert any(abs(c - 16) <= 1 for c in counts)
