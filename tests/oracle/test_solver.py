"""Branch-and-bound core: decisions, certificates, budgets."""

import pytest

from repro.oracle.solver import (
    SAT,
    UNKNOWN,
    UNSAT,
    Arc,
    Budget,
    Problem,
    StallSpec,
    assignment_stall,
    solve_decision,
)


def _problem(n, arcs=(), is_mem=None, **kw):
    return Problem(n=n, arcs=tuple(arcs),
                   is_mem=tuple(is_mem or [False] * n), **kw)


def _solve(problem, lo, hi, budget=None, **kw):
    return solve_decision(problem, lo, hi, budget or Budget(), **kw)


def test_chain_respects_latency():
    problem = _problem(2, [Arc(0, 1, 3)])
    out = _solve(problem, [0, 0], [10, 10])
    assert out.status == SAT
    assert out.times[1] - out.times[0] >= 3


def test_unsat_window_too_tight_is_certified():
    problem = _problem(2, [Arc(0, 1, 3)])
    out = _solve(problem, [0, 0], [2, 2])
    assert out.status == UNSAT


def test_issue_width_row_capacity():
    # Three independent ops, single issue: two cycles cannot hold them.
    problem = _problem(3)
    assert _solve(problem, [0] * 3, [1] * 3).status == UNSAT
    out = _solve(problem, [0] * 3, [2] * 3)
    assert out.status == SAT
    assert len(set(out.times)) == 3


def test_memory_ports_bind_separately():
    problem = _problem(2, is_mem=[True, True], issue_width=2,
                       mem_ports=1)
    assert _solve(problem, [0, 0], [0, 0]).status == UNSAT
    assert _solve(problem, [0, 0], [1, 1]).status == SAT


def test_wide_issue_shares_a_cycle():
    problem = _problem(2, issue_width=2)
    out = _solve(problem, [0, 0], [0, 0])
    assert out.status == SAT
    assert out.times == [0, 0]


def test_modulo_rows_wrap():
    # Two mem ops at ii=2 must land on different parities.
    problem = _problem(2, is_mem=[True, True], ii=2)
    out = _solve(problem, [0, 0], [3, 3])
    assert out.status == SAT
    assert out.times[0] % 2 != out.times[1] % 2


def test_modulo_positive_cycle_is_infeasible():
    # Cycle weight at ii: 2 + (2 - ii); positive for ii = 3.
    arcs = [Arc(0, 1, 2, 0), Arc(1, 0, 2, 1)]
    tight = _problem(2, arcs, ii=3)
    assert _solve(tight, [-20, -20], [20, 20]).status == UNSAT
    loose = _problem(2, arcs, ii=4)
    assert _solve(loose, [-20, -20], [20, 20]).status == SAT


def test_budget_exhaustion_is_unknown_not_unsat():
    problem = _problem(6)
    budget = Budget(max_nodes=2)
    out = _solve(problem, [0] * 6, [5] * 6, budget=budget)
    assert out.status == UNKNOWN
    assert budget.exhausted


def test_stall_bound_prunes_and_admits():
    # Load 0 with consumer 1 at weight 5; only 3 cycles of window, so
    # the best gap is 2 and the minimum stall is 3.
    problem = _problem(2, [Arc(0, 1, 1)], is_mem=[True, False])
    loads = ((0, (1,), 5),)
    unsat = _solve(problem, [0, 0], [2, 2],
                   stall=StallSpec(loads=loads, bound=2))
    assert unsat.status == UNSAT
    sat = _solve(problem, [0, 0], [2, 2],
                 stall=StallSpec(loads=loads, bound=3))
    assert sat.status == SAT
    assert assignment_stall(sat.times, loads) <= 3


def test_stall_with_makespan_counts_both():
    # makespan + stall <= 4 impossible in 3 cycles (3 + 3 = 6); the
    # combined objective needs bound >= 6.
    problem = _problem(2, [Arc(0, 1, 1)], is_mem=[True, False])
    loads = ((0, (1,), 5),)
    spec = StallSpec(loads=loads, bound=5, include_makespan=True)
    assert _solve(problem, [0, 0], [2, 2], stall=spec).status == UNSAT
    spec = StallSpec(loads=loads, bound=6, include_makespan=True)
    out = _solve(problem, [0, 0], [2, 2], stall=spec)
    assert out.status == SAT
    total = max(out.times) + 1 + assignment_stall(out.times, loads)
    assert total <= 6


def test_acyclic_problem_rejects_carried_arcs():
    problem = _problem(2, [Arc(0, 1, 1, distance=1)])
    with pytest.raises(ValueError):
        _solve(problem, [0, 0], [5, 5])


def test_bad_ii_rejected():
    problem = _problem(1, ii=0)
    with pytest.raises(ValueError):
        _solve(problem, [0], [5])


def test_decisions_are_deterministic():
    problem = _problem(5, [Arc(0, 2, 2), Arc(1, 2, 1), Arc(2, 4, 3)],
                       is_mem=[True, False, False, True, False])
    outs = [_solve(problem, [0] * 5, [8] * 5) for _ in range(2)]
    assert outs[0].times == outs[1].times
    assert outs[0].nodes == outs[1].nodes
