"""Block oracle: certified lexicographic + combined optima."""

from repro.machine import DEFAULT_CONFIG
from repro.oracle.block import (
    STATUS_FEASIBLE,
    STATUS_OPTIMAL,
    STATUS_SKIPPED,
    greedy_issue_times,
    makespan,
    oracle_block,
    oracle_order,
    schedule_cost,
    stall_loads,
)
from repro.oracle.solver import Budget, assignment_stall
from repro.sched import BalancedWeights, TraditionalWeights, list_schedule
from repro.sched.list_scheduler import estimate_issue_cycles
from repro.workloads import figure1_dag, random_dag


def _run(dag, budget=None, max_ops=24):
    balanced = BalancedWeights()
    weights = balanced.weights(dag)
    seeds = {
        "balanced": list_schedule(dag, balanced),
        "traditional": list_schedule(dag, TraditionalWeights()),
    }
    result = oracle_block(dag, DEFAULT_CONFIG, weights, seeds,
                          budget=budget, max_ops=max_ops)
    return result, weights, seeds


def test_figure1_is_certified_optimal():
    dag = figure1_dag()
    result, _, _ = _run(dag)
    assert result.status == STATUS_OPTIMAL
    assert result.makespan == result.makespan_lb == 8
    assert result.stall == 0
    assert result.total == 8


def test_oracle_never_beaten_by_a_heuristic():
    for seed in (1, 7, 42, 1234):
        dag = random_dag(14, seed=seed, load_fraction=0.4)
        result, _, _ = _run(dag)
        for name, (h_makespan, h_stall) in result.heuristics.items():
            assert result.makespan <= h_makespan, name
            assert result.total <= h_makespan + h_stall, name


def test_witness_is_a_legal_schedule():
    dag = random_dag(12, seed=3, load_fraction=0.5)
    result, weights, _ = _run(dag)
    order = oracle_order(result)
    assert sorted(order) == list(range(len(dag.instrs)))
    assert dag.topological_check(order)
    # The witness times satisfy every dependence arc's latency.
    from repro.oracle.block import block_problem

    problem = block_problem(dag, DEFAULT_CONFIG)
    for arc in problem.arcs:
        assert result.times[arc.dst] - result.times[arc.src] \
            >= arc.latency
    # Single-issue: one op per cycle.
    assert len(set(result.times)) == len(result.times)


def test_greedy_times_match_estimate_issue_cycles():
    dag = random_dag(20, seed=9, load_fraction=0.3)
    order = list_schedule(dag, TraditionalWeights())
    latencies = [DEFAULT_CONFIG.op_latency.get(ins.op, 1)
                 for ins in dag.instrs]
    times = greedy_issue_times(dag, order, DEFAULT_CONFIG)
    assert makespan(times) == int(
        estimate_issue_cycles(dag, order, latencies))


def test_size_gate_reports_skipped_with_heuristic_witness():
    dag = random_dag(30, seed=5)
    result, weights, _ = _run(dag, max_ops=24)
    assert result.status == STATUS_SKIPPED
    assert result.nodes == 0
    loads = stall_loads(dag, weights)
    best = min(sum(cost) for cost in result.heuristics.values())
    witness_total = makespan(result.times) \
        + assignment_stall(result.times, loads)
    assert result.total == witness_total <= best


def test_budget_bail_is_feasible_and_still_bounded():
    dag = random_dag(16, seed=1, load_fraction=0.7)
    result, _, _ = _run(dag, budget=Budget(max_nodes=5))
    assert result.status == STATUS_FEASIBLE
    for _name, cost in result.heuristics.items():
        assert (result.makespan, result.stall) <= cost
        assert result.total <= sum(cost)


def test_stall_objective_beats_traditional_on_figure1():
    # The paper's Figure 1: balanced weights let the oracle (and the
    # balanced heuristic) hide every load; the cost model must see it.
    dag = figure1_dag()
    result, weights, seeds = _run(dag)
    loads = stall_loads(dag, weights)
    trad_times = greedy_issue_times(dag, seeds["traditional"],
                                    DEFAULT_CONFIG)
    assert schedule_cost(result.times, loads) \
        <= schedule_cost(trad_times, loads)


def test_empty_and_single_op_blocks():
    dag = random_dag(0)
    result, _, _ = _run(dag)
    assert result.status == STATUS_OPTIMAL
    assert result.makespan in (0, 1)
