"""Gap driver: analysis payloads, caching, manifest attachment."""

import json

from repro.harness.store import atomic_write_json
from repro.oracle.gap import (
    GAP_SCHEMA_VERSION,
    OracleBudget,
    OracleRunner,
    analyze_point,
    attach_oracle,
    oracle_summary,
)

#: Small deterministic budget: keeps the suite fast while certifying
#: most of ora's blocks.
BUDGET = OracleBudget(max_nodes=20_000)


def _point(benchmark="ora"):
    return analyze_point(benchmark, "base", budget=BUDGET)


def test_payload_shape_and_validation(tmp_path):
    payload = _point()
    assert payload["schema"] == GAP_SCHEMA_VERSION
    assert payload["validated"] is True
    assert payload["budget"] == BUDGET.tag()
    summary = payload["summary"]
    assert summary["blocks"] > 0
    assert summary["blocks_certified"] + summary["blocks_bailed"] \
        == summary["blocks"]
    assert summary["gap"]["balanced"] >= 1.0
    assert summary["gap"]["traditional"] >= 1.0


def test_per_block_costs_never_beat_the_oracle():
    payload = _point("ear")
    for block in payload["blocks"]:
        for _name, cost in block["heuristics"].items():
            assert block["makespan"] <= cost[0]
            assert block["total"] <= sum(cost)
    # ear's loops include proofs the heuristic could not make.
    assert any(loop["beyond_heuristic"] for loop in payload["loops"])


def test_runner_caches_bit_stable_payloads(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "0")
    first = OracleRunner(cache_dir=tmp_path, budget=BUDGET)
    a = first.run("ora", "base")
    # A fresh runner must hit the disk cache and agree bit-for-bit.
    second = OracleRunner(cache_dir=tmp_path, budget=BUDGET)
    b = second.run("ora", "base")
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    key = second._store_key("ora", "base")
    assert second._store.load(key) is not None


def test_budget_is_part_of_the_cache_key(tmp_path):
    lo = OracleRunner(cache_dir=tmp_path, budget=OracleBudget(100))
    hi = OracleRunner(cache_dir=tmp_path,
                      budget=OracleBudget(100_000))
    assert lo._store_key("ora", "base") != hi._store_key("ora", "base")
    assert "@n100" in lo._store_key("ora", "base").config


def test_sweep_covers_the_grid(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "0")
    runner = OracleRunner(cache_dir=tmp_path, budget=BUDGET)
    payloads = runner.sweep(benchmarks=["ora", "ear"],
                            configs=["base"])
    assert [p["benchmark"] for p in payloads] == ["ora", "ear"]
    summary = oracle_summary(payloads)
    assert set(summary["points"]) == {"ora/base", "ear/base"}
    totals = summary["totals"]
    assert totals["blocks"] == sum(p["summary"]["blocks"]
                                   for p in payloads)


def test_attach_oracle_rewrites_manifest(tmp_path):
    manifest = tmp_path / "run-manifest.json"
    atomic_write_json(manifest, {"version": 4, "runs": []})
    summary = {"schema": GAP_SCHEMA_VERSION, "points": {}, "totals": {}}
    attach_oracle(manifest, summary)
    data = json.loads(manifest.read_text())
    assert data["version"] == 4          # existing keys preserved
    assert data["oracle"]["schema"] == GAP_SCHEMA_VERSION
