"""Modulo oracle: certified II optimality and lower bounds."""

from repro.machine import DEFAULT_CONFIG
from repro.oracle.modulo import (
    STATUS_BAILED,
    STATUS_OPTIMAL,
    LoopOracleResult,
    decide_ii,
    heuristic_ii,
    modulo_horizon,
    oracle_loop,
    validate_modulo_times,
)
from repro.oracle.solver import SAT, UNSAT, Budget
from repro.sched.modulo.deps import DepEdge
from repro.sched.modulo.mii import compute_mii
from tests.sched.test_modulo import DAXPY, REDUCTION, _first_deps


def test_daxpy_loop_is_certified():
    deps = _first_deps(DAXPY)
    result = oracle_loop(deps, DEFAULT_CONFIG)
    assert result.certified
    assert result.optimal_ii >= result.mii
    assert result.certified_lb == result.optimal_ii
    heur = heuristic_ii(deps, DEFAULT_CONFIG, result.mii)
    assert result.heuristic_ii == heur
    if heur:
        assert result.optimal_ii <= heur


def test_witness_validates_and_corruption_is_caught():
    deps = _first_deps(DAXPY)
    result = oracle_loop(deps, DEFAULT_CONFIG)
    assert result.times is not None
    assert validate_modulo_times(deps, DEFAULT_CONFIG,
                                 result.optimal_ii, result.times) == []
    broken = list(result.times)
    broken[0] = broken[1]          # collide two ops on one row
    assert validate_modulo_times(deps, DEFAULT_CONFIG,
                                 result.optimal_ii, broken)


def test_recurrence_makes_low_ii_certifiably_infeasible():
    # Grafted 2-op cycle: latency 6 over distance 1 forces II >= 6.
    deps = _first_deps(REDUCTION)
    other = min(1, len(deps.ops) - 1)
    deps.edges.append(DepEdge(0, other, "true", 5, 0))
    deps.edges.append(DepEdge(other, 0, "true", 1, 1))
    assert decide_ii(deps, DEFAULT_CONFIG, 5, Budget()).status == UNSAT
    _res, _rec, mii = compute_mii(deps, DEFAULT_CONFIG)
    assert decide_ii(deps, DEFAULT_CONFIG, max(mii, 6),
                     Budget()).status == SAT


def test_budget_exhaustion_reports_bailed():
    deps = _first_deps(DAXPY)
    result = oracle_loop(deps, DEFAULT_CONFIG, budget=Budget(max_nodes=1))
    assert result.status == STATUS_BAILED
    assert result.optimal_ii == 0
    assert not result.certified
    assert result.certified_lb == result.mii    # nothing extra proven


def test_horizon_grows_with_every_parameter():
    assert modulo_horizon(4, 3, 2) < modulo_horizon(8, 3, 2)
    assert modulo_horizon(4, 3, 2) < modulo_horizon(4, 9, 2)
    assert modulo_horizon(4, 3, 2) < modulo_horizon(4, 3, 5)


def _result(**kw):
    base = dict(label=".l", n_ops=4, res_mii=2, rec_mii=2, mii=2,
                heuristic_ii=2, status=STATUS_OPTIMAL, optimal_ii=2,
                certified_lb=2, nodes=10)
    base.update(kw)
    return LoopOracleResult(**base)


def test_beyond_heuristic_semantics():
    # Proving II = MII when the heuristic already achieved MII adds
    # nothing (MII was already a lower bound).
    assert not _result().beyond_heuristic
    # A certified lower bound above MII is new knowledge.
    assert _result(optimal_ii=3, certified_lb=3,
                   heuristic_ii=3).beyond_heuristic
    # Beating the heuristic's II is new knowledge.
    assert _result(heuristic_ii=3).beyond_heuristic
    # Settling a loop the heuristic could not schedule at all.
    assert _result(heuristic_ii=0).beyond_heuristic
    # A bare bail proves nothing.
    assert not _result(status=STATUS_BAILED, optimal_ii=0).beyond_heuristic


def test_to_json_carries_the_verdict():
    data = _result(heuristic_ii=3).to_json()
    assert data["beyond_heuristic"] is True
    assert data["status"] == STATUS_OPTIMAL
    assert "times" not in data      # witness stays out of payloads
