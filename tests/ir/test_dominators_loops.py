"""Dominators, back edges, natural loops."""

from repro.ir import (
    BasicBlock,
    Cfg,
    dominates,
    find_back_edges,
    find_loops,
    immediate_dominators,
    loop_depths,
    reverse_postorder,
)
from repro.isa import Instruction, Reg


def v(i):
    return Reg("i", i, virtual=True)


def loop_cfg() -> Cfg:
    """entry -> header -> body -> header (back edge); header -> exit."""
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock("entry", [], fallthrough="header"))
    cfg.add_block(BasicBlock(
        "header",
        [Instruction("BEQ", srcs=(v(0),), label="exit")],
        fallthrough="body"))
    cfg.add_block(BasicBlock(
        "body", [Instruction("BR", label="header")]))
    cfg.add_block(BasicBlock("exit", [Instruction("HALT")]))
    return cfg


def nested_loop_cfg() -> Cfg:
    """Two nested loops sharing structure."""
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock("entry", [], fallthrough="outer"))
    cfg.add_block(BasicBlock(
        "outer", [Instruction("BEQ", srcs=(v(0),), label="done")],
        fallthrough="inner"))
    cfg.add_block(BasicBlock(
        "inner", [Instruction("BNE", srcs=(v(1),), label="inner")],
        fallthrough="latch"))
    cfg.add_block(BasicBlock("latch", [Instruction("BR", label="outer")]))
    cfg.add_block(BasicBlock("done", [Instruction("HALT")]))
    return cfg


def test_reverse_postorder_starts_at_entry():
    order = reverse_postorder(loop_cfg())
    assert order[0] == "entry"
    assert set(order) == {"entry", "header", "body", "exit"}
    assert order.index("header") < order.index("body")


def test_immediate_dominators_linear_chain():
    idom = immediate_dominators(loop_cfg())
    assert idom["header"] == "entry"
    assert idom["body"] == "header"
    assert idom["exit"] == "header"
    assert idom["entry"] == "entry"


def test_dominates_relation():
    cfg = loop_cfg()
    idom = immediate_dominators(cfg)
    assert dominates(idom, "entry", "exit", cfg.entry)
    assert dominates(idom, "header", "body", cfg.entry)
    assert not dominates(idom, "body", "exit", cfg.entry)
    assert dominates(idom, "header", "header", cfg.entry)


def test_back_edge_detection():
    assert find_back_edges(loop_cfg()) == [("body", "header")]


def test_nested_back_edges():
    edges = set(find_back_edges(nested_loop_cfg()))
    assert edges == {("inner", "inner"), ("latch", "outer")}


def test_natural_loop_body():
    loops = find_loops(loop_cfg())
    assert set(loops) == {"header"}
    assert loops["header"].body == {"header", "body"}


def test_nested_loop_bodies_and_depths():
    cfg = nested_loop_cfg()
    loops = find_loops(cfg)
    assert loops["outer"].body == {"outer", "inner", "latch"}
    assert loops["inner"].body == {"inner"}
    depths = loop_depths(cfg)
    assert depths["entry"] == 0
    assert depths["outer"] == 1
    assert depths["inner"] == 2
    assert depths["latch"] == 1
    assert depths["done"] == 0


def test_acyclic_graph_has_no_loops():
    cfg = Cfg(entry="a")
    cfg.add_block(BasicBlock("a", [], fallthrough="b"))
    cfg.add_block(BasicBlock("b", [Instruction("HALT")]))
    assert find_back_edges(cfg) == []
    assert find_loops(cfg) == {}
