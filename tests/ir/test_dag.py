"""Dependence-DAG construction: edge kinds, disambiguation, reachability."""

import pytest

from repro.ir import ANTI, MEM, ORDER, OUT, TRUE, Dag, build_dag
from repro.isa import Instruction, Locality, MemRef, Reg


def v(i, kind="i"):
    return Reg(kind, i, virtual=True)


def ld(dest, base, symbol="A", element=0, **kw):
    return Instruction("LD", dest=v(dest), srcs=(v(base),),
                       offset=8 * element,
                       mem=MemRef("data", symbol, affine=({}, element)), **kw)


def st(src, base, symbol="A", element=0):
    return Instruction("ST", srcs=(v(src), v(base)), offset=8 * element,
                       mem=MemRef("data", symbol, affine=({}, element)))


class TestRegisterDependences:
    def test_true_dependence(self):
        dag = build_dag([
            Instruction("LDI", dest=v(0), imm=1),
            Instruction("ADD", dest=v(1), srcs=(v(0),), imm=1),
        ])
        assert dag.succs[0] == {1: TRUE}

    def test_anti_dependence(self):
        dag = build_dag([
            Instruction("ADD", dest=v(1), srcs=(v(0),), imm=1),
            Instruction("LDI", dest=v(0), imm=5),
        ])
        assert dag.succs[0] == {1: ANTI}

    def test_output_dependence(self):
        dag = build_dag([
            Instruction("LDI", dest=v(0), imm=1),
            Instruction("LDI", dest=v(0), imm=2),
        ])
        assert dag.succs[0] == {1: OUT}

    def test_true_wins_over_anti(self):
        dag = build_dag([
            Instruction("ADD", dest=v(1), srcs=(v(0),), imm=1),
            Instruction("ADD", dest=v(0), srcs=(v(1),), imm=1),
        ])
        assert dag.succs[0] == {1: TRUE}

    def test_cmov_destination_read_creates_true_edge(self):
        dag = build_dag([
            Instruction("LDI", dest=v(0), imm=1),
            Instruction("CMOVNE", dest=v(0), srcs=(v(1), v(2))),
        ])
        assert dag.succs[0][1] == TRUE


class TestMemoryDependences:
    def test_loads_never_conflict(self):
        dag = build_dag([ld(1, 0, element=0), ld(2, 0, element=0)])
        assert 1 not in dag.succs[0]

    def test_store_load_same_element(self):
        dag = build_dag([st(1, 0, element=3), ld(2, 0, element=3)])
        assert dag.succs[0][1] == MEM

    def test_store_load_distinct_elements_independent(self):
        dag = build_dag([st(1, 0, element=3), ld(2, 0, element=4)])
        assert 1 not in dag.succs[0]

    def test_store_load_different_arrays_independent(self):
        dag = build_dag([st(1, 0, "A"), ld(2, 0, "B")])
        assert 1 not in dag.succs[0]

    def test_unknown_subscript_is_conservative(self):
        unknown = Instruction("LD", dest=v(2), srcs=(v(0),),
                              mem=MemRef("data", "A", affine=None))
        dag = build_dag([st(1, 0, "A", element=5), unknown])
        assert dag.succs[0][1] == MEM

    def test_missing_memref_is_conservative(self):
        bare_store = Instruction("ST", srcs=(v(1), v(0)), offset=0)
        dag = build_dag([bare_store, ld(2, 0, "A")])
        assert dag.succs[0][1] == MEM

    def test_store_store_ordering(self):
        dag = build_dag([st(1, 0, element=2), st(2, 0, element=2)])
        assert dag.succs[0][1] == MEM

    def test_custom_alias_oracle(self):
        dag = build_dag([st(1, 0, element=0), ld(2, 0, element=0)],
                        may_alias=lambda a, b: False)
        assert 1 not in dag.succs[0]


class TestLocalityArcs:
    def test_miss_orders_hits_in_same_group(self):
        instrs = [
            ld(1, 0, element=0, locality=Locality.MISS, group=9),
            ld(2, 0, element=1, locality=Locality.HIT, group=9),
            ld(3, 0, element=2, locality=Locality.HIT, group=9),
        ]
        dag = build_dag(instrs)
        assert dag.succs[0][1] == ORDER
        assert dag.succs[0][2] == ORDER

    def test_different_groups_not_linked(self):
        instrs = [
            ld(1, 0, element=0, locality=Locality.MISS, group=1),
            ld(2, 0, element=4, locality=Locality.HIT, group=2),
        ]
        dag = build_dag(instrs)
        assert 1 not in dag.succs[0]

    def test_hit_without_prior_miss_unconstrained(self):
        instrs = [
            ld(1, 0, element=1, locality=Locality.HIT, group=3),
            ld(2, 0, element=0, locality=Locality.MISS, group=3),
        ]
        dag = build_dag(instrs)
        assert 1 not in dag.succs[0]


class TestTerminatorPinning:
    def test_final_branch_pinned_after_everything(self):
        instrs = [
            Instruction("LDI", dest=v(0), imm=1),
            Instruction("LDI", dest=v(1), imm=2),
            Instruction("BEQ", srcs=(v(0),), label="x"),
        ]
        dag = build_dag(instrs)
        assert dag.succs[0][2] in (TRUE, ORDER)
        assert dag.succs[1][2] == ORDER


class TestQueries:
    def _chain(self):
        return build_dag([
            Instruction("LDI", dest=v(0), imm=1),
            Instruction("ADD", dest=v(1), srcs=(v(0),), imm=1),
            Instruction("ADD", dest=v(2), srcs=(v(1),), imm=1),
            Instruction("LDI", dest=v(9), imm=7),
        ])

    def test_reachability(self):
        dag = self._chain()
        reach = dag.reachability()
        assert reach[0] & (1 << 2)            # 0 reaches 2 transitively
        assert not reach[0] & (1 << 3)

    def test_independence(self):
        dag = self._chain()
        assert dag.independent(0, 3)
        assert not dag.independent(0, 2)
        assert not dag.independent(1, 1)

    def test_roots_and_leaves(self):
        dag = self._chain()
        assert dag.roots() == [0, 3]
        assert dag.leaves() == [2, 3]

    def test_topological_check(self):
        dag = self._chain()
        assert dag.topological_check([0, 1, 2, 3])
        assert dag.topological_check([3, 0, 1, 2])
        assert not dag.topological_check([1, 0, 2, 3])
        assert not dag.topological_check([0, 1, 2])   # missing node

    def test_backward_edge_rejected(self):
        dag = Dag([Instruction("NOP"), Instruction("NOP")])
        with pytest.raises(ValueError):
            dag.add_edge(1, 0, TRUE)

    def test_load_indices(self):
        dag = build_dag([ld(1, 0), Instruction("NOP"), ld(2, 0)])
        assert dag.load_indices() == [0, 2]
