"""Human-readable dumps: CFG listings, DAG dumps, program listings."""

from repro.frontend import frontend
from repro.codegen.lower import lower
from repro.ir import build_dag
from repro.isa import Instruction, Reg


def v(i):
    return Reg("i", i, virtual=True)


SOURCE = """
array A[8] : float;
var n : int = 8;
func main() {
    var i : int;
    for (i = 0; i < n; i = i + 1) { A[i] = float(i); }
}
"""


def test_cfg_format_shows_blocks_and_fallthroughs():
    cfg = lower(frontend(SOURCE))
    text = cfg.format()
    assert "entry:" in text
    assert "fallthrough" in text
    for block in cfg:
        assert f"{block.label}:" in text


def test_program_format_round_trips_labels():
    cfg = lower(frontend(SOURCE))
    program = cfg.linearize()
    text = program.format()
    for label in program.labels:
        assert f"{label}:" in text
    assert text.count("HALT") == 1


def test_dag_format_lists_every_node():
    dag = build_dag([
        Instruction("LDI", dest=v(0), imm=1),
        Instruction("ADD", dest=v(1), srcs=(v(0),), imm=2),
    ])
    text = dag.format()
    assert "LDI" in text and "ADD" in text
    assert "(true)" in text


def test_instruction_format_variants():
    assert "BR" in Instruction("BR", label=".x").format()
    store = Instruction("ST", srcs=(v(0), v(1)), offset=16)
    assert "16(" in store.format()
    ldi = Instruction("FLDI", dest=v(2, ), imm=2.5)
    # FLDI dest must be fp; rebuild properly:
    ldi = Instruction("FLDI", dest=Reg("f", 2, True), imm=2.5)
    assert "2.5" in ldi.format()
    imm_op = Instruction("SLL", dest=v(3), srcs=(v(0),), imm=4)
    assert "#4" in imm_op.format()
