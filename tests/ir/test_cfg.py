"""CFG structure, verification and linearization."""

import pytest

from repro.ir import BasicBlock, Cfg
from repro.isa import Instruction, Reg


def v(i):
    return Reg("i", i, virtual=True)


def ldi(dest, value):
    return Instruction("LDI", dest=v(dest), imm=value)


def diamond() -> Cfg:
    """entry -> (then | else) -> end."""
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock("entry", [ldi(0, 1),
                                       Instruction("BEQ", srcs=(v(0),),
                                                   label="else")],
                             fallthrough="then"))
    cfg.add_block(BasicBlock("then", [ldi(1, 2)], fallthrough="end"))
    cfg.add_block(BasicBlock("else", [ldi(1, 3)], fallthrough="end"))
    cfg.add_block(BasicBlock("end", [Instruction("HALT")]))
    return cfg


def test_successors_taken_target_first():
    cfg = diamond()
    assert cfg.successors("entry") == ["else", "then"]
    assert cfg.successors("then") == ["end"]
    assert cfg.successors("end") == []


def test_predecessors():
    preds = diamond().predecessors()
    assert sorted(preds["end"]) == ["else", "then"]
    assert preds["entry"] == []


def test_terminator_and_body():
    cfg = diamond()
    entry = cfg.block("entry")
    assert entry.terminator.op == "BEQ"
    assert len(entry.body) == 1
    assert cfg.block("then").terminator is None


def test_verify_accepts_diamond():
    diamond().verify()


def test_verify_rejects_midblock_branch():
    cfg = diamond()
    cfg.block("then").instrs.insert(0, Instruction("BR", label="end"))
    with pytest.raises(ValueError):
        cfg.verify()


def test_verify_rejects_unknown_successor():
    cfg = diamond()
    cfg.block("then").fallthrough = "nowhere"
    with pytest.raises(ValueError):
        cfg.verify()


def test_verify_rejects_fall_off_the_end():
    cfg = diamond()
    cfg.block("then").fallthrough = None
    with pytest.raises(ValueError):
        cfg.verify()


def test_verify_rejects_missing_entry():
    cfg = Cfg(entry="missing")
    cfg.add_block(BasicBlock("a", [Instruction("HALT")]))
    with pytest.raises(ValueError):
        cfg.verify()


def test_duplicate_block_rejected():
    cfg = diamond()
    with pytest.raises(ValueError):
        cfg.add_block(BasicBlock("entry"))


def test_prune_unreachable():
    cfg = diamond()
    cfg.add_block(BasicBlock("orphan", [Instruction("HALT")]))
    removed = cfg.prune_unreachable()
    assert removed == ["orphan"]
    assert "orphan" not in cfg.blocks


def test_linearize_inserts_branch_for_nonadjacent_fallthrough():
    cfg = diamond()
    # Move "then" to the end of layout: entry's fallthrough needs a BR.
    cfg.order = ["entry", "else", "end", "then"]
    program = cfg.linearize()
    entry_end = program.instructions[program.labels["else"] - 1]
    assert entry_end.op == "BR"
    assert entry_end.label == "then"


def test_linearize_no_branch_when_adjacent():
    program = diamond().linearize()
    # entry falls through to then, which is adjacent: no BR after BEQ.
    index = program.labels["then"]
    assert program.instructions[index - 1].op == "BEQ"


def test_linearize_moves_entry_first():
    cfg = diamond()
    cfg.order = ["then", "entry", "else", "end"]
    program = cfg.linearize()
    assert program.labels["entry"] == 0


def test_new_label_unique():
    cfg = diamond()
    labels = {cfg.new_label("x") for _ in range(10)}
    assert len(labels) == 10


def test_add_block_after():
    cfg = diamond()
    cfg.add_block(BasicBlock("mid", [Instruction("HALT")]), after="entry")
    assert cfg.order.index("mid") == cfg.order.index("entry") + 1


def test_instruction_count():
    assert diamond().instruction_count() == 5
