"""Backward liveness over the CFG."""

from repro.ir import BasicBlock, Cfg, block_use_def, liveness
from repro.ir.liveness import live_at_each_instruction
from repro.isa import Instruction, Reg


def v(i):
    return Reg("i", i, virtual=True)


def test_block_use_def_upward_exposed():
    instrs = [
        Instruction("LDI", dest=v(0), imm=1),
        Instruction("ADD", dest=v(1), srcs=(v(0), v(2))),
        Instruction("ADD", dest=v(0), srcs=(v(1),), imm=1),
    ]
    uses, defs = block_use_def(instrs)
    assert uses == {v(2)}             # v0 defined before use, v1 likewise
    assert defs == {v(0), v(1)}


def test_liveness_across_branch():
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock("entry", [
        Instruction("LDI", dest=v(0), imm=1),
        Instruction("LDI", dest=v(1), imm=2),
        Instruction("BEQ", srcs=(v(0),), label="b"),
    ], fallthrough="a"))
    cfg.add_block(BasicBlock("a", [
        Instruction("ADD", dest=v(2), srcs=(v(1),), imm=0),
    ], fallthrough="end"))
    cfg.add_block(BasicBlock("b", [
        Instruction("ADD", dest=v(2), srcs=(v(2),), imm=1),
    ], fallthrough="end"))
    cfg.add_block(BasicBlock("end", [Instruction("HALT")]))
    live_in, live_out = liveness(cfg)
    assert v(1) in live_out["entry"]          # used in block a
    assert v(2) in live_in["b"]               # b reads v2 before writing
    assert v(2) not in live_in["a"]
    assert live_out["a"] == set()             # nothing read after


def test_loop_keeps_induction_variable_live():
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock("entry", [
        Instruction("LDI", dest=v(0), imm=0),
    ], fallthrough="loop"))
    cfg.add_block(BasicBlock("loop", [
        Instruction("ADD", dest=v(0), srcs=(v(0),), imm=1),
        Instruction("CMPLT", dest=v(1), srcs=(v(0),), imm=10),
        Instruction("BNE", srcs=(v(1),), label="loop"),
    ], fallthrough="exit"))
    cfg.add_block(BasicBlock("exit", [Instruction("HALT")]))
    live_in, live_out = liveness(cfg)
    assert v(0) in live_in["loop"]
    assert v(0) in live_out["loop"]           # live around the back edge
    assert v(0) in live_out["entry"]


def test_live_at_each_instruction():
    instrs = [
        Instruction("LDI", dest=v(0), imm=1),
        Instruction("ADD", dest=v(1), srcs=(v(0),), imm=1),
        Instruction("ADD", dest=v(2), srcs=(v(1),), imm=1),
    ]
    after = live_at_each_instruction(instrs, live_out={v(2)})
    assert after[0] == {v(0)}
    assert after[1] == {v(1)}
    assert after[2] == {v(2)}
