"""Cycle-level stall attribution: exactness and zero-cost-off.

The acceptance property for the observability layer: summed per-PC
interlock cycles equal the aggregate ``Metrics`` counters *exactly*,
and a disabled observer changes neither the generated code nor a
single cycle of the simulation.
"""

from __future__ import annotations

import pytest

from repro.harness import Options, compile_source, options_for
from repro.machine import Simulator
from repro.obs import NULL_OBSERVER, StallProfile, TracingObserver
from repro.workloads import WORKLOADS


def _profiled_run(benchmark: str, scheduler: str, config: str):
    observer = TracingObserver()
    workload = WORKLOADS[benchmark]
    result = compile_source(workload.source,
                            options_for(scheduler, config),
                            workload.name, observer=observer)
    profile = observer.stall_profile(benchmark, scheduler, config)
    sim = Simulator(result.program, stall_profile=profile)
    metrics = sim.run()
    return result, profile, metrics


# "ear"/"lu4" is a Table 6 grid point (scheduler x unroll-by-4).
@pytest.mark.parametrize("scheduler", ["balanced", "traditional"])
def test_per_pc_interlocks_sum_exactly(scheduler):
    _, profile, metrics = _profiled_run("ear", scheduler, "lu4")
    assert metrics.load_interlock_cycles > 0
    assert sum(profile.load_interlock.values()) == \
        metrics.load_interlock_cycles
    assert sum(profile.fixed_interlock.values()) == \
        metrics.fixed_interlock_cycles
    assert sum(profile.mshr_stalls.values()) == \
        metrics.mshr_stall_cycles


def test_exec_histogram_and_load_sites():
    result, profile, metrics = _profiled_run("ear", "balanced", "base")
    assert sum(profile.exec_counts.values()) == metrics.instructions
    # Every attributed load-interlock PC is a static load site.
    for pc in profile.load_interlock:
        assert result.program.instructions[pc].is_load, pc
    # Hit/miss accounting covers every executed load exactly once.
    assert sum(profile.load_hits.values()) + \
        sum(profile.load_misses.values()) == metrics.loads


def test_hot_loads_ranked_and_formatted():
    result, profile, metrics = _profiled_run("ear", "balanced", "base")
    rows = profile.hot_loads(5)
    assert rows
    cycles = [row["interlock_cycles"] for row in rows]
    assert cycles == sorted(cycles, reverse=True)
    table = profile.format_hot_loads(result.program, n=5,
                                     total_cycles=metrics.total_cycles)
    assert "interlock" in table
    assert str(rows[0]["pc"]) in table


def test_disabled_observer_is_bit_identical():
    """No observer => identical code; no profile => identical cycles."""
    workload = WORKLOADS["ear"]
    options = Options(scheduler="balanced")
    plain = compile_source(workload.source, options, workload.name)
    observed = compile_source(workload.source, options, workload.name,
                              observer=TracingObserver())
    assert plain.program.format() == observed.program.format()

    bare = Simulator(plain.program).run()
    profiled_sim = Simulator(plain.program,
                             stall_profile=StallProfile())
    profiled = profiled_sim.run()
    assert bare.total_cycles == profiled.total_cycles
    assert bare.load_interlock_cycles == profiled.load_interlock_cycles
    assert bare.fixed_interlock_cycles == \
        profiled.fixed_interlock_cycles
    assert bare.instructions == profiled.instructions


def test_null_observer_spans_are_reusable():
    with NULL_OBSERVER.span("anything", attr=1) as sp:
        sp.annotate(more=2)     # must be a silent no-op
    assert NULL_OBSERVER.stall_profile("x", "y", "z") is None
    assert not NULL_OBSERVER.enabled
