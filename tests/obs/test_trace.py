"""TraceRecorder: span nesting, annotation, JSONL + Chrome export."""

from __future__ import annotations

import json

from repro.obs import TraceRecorder


class FakeClock:
    """Deterministic clock: advances by `step` seconds per reading."""

    def __init__(self, step: float = 0.001) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def test_span_nesting_and_depth():
    rec = TraceRecorder(clock=FakeClock())
    with rec.span("outer"):
        with rec.span("inner", key=1):
            pass
    assert [s.name for s in rec.spans] == ["inner", "outer"]
    by_name = {s.name: s for s in rec.spans}
    assert by_name["outer"].depth == 0
    assert by_name["inner"].depth == 1
    # Durations are positive and the inner span is contained.
    outer, inner = by_name["outer"], by_name["inner"]
    assert inner.start_us >= outer.start_us
    assert inner.start_us + inner.dur_us <= \
        outer.start_us + outer.dur_us


def test_annotate_sums_numeric_and_replaces_other():
    rec = TraceRecorder(clock=FakeClock())
    with rec.span("phase") as sp:
        rec.annotate(blocks=2, label="a")
        rec.annotate(blocks=3, label="b")
    assert sp.args == {"blocks": 5, "label": "b"}


def test_annotate_outside_span_is_noop():
    rec = TraceRecorder(clock=FakeClock())
    rec.annotate(ignored=1)     # must not raise
    assert rec.current is None


def test_jsonl_roundtrip(tmp_path):
    rec = TraceRecorder(clock=FakeClock())
    with rec.span("compile", benchmark="ear"):
        rec.event("cache-miss", line=3)
    path = rec.write_jsonl(tmp_path / "trace.jsonl")
    rows = [json.loads(line) for line in
            path.read_text().splitlines()]
    assert {row["type"] for row in rows} == {"span", "event"}
    span = next(r for r in rows if r["type"] == "span")
    assert span["name"] == "compile"
    assert span["args"] == {"benchmark": "ear"}
    assert span["dur_us"] > 0


def test_chrome_trace_is_valid(tmp_path):
    rec = TraceRecorder(clock=FakeClock())
    with rec.span("a"):
        with rec.span("b"):
            pass
        rec.event("marker")
    path = rec.write_chrome_trace(tmp_path / "trace.chrome.json")
    data = json.loads(path.read_text())
    events = data["traceEvents"]
    assert len(events) == 3
    for ev in events:
        assert ev["ph"] in ("X", "i")
        assert ev["ts"] >= 0
        assert ev["pid"] == 1 and ev["tid"] == 1
        if ev["ph"] == "X":
            assert ev["dur"] >= 0
    # Complete events sorted by start time.
    complete = [ev for ev in events if ev["ph"] == "X"]
    assert [ev["ts"] for ev in complete] == \
        sorted(ev["ts"] for ev in complete)


def test_summary_aggregates_by_name():
    rec = TraceRecorder(clock=FakeClock())
    for _ in range(3):
        with rec.span("block"):
            pass
    summary = rec.summary()
    assert summary["spans"] == 3
    assert summary["by_name"]["block"]["count"] == 3
    assert summary["by_name"]["block"]["us"] > 0
