"""Schedule provenance: per-load weight/slot records from the
block scheduler."""

from __future__ import annotations

from repro.harness import compile_source, options_for
from repro.obs import TracingObserver
from repro.workloads import WORKLOADS


def _provenance(scheduler: str, benchmark: str = "ear"):
    observer = TracingObserver()
    workload = WORKLOADS[benchmark]
    compile_source(workload.source, options_for(scheduler, "base"),
                   workload.name, observer=observer)
    return observer.provenance


def test_balanced_records_weights_and_contributors():
    prov = _provenance("balanced")
    assert len(prov) > 0
    deviating = prov.balanced_deviations()
    assert deviating, "balanced weights should deviate from latency"
    for record in deviating:
        assert record.scheduler == "balanced"
        assert record.indep_contributors > 0
        # Balanced weight = 1 + shared contributions, floored at the
        # hit latency: never more than 1 + contributor count.
        assert record.weight <= 1.0 + record.indep_contributors


def test_traditional_records_match_latency():
    prov = _provenance("traditional")
    assert len(prov) > 0
    for record in prov.records:
        assert record.scheduler == "traditional"
        assert record.weight == record.latency_weight
        assert record.indep_contributors == 0
    assert not prov.balanced_deviations()


def test_slots_are_valid_block_permutation_positions():
    prov = _provenance("balanced")
    for record in prov.records:
        assert record.slot_before >= 0
        assert record.slot_after >= 0
        assert record.hoisted_by == \
            record.slot_before - record.slot_after
    by_block = prov.by_block()
    assert all(records for records in by_block.values())
    # Two loads in one block never land in the same final slot.
    for records in by_block.values():
        slots = [r.slot_after for r in records]
        assert len(slots) == len(set(slots))


def test_format_and_json():
    prov = _provenance("balanced")
    table = prov.format_table(n=5)
    assert "weight" in table and "slot" in table
    data = prov.to_json()
    assert data["loads"] == len(prov)
    assert data["deviating_loads"] == len(prov.balanced_deviations())
    assert data["records"][0]["block"]
