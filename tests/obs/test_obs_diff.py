"""Manifest diffing: regression detection between two runs."""

from __future__ import annotations

import json

import pytest

from repro.obs import diff_manifest_files, diff_manifests
from repro.obs.diff import MIN_INTERLOCK_DELTA


def _manifest(points):
    runs = []
    for (bench, sched, config, cycles, interlock) in points:
        runs.append({
            "benchmark": bench, "scheduler": sched, "config": config,
            "cached": False, "total_cycles": cycles,
            "load_interlock_cycles": interlock,
        })
    return {"version": 2, "runs": runs}


BASE = _manifest([
    ("ear", "balanced", "base", 100_000, 10_000),
    ("ear", "traditional", "base", 120_000, 20_000),
    ("ora", "balanced", "base", 50_000, 500),
])


def test_identical_manifests_are_ok():
    result = diff_manifests(BASE, BASE, threshold=0.02)
    assert result.ok
    assert len(result.deltas) == 3
    assert "no regressions" in result.format()


def test_cycle_regression_flagged():
    new = _manifest([
        ("ear", "balanced", "base", 103_000, 10_000),   # +3%
        ("ear", "traditional", "base", 120_000, 20_000),
        ("ora", "balanced", "base", 50_000, 500),
    ])
    result = diff_manifests(BASE, new, threshold=0.02)
    assert not result.ok
    (delta, reasons), = result.regressed
    assert delta.key == "ear/balanced/base"
    assert "cycles" in reasons[0]
    assert "REGRESSED" in result.format()


def test_improvement_and_within_threshold_ok():
    new = _manifest([
        ("ear", "balanced", "base", 95_000, 9_000),     # improvement
        ("ear", "traditional", "base", 121_000, 20_000),  # +0.8%
        ("ora", "balanced", "base", 50_000, 500),
    ])
    assert diff_manifests(BASE, new, threshold=0.02).ok


def test_interlock_regression_flagged_above_min_delta():
    worse = 10_000 + max(int(10_000 * 0.05), MIN_INTERLOCK_DELTA)
    new = _manifest([
        ("ear", "balanced", "base", 100_000, worse),
        ("ear", "traditional", "base", 120_000, 20_000),
        ("ora", "balanced", "base", 50_000, 500),
    ])
    result = diff_manifests(BASE, new, threshold=0.02)
    assert not result.ok
    (_, reasons), = result.regressed
    assert "load interlocks" in reasons[0]


def test_tiny_absolute_interlock_delta_ignored():
    # +4% relative but only +20 absolute cycles: below the floor.
    new = _manifest([
        ("ear", "balanced", "base", 100_000, 10_000),
        ("ear", "traditional", "base", 120_000, 20_000),
        ("ora", "balanced", "base", 50_000, 520),
    ])
    assert diff_manifests(BASE, new, threshold=0.02).ok


def test_missing_and_new_points_reported_not_fatal():
    new = _manifest([
        ("ear", "balanced", "base", 100_000, 10_000),
        ("alvinn", "balanced", "base", 70_000, 7_000),
    ])
    result = diff_manifests(BASE, new, threshold=0.02)
    assert result.ok
    assert set(result.only_base) == {"ear/traditional/base",
                                     "ora/balanced/base"}
    assert result.only_new == ["alvinn/balanced/base"]
    assert "MISSING" in result.format()
    assert "NEW" in result.format()


def test_old_manifests_without_interlock_field_compare_cycles_only():
    base = {"version": 1, "runs": [{
        "benchmark": "ear", "scheduler": "balanced", "config": "base",
        "cached": True, "total_cycles": 100_000}]}
    result = diff_manifests(base, BASE, threshold=0.02)
    assert result.ok
    assert result.deltas[0].interlock_delta is None


def test_diff_manifest_files(tmp_path):
    base_path = tmp_path / "base.json"
    new_path = tmp_path / "new.json"
    base_path.write_text(json.dumps(BASE))
    new_path.write_text(json.dumps(BASE))
    assert diff_manifest_files(base_path, new_path).ok
    with pytest.raises(OSError):
        diff_manifest_files(tmp_path / "missing.json", new_path)
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ValueError):
        diff_manifest_files(bad, new_path)


def _oracle_section(**point_over):
    point = {
        "gap_balanced": 1.05, "gap_traditional": 1.4,
        "blocks": 6, "blocks_certified": 5,
        "loops": 2, "loops_certified": 2,
        "loops_beyond_heuristic": 1,
    }
    point.update(point_over)
    return {"schema": 1, "budget": "n1000",
            "points": {"ear/base": point},
            "totals": {}}


def test_oracle_sections_identical_ok():
    base = dict(BASE, version=4, oracle=_oracle_section())
    new = dict(BASE, version=4, oracle=_oracle_section())
    result = diff_manifests(base, new)
    assert result.ok
    assert result.oracle_points == 1
    assert "1 oracle point(s)" in result.format()


def test_oracle_gap_growth_flagged():
    base = dict(BASE, version=4, oracle=_oracle_section())
    new = dict(BASE, version=4,
               oracle=_oracle_section(gap_balanced=1.2))
    result = diff_manifests(base, new)
    assert not result.ok
    assert any("gap_balanced" in r for r in result.oracle_regressions)
    assert "!! oracle:" in result.format()


def test_oracle_tiny_gap_wiggle_ignored():
    from repro.obs.diff import MIN_GAP_DELTA

    base = dict(BASE, version=4, oracle=_oracle_section())
    new = dict(BASE, version=4, oracle=_oracle_section(
        gap_balanced=1.05 + MIN_GAP_DELTA / 2))
    assert diff_manifests(base, new).ok


def test_oracle_certification_drop_flagged():
    base = dict(BASE, version=4, oracle=_oracle_section())
    new = dict(BASE, version=4,
               oracle=_oracle_section(loops_beyond_heuristic=0))
    result = diff_manifests(base, new)
    assert any("loops_beyond_heuristic dropped 1 -> 0" in r
               for r in result.oracle_regressions)


def test_oracle_point_missing_from_new_flagged():
    base = dict(BASE, version=4, oracle=_oracle_section())
    new = dict(BASE, version=4, oracle={"schema": 1, "budget": "n1000",
                                        "points": {}, "totals": {}})
    result = diff_manifests(base, new)
    assert any("missing" in r for r in result.oracle_regressions)


def test_manifests_without_oracle_sections_skip_gating():
    result = diff_manifests(BASE, BASE)
    assert result.ok
    assert result.oracle_points == 0
    assert "oracle point" not in result.format()


# ------------------------------------------------- analysis gating (v6)
def _analysis_section(**point_over):
    point = {
        "loops": 3, "pairs": 40, "independent": 36, "exact": 4,
        "always": 0, "unknown": 0,
        "max_live_i": 12, "max_live_f": 20, "over_budget_blocks": 0,
    }
    point.update(point_over)
    return {"schema": 1,
            "points": {"ear/balanced": point},
            "totals": {}}


def test_analysis_sections_identical_ok():
    base = dict(BASE, version=6, analysis=_analysis_section())
    new = dict(BASE, version=6, analysis=_analysis_section())
    result = diff_manifests(base, new, threshold=0.0)
    assert result.ok
    assert result.analysis_points == 1
    assert "1 analysis point(s)" in result.format()


def test_analysis_independent_drop_flagged():
    base = dict(BASE, version=6, analysis=_analysis_section())
    new = dict(BASE, version=6,
               analysis=_analysis_section(independent=35, unknown=1))
    result = diff_manifests(base, new)
    assert not result.ok
    assert any("independent pairs dropped 36 -> 35" in r
               for r in result.analysis_regressions)
    assert any("unknown verdicts grew 0 -> 1" in r
               for r in result.analysis_regressions)
    assert "!! analysis:" in result.format()


def test_analysis_over_budget_growth_flagged():
    base = dict(BASE, version=6, analysis=_analysis_section())
    new = dict(BASE, version=6,
               analysis=_analysis_section(over_budget_blocks=2))
    result = diff_manifests(base, new)
    assert any("over-budget blocks grew" in r
               for r in result.analysis_regressions)


def test_analysis_maxlive_growth_threshold():
    base = dict(BASE, version=6, analysis=_analysis_section())
    grown = dict(BASE, version=6,
                 analysis=_analysis_section(max_live_f=21))
    # At threshold 0 any growth is a regression...
    result = diff_manifests(base, grown, threshold=0.0)
    assert any("max_live_f 20 -> 21" in r
               for r in result.analysis_regressions)
    # ...but a 5% growth passes a 10% tolerance.
    assert diff_manifests(base, grown, threshold=0.10).ok
    # Shrinking is never flagged.
    shrunk = dict(BASE, version=6,
                  analysis=_analysis_section(max_live_i=1))
    assert diff_manifests(base, shrunk, threshold=0.0).ok


def test_analysis_point_missing_from_new_flagged():
    base = dict(BASE, version=6, analysis=_analysis_section())
    new = dict(BASE, version=6,
               analysis={"schema": 1, "points": {}, "totals": {}})
    result = diff_manifests(base, new)
    assert any("missing" in r for r in result.analysis_regressions)


def test_manifests_without_analysis_sections_skip_gating():
    result = diff_manifests(BASE, BASE)
    assert result.ok
    assert result.analysis_points == 0
    assert "analysis point" not in result.format()
