"""Zero-cost-off discipline for the global metrics registry.

Same acceptance shape as PR 3's observer tests: with recording
disabled the registry must change *nothing* — not one cycle, not one
interlock, not one byte of the manifest beyond the metrics section
itself — and with recording enabled the hot-loop overhead on a traced
``ear`` run stays within 5%.
"""

from __future__ import annotations

import time

from repro.harness import (ExperimentRunner, Options, compile_source,
                           load_manifest, options_for, run_compiled)
from repro.obs import TracingObserver
from repro.obs.metrics import REGISTRY
from repro.workloads import WORKLOADS


def _table6_point(recording, tmp_path, monkeypatch):
    monkeypatch.setattr(REGISTRY, "recording", recording)
    runner = ExperimentRunner(cache_dir=tmp_path / str(recording))
    runner.sweep(benchmarks=["ear"], schedulers=("balanced",),
                 configs=["lu4"])
    result = runner._memory[("ear", "balanced", "lu4")]
    return result, load_manifest(runner.manifest_path)


def test_recording_off_is_bit_identical(tmp_path, monkeypatch):
    """Recording on vs off: identical cycles, interlocks, and manifest
    modulo the metrics section (which must appear only when on)."""
    off_result, off_manifest = _table6_point(False, tmp_path,
                                             monkeypatch)
    on_result, on_manifest = _table6_point(True, tmp_path, monkeypatch)

    assert on_result.total_cycles == off_result.total_cycles
    assert on_result.load_interlock_cycles == \
        off_result.load_interlock_cycles
    assert on_result.fixed_interlock_cycles == \
        off_result.fixed_interlock_cycles
    assert on_result.instructions == off_result.instructions

    # The metrics section rides along only when recording.
    assert off_manifest.metrics is None
    assert on_manifest.metrics is not None

    # Every deterministic per-run field matches; only wall timings and
    # the metrics section may differ between the two sweeps.
    for off_run, on_run in zip(off_manifest.runs, on_manifest.runs):
        off_json = off_run.to_json()
        on_json = on_run.to_json()
        for volatile in ("phase_seconds", "total_seconds",
                         "instructions_per_second"):
            off_json.pop(volatile, None)
            on_json.pop(volatile, None)
        assert off_json == on_json


def test_recording_overhead_within_five_percent(monkeypatch):
    """Traced ``ear`` run: min-of-N wall time with recording ON stays
    within 5% of OFF (plus absolute slack against timer jitter)."""
    workload = WORKLOADS["ear"]
    options = Options(scheduler="balanced")

    def once() -> float:
        start = time.perf_counter()
        result = compile_source(workload.source, options,
                                workload.name,
                                observer=TracingObserver())
        run_compiled(result)
        return time.perf_counter() - start

    def best_of(n: int) -> float:
        return min(once() for _ in range(n))

    monkeypatch.setattr(REGISTRY, "recording", True)
    best_of(1)                       # warm caches for both arms
    on = best_of(3)
    monkeypatch.setattr(REGISTRY, "recording", False)
    off = best_of(3)
    assert on <= off * 1.05 + 0.05, (
        f"metrics overhead too high: on={on:.4f}s off={off:.4f}s")
