"""The metrics registry: instruments, snapshots, merge, exposition.

The load-bearing property is *exact cross-process merge*: counters and
histogram bucket counts are plain ints, worker deltas fold into the
parent by integer addition, and the folded totals equal the sum — no
float drift, ever.  Proven here both in-process and across a real
ProcessPoolExecutor.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    render_prometheus_snapshot,
    snapshot_summary,
)


def fresh() -> MetricsRegistry:
    return MetricsRegistry(recording=True)


# ------------------------------------------------------------ counters
def test_counter_inc_and_labels():
    registry = fresh()
    family = registry.counter("hits_total", "hits")
    family.inc()
    family.inc(4)
    assert family.value == 5
    family.labels(kind="a").inc(2)
    family.labels(kind="b").inc(3)
    assert family.labels(kind="a").value == 2
    assert family.labels(kind="b").value == 3
    # The unlabeled child is distinct from every labeled one.
    assert family.value == 5


def test_counter_rejects_negative():
    registry = fresh()
    with pytest.raises(ValueError, match="cannot decrease"):
        registry.counter("c_total").inc(-1)


def test_registering_same_name_returns_same_family():
    registry = fresh()
    assert registry.counter("x_total") is registry.counter("x_total")
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("x_total")


# -------------------------------------------------------------- gauges
def test_gauge_set_inc_dec():
    registry = fresh()
    gauge = registry.gauge("depth")
    gauge.set(7)
    gauge.inc(2)
    gauge.dec()
    assert gauge.value == 8


# ---------------------------------------------------------- histograms
def test_histogram_bucket_edges_are_le():
    registry = fresh()
    hist = registry.histogram("h", buckets=(1.0, 2.0)).labels()
    for value in (0.5, 1.0, 1.5, 2.0, 99.0):
        hist.observe(value)
    # le-semantics: 1.0 lands in the first bucket, 2.0 in the second.
    assert hist.bucket_counts == [2, 2, 1]
    assert hist.count == 5
    assert hist.sum == pytest.approx(0.5 + 1.0 + 1.5 + 2.0 + 99.0)


def test_histogram_percentiles_monotone():
    registry = fresh()
    hist = registry.histogram("lat", buckets=LATENCY_BUCKETS).labels()
    for _ in range(90):
        hist.observe(0.003)
    for _ in range(10):
        hist.observe(0.2)
    p = hist.percentiles()
    assert p["count"] == 100
    assert 0.0 < p["p50"] <= 0.005
    assert p["p50"] <= p["p95"] <= p["p99"]
    assert p["p95"] > 0.05      # the slow tail dominates p95 upward


def test_empty_histogram_percentiles_are_zero():
    registry = fresh()
    p = registry.histogram("h").labels().percentiles()
    assert p == {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                 "p99": 0.0}


# ------------------------------------------------------- recording off
def test_disabled_registry_records_nothing():
    registry = MetricsRegistry(recording=False)
    counter = registry.counter("c_total")
    gauge = registry.gauge("g")
    hist = registry.histogram("h").labels()
    counter.inc(5)
    gauge.set(3)
    hist.observe(1.0)
    assert counter.value == 0
    assert gauge.value == 0.0
    assert hist.count == 0


def test_env_toggle(monkeypatch):
    monkeypatch.setenv("REPRO_METRICS", "0")
    assert MetricsRegistry().recording is False
    monkeypatch.setenv("REPRO_METRICS", "1")
    assert MetricsRegistry().recording is True
    monkeypatch.delenv("REPRO_METRICS")
    assert MetricsRegistry().recording is True


# ----------------------------------------------------- snapshot / merge
def _bump(registry: MetricsRegistry) -> None:
    registry.counter("ops_total").labels(op="a").inc(3)
    registry.counter("ops_total").labels(op="b").inc(1)
    registry.gauge("depth").set(4)
    hist = registry.histogram("lat", buckets=(0.01, 0.1))
    hist.observe(0.005)
    hist.observe(0.05)
    hist.observe(5.0)


def test_snapshot_is_json_roundtrippable():
    registry = fresh()
    _bump(registry)
    snap = json.loads(json.dumps(registry.snapshot()))
    other = fresh()
    other.merge(snap)
    assert other.snapshot() == registry.snapshot()


def test_merge_adds_counters_and_buckets_exactly():
    parent = fresh()
    _bump(parent)
    child = fresh()
    _bump(child)
    _bump(child)
    parent.merge(child.snapshot())
    assert parent.counter("ops_total").labels(op="a").value == 9
    assert parent.counter("ops_total").labels(op="b").value == 3
    hist = parent.histogram("lat").labels()
    assert hist.bucket_counts == [3, 3, 3]
    assert hist.count == 9
    # Gauges are levels: last write wins.
    assert parent.gauge("depth").value == 4


def test_merge_rejects_mismatched_bounds():
    parent = fresh()
    parent.histogram("lat", buckets=(0.01, 0.1)).observe(0.05)
    bad = fresh()
    bad.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
    with pytest.raises(ValueError, match="bounds"):
        parent.merge(bad.snapshot())


def test_snapshot_and_reset_yields_deltas():
    registry = fresh()
    _bump(registry)
    first = registry.snapshot_and_reset()
    assert first["families"]["ops_total"]["children"]
    # After the reset the next frame is empty: folding both frames
    # into a parent counts everything exactly once.
    _bump(registry)
    second = registry.snapshot_and_reset()
    parent = fresh()
    parent.merge(first)
    parent.merge(second)
    assert parent.counter("ops_total").labels(op="a").value == 6


# --------------------------------------------------- prometheus render
def test_prometheus_text_format():
    registry = fresh()
    _bump(registry)
    text = registry.render_prometheus()
    assert "# TYPE ops_total counter" in text
    assert 'ops_total{op="a"} 3' in text
    assert "# TYPE lat histogram" in text
    # Cumulative buckets plus the +Inf catch-all, sum and count.
    assert 'lat_bucket{le="0.01"} 1' in text
    assert 'lat_bucket{le="0.1"} 2' in text
    assert 'lat_bucket{le="+Inf"} 3' in text
    assert "lat_count 3" in text
    assert text == render_prometheus_snapshot(registry.snapshot())


def test_snapshot_summary_compacts_histograms():
    registry = fresh()
    _bump(registry)
    summary = snapshot_summary(registry.snapshot())
    assert summary["ops_total"] == {'op="a"': 3, 'op="b"': 1}
    assert summary["lat"]["_"]["count"] == 3
    assert summary["depth"]["_"] == 4


# ------------------------------------------------- cross-process merge
def _worker_frame(worker: int, rounds: int) -> dict:
    """One worker's delta frame (module-level: must pickle)."""
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry(recording=True)
    ops = registry.counter("w_ops_total")
    lat = registry.histogram("w_lat", buckets=(0.001, 0.01, 0.1))
    for i in range(rounds):
        ops.labels(worker=str(worker % 2)).inc(i + 1)
        lat.observe(0.0005 * (1 + (worker + i) % 400))
    return registry.snapshot_and_reset()


def test_cross_process_merge_is_exact():
    """N real pool workers bump labeled counters/histograms; the
    folded totals equal the arithmetic sum and bucket counts are
    exact ints."""
    workers, rounds = 6, 50
    with ProcessPoolExecutor(max_workers=3) as pool:
        frames = list(pool.map(_worker_frame, range(workers),
                               [rounds] * workers))
    parent = fresh()
    for frame in frames:
        parent.merge(frame)
    per_worker = rounds * (rounds + 1) // 2
    total = parent.counter("w_ops_total")
    assert total.labels(worker="0").value == 3 * per_worker
    assert total.labels(worker="1").value == 3 * per_worker
    hist = parent.histogram("w_lat").labels()
    assert hist.count == workers * rounds
    assert sum(hist.bucket_counts) == workers * rounds
    assert all(isinstance(n, int) for n in hist.bucket_counts)
    # The folded buckets equal the element-wise sum of the frames.
    by_bucket = [0] * len(hist.bucket_counts)
    for frame in frames:
        child = frame["families"]["w_lat"]["children"][""]
        for i, n in enumerate(child["bucket_counts"]):
            by_bucket[i] += n
    assert hist.bucket_counts == by_bucket
