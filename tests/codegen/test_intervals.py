"""Live-interval construction inside the register allocator."""

from repro.codegen.regalloc import RegisterAllocator
from repro.ir import BasicBlock, Cfg
from repro.isa import Instruction, Reg


def v(i, kind="i"):
    return Reg(kind, i, virtual=True)


def test_straightline_intervals_are_tight():
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock("entry", [
        Instruction("LDI", dest=v(0), imm=1),        # pos 0
        Instruction("LDI", dest=v(1), imm=2),        # pos 1
        Instruction("ADD", dest=v(2), srcs=(v(0),), imm=1),   # pos 2
        Instruction("ADD", dest=v(3), srcs=(v(1), v(2))),     # pos 3
        Instruction("ST", srcs=(v(3), v(0)), offset=0),       # pos 4
        Instruction("HALT"),
    ]))
    intervals = RegisterAllocator(cfg)._intervals()
    assert intervals[v(0)] == [0, 4]
    assert intervals[v(1)] == [1, 3]
    assert intervals[v(2)] == [2, 3]
    assert intervals[v(3)] == [3, 4]


def test_loop_carried_value_spans_the_loop():
    cfg = Cfg(entry="pre")
    cfg.add_block(BasicBlock("pre", [
        Instruction("LDI", dest=v(0), imm=0),        # pos 0
    ], fallthrough="loop"))
    cfg.add_block(BasicBlock("loop", [
        Instruction("ADD", dest=v(0), srcs=(v(0),), imm=1),   # pos 1
        Instruction("CMPLT", dest=v(1), srcs=(v(0),), imm=9), # pos 2
        Instruction("BNE", srcs=(v(1),), label="loop"),       # pos 3
    ], fallthrough="exit"))
    cfg.add_block(BasicBlock("exit", [
        Instruction("ST", srcs=(v(0), v(0)), offset=0),       # pos 4
        Instruction("HALT"),                                  # pos 5
    ]))
    intervals = RegisterAllocator(cfg)._intervals()
    # v0 is live from its definition through the loop into the exit.
    start, end = intervals[v(0)]
    assert start == 0
    assert end >= 4
    # v1 only lives inside the loop block.
    assert intervals[v(1)][0] >= 1
    assert intervals[v(1)][1] <= 3


def test_physical_registers_have_no_intervals():
    from repro.isa import SP, ZERO
    cfg = Cfg(entry="entry")
    cfg.add_block(BasicBlock("entry", [
        Instruction("LD", dest=v(0), srcs=(SP,), offset=0),
        Instruction("SUB", dest=v(1), srcs=(ZERO, v(0))),
        Instruction("HALT"),
    ]))
    intervals = RegisterAllocator(cfg)._intervals()
    assert all(reg.virtual for reg in intervals)


def test_value_live_through_untouched_block():
    cfg = Cfg(entry="a")
    cfg.add_block(BasicBlock("a", [
        Instruction("LDI", dest=v(0), imm=1),        # pos 0
    ], fallthrough="b"))
    cfg.add_block(BasicBlock("b", [
        Instruction("LDI", dest=v(1), imm=2),        # pos 1 (v0 passes by)
    ], fallthrough="c"))
    cfg.add_block(BasicBlock("c", [
        Instruction("ST", srcs=(v(0), v(1)), offset=0),  # pos 2
        Instruction("HALT"),
    ]))
    intervals = RegisterAllocator(cfg)._intervals()
    start, end = intervals[v(0)]
    assert start == 0 and end >= 2
