"""Lowering: addressing, CSE, inlining, globals, select."""

from repro.codegen.lower import lower
from repro.frontend import frontend
from repro.harness.compile import Options, compile_source
from repro.isa import Locality
from repro.machine import Simulator


def lower_source(source: str):
    return lower(frontend(source))


def block_ops(cfg, label):
    return [i.op for i in cfg.blocks[label].instrs]


class TestDataLayout:
    def test_arrays_are_line_aligned(self):
        cfg = lower_source("""
array A[3] : float;
array B[5] : int;
func main() { A[0] = 1.0; }
""")
        assert cfg.symbols["A"].address % 32 == 0
        assert cfg.symbols["B"].address % 32 == 0
        assert cfg.symbols["B"].address >= \
            cfg.symbols["A"].address + 3 * 8

    def test_read_only_globals_promoted(self):
        cfg = lower_source("""
var n : int = 5;
array A[8] : float;
func main() { A[n] = 1.0; }
""")
        assert "n" not in cfg.symbols        # no memory slot

    def test_assigned_globals_in_memory(self):
        cfg = lower_source("""
var total : float = 0.0;
func main() { total = 1.0; }
""")
        assert "total" in cfg.symbols
        assert cfg.symbols["total"].is_fp


class TestAddressing:
    def test_shared_address_computation(self):
        """Stencil neighbours share one scaled index per block."""
        cfg = lower_source("""
array A[16][16] : float;
array B[16][16] : float;
func main() {
    var i : int; var j : int;
    for (i = 0; i < 16; i = i + 1) {
        for (j = 1; j < 15; j = j + 1) {
            B[i][j] = A[i][j - 1] + A[i][j] + A[i][j + 1];
        }
    }
}
""")
        program = cfg.linearize()
        loads = [ins for ins in program.instructions if ins.is_load]
        assert len(loads) == 3
        # All three loads use the same base register, distinct offsets.
        bases = {ins.srcs[0] for ins in loads}
        assert len(bases) == 1
        offsets = sorted(ins.offset for ins in loads)
        assert offsets[2] - offsets[1] == 8
        assert offsets[1] - offsets[0] == 8

    def test_constant_folded_into_displacement(self):
        cfg = lower_source("""
array A[16] : float;
func main() {
    var i : int;
    for (i = 0; i < 8; i = i + 1) { A[i + 3] = float(i); }
}
""")
        program = cfg.linearize()
        stores = [i for i in program.instructions if i.is_store
                  and i.mem is not None and i.mem.region == "data"]
        base = cfg.symbols["A"].address
        assert stores[0].offset == base + 3 * 8

    def test_power_of_two_stride_uses_shift(self):
        cfg = lower_source("""
array A[8][16] : float;
func main() {
    var i : int; var j : int; var x : float;
    i = 2; j = 3;
    x = A[i][j];
    A[i][j] = x;
}
""")
        ops = [i.op for b in cfg for i in b.instrs]
        assert "MUL" not in ops
        assert "SLL" in ops

    def test_two_bit_stride_uses_shift_add(self):
        cfg = lower_source("""
array A[8][48] : float;
func main() {
    var i : int; var x : float;
    i = 2;
    x = A[i][0];
    A[i][1] = x;
}
""")
        ops = [i.op for b in cfg for i in b.instrs]
        assert "MUL" not in ops              # 48 = 32 + 16

    def test_non_affine_subscript_falls_back(self):
        cfg = lower_source("""
array A[64] : float;
array IDX[64] : int;
func main() {
    var i : int; var x : float;
    i = 1;
    x = A[IDX[i]];
    A[0] = x;
}
""")
        program = cfg.linearize()
        loads = [i for i in program.instructions if i.is_load]
        irregular = [i for i in loads if i.mem.symbol == "A"
                     and i.mem.affine is None]
        assert irregular

    def test_scalar_global_access_via_zero_register(self):
        cfg = lower_source("""
var total : float = 0.0;
func main() { total = total + 1.0; }
""")
        program = cfg.linearize()
        loads = [i for i in program.instructions if i.is_load]
        assert loads[0].srcs[0].is_zero
        assert loads[0].offset == cfg.symbols["total"].address


class TestInlining:
    def test_nested_calls_fully_inlined(self):
        cfg = lower_source("""
array OUT[1] : float;
func inner(x: float) : float { return x + 1.0; }
func outer(x: float) : float { return inner(x) * 2.0; }
func main() { OUT[0] = outer(3.0); }
""")
        # No call machinery exists at all: one block, straight line.
        program = cfg.linearize()
        sim = Simulator(program)
        sim.run()
        assert sim.get_symbol("OUT") == [8.0]

    def test_two_call_sites_get_separate_registers(self):
        cfg = lower_source("""
array OUT[2] : float;
func f(x: float) : float { var t : float; t = x * 2.0; return t; }
func main() {
    OUT[0] = f(1.0);
    OUT[1] = f(10.0);
}
""")
        sim = Simulator(cfg.linearize())
        sim.run()
        assert sim.get_symbol("OUT") == [2.0, 20.0]

    def test_void_function_with_global_side_effect(self):
        cfg = lower_source("""
var counter : int = 0;
func bump() { counter = counter + 1; }
func main() { bump(); bump(); bump(); }
""")
        sim = Simulator(cfg.linearize())
        sim.run()
        assert sim.get_symbol("counter") == 3


class TestControlFlow:
    def test_loop_is_rotated(self):
        cfg = lower_source("""
array A[8] : float;
var n : int = 8;
func main() {
    var i : int;
    for (i = 0; i < n; i = i + 1) { A[i] = 1.0; }
}
""")
        # Rotated loops: guard BEQ in entry, latch BNE at body end.
        program = cfg.linearize()
        ops = [i.op for i in program.instructions]
        assert ops.count("BNE") == 1
        assert ops.count("BEQ") == 1

    def test_locality_hints_reach_instructions(self):
        source = """
array A[16][16] : float;
array C[16][16] : float;
var n : int = 16;
func main() {
    var i : int; var j : int;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) { C[i][j] = A[i][j] * 2.0; }
    }
}
"""
        result = compile_source(source, Options(scheduler="none",
                                                locality=True))
        hints = {i.locality for i in result.program.instructions
                 if i.is_load}
        assert Locality.MISS in hints and Locality.HIT in hints


def test_whole_pipeline_numeric_reference():
    source = """
array A[10] : float;
var acc : float = 0.0;
func main() {
    var i : int;
    for (i = 0; i < 10; i = i + 1) {
        A[i] = float(i * i) * 0.5;
        acc = acc + A[i];
    }
}
"""
    result = compile_source(source, Options(scheduler="balanced"))
    sim = Simulator(result.program)
    sim.run()
    expected = [i * i * 0.5 for i in range(10)]
    assert sim.get_symbol("A") == expected
    assert abs(sim.get_symbol("acc") - sum(expected)) < 1e-9
