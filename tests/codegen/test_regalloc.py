"""Register allocation: correctness, spilling, conventions."""

from repro.codegen.lower import lower
from repro.codegen.regalloc import N_ALLOCATABLE, allocate_registers
from repro.frontend import frontend
from repro.harness.compile import Options, compile_source
from repro.machine import Simulator
from repro.sched import BalancedWeights, schedule_cfg


def lower_and_allocate(source: str):
    cfg = lower(frontend(source))
    result = allocate_registers(cfg)
    return cfg, result


def test_no_virtual_registers_remain():
    cfg, _ = lower_and_allocate("""
array A[8] : float;
func main() {
    var i : int;
    for (i = 0; i < 8; i = i + 1) { A[i] = float(i) * 2.0; }
}
""")
    for block in cfg:
        for instr in block.instrs:
            for reg in instr.uses() + instr.defs():
                assert not reg.virtual, instr.format()


def test_reserved_registers_never_allocated():
    source = "\n".join(
        [f"array A{k}[4] : float;" for k in range(4)]
        + ["func main() {", "    var i : int;",
           "    for (i = 0; i < 4; i = i + 1) {"]
        + [f"        A{k}[i] = float(i + {k});" for k in range(4)]
        + ["    }", "}"])
    cfg, _ = lower_and_allocate(source)
    for block in cfg:
        for instr in block.instrs:
            for reg in instr.defs():
                if instr.is_spill:
                    continue
                assert reg.num < N_ALLOCATABLE[reg.kind], instr.format()


def _pressure_source(n_values: int) -> str:
    """A program with n simultaneously live float scalars."""
    decls = "\n".join(f"    var t{k} : float;" for k in range(n_values))
    inits = "\n".join(f"    t{k} = float(i + {k}) * 1.5;"
                      for k in range(n_values))
    total = " + ".join(f"t{k}" for k in range(n_values))
    return f"""
array OUT[4] : float;
var n : int = 4;
func main() {{
    var i : int;
{decls}
    for (i = 0; i < n; i = i + 1) {{
{inits}
        OUT[i] = {total};
    }}
}}
"""


def test_no_spills_below_register_count():
    cfg, result = lower_and_allocate(_pressure_source(10))
    assert result.n_slots == 0


def test_spills_generated_when_bank_exhausted():
    # Allocate the *unscheduled* code: all 40 values are live at once
    # (the pressure-aware scheduler would interleave them away).
    source = _pressure_source(40)
    cfg = lower(frontend(source))
    result = allocate_registers(cfg)
    assert result.n_slots > 0
    program = cfg.linearize()
    spill_stores = [i for i in program.instructions
                    if i.is_store and i.is_spill]
    spill_loads = [i for i in program.instructions
                   if i.is_load and i.is_spill]
    assert spill_stores and spill_loads


def test_spilled_program_still_correct():
    source = _pressure_source(40)
    result = compile_source(source, Options(scheduler="none"))
    sim = Simulator(result.program)
    sim.run()
    expected = [sum((i + k) * 1.5 for k in range(40)) for i in range(4)]
    assert sim.get_symbol("OUT") == expected


def test_spill_slots_distinct_memrefs():
    source = _pressure_source(40)
    cfg = lower(frontend(source))
    allocate_registers(cfg)
    slots = set()
    for block in cfg:
        for instr in block.instrs:
            if instr.is_spill:
                assert instr.mem.region == "stack"
                slots.add(instr.mem.symbol)
    assert len(slots) >= 2


def test_allocation_matches_virtual_execution(small_kernel_source):
    """Virtual-register and allocated code compute identical results."""
    cfg = lower(frontend(small_kernel_source))
    virtual_sim = Simulator(cfg.linearize())
    virtual_sim.run()
    cfg2 = lower(frontend(small_kernel_source))
    allocate_registers(cfg2)
    allocated_sim = Simulator(cfg2.linearize())
    allocated_sim.run()
    assert virtual_sim.get_symbol("total") == \
        allocated_sim.get_symbol("total")
    assert virtual_sim.get_symbol("B") == allocated_sim.get_symbol("B")
