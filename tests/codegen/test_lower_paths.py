"""Lowering paths not covered by the main lowering tests: logical
operators, casts in every position, while loops, memory-resident
globals, selects over both banks, division/modulo."""

import pytest

from repro.harness.compile import Options, compile_source
from repro.machine import SimulationError, Simulator


def run(source: str, symbols: list[str], options: Options = Options()):
    result = compile_source(source, options)
    sim = Simulator(result.program)
    sim.run(max_instructions=1_000_000)
    return {name: sim.get_symbol(name) for name in symbols}


class TestLogicalOperators:
    def test_and_or_not(self):
        state = run("""
array OUT[6] : int;
func main() {
    var a : int; var b : int;
    a = 3; b = 0;
    OUT[0] = (a > 0) && (b > 0);
    OUT[1] = (a > 0) && (b == 0);
    OUT[2] = (a > 0) || (b > 0);
    OUT[3] = (a < 0) || (b > 0);
    OUT[4] = !a;
    OUT[5] = !b;
}
""", ["OUT"])
        assert state["OUT"] == [0, 1, 1, 0, 0, 1]

    def test_non_boolean_operands_normalized(self):
        state = run("""
array OUT[2] : int;
func main() {
    var a : int; var b : int;
    a = 7; b = 4;
    OUT[0] = a && b;
    OUT[1] = a && 0;
}
""", ["OUT"])
        assert state["OUT"] == [1, 0]

    def test_comparison_operators_both_banks(self):
        state = run("""
array OUT[8] : int;
func main() {
    var x : float; var i : int;
    x = 2.5; i = 3;
    OUT[0] = x > 2.0;
    OUT[1] = x >= 2.5;
    OUT[2] = x != 2.5;
    OUT[3] = x == 2.5;
    OUT[4] = i > 2;
    OUT[5] = i >= 4;
    OUT[6] = i != 3;
    OUT[7] = i <= 3;
}
""", ["OUT"])
        assert state["OUT"] == [1, 1, 0, 1, 1, 0, 0, 1]


class TestCasts:
    def test_truncation_toward_zero(self):
        state = run("""
array OUT[4] : int;
func main() {
    OUT[0] = int(2.9);
    OUT[1] = int(-2.9);
    OUT[2] = int(0.1);
    OUT[3] = int(float(7));
}
""", ["OUT"])
        assert state["OUT"] == [2, -2, 0, 7]

    def test_cast_in_condition(self):
        state = run("""
array OUT[1] : int;
func main() {
    var x : float;
    x = 3.7;
    if (int(x) == 3) { OUT[0] = 1; }
}
""", ["OUT"])
        assert state["OUT"] == [1]


class TestIntegerArithmetic:
    def test_division_and_modulo_signs(self):
        state = run("""
array OUT[6] : int;
func main() {
    OUT[0] = 17 / 5;
    OUT[1] = 17 % 5;
    OUT[2] = -17 / 5;
    OUT[3] = -17 % 5;
    OUT[4] = 17 / -5;
    OUT[5] = 17 % -5;
}
""", ["OUT"])
        assert state["OUT"] == [3, 2, -3, -2, -3, 2]

    def test_division_by_zero_traps(self):
        with pytest.raises(SimulationError):
            run("""
array OUT[1] : int;
var zero : int = 0;
func main() { OUT[0] = 1 / zero; }
""", ["OUT"])

    def test_large_shift_values(self):
        state = run("""
array OUT[2] : int;
func main() {
    OUT[0] = 1 * 1024 * 1024;
    OUT[1] = (1 * 1024 * 1024) / 2048;
}
""", ["OUT"])
        assert state["OUT"] == [1 << 20, 512]


class TestWhileLoops:
    def test_while_with_compound_condition(self):
        state = run("""
array OUT[1] : int;
func main() {
    var x : int; var steps : int;
    x = 100; steps = 0;
    while (x > 1 && steps < 50) {
        if (x % 2 == 0) { x = x / 2; } else { x = x * 3 + 1; }
        steps = steps + 1;
    }
    OUT[0] = steps;
}
""", ["OUT"])
        # Collatz from 100 reaches 1 in 25 steps.
        assert state["OUT"] == [25]

    def test_zero_iteration_while(self):
        state = run("""
array OUT[1] : int;
func main() {
    var x : int;
    x = 0;
    while (x > 10) { x = x - 1; }
    OUT[0] = x;
}
""", ["OUT"])
        assert state["OUT"] == [0]


class TestMutableGlobals:
    def test_global_read_write_across_functions(self):
        state = run("""
var counter : int = 5;
array OUT[2] : int;
func bump(by: int) { counter = counter + by; }
func main() {
    OUT[0] = counter;
    bump(3);
    bump(4);
    OUT[1] = counter;
}
""", ["OUT", "counter"])
        assert state["OUT"] == [5, 12]
        assert state["counter"] == 12

    def test_mutable_global_as_loop_bound(self):
        state = run("""
var limit : int = 3;
array OUT[1] : int;
func main() {
    var i : int; var total : int;
    total = 0;
    for (i = 0; i < limit; i = i + 1) {
        total = total + 10;
        limit = limit + 0;
    }
    OUT[0] = total;
}
""", ["OUT"])
        assert state["OUT"] == [30]

    def test_float_global_accumulator(self):
        state = run("""
var acc : float = 0.5;
array OUT[1] : float;
func main() {
    var i : int;
    for (i = 0; i < 4; i = i + 1) { acc = acc * 2.0; }
    OUT[0] = acc;
}
""", ["OUT"])
        assert state["OUT"] == [8.0]


class TestNegativeIndices:
    def test_expression_offsets_below_base(self):
        state = run("""
array A[8] : float;
array OUT[1] : float;
func main() {
    var i : int;
    for (i = 0; i < 8; i = i + 1) { A[i] = float(i); }
    i = 5;
    OUT[0] = A[i - 3];
}
""", ["OUT"])
        assert state["OUT"] == [2.0]


def test_deeply_nested_expression():
    state = run("""
array OUT[1] : float;
func main() {
    OUT[0] = ((((1.0 + 2.0) * 3.0 - 4.0) / 5.0 + 6.0) * 7.0 - 8.0)
           * 0.5;
}
""", ["OUT"])
    assert abs(state["OUT"][0] - ((((3.0 * 3 - 4) / 5 + 6) * 7 - 8) * 0.5)) \
        < 1e-12
