"""The machine-code verifier."""

import pytest

from repro.codegen.verify import (
    VerificationError,
    check_program,
    verify_program,
)
from repro.harness.compile import Options, compile_source
from repro.isa import Instruction, MemRef, Reg, assemble, ireg


def v(i, kind="i"):
    return Reg(kind, i, virtual=True)


def program_of(instrs):
    return assemble([("entry", instrs)])


def test_clean_program_passes():
    program = program_of([
        Instruction("LDI", dest=v(0), imm=1),
        Instruction("HALT"),
    ])
    verify_program(program, allow_virtual=True)
    assert check_program(program, allow_virtual=True) == []


def test_virtual_registers_rejected_post_allocation():
    program = program_of([
        Instruction("LDI", dest=v(0), imm=1),
        Instruction("HALT"),
    ])
    with pytest.raises(VerificationError):
        verify_program(program)


def test_write_to_zero_register_rejected():
    program = program_of([
        Instruction("LDI", dest=ireg(31), imm=1),
        Instruction("HALT"),
    ])
    # Writes to r31 are silently discarded by defs(); build one that
    # slips through via the dest field of a CMOV-style op instead.
    errors = check_program(program)
    assert errors == []          # defs() hides it: nothing to detect

    program = program_of([
        Instruction("LDI", dest=ireg(30), imm=1),
        Instruction("HALT"),
    ])
    with pytest.raises(VerificationError):
        verify_program(program)


def test_memory_op_without_memref_rejected():
    program = program_of([
        Instruction("LDI", dest=ireg(0), imm=64),
        Instruction("LD", dest=ireg(1), srcs=(ireg(0),), offset=0),
        Instruction("HALT"),
    ])
    with pytest.raises(VerificationError) as err:
        verify_program(program)
    assert "MemRef" in str(err.value)


def test_stack_access_must_be_spill():
    program = program_of([
        Instruction("LDI", dest=ireg(0), imm=64),
        Instruction("LD", dest=ireg(1), srcs=(ireg(0),), offset=0,
                    mem=MemRef("stack", 0)),
        Instruction("HALT"),
    ])
    with pytest.raises(VerificationError):
        verify_program(program)


def test_fall_off_the_end_rejected():
    program = program_of([Instruction("LDI", dest=ireg(0), imm=1)])
    with pytest.raises(VerificationError) as err:
        verify_program(program)
    assert "fall off" in str(err.value)


def test_trailing_conditional_branch_rejected():
    program = assemble([
        ("entry", [Instruction("LDI", dest=ireg(0), imm=1),
                   Instruction("BEQ", srcs=(ireg(0),), label="entry")]),
    ])
    with pytest.raises(VerificationError):
        verify_program(program)


def test_missing_halt_rejected():
    program = assemble([
        ("entry", [Instruction("BR", label="entry")]),
    ])
    with pytest.raises(VerificationError) as err:
        verify_program(program)
    assert "HALT" in str(err.value)


def test_undefined_label_reported():
    program = program_of([Instruction("HALT")])
    program.instructions.insert(0, Instruction("BR", label="nowhere"))
    errors = check_program(program)
    assert errors and "nowhere" in errors[0]


def test_compiled_workload_programs_verify(small_kernel_source):
    for options in (Options(), Options(scheduler="traditional", unroll=4),
                    Options(unroll=8, trace=True, locality=True)):
        result = compile_source(small_kernel_source, options)
        verify_program(result.program)     # compile_source already did


def test_scratch_register_use_in_spill_sequences_allowed():
    """Programs that actually spill still verify (the allocator writes
    scratch registers as part of restore/spill sequences)."""
    lines = "\n".join(f"    var t{k} : float;" for k in range(40))
    inits = "\n".join(f"    t{k} = float({k}) * 1.5;" for k in range(40))
    total = " + ".join(f"t{k}" for k in range(40))
    source = f"""
array OUT[1] : float;
func main() {{
{lines}
{inits}
    OUT[0] = {total};
}}
"""
    result = compile_source(source, Options(scheduler="none"))
    assert result.allocation.n_slots > 0
    verify_program(result.program)
