"""Cross-iteration kernel checks in verify_pipelined_kernels."""

import pytest

from repro.codegen.verify import VerificationError, verify_pipelined_kernels
from repro.harness.compile import Options, compile_source
from repro.machine import DEFAULT_CONFIG
from repro.sched.modulo import pipeline_loops

from tests.sched.test_modulo import DAXPY, _scheduled_cfg


def _pipelined(source, **kw):
    from repro.harness.compile import make_weight_model

    cfg, model, opts = _scheduled_cfg(source, **kw)
    stats = pipeline_loops(cfg, opts.config, model)
    assert stats.pipelined >= 1
    return cfg, stats


def test_clean_kernel_passes():
    cfg, stats = _pipelined(DAXPY)
    verify_pipelined_kernels(cfg, stats.kernels)


def test_missing_kernel_block_detected():
    cfg, stats = _pipelined(DAXPY)
    stats.kernels[0].kernel_label = ".nonexistent"
    with pytest.raises(VerificationError, match="missing"):
        verify_pipelined_kernels(cfg, stats.kernels)


def test_broken_register_versioning_detected():
    cfg, stats = _pipelined(DAXPY)
    info = stats.kernels[0]
    assert info.expected_writer, "kernel must track register producers"
    # Claim every operand should come from a bogus instance: any use
    # following a real write in the doubled stream now mismatches.
    for key in info.expected_writer:
        info.expected_writer[key] = -1
    with pytest.raises(VerificationError, match="register dependence"):
        verify_pipelined_kernels(cfg, stats.kernels)


def test_reordered_memory_instances_detected():
    cfg, stats = _pipelined(DAXPY)
    # Retag a *genuinely* conflicting load/store pair — DAXPY's y-load
    # and y-store of one iteration touch the same location — so the
    # stream claims the later access issues first.  The symbolic
    # analyzer proves cross-iteration pairs independent here (y[i] vs
    # y[i+d] never collide for d > 0), so only a same-iteration
    # inversion is a real ordering violation the verifier must reject.
    pair = None
    for info in stats.kernels:
        block = cfg.blocks[info.kernel_label]
        tagged = [i for i in block.instrs if i.uid in info.mem_tags]
        for pos_a, a in enumerate(tagged):
            for b in tagged[pos_a + 1:]:
                if (not (a.is_load and b.is_load)
                        and a.mem.symbol == b.mem.symbol
                        and a.mem.conflicts_with(b.mem)
                        and info.mem_tags[a.uid][1]
                        != info.mem_tags[b.uid][1]):
                    pair = (info, a, b)
    assert pair is not None, "no conflicting tagged pair in any kernel"
    info, a, b = pair  # a precedes b in the kernel stream
    body_a = info.mem_tags[a.uid][1]
    body_b = info.mem_tags[b.uid][1]
    info.mem_tags[a.uid] = (0, max(body_a, body_b))
    info.mem_tags[b.uid] = (0, min(body_a, body_b))
    with pytest.raises(VerificationError, match="memory dependence"):
        verify_pipelined_kernels(cfg, stats.kernels)


def test_compile_runs_kernel_verifier():
    # compile_source with swp must end in a verified, runnable program.
    result = compile_source(DAXPY, Options(swp=True), "t")
    assert result.modulo_stats.pipelined >= 1
