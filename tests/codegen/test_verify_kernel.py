"""Cross-iteration kernel checks in verify_pipelined_kernels."""

import pytest

from repro.codegen.verify import VerificationError, verify_pipelined_kernels
from repro.harness.compile import Options, compile_source
from repro.machine import DEFAULT_CONFIG
from repro.sched.modulo import pipeline_loops

from tests.sched.test_modulo import DAXPY, _scheduled_cfg


def _pipelined(source, **kw):
    from repro.harness.compile import make_weight_model

    cfg, model, opts = _scheduled_cfg(source, **kw)
    stats = pipeline_loops(cfg, opts.config, model)
    assert stats.pipelined >= 1
    return cfg, stats


def test_clean_kernel_passes():
    cfg, stats = _pipelined(DAXPY)
    verify_pipelined_kernels(cfg, stats.kernels)


def test_missing_kernel_block_detected():
    cfg, stats = _pipelined(DAXPY)
    stats.kernels[0].kernel_label = ".nonexistent"
    with pytest.raises(VerificationError, match="missing"):
        verify_pipelined_kernels(cfg, stats.kernels)


def test_broken_register_versioning_detected():
    cfg, stats = _pipelined(DAXPY)
    info = stats.kernels[0]
    assert info.expected_writer, "kernel must track register producers"
    # Claim every operand should come from a bogus instance: any use
    # following a real write in the doubled stream now mismatches.
    for key in info.expected_writer:
        info.expected_writer[key] = -1
    with pytest.raises(VerificationError, match="register dependence"):
        verify_pipelined_kernels(cfg, stats.kernels)


def test_reordered_memory_instances_detected():
    cfg, stats = _pipelined(DAXPY)
    info = stats.kernels[0]
    block = cfg.blocks[info.kernel_label]
    # Swap the iteration tags of a conflicting load/store pair: the
    # stream no longer issues conflicting accesses in iteration order.
    tagged = [i for i in block.instrs if i.uid in info.mem_tags]
    pair = None
    for a in tagged:
        for b in tagged:
            if (a.uid < b.uid and not (a.is_load and b.is_load)
                    and a.mem.symbol == b.mem.symbol
                    and info.mem_tags[a.uid] != info.mem_tags[b.uid]):
                pair = (a, b)
    assert pair is not None, "no conflicting tagged pair in kernel"
    a, b = pair
    info.mem_tags[a.uid], info.mem_tags[b.uid] = (
        info.mem_tags[b.uid], info.mem_tags[a.uid])
    with pytest.raises(VerificationError, match="memory dependence"):
        verify_pipelined_kernels(cfg, stats.kernels)


def test_compile_runs_kernel_verifier():
    # compile_source with swp must end in a verified, runnable program.
    result = compile_source(DAXPY, Options(swp=True), "t")
    assert result.modulo_stats.pipelined >= 1
