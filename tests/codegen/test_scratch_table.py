"""The spill-scratch table has exactly one source of truth."""

from repro.codegen import regalloc, verify
from repro.codegen.regalloc import N_ALLOCATABLE, SPILL_SCRATCH
from repro.isa import SP


def test_verify_derives_its_numbers_from_the_allocator_table():
    assert verify._SCRATCH_NUMS == {
        kind: tuple(reg.num for reg in regs)
        for kind, regs in SPILL_SCRATCH.items()}


def test_allocator_rewrite_uses_the_same_table():
    # The allocator's internal alias and the public export are the
    # same object: a future edit cannot split them.
    assert regalloc._SCRATCH is SPILL_SCRATCH


def test_scratch_registers_are_physical_and_reserved():
    for kind, regs in SPILL_SCRATCH.items():
        for reg in regs:
            assert not reg.virtual
            assert reg.kind == kind
            # Outside the allocatable range, and never the stack
            # pointer or a hardwired zero.
            assert reg.num >= N_ALLOCATABLE[kind]
            assert reg is not SP
            assert not reg.is_zero
