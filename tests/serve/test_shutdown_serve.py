"""Daemon shutdown semantics: graceful drain, cancelled in-flight
requests, SIGTERM to a real ``repro serve`` process — every path must
leave a well-formed serve-manifest with an honest ``partial`` flag."""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.serve import (
    AsyncServeClient,
    ConnectionClosed,
    ServeClient,
    ServeError,
)
from repro.serve.daemon import SERVE_MANIFEST_NAME

from .conftest import run

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


class TestGraceful:
    def test_idle_stop_writes_complete_manifest(self, daemon_factory,
                                                tmp_path):
        handle = daemon_factory()
        with ServeClient(handle.socket_path) as client:
            client.bench("ora")
        handle.stop()
        manifest = json.loads(
            (tmp_path / "cache" / SERVE_MANIFEST_NAME).read_text())
        assert manifest["partial"] is False
        assert manifest["kind"] == "serve"
        assert manifest["grid_points"] == 1
        (entry,) = manifest["runs"]
        assert entry["benchmark"] == "ora"
        assert entry["total_cycles"] > 0
        assert entry["load_interlock_cycles"] >= 0

    def test_inflight_request_drains_before_stop(self, daemon_factory,
                                                 tmp_path):
        # Drain window (30s in the fixture) far exceeds the request:
        # shutdown must wait for it and stay non-partial.
        handle = daemon_factory()

        async def go():
            async with await AsyncServeClient.connect(
                    handle.socket_path) as client:
                task = asyncio.ensure_future(
                    client.request("sleep", seconds=0.5))
                await asyncio.sleep(0.2)
                handle.daemon.request_shutdown()
                return await task

        reply = run(go())
        assert reply["seconds"] == 0.5
        handle.thread.join(30)
        manifest = json.loads(
            (tmp_path / "cache" / SERVE_MANIFEST_NAME).read_text())
        assert manifest["partial"] is False


class TestCancelled:
    def test_undrainable_request_marks_manifest_partial(
            self, daemon_factory, tmp_path):
        handle = daemon_factory(drain_seconds=0.2)

        async def go():
            async with await AsyncServeClient.connect(
                    handle.socket_path) as client:
                task = asyncio.ensure_future(
                    client.request("sleep", seconds=10))
                await asyncio.sleep(0.3)   # reaches the pool worker
                handle.daemon.request_shutdown()
                try:
                    await task
                except (ServeError, ConnectionClosed) as exc:
                    return exc
                pytest.fail("cancelled request did not error out")

        error = run(go())
        if isinstance(error, ServeError):
            assert "shutting down" in str(error)
        handle.thread.join(30)
        manifest = json.loads(
            (tmp_path / "cache" / SERVE_MANIFEST_NAME).read_text())
        assert manifest["partial"] is True
        assert manifest["stats"]["cancelled"] >= 1


class TestSigterm:
    def test_sigterm_to_real_daemon_is_graceful(self, tmp_path):
        cache = tmp_path / "cache"
        sock = str(tmp_path / "s.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        env["REPRO_CACHE_DIR"] = str(cache)
        env.pop("REPRO_NO_CACHE", None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--socket", sock,
             "--jobs", "2", "--quiet"],
            cwd=REPO, env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        try:
            deadline = time.time() + 60
            reply = None
            while time.time() < deadline:
                if proc.poll() is not None:
                    pytest.fail("daemon exited before serving")
                if os.path.exists(sock):
                    try:
                        with ServeClient(sock, timeout=5) as client:
                            reply = client.bench("ora")
                        break
                    except (OSError, ConnectionError):
                        pass
                time.sleep(0.05)
            assert reply is not None, "daemon never became reachable"
            assert reply["served"] == "computed"
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode == 0        # graceful, not a crash
        manifest = json.loads(
            (cache / SERVE_MANIFEST_NAME).read_text())
        assert manifest["partial"] is False
        assert any(r["benchmark"] == "ora" for r in manifest["runs"])
