"""Request dedup: N simultaneous requests for the same uncached grid
point must compute exactly once, and every client gets a bit-identical
payload (ISSUE satellite: compile-count hook)."""

from __future__ import annotations

import asyncio
import json

from repro.serve import AsyncServeClient

from .conftest import run


def canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class TestDedup:
    def test_n_simultaneous_requests_compute_once(self, daemon_factory,
                                                  tmp_path):
        compute_log = tmp_path / "computes.log"
        handle = daemon_factory(compute_log=compute_log)
        n_clients = 24

        async def go():
            clients = [await AsyncServeClient.connect(
                handle.socket_path) for _ in range(n_clients)]
            try:
                replies = await asyncio.gather(*[
                    c.bench("ora", "balanced", "lu4")
                    for c in clients])
            finally:
                for c in clients:
                    await c.close()
            async with await AsyncServeClient.connect(
                    handle.socket_path) as c:
                status = await c.status()
            return replies, status

        replies, status = run(go())

        # The compile-count hook: exactly one line per actual compile.
        lines = compute_log.read_text().splitlines()
        assert len(lines) == 1
        assert lines[0].startswith("ora/balanced/lu4/")
        assert status["stats"]["computed"] == 1

        # Every reply is terminal, bit-identical, and accounted for.
        assert len(replies) == n_clients
        payloads = {canonical(r["result"]) for r in replies}
        assert len(payloads) == 1
        served = [r["served"] for r in replies]
        assert served.count("computed") == 1
        # The rest piggybacked in-flight or hit the store if they
        # arrived after completion; none recomputed.
        assert all(s in ("computed", "deduped", "cached")
                   for s in served)

    def test_distinct_points_do_not_dedup(self, daemon_factory,
                                          tmp_path):
        compute_log = tmp_path / "computes.log"
        handle = daemon_factory(compute_log=compute_log)

        async def go():
            async with await AsyncServeClient.connect(
                    handle.socket_path) as client:
                return await asyncio.gather(
                    client.bench("ora", "balanced", "base"),
                    client.bench("ora", "traditional", "base"))

        first, second = run(go())
        assert canonical(first["result"]) != \
            canonical(second["result"])
        assert len(compute_log.read_text().splitlines()) == 2
