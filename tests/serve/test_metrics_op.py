"""Daemon telemetry: the ``metrics`` wire op, the extended ``status``
fields, and client/daemon latency agreement in the load-test report.

The daemon runs on a thread in this process, so it shares the global
registry with the test — every count assertion is therefore a *delta*
across the traffic the test itself generates.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.serve import ServeClient
from repro.serve.loadtest import run_load_test

from .conftest import run


def _counter(snapshot: dict, name: str, label: str = "") -> int:
    family = snapshot["families"].get(name)
    if not family:
        return 0
    return family["children"].get(label, 0)


class TestMetricsOp:
    def test_metrics_op_reflects_served_traffic(self, daemon_factory):
        handle = daemon_factory()
        with ServeClient(handle.socket_path) as client:
            before = client.metrics()
            assert before["recording"] is True
            client.bench("ora")
            client.ping()
            after = client.metrics()

            def delta(name, label=""):
                return _counter(after["snapshot"], name, label) - \
                    _counter(before["snapshot"], name, label)

            assert delta("repro_serve_requests_total",
                         'op="bench"') == 1
            assert delta("repro_serve_requests_total",
                         'op="ping"') == 1
            # One after-call in flight while its own snapshot is cut.
            assert delta("repro_serve_requests_total",
                         'op="metrics"') >= 1
            # The worker's compile/simulate counters folded back into
            # the daemon registry via the result frame.
            assert delta("repro_sim_runs_total",
                         'engine="fast"') >= 1

    def test_request_latency_histogram_counts_ops(self,
                                                  daemon_factory):
        handle = daemon_factory()
        with ServeClient(handle.socket_path) as client:
            before = client.metrics()
            for _ in range(5):
                client.ping()
            after = client.metrics()
        name = "repro_serve_request_seconds"
        fam_b = before["snapshot"]["families"].get(name)
        fam_a = after["snapshot"]["families"][name]
        child_b = (fam_b or {"children": {}})["children"].get(
            'op="ping"', {"count": 0})
        child_a = fam_a["children"]['op="ping"']
        assert child_a["count"] - child_b["count"] == 5
        assert sum(child_a["bucket_counts"]) == child_a["count"]

    def test_metrics_snapshot_merges_into_fresh_registry(
            self, daemon_factory):
        handle = daemon_factory()
        with ServeClient(handle.socket_path) as client:
            client.bench("ora")
            snapshot = client.metrics()["snapshot"]
        local = MetricsRegistry(recording=True)
        local.merge(snapshot)      # families/bounds all compatible
        assert local.snapshot()["families"]

    def test_summary_section_is_compact(self, daemon_factory):
        handle = daemon_factory()
        with ServeClient(handle.socket_path) as client:
            client.bench("ora")
            summary = client.metrics()["summary"]
        assert "repro_serve_requests_total" in summary
        latency = summary["repro_serve_request_seconds"]['op="bench"']
        assert set(latency) == {"count", "mean", "p50", "p95", "p99"}


class TestStatusTelemetry:
    def test_status_reports_lifecycle_counters(self, daemon_factory):
        handle = daemon_factory()
        with ServeClient(handle.socket_path) as client:
            client.bench("ora")
            client.bench("ora")      # warm: served from memory/store
            status = client.status()
        assert status["pool_workers"] == 2
        assert status["requests_total"] >= 3
        assert status["requests_by_op"]["bench"] == 2
        assert status["requests_by_op"]["status"] == 1
        assert status["dedup_hits"] >= 0
        assert status["uptime_seconds"] >= 0


class TestLoadtestLatency:
    def test_report_carries_percentiles_and_daemon_agreement(
            self, daemon_factory):
        handle = daemon_factory(jobs=2)
        report = run(run_load_test(handle.socket_path, requests=60,
                                   connections=6))
        assert report.ok, (report.errors, report.mismatches)
        lat = report.latency_seconds
        assert lat["count"] == 60
        assert 0.0 < lat["p50"] <= lat["p95"] <= lat["p99"]
        # The daemon's histogram delta must agree with the
        # client-side view: exact count, mean within tolerance.
        assert report.daemon_latency_seconds is not None
        assert report.daemon_latency_seconds["count"] == 60
        assert report.latency_agreement is True
        payload = report.to_json()
        assert payload["latency_seconds"]["count"] == 60
        assert payload["latency_agreement"] is True
