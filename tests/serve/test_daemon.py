"""Daemon request handling: ops, caching, machine keys, events, and
equivalence with the cold CLI path."""

from __future__ import annotations

import json

import pytest

from repro.harness import ExperimentRunner
from repro.serve import AsyncServeClient, ServeClient, ServeError

from .conftest import run


def canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class TestBasicOps:
    def test_ping_status_workloads(self, daemon_factory):
        handle = daemon_factory()
        with ServeClient(handle.socket_path) as client:
            ping = client.ping()
            assert ping["ok"] is True
            assert ping["fingerprint"]
            status = client.status()
            assert status["jobs"] == 2
            assert status["use_cache"] is True
            assert status["stats"]["requests"] >= 1
            names = [w["name"] for w in client.workloads()]
            assert "ora" in names and "tomcatv" in names

    def test_unknown_op_is_an_error(self, daemon_factory):
        handle = daemon_factory()
        with ServeClient(handle.socket_path) as client:
            with pytest.raises(ServeError, match="unknown op"):
                client.request("frobnicate")

    def test_unknown_benchmark_is_an_error(self, daemon_factory):
        handle = daemon_factory()
        with ServeClient(handle.socket_path) as client:
            with pytest.raises(ServeError, match="unknown benchmark"):
                client.bench("nope")
            # The connection survives an error frame.
            assert client.ping()["ok"] is True

    def test_bad_machine_config_is_an_error(self, daemon_factory):
        handle = daemon_factory()
        with ServeClient(handle.socket_path) as client:
            with pytest.raises(ServeError, match="bad machine config"):
                client.bench("ora", machine={"isue_width": 2})


class TestServing:
    def test_computed_then_cached_bit_identical(self, daemon_factory,
                                                tmp_path):
        handle = daemon_factory()
        with ServeClient(handle.socket_path) as client:
            first = client.bench("ora")
            second = client.bench("ora")
        assert first["served"] == "computed"
        assert second["served"] == "cached"
        assert canonical(first["result"]) == \
            canonical(second["result"])
        # The result landed in the sharded store (2-hex shard dirs).
        entries = [p for p in (tmp_path / "cache").rglob("*.json")
                   if p.name != "serve-manifest.json"]
        assert entries
        assert all(len(p.parent.name) == 2 for p in entries)

    def test_sweep_op(self, daemon_factory):
        handle = daemon_factory()
        with ServeClient(handle.socket_path) as client:
            reply = client.sweep(benchmarks=["ora"],
                                 configs=["base", "lu4"])
        assert reply["points"] == 4
        assert sum(reply["served"].values()) == 4
        cycles = {(r["benchmark"], r["scheduler"], r["config"]):
                  r["result"]["total_cycles"]
                  for r in reply["results"]}
        assert all(v > 0 for v in cycles.values())
        # Balanced must not be worse than traditional on base ora.
        assert cycles[("ora", "balanced", "base")] <= \
            cycles[("ora", "traditional", "base")]

    def test_event_stream_precedes_result(self, daemon_factory):
        handle = daemon_factory()

        async def go():
            async with await AsyncServeClient.connect(
                    handle.socket_path) as client:
                frames = []
                async for frame in client.stream(
                        "bench", benchmark="ora", events=True):
                    frames.append(frame)
                return frames

        frames = run(go())
        kinds = [f["type"] for f in frames]
        # All events strictly before the single terminal result.
        assert kinds[-1] == "result"
        assert set(kinds[:-1]) == {"event"}
        names = [f["name"] for f in frames[:-1]]
        assert "point.compute.start" in names
        assert "point.phases" in names

    def test_machine_config_gets_its_own_result(self, daemon_factory):
        handle = daemon_factory()
        with ServeClient(handle.socket_path) as client:
            scalar = client.bench("ora")
            dual = client.bench("ora", machine={"issue_width": 2})
            dual_again = client.bench("ora",
                                      machine={"issue_width": 2})
        assert scalar["served"] == "computed"
        assert dual["served"] == "computed"        # distinct key
        assert dual_again["served"] == "cached"
        assert dual["result"]["total_cycles"] < \
            scalar["result"]["total_cycles"]
        assert dual["key"] != scalar["key"]


class TestColdPathEquivalence:
    def test_daemon_results_serve_the_cold_cli_cache(
            self, daemon_factory, tmp_path, monkeypatch):
        """A point computed by the daemon is a cache hit for the cold
        ``repro bench`` path — same sharded store, same key."""
        handle = daemon_factory()
        with ServeClient(handle.socket_path) as client:
            served = client.bench("ora")
        handle.stop()

        from repro.harness import experiment

        def _boom(*args, **kwargs):
            raise AssertionError("cold path recomputed a point the "
                                 "daemon already served")

        monkeypatch.setattr(experiment, "_execute_grid_point", _boom)
        runner = ExperimentRunner(cache_dir=tmp_path / "cache")
        result = runner.run("ora", "balanced", "base")
        assert result.total_cycles == \
            served["result"]["total_cycles"]
        assert result.load_interlock_cycles == \
            served["result"]["load_interlock_cycles"]
