"""Wire-protocol unit tests: framing, limits, builders."""

from __future__ import annotations

import json

import pytest

from repro.serve.protocol import (
    FRAME_ERROR,
    FRAME_EVENT,
    FRAME_RESULT,
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    event_frame,
    result_frame,
)


class TestFraming:
    def test_roundtrip(self):
        frame = {"id": 7, "op": "bench", "benchmark": "ora",
                 "machine": {"issue_width": 2}}
        wire = encode_frame(frame)
        assert wire.endswith(b"\n")
        assert wire.count(b"\n") == 1          # one frame, one line
        assert decode_frame(wire.rstrip(b"\n")) == frame

    def test_compact_and_deterministic(self):
        a = encode_frame({"b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1})
        assert a == b                          # sort_keys
        assert b" " not in a                   # compact separators

    def test_bad_json_raises(self):
        with pytest.raises(ProtocolError, match="bad frame"):
            decode_frame(b"{nope")

    def test_non_object_raises(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame(b"[1,2,3]")

    def test_oversized_raises(self):
        blob = b"x" * (MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_frame(blob)


class TestBuilders:
    def test_event_frame(self):
        frame = event_frame(3, "point.start", benchmark="ora")
        assert frame == {"id": 3, "type": FRAME_EVENT,
                         "name": "point.start", "benchmark": "ora"}

    def test_result_frame(self):
        frame = result_frame(4, "bench", result={"x": 1},
                             served="cached")
        assert frame["type"] == FRAME_RESULT
        assert frame["op"] == "bench"
        assert frame["served"] == "cached"

    def test_error_frame(self):
        frame = error_frame(None, "boom", shutdown=True)
        assert frame["type"] == FRAME_ERROR
        assert frame["id"] is None
        assert frame["shutdown"] is True

    def test_frames_are_json_lines(self):
        for frame in (event_frame(1, "e"), result_frame(1, "ping"),
                      error_frame(1, "x")):
            assert json.loads(encode_frame(frame)) == frame
