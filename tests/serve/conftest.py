"""Fixtures for the serve tests: daemons on background threads.

There is no async test plugin in the toolchain, so each test runs the
daemon on a worker thread (its own event loop) via
:class:`repro.serve.DaemonHandle` and drives the client with
``asyncio.run`` from the test body.
"""

from __future__ import annotations

import asyncio
import tempfile
from pathlib import Path

import pytest

from repro.serve import DaemonHandle


@pytest.fixture
def daemon_factory(tmp_path, monkeypatch):
    """Start daemons with short socket paths and a per-test cache.

    The socket lives in its own short ``mkdtemp`` dir (pytest tmp
    paths can brush against ``sun_path``'s 108-byte limit); the cache
    defaults to ``tmp_path / "cache"`` so tests can inspect the store.
    """
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    handles: list[DaemonHandle] = []

    def start(**kwargs) -> DaemonHandle:
        sock_dir = Path(tempfile.mkdtemp(prefix="rsv"))
        kwargs.setdefault("socket_path", sock_dir / "s.sock")
        kwargs.setdefault("cache_dir", tmp_path / "cache")
        kwargs.setdefault("jobs", 2)
        # interval=0: every request re-stats the package tree, so
        # source edits are seen by the very next request.
        kwargs.setdefault("fingerprint_interval", 0)
        kwargs.setdefault("drain_seconds", 30.0)
        handle = DaemonHandle.start(**kwargs)
        handles.append(handle)
        return handle

    yield start
    for handle in handles:
        if handle.thread.is_alive():
            handle.stop()


def run(coroutine):
    """Run one client coroutine against a threaded daemon."""
    return asyncio.run(coroutine)
