"""Cache-key correctness under a live daemon: editing package sources
must turn the very next identical request into a miss (ISSUE
satellite: no stale results from a resident process)."""

from __future__ import annotations

from repro.harness.store import ResultStore
from repro.serve import ServeClient


def _pkg(tmp_path):
    root = tmp_path / "fakepkg"
    root.mkdir()
    (root / "mod.py").write_text("version = 1\n")
    return root


class TestStaleness:
    def test_source_edit_invalidates_live_daemon(self, daemon_factory,
                                                 tmp_path):
        pkg = _pkg(tmp_path)
        handle = daemon_factory(package_root=pkg)
        with ServeClient(handle.socket_path) as client:
            first = client.bench("ora")
            warm = client.bench("ora")
            # Edit a "package source" under the running daemon.
            (pkg / "mod.py").write_text("version = 2\n")
            after_edit = client.bench("ora")
            warm_again = client.bench("ora")
        assert first["served"] == "computed"
        assert warm["served"] == "cached"
        # fingerprint_interval=0 in the fixture: the edit is seen by
        # the very next request, which must recompute.
        assert after_edit["served"] == "computed"
        assert after_edit["fingerprint"] != first["fingerprint"]
        assert after_edit["key"] != first["key"]
        assert warm_again["served"] == "cached"
        # Both generations live in the store under their own keys.
        store = ResultStore(tmp_path / "cache")
        names = [p.name for p in store.entries()]
        assert len(names) == 2
        assert all(name.startswith("ora-balanced-base-")
                   for name in names)

    def test_identical_rewrite_is_not_a_miss(self, daemon_factory,
                                             tmp_path):
        pkg = _pkg(tmp_path)
        handle = daemon_factory(package_root=pkg)
        with ServeClient(handle.socket_path) as client:
            client.bench("ora")
            # Same bytes, new mtime: re-stat + re-hash, same key.
            (pkg / "mod.py").write_text("version = 1\n")
            again = client.bench("ora")
        assert again["served"] == "cached"
