"""FingerprintTracker: edits are noticed, unchanged trees are cheap."""

from __future__ import annotations

import os

from repro.harness.experiment import _package_fingerprint
from repro.serve.fingerprint import FingerprintTracker


def _pkg(tmp_path, body="x = 1\n"):
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "mod.py").write_text(body)
    return root


class TestTracking:
    def test_matches_cold_fingerprint(self, tmp_path):
        root = _pkg(tmp_path)
        tracker = FingerprintTracker(root=root, interval=0)
        assert tracker.current() == _package_fingerprint(root)

    def test_edit_changes_fingerprint(self, tmp_path):
        root = _pkg(tmp_path)
        tracker = FingerprintTracker(root=root, interval=0)
        before = tracker.current()
        (root / "mod.py").write_text("x = 2\n")
        assert tracker.current() != before

    def test_new_file_changes_fingerprint(self, tmp_path):
        root = _pkg(tmp_path)
        tracker = FingerprintTracker(root=root, interval=0)
        before = tracker.current()
        (root / "extra.py").write_text("y = 3\n")
        assert tracker.current() != before

    def test_unchanged_tree_never_rehashes(self, tmp_path):
        root = _pkg(tmp_path)
        tracker = FingerprintTracker(root=root, interval=0)
        for _ in range(10):
            tracker.current()
        assert tracker.rehashes == 1           # only the initial hash

    def test_same_size_touch_rehashes(self, tmp_path):
        # mtime_ns is part of the snapshot, so even a content-neutral
        # touch forces a re-hash (the fingerprint then comes out
        # unchanged, which is the correct answer).
        root = _pkg(tmp_path)
        tracker = FingerprintTracker(root=root, interval=0)
        before = tracker.current()
        os.utime(root / "mod.py", ns=(1, 1))
        assert tracker.current() == before
        assert tracker.rehashes == 2


class TestThrottle:
    def test_interval_throttles_stats(self, tmp_path):
        root = _pkg(tmp_path)
        now = [0.0]
        tracker = FingerprintTracker(root=root, interval=5.0,
                                     clock=lambda: now[0])
        before = tracker.current()
        (root / "mod.py").write_text("x = 99\n")
        # Within the interval the cached fingerprint is served.
        now[0] = 4.9
        assert tracker.current() == before
        # Past the interval the edit is noticed.
        now[0] = 5.1
        assert tracker.current() != before
