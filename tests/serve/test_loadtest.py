"""The load-test harness itself, at acceptance-criteria scale: 1000
concurrent requests, dedup verified, every payload bit-identical to
the cold CLI path."""

from __future__ import annotations

from repro.serve.loadtest import (
    DEFAULT_POINTS,
    run_load_test,
)

from .conftest import run


class TestLoadTest:
    def test_thousand_concurrent_requests_cold_store(
            self, daemon_factory):
        handle = daemon_factory(jobs=4)
        report = run(run_load_test(
            handle.socket_path, requests=1000, connections=32,
            verify_cold=True))
        assert report.ok, (report.errors, report.mismatches)
        assert report.requests == 1000
        assert report.unique_points == len(DEFAULT_POINTS)
        # Dedup: a cold store means exactly one compute per point.
        assert report.computed_delta == len(DEFAULT_POINTS)
        assert report.deduped + report.cached == \
            1000 - len(DEFAULT_POINTS)
        # Bit-identity, both among replies and against the cold
        # in-process path (what ``repro bench`` runs).
        assert report.identical is True
        assert report.cold_verified is True
        assert not report.mismatches

    def test_warm_store_serves_everything_cached(self,
                                                 daemon_factory):
        handle = daemon_factory(jobs=4)
        first = run(run_load_test(handle.socket_path, requests=100,
                                  connections=8))
        assert first.ok
        second = run(run_load_test(handle.socket_path, requests=100,
                                   connections=8))
        assert second.ok
        assert second.computed_delta == 0
        assert second.served.get("cached") == 100
