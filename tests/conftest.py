"""Shared fixtures: small programs and compile/run helpers."""

from __future__ import annotations

import os

import pytest

# Every simulation in the suite re-checks the Metrics invariants
# (counter accounting bugs fail loudly instead of skewing tables).
os.environ.setdefault("REPRO_VALIDATE_METRICS", "1")
# Every compile in the suite re-checks the IR invariants at each pass
# boundary (repro.check: CFG structure, def-before-use, dependence
# preservation across the schedulers, allocation soundness).
os.environ.setdefault("REPRO_VALIDATE_IR", "1")

from repro.frontend import frontend
from repro.harness.compile import Options, compile_source
from repro.machine import Simulator

SMALL_KERNEL = """
array A[16][16] : float;
array B[16] : float;
var n : int = 16;
var total : float = 0.0;

func main() {
    var i: int; var j: int;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            A[i][j] = float(i * 16 + j) * 0.25 - 20.0;
        }
    }
    for (i = 0; i < n; i = i + 1) {
        for (j = 1; j < n; j = j + 1) {
            if (A[i][j] < 0.0) { A[i][j] = 0.0 - A[i][j]; }
            B[j] = A[i][j] * 2.0 + A[i][j - 1] + B[i];
            total = total + B[j];
        }
    }
}
"""

STENCIL_KERNEL = """
array U[32][32] : float;
array V[32][32] : float;
var n : int = 32;

func main() {
    var i: int; var j: int;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            U[i][j] = float(i + 2 * j) * 0.125;
        }
    }
    for (i = 1; i < 31; i = i + 1) {
        for (j = 1; j < 31; j = j + 1) {
            V[i][j] = (U[i][j - 1] + U[i][j + 1]) * 0.25
                    + (U[i - 1][j] + U[i + 1][j]) * 0.25;
        }
    }
}
"""


@pytest.fixture
def small_kernel_source() -> str:
    return SMALL_KERNEL


@pytest.fixture
def stencil_source() -> str:
    return STENCIL_KERNEL


def compile_and_simulate(source: str, options: Options | None = None,
                         max_instructions: int = 5_000_000):
    """Compile, run, and return (CompileResult, Simulator, Metrics)."""
    result = compile_source(source, options or Options())
    sim = Simulator(result.program)
    metrics = sim.run(max_instructions=max_instructions)
    return result, sim, metrics


def parse_program(source: str):
    return frontend(source)


@pytest.fixture
def run_source():
    """Fixture returning the compile_and_simulate helper."""
    return compile_and_simulate
