"""Workload definitions: structure, compilability, paper characteristics."""

import pytest

from repro.frontend import frontend
from repro.harness.compile import Options, compile_source
from repro.machine import Simulator
from repro.opt.unroll import unroll_program
from repro.workloads import WORKLOAD_ORDER, WORKLOADS, get_workload

PAPER_BENCHMARKS = [
    "ARC2D", "BDNA", "DYFESM", "MDG", "QCD2", "TRFD", "alvinn", "dnasa7",
    "doduc", "ear", "hydro2d", "mdljdp2", "ora", "spice2g6", "su2cor",
    "swm256", "tomcatv",
]


def test_all_seventeen_paper_benchmarks_present():
    assert WORKLOAD_ORDER == PAPER_BENCHMARKS
    assert len(WORKLOADS) == 17


def test_languages_match_table1():
    assert WORKLOADS["alvinn"].language == "C"
    assert WORKLOADS["ear"].language == "C"
    fortran = [w for w in WORKLOADS.values() if w.language == "Fortran"]
    assert len(fortran) == 15


@pytest.mark.parametrize("name", PAPER_BENCHMARKS)
def test_workloads_parse_and_typecheck(name):
    frontend(WORKLOADS[name].source, name)


@pytest.mark.parametrize("name", PAPER_BENCHMARKS)
def test_workloads_compile_under_full_pipeline(name):
    result = compile_source(WORKLOADS[name].source,
                            Options(scheduler="balanced", unroll=4),
                            name)
    assert len(result.program) > 0
    result.program.resolve()


def test_get_workload():
    assert get_workload("ora").name == "ora"
    with pytest.raises(KeyError):
        get_workload("nonesuch")


class TestPaperCharacteristics:
    """Structural properties the paper attributes to each benchmark."""

    def test_bdna_body_too_large_to_unroll(self):
        program = frontend(WORKLOADS["BDNA"].source)
        stats = unroll_program(program, 4)
        assert stats.skipped_size >= 1

    def test_mdg_blocked_by_multiple_conditionals(self):
        program = frontend(WORKLOADS["MDG"].source)
        stats = unroll_program(program, 4)
        assert stats.skipped_branches >= 1

    def test_mdljdp2_blocked_by_multiple_conditionals(self):
        program = frontend(WORKLOADS["mdljdp2"].source)
        stats = unroll_program(program, 4)
        assert stats.skipped_branches >= 1

    def test_swm256_partial_at_8_none_at_4(self):
        """The paper's footnote: the cap binds harder at factor 4."""
        program4 = frontend(WORKLOADS["swm256"].source)
        stats4 = unroll_program(program4, 4)
        program8 = frontend(WORKLOADS["swm256"].source)
        stats8 = unroll_program(program8, 8)
        hot4 = [f for f in stats4.factors]
        hot8 = [f for f in stats8.factors]
        assert stats8.unrolled >= stats4.unrolled
        assert max(hot8, default=1) > max(hot4, default=1) or \
            stats4.skipped_size > stats8.skipped_size

    def test_ora_has_no_unrollable_hot_loop(self):
        program = frontend(WORKLOADS["ora"].source)
        stats = unroll_program(program, 4)
        # The driver loop's inlined body exceeds the cap.
        assert stats.skipped_size >= 1

    def test_ora_is_nearly_load_free(self):
        result = compile_source(WORKLOADS["ora"].source, Options(), "ora")
        sim = Simulator(result.program)
        metrics = sim.run()
        assert metrics.load_interlock_fraction < 0.02

    def test_spice_is_load_interlock_dominated(self):
        result = compile_source(WORKLOADS["spice2g6"].source, Options(),
                                "spice2g6")
        metrics = Simulator(result.program).run()
        assert metrics.load_interlock_fraction > 0.15

    def test_doduc_is_fixed_latency_dominated(self):
        result = compile_source(WORKLOADS["doduc"].source, Options(),
                                "doduc")
        metrics = Simulator(result.program).run()
        assert metrics.fixed_interlock_cycles > \
            4 * metrics.load_interlock_cycles


@pytest.mark.parametrize("name", ["DYFESM", "MDG", "ora", "mdljdp2",
                                  "doduc"])
def test_runs_are_deterministic(name):
    source = WORKLOADS[name].source
    cycles = []
    for _ in range(2):
        result = compile_source(source, Options(scheduler="balanced"), name)
        metrics = Simulator(result.program).run()
        cycles.append(metrics.total_cycles)
    assert cycles[0] == cycles[1]
