"""Synthetic DAG generators."""

from repro.workloads import (
    figure1_dag,
    parallel_loads_dag,
    random_dag,
    serial_loads_dag,
)


def test_figure1_shape():
    dag = figure1_dag()
    assert len(dag.instrs) == 8
    assert dag.load_indices() == [1, 2, 3, 4]
    assert dag.independent(5, 1)          # X1 can hide L0
    assert not dag.independent(3, 4)      # L2 -> L3 chain


def test_parallel_loads_structure():
    dag = parallel_loads_dag(n_loads=5, n_alu=3)
    loads = dag.load_indices()
    assert len(loads) == 5
    for a in loads:
        for b in loads:
            if a != b:
                assert dag.independent(a, b)


def test_serial_loads_structure():
    dag = serial_loads_dag(n_loads=5, n_alu=3)
    loads = dag.load_indices()
    assert len(loads) == 5
    for earlier, later in zip(loads, loads[1:]):
        assert not dag.independent(earlier, later)


def test_random_dag_deterministic():
    a = random_dag(50, seed=7)
    b = random_dag(50, seed=7)
    assert [i.op for i in a.instrs] == [i.op for i in b.instrs]
    assert a.edge_count() == b.edge_count()


def test_random_dag_seed_changes_shape():
    a = random_dag(50, seed=7)
    b = random_dag(50, seed=8)
    assert [i.op for i in a.instrs] != [i.op for i in b.instrs]


def test_random_dag_is_acyclic_by_construction():
    dag = random_dag(80, seed=3)
    assert dag.topological_check(list(range(len(dag.instrs))))


def test_random_dag_load_fraction_scales():
    few = random_dag(200, seed=5, load_fraction=0.1)
    many = random_dag(200, seed=5, load_fraction=0.6)
    assert len(many.load_indices()) > len(few.load_indices())
