"""Parametric kernel generator."""

import pytest

from repro.frontend import frontend
from repro.harness.compile import Options, compile_source
from repro.machine import Simulator
from repro.workloads import KernelSpec, generate_kernel


def test_generated_source_is_valid():
    source = generate_kernel(KernelSpec())
    program = frontend(source)
    assert program.function("main") is not None


@pytest.mark.parametrize("loads", [1, 3, 6])
def test_load_count_scales(loads):
    spec = KernelSpec(loads_per_iteration=loads, array_kb=8, sweeps=1)
    result = compile_source(generate_kernel(spec), Options(), "gen")
    hot = max(result.cfg, key=lambda b: len(b.instrs))
    block_loads = sum(1 for i in hot.instrs if i.is_load)
    assert block_loads >= loads


def test_array_size_respected():
    small = generate_kernel(KernelSpec(array_kb=4))
    large = generate_kernel(KernelSpec(array_kb=256))
    small_prog = compile_source(small, Options(), "s").program
    large_prog = compile_source(large, Options(), "l").program
    assert large_prog.data_size > 8 * small_prog.data_size


def test_serial_and_parallel_shapes_both_run():
    for serial in (False, True):
        spec = KernelSpec(loads_per_iteration=2, array_kb=8, sweeps=1,
                          serial_chain=serial)
        result = compile_source(generate_kernel(spec), Options(), "gen")
        metrics = Simulator(result.program).run()
        assert metrics.instructions > 1000


def test_invalid_spec_rejected():
    with pytest.raises(ValueError):
        generate_kernel(KernelSpec(loads_per_iteration=0))


def test_describe():
    text = KernelSpec(serial_chain=True).describe()
    assert "serial" in text and "loads/iter" in text
