"""Qualitative reproduction of the paper's headline effects, on small
programs so the whole file runs in seconds.
"""

from repro.harness.compile import Options, compile_source
from repro.machine import Simulator

# Arrays larger than the 8 KB L1 so loads actually miss, with plenty of
# independent work per iteration for the balanced scheduler to place.
LOAD_PARALLEL = """
array A[2048] : float;
array B[2048] : float;
array C[2048] : float;
var n : int = 2048;
func main() {
    var i : int;
    for (i = 0; i < n; i = i + 1) {
        A[i] = float(i) * 0.5;
        B[i] = float(i) * 0.25;
    }
    for (i = 2; i < 2046; i = i + 1) {
        C[i] = A[i - 2] * 0.1 + A[i + 2] * 0.2
             + B[i - 1] * 0.3 + B[i + 1] * 0.4
             + A[i] * B[i];
    }
}
"""


def run(source, **knobs):
    result = compile_source(source, Options(**knobs))
    sim = Simulator(result.program)
    return result, sim.run(max_instructions=3_000_000)


def test_balanced_reduces_load_interlocks_vs_traditional():
    """The paper's core claim (section 2 / Table 5)."""
    _, balanced = run(LOAD_PARALLEL, scheduler="balanced")
    _, traditional = run(LOAD_PARALLEL, scheduler="traditional")
    assert balanced.load_interlock_cycles < \
        0.7 * traditional.load_interlock_cycles
    assert balanced.total_cycles <= traditional.total_cycles


def test_dynamic_instruction_counts_match_across_schedulers():
    """Scheduling only reorders: dynamic counts stay identical."""
    _, balanced = run(LOAD_PARALLEL, scheduler="balanced")
    _, traditional = run(LOAD_PARALLEL, scheduler="traditional")
    assert balanced.instructions == traditional.instructions
    assert balanced.loads == traditional.loads
    assert balanced.stores == traditional.stores


def test_unrolling_keeps_balanced_ahead():
    """Paper Table 5: balanced stays ahead of traditional under
    unrolling (the workload-average *growth* of the gap is checked by
    the full benchmark harness; a single kernel need not show it)."""
    _, bs4 = run(LOAD_PARALLEL, scheduler="balanced", unroll=4)
    _, ts4 = run(LOAD_PARALLEL, scheduler="traditional", unroll=4)
    _, bs0 = run(LOAD_PARALLEL, scheduler="balanced")
    assert bs4.total_cycles < bs0.total_cycles     # unrolling helps BS
    assert ts4.total_cycles / bs4.total_cycles > 1.05


def test_unrolling_cuts_branch_overhead():
    """About half the unrolling benefit is fewer overhead instructions."""
    _, base = run(LOAD_PARALLEL, scheduler="balanced")
    _, lu4 = run(LOAD_PARALLEL, scheduler="balanced", unroll=4)
    assert lu4.branches < 0.5 * base.branches
    assert lu4.instructions < base.instructions


def test_locality_analysis_improves_balanced_code():
    """Paper section 5.3: hit marking frees slack for real misses."""
    _, base = run(LOAD_PARALLEL, scheduler="balanced")
    _, with_la = run(LOAD_PARALLEL, scheduler="balanced", locality=True)
    assert with_la.total_cycles <= base.total_cycles


def test_balanced_can_lose_when_fixed_latency_dominates():
    """Paper section 5.1: serial FP chains with divides favour TS."""
    source = """
array A[256] : float;
var n : int = 256;
var reps : int = 4;
func main() {
    var i : int; var t : int; var x : float;
    for (i = 0; i < n; i = i + 1) { A[i] = float(i % 9) + 1.0; }
    for (t = 0; t < reps; t = t + 1) {
        for (i = 1; i < n; i = i + 1) {
            x = A[i] / (A[i - 1] + 0.5);
            A[i] = x * 0.5 + A[i] * 0.25;
        }
    }
}
"""
    _, balanced = run(source, scheduler="balanced")
    _, traditional = run(source, scheduler="traditional")
    # Neither side should win big: the divide chain dominates.
    ratio = traditional.total_cycles / balanced.total_cycles
    assert 0.9 < ratio < 1.1


def test_trace_scheduling_merges_across_predictable_branch():
    source = """
array A[512] : float;
array B[512] : float;
var n : int = 512;
func main() {
    var i : int;
    for (i = 0; i < n; i = i + 1) { A[i] = float(i % 37) - 5.0; }
    for (i = 0; i < n; i = i + 1) {
        if (i % 16 == 0) {
            B[i] = 0.0;
        } else {
            B[i] = A[i] * 2.0 + B[i - 1] * 0.5;
        }
    }
}
"""
    plain = compile_source(source, Options(scheduler="balanced", unroll=0))
    traced = compile_source(source,
                            Options(scheduler="balanced", trace=True))
    assert traced.trace_stats.multi_block_traces >= 1
    sim_plain, sim_traced = (Simulator(plain.program),
                             Simulator(traced.program))
    sim_plain.run()
    sim_traced.run()
    assert sim_plain.get_symbol("B") == sim_traced.get_symbol("B")


def test_interlock_fractions_in_paper_range():
    """On the load-parallel kernel the BS/TS interlock split looks like
    the paper's 7% vs 15% contrast."""
    _, balanced = run(LOAD_PARALLEL, scheduler="balanced", unroll=4)
    _, traditional = run(LOAD_PARALLEL, scheduler="traditional", unroll=4)
    assert balanced.load_interlock_fraction < 0.12
    assert traditional.load_interlock_fraction > \
        balanced.load_interlock_fraction
