"""The shipped examples must keep running (they are documentation)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "figure1_balanced_weights.py",
    "figures3to5_locality.py",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs_clean(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100


def test_figure1_example_prints_paper_weights(capsys):
    runpy.run_path(str(EXAMPLES / "figure1_balanced_weights.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "3.0" in out and "2.0" in out
    assert "L0" in out and "L3" in out


def test_locality_example_reports_both_reuse_kinds(capsys):
    runpy.run_path(str(EXAMPLES / "figures3to5_locality.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "spatial references:  1" in out
    assert "temporal references: 1" in out
    assert "identical results" in out


def test_all_examples_exist():
    expected = {
        "quickstart.py", "figure1_balanced_weights.py",
        "figure2_trace_scheduling.py", "figures3to5_locality.py",
        "custom_kernel.py", "paper_tables.py", "sensitivity_sweep.py",
    }
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert expected <= present
