"""Workload numeric sanity: finite outputs, stable across the grid.

A benchmark whose arrays overflow or go NaN would make cycle counts
meaningless; these tests pin the numerics of every workload.
"""

import math

import pytest

from repro.harness.compile import Options, compile_source
from repro.machine import Simulator
from repro.workloads import WORKLOADS

SMALL = ["DYFESM", "MDG", "ora", "mdljdp2", "doduc", "ear", "QCD2",
         "BDNA"]


def final_arrays(name: str, options: Options) -> dict:
    result = compile_source(WORKLOADS[name].source, options, name)
    sim = Simulator(result.program)
    sim.run()
    return {sym: sim.get_symbol(sym) for sym in result.program.symbols}


@pytest.mark.parametrize("name", SMALL)
def test_outputs_are_finite(name):
    state = final_arrays(name, Options(scheduler="balanced"))
    for symbol, values in state.items():
        if not isinstance(values, list):
            values = [values]
        for value in values:
            assert not isinstance(value, float) or math.isfinite(value), \
                (symbol, value)


@pytest.mark.parametrize("name", SMALL)
def test_outputs_not_all_zero(name):
    """Each kernel must actually compute something."""
    state = final_arrays(name, Options(scheduler="balanced"))
    nonzero = sum(
        1 for values in state.values()
        for value in (values if isinstance(values, list) else [values])
        if value)
    assert nonzero > 10


@pytest.mark.parametrize("name", ["DYFESM", "mdljdp2", "ear"])
def test_scheduler_choice_does_not_change_results(name):
    balanced = final_arrays(name, Options(scheduler="balanced"))
    traditional = final_arrays(name, Options(scheduler="traditional"))
    assert balanced == traditional


@pytest.mark.parametrize("name", ["MDG", "QCD2"])
def test_full_optimization_stack_preserves_results(name):
    base = final_arrays(name, Options(scheduler="balanced"))
    optimized = final_arrays(
        name, Options(scheduler="balanced", unroll=8, trace=True,
                      locality=True, extra_opts=True))
    assert base == optimized
