"""Cross-stage integration: each pipeline stage's observable effect.

Rather than re-testing stages in isolation, these tests compile one
program with a stage toggled and assert the *difference* the stage is
supposed to make, end to end.
"""

from repro.harness.compile import Options, compile_source, run_compiled
from repro.isa import OpClass


SOURCE = """
array A[512] : float;
array B[512] : float;
var n : int = 512;
func main() {
    var i : int;
    for (i = 0; i < n; i = i + 1) { A[i] = float(i % 43) - 20.0; }
    for (i = 1; i < 511; i = i + 1) {
        if (A[i] < 0.0) { A[i] = 0.0 - A[i]; }
        B[i] = A[i - 1] * 0.25 + A[i] * 0.5 + A[i + 1] * 0.25;
    }
}
"""


def metrics_for(**knobs):
    result = compile_source(SOURCE, Options(**knobs))
    return result, run_compiled(result)


def test_predication_removes_dynamic_branches():
    _, with_cmov = metrics_for(predicate=True)
    _, with_branches = metrics_for(predicate=False)
    assert with_cmov.branches < with_branches.branches
    assert with_cmov.branch_mispredicts <= with_branches.branch_mispredicts


def test_classic_opts_reduce_dynamic_instructions():
    # The stencil kernel lowers too cleanly for the classic passes to
    # matter (address CSE happens in lowering); inlined calls do leave
    # copies and foldable constants behind.
    source = """
array OUT[256] : float;
var n : int = 256;
func mix(a: float, b: float) : float {
    var t : float;
    t = a * (2.0 * 0.25) + b * (1.0 + 1.0);
    return t;
}
func main() {
    var i : int;
    for (i = 1; i < n; i = i + 1) {
        OUT[i] = mix(float(i), OUT[i - 1]);
    }
}
"""
    optimized = run_compiled(compile_source(source,
                                            Options(classic_opts=True)))
    naive = run_compiled(compile_source(source,
                                        Options(classic_opts=False)))
    assert optimized.instructions < naive.instructions


def test_unrolling_increases_static_but_reduces_dynamic_branches():
    plain, plain_metrics = metrics_for()
    unrolled, unrolled_metrics = metrics_for(unroll=4)
    assert unrolled.static_instructions > plain.static_instructions
    assert unrolled_metrics.branches < plain_metrics.branches


def test_scheduling_changes_order_not_counts():
    plain, plain_metrics = metrics_for(scheduler="none")
    balanced, balanced_metrics = metrics_for(scheduler="balanced")
    assert plain_metrics.instructions == balanced_metrics.instructions
    assert balanced_metrics.total_cycles <= plain_metrics.total_cycles
    # Same multiset of opcodes, different order.
    plain_ops = sorted(i.op for i in plain.program.instructions)
    balanced_ops = sorted(i.op for i in balanced.program.instructions)
    assert plain_ops == balanced_ops


def test_locality_marks_do_not_change_counts_by_class():
    base, base_metrics = metrics_for(scheduler="balanced", unroll=4)
    la, la_metrics = metrics_for(scheduler="balanced", locality=True)
    # Different unrolling decisions change totals, but both programs
    # keep the load/store class structure sane.
    for result in (base, la):
        counts = result.program.static_counts()
        assert counts.get(OpClass.LOAD, 0) > 0
        assert counts.get(OpClass.STORE, 0) > 0
        assert counts.get(OpClass.BRANCH, 0) > 0


def test_trace_mode_equals_block_mode_when_no_traces_form():
    source = """
array OUT[4] : float;
func main() {
    OUT[0] = 1.5;
    OUT[1] = 2.5;
}
"""
    plain = compile_source(source, Options(scheduler="balanced"))
    traced = compile_source(source, Options(scheduler="balanced",
                                            trace=True))
    assert [i.op for i in plain.program.instructions] == \
        [i.op for i in traced.program.instructions]
