"""End-to-end semantic preservation: the key pipeline invariant.

For any program, the final simulated memory state must be identical
under every combination of scheduler and optimization — scheduling and
the ILP transformations may only change *when* things happen, never
*what* is computed.
"""

import pytest

from repro.harness.compile import Options, compile_source
from repro.machine import Simulator

ALL_OPTIONS = [
    Options(scheduler=sched, unroll=unroll, trace=trace, locality=la)
    for sched in ("none", "traditional", "balanced")
    for unroll in (0, 4, 8)
    for trace in (False, True)
    for la in (False, True)
    if not (sched == "none" and trace)
] + [
    # The optional CSE/LICM passes must preserve semantics too.
    Options(scheduler="balanced", unroll=4, extra_opts=True),
    Options(scheduler="balanced", unroll=8, trace=True, locality=True,
            extra_opts=True),
    Options(scheduler="traditional", extra_opts=True),
]


def final_state(source: str, options: Options, symbols: list[str]):
    result = compile_source(source, options)
    sim = Simulator(result.program)
    sim.run(max_instructions=3_000_000)
    return {name: sim.get_symbol(name) for name in symbols}


def assert_equivalent(source: str, symbols: list[str]):
    reference = final_state(source, ALL_OPTIONS[0], symbols)
    for options in ALL_OPTIONS[1:]:
        state = final_state(source, options, symbols)
        for name in symbols:
            assert state[name] == pytest.approx(reference[name]), \
                f"{name} differs under {options.label()}"


def test_mixed_kernel_equivalence(small_kernel_source):
    assert_equivalent(small_kernel_source, ["A", "B", "total"])


def test_stencil_equivalence(stencil_source):
    assert_equivalent(stencil_source, ["U", "V"])


def test_branchy_reduction_equivalence():
    source = """
array X[64] : float;
array H[8] : float;
var n : int = 64;
var acc : float = 0.0;
func main() {
    var i : int; var b : int;
    for (i = 0; i < n; i = i + 1) {
        X[i] = float(i * 7 % 23) - 11.0;
    }
    for (i = 0; i < n; i = i + 1) {
        if (X[i] < 0.0) { X[i] = 0.0 - X[i]; }
        b = int(X[i]) % 8;
        H[b] = H[b] + 1.0;
        acc = acc + X[i];
    }
}
"""
    assert_equivalent(source, ["X", "H", "acc"])


def test_inlined_helpers_equivalence():
    source = """
array OUT[32] : float;
var n : int = 32;
func poly(x: float) : float {
    var r : float;
    r = x * x * 0.5 + x * 0.25 + 1.0;
    return r;
}
func clamp(x: float) : float {
    var r : float;
    r = x;
    if (r > 100.0) { r = 100.0; }
    return r;
}
func main() {
    var i : int;
    for (i = 0; i < n; i = i + 1) {
        OUT[i] = clamp(poly(float(i)));
    }
}
"""
    assert_equivalent(source, ["OUT"])


def test_triangular_loop_equivalence():
    source = """
array M[24][24] : float;
var n : int = 24;
func main() {
    var i : int; var j : int;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j <= i; j = j + 1) {
            M[i][j] = float(i - j) * 0.5 + float(i + j);
        }
    }
}
"""
    assert_equivalent(source, ["M"])


def test_indirect_indexing_equivalence():
    source = """
array IDX[32] : int;
array SRC[64] : float;
array DST[32] : float;
var n : int = 32;
func main() {
    var i : int;
    for (i = 0; i < n; i = i + 1) {
        IDX[i] = (i * 13 + 5) % 64;
        SRC[i] = float(i) * 0.25;
        SRC[i + 32] = float(i) * 0.75;
    }
    for (i = 0; i < n; i = i + 1) {
        DST[i] = SRC[IDX[i]] * 2.0;
    }
}
"""
    assert_equivalent(source, ["DST"])


def test_while_loop_equivalence():
    source = """
array OUT[1] : int;
func main() {
    var x : int;
    x = 1;
    while (x < 1000) { x = x * 3 + 1; }
    OUT[0] = x;
}
"""
    assert_equivalent(source, ["OUT"])
