"""The 17-benchmark workload (paper Table 1), as synthetic kernels.

Each program is written in the mini loop language with the structural
character that drives its behaviour in the paper's results:

========= ==========================================================
ARC2D     2-D flux stencils; unrollable; strong balanced wins
BDNA      very large straight-line loop bodies; unrolling disabled
          by the size cap, balanced scheduling strong without it
DYFESM    data-dependent if/else with no dominant path; trace
          scheduling picks poorly and adds compensation cost
MDG       inner loops with multiple (non-predicable) conditionals;
          unrolling skipped; FP-divide heavy
QCD2      short serial FP chains, small blocks, modest parallelism
TRFD      triangular loops with many accumulators; register
          pressure (spills) at unroll-by-8
alvinn    dot-product accumulation chains; loads plentiful but the
          serial FADD chain dominates
dnasa7    dense matrix kernels; highly unrollable; the paper's best
          balanced-scheduling benchmark
doduc     many inlined branchy routines; large static code; i-cache
          pressure at high unroll factors
ear       IIR filter cascades; loop-carried memory recurrences
hydro2d   wide 2-D stencils; large balanced + unrolling wins
mdljdp2   pair-interaction loop with two cutoff conditionals;
          unrolling ineffective
ora       one large loop-free routine dominated by FP divides;
          no loops to unroll, essentially no load interlocks
spice2g6  indirect (sparse) indexing; dependent load chains; load
          interlocks dominate and resist scheduling
su2cor    complex-arithmetic update loops; wide independent trees
swm256    stencil bodies sized so the 64-instr cap blocks factor 4
          but the 128-instr cap admits a partial factor at 8
tomcatv   sequential sweeps over large read-only arrays; the
          locality-analysis star (spatial + temporal reuse)
========= ==========================================================

Sizes are chosen so each run is a few hundred thousand dynamic
instructions: large enough for caches/TLBs to behave realistically,
small enough that the full experiment grid runs in minutes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Workload:
    name: str
    language: str           # the paper's source language for the original
    description: str        # paper Table 1 description
    source: str


def _w(name: str, language: str, description: str, source: str) -> Workload:
    return Workload(name=name, language=language, description=description,
                    source=source)


ARC2D = _w("ARC2D", "Fortran",
           "Two-dimensional fluid flow problem solver using Euler equations",
           """
array P[96][96] : float;
array U[96][96] : float;
array V[96][96] : float;
array FX[96][96] : float;
array FY[96][96] : float;
var n : int = 96;
var steps : int = 1;

func main() {
    var i: int; var j: int; var t: int;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            P[i][j] = float(i * 3 + j) * 0.0104;
            U[i][j] = float(i - j) * 0.03125;
            V[i][j] = float(i + 2 * j) * 0.0078125;
        }
    }
    for (t = 0; t < steps; t = t + 1) {
        for (i = 1; i < 95; i = i + 1) {
            for (j = 1; j < 95; j = j + 1) {
                FX[i][j] = (P[i][j + 1] - P[i][j - 1]) * 0.5
                         + U[i][j] * (U[i][j + 1] - U[i][j - 1]) * 0.5;
            }
        }
        for (i = 1; i < 95; i = i + 1) {
            for (j = 1; j < 95; j = j + 1) {
                FY[i][j] = (P[i + 1][j] - P[i - 1][j]) * 0.5
                         + V[i][j] * (V[i + 1][j] - V[i - 1][j]) * 0.5;
            }
        }
        for (i = 1; i < 95; i = i + 1) {
            for (j = 1; j < 95; j = j + 1) {
                U[i][j] = U[i][j] - 0.01 * FX[i][j];
                V[i][j] = V[i][j] - 0.01 * FY[i][j];
                P[i][j] = P[i][j] - 0.005 * (FX[i][j] + FY[i][j]);
            }
        }
    }
}
""")


BDNA = _w("BDNA", "Fortran",
          "Simulation of hydration structure and dynamics of nucleic acids",
          """
array X[128] : float;
array Y[128] : float;
array Z[128] : float;
array FX[128] : float;
array FY[128] : float;
array FZ[128] : float;
array Q[128] : float;
var n : int = 128;
var steps : int = 30;

func main() {
    var i: int; var t: int;
    var dx: float; var dy: float; var dz: float;
    var r2: float; var s: float; var e: float;
    for (i = 0; i < n; i = i + 1) {
        X[i] = float(i) * 0.001;
        Y[i] = float(i * 7 % 64) * 0.004;
        Z[i] = float(i * 13 % 32) * 0.008;
        Q[i] = float(i % 5) * 0.2 + 0.1;
    }
    # One very large straight-line body per particle: the size cap
    # disables unrolling, but the body itself is full of independent
    # loads for the balanced scheduler to spread out.
    for (t = 0; t < steps; t = t + 1) {
        for (i = 2; i < 126; i = i + 1) {
            dx = X[i] - X[i - 1] * 0.5 - X[i + 1] * 0.5;
            dy = Y[i] - Y[i - 1] * 0.5 - Y[i + 1] * 0.5;
            dz = Z[i] - Z[i - 1] * 0.5 - Z[i + 1] * 0.5;
            r2 = dx * dx + dy * dy + dz * dz + 1.0;
            s = Q[i] * Q[i - 1] + Q[i] * Q[i + 1];
            e = s * r2 + (X[i - 2] - X[i + 2]) * 0.25
              + (Y[i - 2] - Y[i + 2]) * 0.25
              + (Z[i - 2] - Z[i + 2]) * 0.25;
            FX[i] = FX[i] + dx * s - e * 0.125 + Q[i - 2] * 0.0625
                  + Q[i + 2] * 0.03125;
            FY[i] = FY[i] + dy * s - e * 0.25 + X[i] * Y[i] * 0.015625;
            FZ[i] = FZ[i] + dz * s - e * 0.5 + Y[i] * Z[i] * 0.0078125
                  + X[i - 1] * Z[i + 1] * 0.001953125;
        }
    }
}
""")


DYFESM = _w("DYFESM", "Fortran",
            "Structural dynamics benchmark to solve displacements and "
            "stresses",
            """
array D[256] : float;
array S[256] : float;
array M[256] : float;
array FLAG[256] : int;
var n : int = 256;
var steps : int = 40;

func main() {
    var i: int; var t: int;
    for (i = 0; i < n; i = i + 1) {
        D[i] = float(i % 97) * 0.01;
        M[i] = float(i % 31) * 0.05 + 1.0;
        FLAG[i] = (i * i + i / 3) % 2;
    }
    # Small, cache-resident working set swept many times; the if/else
    # alternates irregularly, so there is no dominant path -- trace
    # picking is poor and speculation/compensation hurts.
    for (t = 0; t < steps; t = t + 1) {
        for (i = 1; i < 255; i = i + 1) {
            if (FLAG[i] != 0) {
                S[i] = D[i] * M[i] + D[i - 1] * 0.5;
                D[i] = D[i] + S[i] * 0.01;
            } else {
                S[i] = D[i] * 0.75 - D[i + 1] * M[i] * 0.25;
                D[i] = D[i] - S[i] * 0.02;
            }
        }
    }
}
""")


MDG = _w("MDG", "Fortran",
         "Molecular dynamic simulation of flexible water molecules",
         """
array PX[1024] : float;
array PY[1024] : float;
array FX[1024] : float;
array FY[1024] : float;
array KIND[1024] : int;
var n : int = 1024;
var steps : int = 3;
var cutoff : float = 0.5;

func main() {
    var i: int; var t: int;
    var dx: float; var dy: float; var r2: float; var f: float;
    for (i = 0; i < n; i = i + 1) {
        PX[i] = float(i % 64) * 0.015625;
        PY[i] = float(i * 5 % 128) * 0.0078125;
        KIND[i] = i % 3;
    }
    # Multiple conditionals (with else branches) inside the hot loop:
    # the unroller's internal-branch rule skips it.
    for (t = 0; t < steps; t = t + 1) {
        for (i = 1; i < 1023; i = i + 1) {
            dx = PX[i] - PX[i - 1];
            dy = PY[i] - PY[i - 1];
            r2 = dx * dx + dy * dy + 0.01;
            if (r2 < cutoff) {
                f = 1.0 / r2;
                FX[i] = FX[i] + dx * f;
            } else {
                f = cutoff / (r2 * r2);
                FX[i] = FX[i] - dx * f;
            }
            if (KIND[i] == 0) {
                FY[i] = FY[i] + dy / r2;
            } else {
                FY[i] = FY[i] + dy * r2 * 0.125;
            }
        }
    }
}
""")


QCD2 = _w("QCD2", "Fortran",
          "Lattice-gauge QCD simulation",
          """
array LR[256] : float;
array LI[256] : float;
array GR[256] : float;
array GI[256] : float;
var n : int = 256;
var sweeps : int = 30;

func main() {
    var i: int; var t: int; var ar: float; var ai: float;
    for (i = 0; i < n; i = i + 1) {
        LR[i] = float(i % 17) * 0.0625 - 0.5;
        LI[i] = float(i % 23) * 0.03125 - 0.33;
        GR[i] = 1.0;
        GI[i] = 0.0;
    }
    # Short serial chains per site: each update depends multiplicatively
    # on the previous value, so there is little slack for any scheduler.
    for (t = 0; t < sweeps; t = t + 1) {
        for (i = 1; i < 256; i = i + 1) {
            ar = GR[i] * LR[i] - GI[i] * LI[i];
            ai = GR[i] * LI[i] + GI[i] * LR[i];
            ar = ar * 0.9375 + GR[i - 1] * 0.0625;
            ai = ai * 0.9375 + GI[i - 1] * 0.0625;
            GR[i] = ar;
            GI[i] = ai;
        }
    }
}
""")


TRFD = _w("TRFD", "Fortran",
          "Two-electron integral transformation",
          """
array A[64][64] : float;
array B[64][64] : float;
array C[64][64] : float;
var n : int = 64;

func main() {
    var i: int; var j: int; var k: int;
    var s0: float; var s1: float; var s2: float; var s3: float;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            A[i][j] = float(i + j) * 0.0078125;
            B[i][j] = float(i * 2 - j) * 0.00390625;
        }
    }
    # Triangular transformation with several live accumulators: at
    # unroll-by-8 the register pressure forces spill code.
    for (i = 0; i < n; i = i + 1) {
        s0 = 0.0; s1 = 0.0; s2 = 0.0; s3 = 0.0;
        for (k = 0; k < n; k = k + 1) {
            s0 = s0 + A[i][k] * B[k][0];
            s1 = s1 + A[i][k] * B[k][1];
            s2 = s2 + A[i][k] * B[k][2];
            s3 = s3 + A[i][k] * B[k][3];
        }
        for (j = 0; j <= i; j = j + 1) {
            C[i][j] = A[i][j] * s0 + B[i][j] * s1
                    + A[j][i] * s2 + B[j][i] * s3;
        }
    }
}
""")


ALVINN = _w("alvinn", "C",
            "Trains a neural network using back propagation",
            """
array W1[32][128] : float;
array W2[32][32] : float;
array INPUT[128] : float;
array HID[32] : float;
array OUT[32] : float;
array DELTA[32] : float;
var nin : int = 128;
var nhid : int = 32;
var epochs : int = 5;

func main() {
    var i: int; var j: int; var e: int; var s: float;
    for (i = 0; i < nhid; i = i + 1) {
        for (j = 0; j < nin; j = j + 1) {
            W1[i][j] = float(i - j) * 0.001;
        }
        for (j = 0; j < nhid; j = j + 1) {
            W2[i][j] = float(i + j) * 0.002;
        }
    }
    for (j = 0; j < nin; j = j + 1) {
        INPUT[j] = float(j % 16) * 0.0625;
    }
    for (e = 0; e < epochs; e = e + 1) {
        # Forward pass: dot products -- serial accumulation chains.
        for (i = 0; i < nhid; i = i + 1) {
            s = 0.0;
            for (j = 0; j < nin; j = j + 1) {
                s = s + W1[i][j] * INPUT[j];
            }
            HID[i] = s * 0.0078125;
        }
        for (i = 0; i < nhid; i = i + 1) {
            s = 0.0;
            for (j = 0; j < nhid; j = j + 1) {
                s = s + W2[i][j] * HID[j];
            }
            OUT[i] = s * 0.03125;
            DELTA[i] = (1.0 - OUT[i]) * OUT[i];
        }
        # Weight update.
        for (i = 0; i < nhid; i = i + 1) {
            for (j = 0; j < nin; j = j + 1) {
                W1[i][j] = W1[i][j] + DELTA[i] * INPUT[j] * 0.1;
            }
        }
    }
}
""")


DNASA7 = _w("dnasa7", "Fortran",
            "Matrix manipulation routines",
            """
array MA[40][40] : float;
array MB[40][40] : float;
array MC[40][40] : float;
array MD[40][40] : float;
array VX[4096] : float;
array VY[4096] : float;
var n : int = 40;
var reps : int = 1;

func main() {
    var i: int; var j: int; var k: int; var r: int;
    var t: float; var u: float;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            MA[i][j] = float(i * 3 + j) * 0.000244140625;
            MB[i][j] = float(i - j * 2) * 0.00048828125;
            MC[i][j] = 0.0;
            MD[i][j] = 0.0;
        }
    }
    for (r = 0; r < reps; r = r + 1) {
        # MXM: j-inner matrix multiply over two independent result
        # matrices -- wide load-level parallelism in every block.
        for (i = 0; i < n; i = i + 1) {
            for (k = 0; k < n; k = k + 1) {
                t = MA[i][k];
                u = MA[i][k] * 0.5 + 0.001;
                for (j = 0; j < n; j = j + 1) {
                    MC[i][j] = MC[i][j] + t * MB[k][j];
                    MD[i][j] = MD[i][j] + u * MB[j][k];
                }
            }
        }
        # Long smoothing sweeps over vectors larger than the L1 cache.
        for (i = 0; i < 4096; i = i + 1) {
            VX[i] = float(i % 640) * 0.0015625;
        }
        for (i = 1; i < 4095; i = i + 1) {
            VY[i] = VX[i - 1] * 0.25 + VX[i] * 0.5 + VX[i + 1] * 0.25;
        }
        for (i = 1; i < 4095; i = i + 1) {
            VX[i] = VY[i - 1] * 0.125 + VY[i] * 0.75 + VY[i + 1] * 0.125;
        }
    }
}
""")


DODUC = _w("doduc", "Fortran",
           "Monte Carlo simulation of the time evolution of a nuclear "
           "reactor component",
           """
array STATE[512] : float;
array AUX[512] : float;
array RESULT[512] : float;
var n : int = 512;
var sweeps : int = 4;
var seed : int = 12345;

func absorb(x: float, a: float) : float {
    var r: float;
    r = x * a + 0.013;
    if (r > 1.0) { r = r - 1.0; }
    if (r < 0.0) { r = 0.0 - r; }
    return r;
}

func scatter(x: float, y: float) : float {
    var u: float; var v: float;
    u = x * 0.7 + y * 0.3;
    v = x - y;
    if (v < 0.0) { v = 0.0 - v; }
    return u / (v + 1.5);
}

func fission(x: float) : float {
    var p: float;
    p = x * x * 0.4 + x * 0.09 + 0.001;
    return p / (x + 2.0);
}

func leak(x: float, w: float) : float {
    var l: float;
    l = x * w;
    if (l > 0.8) { l = 0.8; }
    return l;
}

func main() {
    var i: int; var t: int; var rnd: int;
    var x: float; var a: float; var b: float; var c: float;
    for (i = 0; i < n; i = i + 1) {
        STATE[i] = float(i % 41) * 0.02;
        AUX[i] = float(i % 29) * 0.03 + 0.2;
    }
    # Many small branchy routines, inlined: large static code, lots of
    # conditionals, few dominant paths.
    for (t = 0; t < sweeps; t = t + 1) {
        rnd = seed;
        for (i = 0; i < n; i = i + 1) {
            rnd = (rnd * 1103 + 12345) % 65536;
            x = STATE[i];
            a = absorb(x, AUX[i]);
            b = scatter(a, AUX[i]);
            c = fission(b);
            if (rnd % 4 == 0) {
                x = a + leak(b, 0.3);
            } else {
                if (rnd % 4 == 1) {
                    x = b + leak(c, 0.5);
                } else {
                    if (rnd % 4 == 2) {
                        x = c + absorb(a, 0.25);
                    } else {
                        x = a * 0.5 + b * 0.3 + c * 0.2;
                    }
                }
            }
            STATE[i] = absorb(x, 0.9);
            RESULT[i] = RESULT[i] + scatter(STATE[i], b) + fission(c);
        }
    }
}
""")


EAR = _w("ear", "C",
         "Simulates the propagation of sound in the human cochlea",
         """
array SIG[512] : float;
array S1[512] : float;
array S2[512] : float;
array S3[512] : float;
var n : int = 512;
var frames : int = 12;

func main() {
    var i: int; var f: int;
    for (i = 0; i < n; i = i + 1) {
        SIG[i] = float(i % 128) * 0.0078125 - 0.5;
    }
    # Cascaded IIR filters: loop-carried memory recurrences keep the
    # critical path serial; loads are few and dependent.
    for (f = 0; f < frames; f = f + 1) {
        for (i = 1; i < n; i = i + 1) {
            S1[i] = S1[i - 1] * 0.875 + SIG[i] * 0.125;
        }
        for (i = 1; i < n; i = i + 1) {
            S2[i] = S2[i - 1] * 0.75 + S1[i] * 0.25;
        }
        for (i = 1; i < n; i = i + 1) {
            S3[i] = S3[i - 1] * 0.5 + S2[i] * S2[i] * 0.5;
        }
    }
}
""")


HYDRO2D = _w("hydro2d", "Fortran",
             "Solves hydrodynamical Navier Stokes equations to compute "
             "galactical jets",
             """
array RO[96][96] : float;
array EN[96][96] : float;
array ZA[96][96] : float;
array ZB[96][96] : float;
var n : int = 96;
var steps : int = 1;

func main() {
    var i: int; var j: int; var t: int;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            RO[i][j] = float(i + j * 2) * 0.0078125 + 1.0;
            EN[i][j] = float(i * j % 61) * 0.015625;
        }
    }
    for (t = 0; t < steps; t = t + 1) {
        for (i = 1; i < 95; i = i + 1) {
            for (j = 1; j < 95; j = j + 1) {
                ZA[i][j] = (RO[i][j - 1] + RO[i][j + 1]) * 0.25
                         + (RO[i - 1][j] + RO[i + 1][j]) * 0.25
                         - EN[i][j] * 0.5;
            }
        }
        for (i = 1; i < 95; i = i + 1) {
            for (j = 1; j < 95; j = j + 1) {
                ZB[i][j] = ZA[i][j] * 0.6 + EN[i][j] * 0.4
                         + (ZA[i][j - 1] - ZA[i][j + 1]) * 0.125;
            }
        }
        for (i = 1; i < 95; i = i + 1) {
            for (j = 1; j < 95; j = j + 1) {
                RO[i][j] = RO[i][j] + ZB[i][j] * 0.05;
                EN[i][j] = EN[i][j] * 0.99 + ZB[i][j] * 0.01;
            }
        }
    }
}
""")


MDLJDP2 = _w("mdljdp2", "Fortran",
             "Chemical application program that solves equations of motion "
             "for atoms",
             """
array RX[1024] : float;
array RY[1024] : float;
array VX[1024] : float;
array VY[1024] : float;
var n : int = 1024;
var steps : int = 4;
var rcut : float = 0.4;

func main() {
    var i: int; var t: int;
    var dx: float; var dy: float; var r2: float; var w: float;
    for (i = 0; i < n; i = i + 1) {
        RX[i] = float(i % 32) * 0.03125;
        RY[i] = float(i * 3 % 64) * 0.015625;
    }
    # Two cutoff conditionals per pair: more than one internal branch,
    # so the unroller leaves the loop alone (paper Table 4: mdljdp2's
    # dynamic count barely moves under unrolling).
    for (t = 0; t < steps; t = t + 1) {
        for (i = 1; i < 1023; i = i + 1) {
            dx = RX[i] - RX[i - 1];
            dy = RY[i] - RY[i - 1];
            r2 = dx * dx + dy * dy + 0.001;
            if (r2 < rcut) {
                w = (1.0 / r2) * 0.25;
                VX[i] = VX[i] + dx * w;
            } else {
                VX[i] = VX[i] + dx * 0.001;
            }
            if (r2 < rcut * 0.5) {
                w = 0.5 / (r2 + 0.1);
                VY[i] = VY[i] + dy * w;
            } else {
                VY[i] = VY[i] - dy * 0.002;
            }
        }
    }
}
""")


ORA = _w("ora", "Fortran",
         "Traces rays through an optical system composed of spherical and "
         "planar surfaces",
         """
array ANGLES[1024] : float;
array OUT[1024] : float;
var nrays : int = 1024;

func trace_ray(a0: float) : float {
    # One large, loop-free routine: long FP divide chains, almost no
    # memory traffic.  Dominates execution, so unrolling the tiny
    # driver loop changes nothing.
    var x: float; var y: float; var u: float; var v: float;
    var t: float; var r: float;
    x = a0 * 0.5 + 1.0;
    y = a0 * a0 * 0.25 + 0.5;
    u = (x * 1.5 + y) / (x + 2.0);
    v = (y * 1.25 - x * 0.5) / (y + 3.0);
    t = (u * u + v * v + 1.0) / (u + v + 2.5);
    r = (t * x - u) / (t + 1.75);
    u = (r * r + t) / (r + 2.25);
    v = (u - r * 0.125) / (u + 1.125);
    t = (v * v * 2.0 + u) / (v + 3.5);
    r = (t + u + v) / (t * v + 1.0625);
    u = (r * 1.0 + t * 0.5) / (r + 1.03125);
    v = (u * u - r) / (u + 2.015625);
    return v * 0.5 + t * 0.25 + r * 0.125;
}

func main() {
    var i: int;
    for (i = 0; i < nrays; i = i + 1) {
        ANGLES[i] = float(i % 90) * 0.0174;
    }
    for (i = 0; i < nrays; i = i + 1) {
        OUT[i] = trace_ray(ANGLES[i]);
    }
}
""")


SPICE2G6 = _w("spice2g6", "Fortran",
              "Circuit simulation package",
              """
array VAL[8192] : float;
array COL[8192] : int;
array ROWP[513] : int;
array XV[4096] : float;
array YV[512] : float;
var nrows : int = 512;
var nnz : int = 8192;
var iters : int = 3;

func main() {
    var i: int; var p: int; var t: int; var s: float;
    var lo: int; var hi: int;
    for (p = 0; p < nnz; p = p + 1) {
        VAL[p] = float(p % 53) * 0.01 + 0.05;
        COL[p] = (p * 1657 + 31) % 4096;
    }
    for (i = 0; i <= nrows; i = i + 1) {
        ROWP[i] = i * 16;
    }
    for (i = 0; i < 4096; i = i + 1) {
        XV[i] = float(i % 77) * 0.005;
    }
    # Sparse matrix-vector products: COL[p] must load before XV[COL[p]]
    # can issue -- serial load chains with scattered, cache-hostile
    # accesses.  Load interlocks dominate and resist both schedulers.
    for (t = 0; t < iters; t = t + 1) {
        for (i = 0; i < nrows; i = i + 1) {
            s = 0.0;
            lo = ROWP[i];
            hi = ROWP[i + 1];
            for (p = lo; p < hi; p = p + 1) {
                s = s + VAL[p] * XV[COL[p]];
            }
            YV[i] = s;
        }
        for (i = 0; i < 4096; i = i + 1) {
            XV[i] = XV[i] * 0.998 + YV[i % 512] * 0.0005;
        }
    }
}
""")


SU2COR = _w("su2cor", "Fortran",
            "Computes masses of elementary particles in the framework of "
            "the Quark-Gluon theory",
            """
array AR[64][64] : float;
array AI[64][64] : float;
array BR[64][64] : float;
array BI[64][64] : float;
array CR[64][64] : float;
array CI[64][64] : float;
var n : int = 64;
var sweeps : int = 1;

func main() {
    var i: int; var j: int; var t: int;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            AR[i][j] = float(i + j) * 0.004;
            AI[i][j] = float(i - j) * 0.003;
            BR[i][j] = float(i * 2 + j) * 0.002;
            BI[i][j] = float(j * 2 - i) * 0.001;
        }
    }
    # Complex multiply-accumulate: four independent loads per point and
    # wide expression trees -- plenty of load-level parallelism.
    for (t = 0; t < sweeps; t = t + 1) {
        for (i = 0; i < n; i = i + 1) {
            for (j = 0; j < n; j = j + 1) {
                CR[i][j] = AR[i][j] * BR[i][j] - AI[i][j] * BI[i][j]
                         + CR[i][j] * 0.5;
                CI[i][j] = AR[i][j] * BI[i][j] + AI[i][j] * BR[i][j]
                         + CI[i][j] * 0.5;
            }
        }
        for (i = 1; i < 63; i = i + 1) {
            for (j = 1; j < 63; j = j + 1) {
                AR[i][j] = CR[i][j] * 0.9 + CR[i][j - 1] * 0.05
                         + CR[i][j + 1] * 0.05;
                AI[i][j] = CI[i][j] * 0.9 + CI[i - 1][j] * 0.05
                         + CI[i + 1][j] * 0.05;
            }
        }
    }
}
""")


SWM256 = _w("swm256", "Fortran",
            "Solves shallow water equations using finite difference "
            "equations",
            """
array UU[64][64] : float;
array VV[64][64] : float;
array PP[64][64] : float;
array UN[64][64] : float;
array VN[64][64] : float;
array PN[64][64] : float;
var n : int = 64;
var steps : int = 1;

func main() {
    var i: int; var j: int; var t: int;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            UU[i][j] = float(i + j) * 0.01;
            VV[i][j] = float(i - j) * 0.008;
            PP[i][j] = float(i * j % 37) * 0.02 + 10.0;
        }
    }
    # One wide stencil body (~40 estimated instructions): factor 4
    # exceeds the 64-instruction cap, factor 8's 128-instruction cap
    # admits a partial unroll -- the paper's swm256 footnote.
    for (t = 0; t < steps; t = t + 1) {
        for (i = 1; i < 63; i = i + 1) {
            for (j = 1; j < 63; j = j + 1) {
                UN[i][j] = UU[i][j]
                    + 0.04 * (PP[i][j - 1] - PP[i][j + 1])
                    + 0.02 * (UU[i][j - 1] + UU[i][j + 1]
                              + UU[i - 1][j] + UU[i + 1][j]
                              - 4.0 * UU[i][j])
                    + 0.01 * VV[i][j] * (VV[i][j + 1] - VV[i][j - 1]);
                VN[i][j] = VV[i][j]
                    + 0.04 * (PP[i - 1][j] - PP[i + 1][j])
                    + 0.02 * (VV[i][j - 1] + VV[i][j + 1]
                              + VV[i - 1][j] + VV[i + 1][j]
                              - 4.0 * VV[i][j])
                    + 0.01 * UU[i][j] * (UU[i + 1][j] - UU[i - 1][j]);
                PN[i][j] = PP[i][j]
                    - 0.03 * (UU[i][j + 1] - UU[i][j - 1]
                              + VV[i + 1][j] - VV[i - 1][j]);
            }
        }
        for (i = 1; i < 63; i = i + 1) {
            for (j = 1; j < 63; j = j + 1) {
                UU[i][j] = UN[i][j];
                VV[i][j] = VN[i][j];
                PP[i][j] = PN[i][j];
            }
        }
    }
}
""")


TOMCATV = _w("tomcatv", "Fortran",
             "Vectorized mesh generation program",
             """
array MX[80][80] : float;
array MY[80][80] : float;
array RXM[80][80] : float;
array RYM[80][80] : float;
array WROW[80] : float;
var n : int = 80;
var steps : int = 1;

func main() {
    var i: int; var j: int; var t: int;
    var xx: float; var yy: float; var xy: float;
    for (i = 0; i < n; i = i + 1) {
        WROW[i] = float(i % 9) * 0.1 + 0.5;
        for (j = 0; j < n; j = j + 1) {
            MX[i][j] = float(i) * 0.25 + float(j) * 0.01;
            MY[i][j] = float(j) * 0.25 - float(i) * 0.01;
        }
    }
    # Sequential sweeps over large, read-only meshes: rich spatial
    # reuse (stride-1 in j) plus temporal reuse (WROW[i], invariant in
    # the inner loop) -- the locality-analysis showcase.
    for (t = 0; t < steps; t = t + 1) {
        for (i = 1; i < 79; i = i + 1) {
            for (j = 1; j < 79; j = j + 1) {
                xx = MX[i][j + 1] - 2.0 * MX[i][j] + MX[i][j - 1];
                yy = MY[i][j + 1] - 2.0 * MY[i][j] + MY[i][j - 1];
                xy = MX[i + 1][j] + MX[i - 1][j] - 2.0 * MX[i][j];
                RXM[i][j] = xx * WROW[i] + xy * 0.25
                          + MY[i - 1][j] * 0.125;
                RYM[i][j] = yy * WROW[i]
                          + (MY[i + 1][j] - MY[i - 1][j]) * 0.25;
            }
        }
    }
}
""")


WORKLOADS: dict[str, Workload] = {
    w.name: w for w in (
        ARC2D, BDNA, DYFESM, MDG, QCD2, TRFD, ALVINN, DNASA7, DODUC, EAR,
        HYDRO2D, MDLJDP2, ORA, SPICE2G6, SU2COR, SWM256, TOMCATV,
    )
}

#: Paper ordering (Table 1 / results tables).
WORKLOAD_ORDER = list(WORKLOADS)


def get_workload(name: str) -> Workload:
    return WORKLOADS[name]
