"""Parametric synthetic code-DAG generators.

Scheduler-level microbenchmarks and property tests need DAGs with
controlled shape — load count, series/parallel structure, amount of
independent work — without going through the full compiler.  These
generators build such DAGs directly, deterministically from a seed
(a linear-congruential generator; no global random state).

The shapes mirror the situations the paper reasons about:

* :func:`figure1_dag` — the paper's Figure 1 (two parallel loads, one
  serial load chain, shared independent instructions);
* :func:`parallel_loads_dag` — k independent load-use chains plus m
  independent ALU instructions (high load-level parallelism);
* :func:`serial_loads_dag` — a chain of dependent loads (minimal
  load-level parallelism);
* :func:`random_dag` — layered random DAGs for property testing.
"""

from __future__ import annotations

from ..ir.dag import Dag, TRUE, build_dag
from ..isa import Instruction, MemRef, Reg


def _vreg(index: int, kind: str = "i") -> Reg:
    return Reg(kind, index, virtual=True)


def _alu(dest: int, src: int) -> Instruction:
    return Instruction("ADD", dest=_vreg(dest), srcs=(_vreg(src),), imm=1)


def _load(dest: int, base: int, symbol: str = "A",
          element: int = 0) -> Instruction:
    return Instruction("LD", dest=_vreg(dest), srcs=(_vreg(base),),
                       offset=8 * element,
                       mem=MemRef("data", symbol, affine=({}, element)))


def figure1_dag() -> Dag:
    """The paper's Figure 1 DAG.

    Node layout: 0 = X0 (root), 1 = L0, 2 = L1, 3 = L2, 4 = L3,
    5 = X1, 6 = X2, 7 = X3 (sink).  Balanced weights must come out as
    L0 = L1 = 3 and L2 = L3 = 2.
    """
    nodes = [
        _alu(100, 99),        # X0
        _load(101, 100),      # L0
        _load(102, 100),      # L1
        _load(103, 100),      # L2
        _load(104, 103),      # L3 (depends on L2)
        _alu(105, 100),       # X1
        _alu(106, 100),       # X2
        _alu(107, 101),       # X3
    ]
    dag = Dag(nodes)
    for src, dst in ((0, 1), (0, 2), (0, 3), (0, 5), (0, 6), (3, 4),
                     (1, 7), (2, 7), (4, 7)):
        dag.add_edge(src, dst, TRUE)
    return dag


def parallel_loads_dag(n_loads: int, n_alu: int) -> Dag:
    """n independent loads, each with one consumer, plus free ALU work."""
    instrs: list[Instruction] = []
    reg = 0
    base = Instruction("LDI", dest=_vreg(9000), imm=64)
    instrs.append(base)
    for i in range(n_loads):
        instrs.append(_load(reg, 9000, element=i))
        reg += 1
    for i in range(n_loads):
        instrs.append(Instruction("ADD", dest=_vreg(1000 + i),
                                  srcs=(_vreg(i),), imm=1))
    for i in range(n_alu):
        instrs.append(Instruction("ADD", dest=_vreg(2000 + i),
                                  srcs=(_vreg(9000),), imm=i))
    return build_dag(instrs)


def serial_loads_dag(n_loads: int, n_alu: int) -> Dag:
    """A pointer-chase: each load's address depends on the previous."""
    instrs: list[Instruction] = []
    instrs.append(Instruction("LDI", dest=_vreg(9000), imm=64))
    prev = 9000
    for i in range(n_loads):
        instrs.append(Instruction(
            "LD", dest=_vreg(i), srcs=(_vreg(prev),), offset=0,
            mem=MemRef("data", "chain", affine=None)))
        prev = i
    for i in range(n_alu):
        instrs.append(Instruction("ADD", dest=_vreg(2000 + i),
                                  srcs=(_vreg(9000),), imm=i))
    return build_dag(instrs)


class _Lcg:
    """Deterministic linear-congruential generator."""

    def __init__(self, seed: int) -> None:
        self.state = seed & 0x7FFFFFFF or 1

    def next(self, bound: int) -> int:
        self.state = (self.state * 1103515245 + 12345) & 0x7FFFFFFF
        return self.state % bound


def random_dag(n_instrs: int, seed: int = 1,
               load_fraction: float = 0.3,
               edge_density: float = 0.15) -> Dag:
    """A layered random DAG of loads and ALU instructions.

    Every instruction depends on a random subset of earlier results,
    so the DAG is connected enough to be interesting but always
    acyclic.  Deterministic in (n_instrs, seed).
    """
    rng = _Lcg(seed)
    instrs: list[Instruction] = []
    instrs.append(Instruction("LDI", dest=_vreg(9000), imm=64))
    produced = [9000]
    load_threshold = int(load_fraction * 1000)
    edge_threshold = int(edge_density * 1000)
    for i in range(n_instrs):
        src = produced[rng.next(len(produced))]
        if rng.next(1000) < load_threshold:
            instr = Instruction(
                "LD", dest=_vreg(i), srcs=(_vreg(src),), offset=0,
                mem=MemRef("data", "R", affine=({}, rng.next(512))))
        else:
            extra = produced[rng.next(len(produced))]
            if rng.next(1000) < edge_threshold * 4:
                instr = Instruction("ADD", dest=_vreg(i),
                                    srcs=(_vreg(src), _vreg(extra)))
            else:
                instr = Instruction("ADD", dest=_vreg(i),
                                    srcs=(_vreg(src),), imm=rng.next(100))
        instrs.append(instr)
        produced.append(i)
    return build_dag(instrs)
