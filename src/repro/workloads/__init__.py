"""Workloads: the 17 synthetic benchmarks and DAG generators."""

from .generator import KernelSpec, generate_kernel
from .programs import WORKLOAD_ORDER, WORKLOADS, Workload, get_workload
from .synthetic_dags import (
    figure1_dag,
    parallel_loads_dag,
    random_dag,
    serial_loads_dag,
)

__all__ = [
    "KernelSpec", "generate_kernel",
    "WORKLOAD_ORDER", "WORKLOADS", "Workload", "get_workload",
    "figure1_dag", "parallel_loads_dag", "random_dag", "serial_loads_dag",
]
