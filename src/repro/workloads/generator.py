"""Parametric kernel generator for sensitivity studies.

Generates mini-language programs with controlled structure so that the
drivers of balanced scheduling's advantage can be swept directly:

* ``loads_per_iteration`` — how much load-level parallelism each loop
  body offers;
* ``flops_per_load`` — how much independent arithmetic exists to hide
  latency with;
* ``array_kb`` — working-set size, which selects where in the memory
  hierarchy loads are satisfied (L1 / L2 / L3);
* ``serial_chain`` — whether the arithmetic forms one dependent chain
  (hostile to any scheduler) or independent trees.

Used by ``benchmarks/test_sensitivity.py`` to draw the paper's implicit
"more parallelism -> bigger balanced win" curve.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KernelSpec:
    loads_per_iteration: int = 4
    flops_per_load: int = 2
    array_kb: int = 64
    serial_chain: bool = False
    sweeps: int = 2

    def describe(self) -> str:
        shape = "serial" if self.serial_chain else "parallel"
        return (f"{self.loads_per_iteration} loads/iter, "
                f"{self.flops_per_load} flops/load, "
                f"{self.array_kb} KB, {shape}")


def generate_kernel(spec: KernelSpec) -> str:
    """Emit a mini-language program matching *spec*.

    The kernel sweeps ``loads_per_iteration`` arrays with stride-1
    accesses; each loaded value feeds ``flops_per_load`` multiply-adds,
    either independently (wide trees) or chained serially.
    """
    if spec.loads_per_iteration < 1:
        raise ValueError("need at least one load per iteration")
    elements = max(spec.array_kb * 1024 // 8 // spec.loads_per_iteration,
                   64)
    # Keep element counts power-of-two-ish for cheap addressing.
    size = 1
    while size < elements:
        size *= 2

    arrays = [f"SRC{k}" for k in range(spec.loads_per_iteration)]
    decls = "\n".join(f"array {name}[{size}] : float;" for name in arrays)
    inits = "\n".join(
        f"        {name}[i] = float(i % {61 + 2 * k}) * 0.01;"
        for k, name in enumerate(arrays))

    terms = []
    for k, name in enumerate(arrays):
        value = f"{name}[i]"
        for f in range(spec.flops_per_load):
            value = f"({value} * 0.{5 + (f + k) % 4} + {k}.125)"
        terms.append(value)
    if spec.serial_chain:
        body = "        acc = acc"
        for term in terms:
            body += f";\n        acc = acc * 0.5 + {term}"
        body += ";\n        OUT[i] = acc;"
    else:
        joined = " + ".join(terms)
        body = f"        OUT[i] = {joined};"

    return f"""
{decls}
array OUT[{size}] : float;
var n : int = {size};
var sweeps : int = {spec.sweeps};
var acc : float = 0.0;

func main() {{
    var i : int; var t : int;
    for (i = 0; i < n; i = i + 1) {{
{inits}
    }}
    for (t = 0; t < sweeps; t = t + 1) {{
        for (i = 0; i < n; i = i + 1) {{
{body}
        }}
    }}
}}
"""
