"""Instruction schedulers: balanced, traditional, and trace scheduling."""

from .block import schedule_block, schedule_cfg
from .list_scheduler import (
    estimate_issue_cycles,
    list_schedule,
    list_schedule_with_weights,
    priorities,
)
from .modulo import KernelInfo, LoopPipelineStats, ModuloStats, pipeline_loops
from .trace import ProfileData, TraceStats, form_traces, trace_schedule
from .weights import BalancedWeights, TraditionalWeights, WeightModel

__all__ = [
    "schedule_block", "schedule_cfg",
    "estimate_issue_cycles", "list_schedule", "list_schedule_with_weights",
    "priorities",
    "ProfileData", "TraceStats", "form_traces", "trace_schedule",
    "BalancedWeights", "TraditionalWeights", "WeightModel",
    "pipeline_loops", "ModuloStats", "LoopPipelineStats", "KernelInfo",
]
