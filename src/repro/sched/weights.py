"""Instruction-weight models: traditional (fixed) and balanced.

Weights drive the list scheduler's priorities (paper section 4.2):

* the **traditional** model gives every instruction its fixed
  architectural latency, loads optimistically at the L1-hit value
  (Table 3) -- the blocking-processor assumption;
* the **balanced** model (Kerns & Eggers, PLDI 1993) replaces each
  load's weight with a measure of the *load-level parallelism*
  available to hide it, computed from the code DAG (section 2);
* with **locality analysis**, loads marked ``HIT`` keep the optimistic
  weight (their latency estimate is exact) and drop out of the
  balancing set, freeing independent instructions for loads that miss
  (section 3.3);
* with **pressure feedback** (opt-in), the model schedules the block
  with the boosted weights, measures the per-bank MAXLIVE of the
  resulting order, and only when a bank overflows its allocatable
  size demotes the lowest-weighted boosted loads back to the hit
  floor and re-measures — trading hidden latency for not spilling,
  and only in blocks where the allocator would otherwise spill.

Balanced weight computation, per DAG:

1. every balanced load starts at 1 (its issue slot);
2. every *contributor* (any instruction outside the balancing set)
   distributes one unit among the balanced loads it is independent of:
   loads connected by a dependence path (in series) compete for the
   contributor and share it equally, while loads in parallel can all be
   covered at once -- formally, the unit goes to each connected
   component of the comparability graph over the independent-load set,
   split evenly inside the component;
3. the result is floored at the L1-hit latency and capped at the
   50-cycle maximum memory latency (paper footnote 1).

On the paper's Figure 1 DAG this yields weights 3 for the parallel
loads ``L0, L1`` and 2 for the serial chain ``L2 -> L3``.
"""

from __future__ import annotations

from ..ir.dag import Dag
from ..isa import Instruction, Locality
from ..machine.config import DEFAULT_CONFIG, MachineConfig


class WeightModel:
    """Maps DAG nodes to scheduling weights."""

    name = "abstract"

    def weights(self, dag: Dag) -> list[float]:
        raise NotImplementedError

    def weights_detailed(self, dag: Dag) -> tuple[list[float],
                                                  dict[int, int]]:
        """Weights plus per-load provenance detail.

        The detail dict maps each *balanced* load node to the number
        of independent contributor instructions its weight was derived
        from; models without a balancing notion return an empty dict.
        """
        return self.weights(dag), {}


class TraditionalWeights(WeightModel):
    """Fixed, architecturally optimistic weights (blocking assumption)."""

    name = "traditional"

    def __init__(self, config: MachineConfig = DEFAULT_CONFIG) -> None:
        self.config = config

    def weights(self, dag: Dag) -> list[float]:
        table = self.config.op_latency
        return [float(table[ins.op]) for ins in dag.instrs]


class BalancedWeights(WeightModel):
    """Kerns–Eggers balanced load weights.

    Args:
        config: machine model (supplies fixed latencies, the hit floor
            and the 50-cycle cap).
        use_locality: honour ``HIT`` locality hints -- hit loads keep
            the optimistic weight and become contributors.
        component_sharing: the paper-faithful sharing rule.  When
            False (ablation), a contributor is split uniformly over
            *all* loads it could help, ignoring series/parallel
            structure.
        cap: override the weight cap (None = no cap; ablation).
        pressure: enable the register-pressure feedback term — the
            block is trial-scheduled with the boosted weights and,
            only when the measured per-bank MAXLIVE overflows the
            allocatable bank size, the lowest-weighted boosted loads
            fall back to the hit floor (so the scheduler keeps their
            live ranges short) until the schedule fits.
    """

    name = "balanced"

    def __init__(self, config: MachineConfig = DEFAULT_CONFIG,
                 use_locality: bool = True,
                 component_sharing: bool = True,
                 cap: float | None = None,
                 pressure: bool = False) -> None:
        self.config = config
        self.use_locality = use_locality
        self.component_sharing = component_sharing
        self.cap = float(config.max_load_weight) if cap is None else cap
        self.pressure = pressure

    def _in_balance_set(self, instr: Instruction) -> bool:
        if not instr.is_load:
            return False
        if self.use_locality and instr.locality is Locality.HIT:
            return False
        return True

    def weights(self, dag: Dag) -> list[float]:
        return self._weights(dag, None)

    def weights_detailed(self, dag: Dag) -> tuple[list[float],
                                                  dict[int, int]]:
        detail: dict[int, int] = {}
        return self._weights(dag, detail), detail

    def _weights(self, dag: Dag,
                 detail: dict[int, int] | None) -> list[float]:
        table = self.config.op_latency
        result = [float(table[ins.op]) for ins in dag.instrs]
        loads = [i for i, ins in enumerate(dag.instrs)
                 if self._in_balance_set(ins)]
        if detail is not None:
            for node in loads:
                detail[node] = 0
        if not loads:
            return result

        n = len(dag.instrs)
        reach = dag.reachability()
        load_pos = {node: pos for pos, node in enumerate(loads)}
        contribution = [0.0] * len(loads)

        # Bitmask of balanced loads independent of each instruction.
        load_mask_bits = 0
        for node in loads:
            load_mask_bits |= 1 << node

        # reach_into[j] = mask of nodes that reach j; derive from reach.
        reach_into = [0] * n
        for i in range(n):
            ri = reach[i]
            bit = 1 << i
            j = ri
            while j:
                low = j & -j
                reach_into[low.bit_length() - 1] |= bit
                j ^= low
        component_cache: dict[int, list[list[int]]] = {}

        for i in range(n):
            if i in load_pos:
                continue
            related = reach[i] | reach_into[i] | (1 << i)
            indep_mask = load_mask_bits & ~related
            if not indep_mask:
                continue
            if detail is not None:
                bits = indep_mask
                while bits:
                    low = bits & -bits
                    detail[low.bit_length() - 1] += 1
                    bits ^= low
            if not self.component_sharing:
                count = bin(indep_mask).count("1")
                share = 1.0 / count
                m = indep_mask
                while m:
                    low = m & -m
                    contribution[load_pos[low.bit_length() - 1]] += share
                    m ^= low
                continue
            components = component_cache.get(indep_mask)
            if components is None:
                components = _comparability_components(indep_mask, reach)
                component_cache[indep_mask] = components
            for component in components:
                share = 1.0 / len(component)
                for node in component:
                    contribution[load_pos[node]] += share

        floor = float(self.config.load_hit_latency)
        for pos, node in enumerate(loads):
            weight = 1.0 + contribution[pos]
            weight = max(floor, weight)
            weight = min(self.cap, weight)
            result[node] = weight
        if self.pressure:
            self._apply_pressure_feedback(dag, loads, result, floor)
        return result

    def _apply_pressure_feedback(self, dag: Dag, loads: list[int],
                                 result: list[float],
                                 floor: float) -> None:
        """Demote boosted loads the register file cannot afford.

        Feedback loop: schedule the block with the boosted weights,
        measure the per-bank MAXLIVE of the order the scheduler
        actually produced, and — only when a bank overflows its
        allocatable size (i.e. the allocator *would* spill) — strip
        the boost from the lowest-weighted loads of that bank and
        re-measure.  Blocks whose boosted schedule fits are left
        entirely alone, so the feedback can only ever trade hidden
        latency against real spill traffic."""
        from .list_scheduler import list_schedule_with_weights

        budget = {"i": self.config.allocatable_int_regs,
                  "f": self.config.allocatable_fp_regs}
        limit = self.config.pressure_limit
        for _ in range(4):
            order = list_schedule_with_weights(dag, result,
                                               pressure_limit=limit)
            maxlive = _scheduled_maxlive(dag, order)
            demoted = False
            for bank in ("i", "f"):
                excess = maxlive[bank] - budget[bank]
                if excess <= 0:
                    continue
                boosted = sorted(
                    (node for node in loads
                     if dag.instrs[node].dest is not None
                     and dag.instrs[node].dest.kind == bank
                     and result[node] > floor),
                    key=lambda node: (result[node], -node))
                for node in boosted[:excess]:
                    result[node] = floor
                    demoted = True
            if not demoted:
                return


def _scheduled_maxlive(dag: Dag, order: list[int]) -> dict[str, int]:
    """Per-bank MAXLIVE of a scheduled block order.

    A register is live from its first definition (or slot 0 when read
    before any local definition, i.e. live in) to its last local read;
    a value whose final definition is never read in the block is
    assumed live out and held to the end.  Zero registers are ignored
    — they never occupy an allocatable slot.
    """
    n = len(order)
    maxlive = {"i": 0, "f": 0}
    if n == 0:
        return maxlive
    first_def: dict = {}
    last_def: dict = {}
    first_use: dict = {}
    last_use: dict = {}
    for slot, node in enumerate(order):
        ins = dag.instrs[node]
        for reg in ins.uses():
            if not reg.is_zero:
                first_use.setdefault(reg, slot)
                last_use[reg] = slot
        for reg in ins.defs():
            if not reg.is_zero:
                first_def.setdefault(reg, slot)
                last_def[reg] = slot
    start_at: list[list[str]] = [[] for _ in range(n)]
    end_at: list[list[str]] = [[] for _ in range(n)]
    for reg in set(first_def) | set(first_use):
        fd = first_def.get(reg)
        fu = first_use.get(reg)
        start = fd if fd is not None and (fu is None or fd <= fu) else 0
        lu = last_use.get(reg, -1)
        end = lu if lu >= last_def.get(reg, -1) else n - 1
        start_at[start].append(reg.kind)
        end_at[end].append(reg.kind)
    live = {"i": 0, "f": 0}
    for slot in range(n):
        for bank in start_at[slot]:
            live[bank] += 1
        for bank in ("i", "f"):
            if live[bank] > maxlive[bank]:
                maxlive[bank] = live[bank]
        for bank in end_at[slot]:
            live[bank] -= 1
    return maxlive


def _comparability_components(mask: int, reach: list[int]) -> list[list[int]]:
    """Connected components of the comparability graph over ``mask``.

    Two nodes are adjacent when a dependence path joins them (one
    reaches the other); components group loads that are (transitively)
    in series and therefore compete for the same hiding instructions.
    """
    nodes: list[int] = []
    m = mask
    while m:
        low = m & -m
        nodes.append(low.bit_length() - 1)
        m ^= low

    parent = {node: node for node in nodes}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for idx, a in enumerate(nodes):
        reach_a = reach[a]
        for b in nodes[idx + 1:]:
            if (reach_a >> b) & 1:
                ra, rb = find(a), find(b)
                if ra != rb:
                    parent[ra] = rb

    groups: dict[int, list[int]] = {}
    for node in nodes:
        groups.setdefault(find(node), []).append(node)
    return list(groups.values())
