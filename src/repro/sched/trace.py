"""Trace scheduling (paper sections 3.2, 4.2).

Profile-guided, Fisher-style: basic blocks are grouped into *traces*
along the most frequently executed paths (never crossing loop back
edges), each trace is scheduled as if it were one basic block, and
bookkeeping code keeps off-trace paths correct:

* **splits** (conditional branches off the trace): instructions may
  move *up* past a split only speculatively — never stores, possibly
  trapping ops (divides), or instructions writing a register that is
  live into the off-trace path (the paper's safety rule);
  downward motion past a split is restricted (no compensation
  duplication on splits in this implementation);
* **joins** (off-trace edges entering the trace): instructions from
  below a join may move above it, and every such hoisted instruction
  is *copied* into a compensation block on each entering edge (paper
  Figure 2); instructions from above a join may not sink below it.

Mechanically, the trace is concatenated into one instruction list with
NOP *join markers*; ORDER arcs make branches and markers downward
barriers while leaving upward (speculative / compensated) motion free;
the shared list scheduler runs with either weight model; the result is
split back into blocks at the markers, and entering edges are
redirected through freshly built compensation blocks.

Side entrances (an earlier trace block branching into the middle of
the same trace) are excluded during trace formation, which keeps
compensation sets uniform per join.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ir import Cfg, ORDER, build_dag, find_back_edges, liveness
from ..ir.cfg import BasicBlock
from ..isa import Instruction, Reg
from .list_scheduler import list_schedule
from .block import schedule_block
from .weights import WeightModel

_UNSAFE_SPECULATION_OPS = frozenset({"DIVQ", "REMQ", "FDIV"})

#: Maximum probability of leaving the trace at a split for speculation
#: across it to pay off: hoisted instructions execute on the off-trace
#: path too, so a frequently taken exit turns speculation into pure
#: overhead on a single-issue machine.
SPECULATION_MAX_OFF_PROB = 0.2

#: Maximum fraction of a join block's executions that may arrive over
#: off-trace edges before hoisting across the join is disabled: every
#: hoisted instruction is duplicated into a compensation block executed
#: on those edges, so frequent entries make bookkeeping dominate.
JOIN_MAX_OFF_PROB = 0.2


@dataclass
class ProfileData:
    """Basic-block and edge execution frequencies from a profiling run."""

    block_counts: dict[str, int] = field(default_factory=dict)
    edge_counts: dict[tuple[str, str], int] = field(default_factory=dict)

    def block(self, label: str) -> int:
        return self.block_counts.get(label, 0)

    def edge(self, src: str, dst: str) -> int:
        return self.edge_counts.get((src, dst), 0)


@dataclass
class TraceStats:
    traces: int = 0
    multi_block_traces: int = 0
    blocks_merged: int = 0
    compensation_instructions: int = 0
    speculation_arcs: int = 0


# ------------------------------------------------------------------ traces
def form_traces(cfg: Cfg, profile: ProfileData) -> list[list[str]]:
    """Partition blocks into traces along hottest profiled edges."""
    back_edges = set(find_back_edges(cfg))
    # A loop header may only ever be a trace *head*: entering edges
    # (including its own back edges) then arrive at the start of the
    # scheduled region, where no compensation is needed.  Letting a
    # trace grow into a header would put a back-edge target mid-trace,
    # which join bookkeeping cannot redirect.
    loop_headers = {header for _, header in back_edges}
    preds_map = cfg.predecessors()
    unvisited = set(cfg.order)
    seeds = sorted(cfg.order, key=lambda lbl: (-profile.block(lbl),
                                               cfg.order.index(lbl)))
    traces: list[list[str]] = []

    for seed in seeds:
        if seed not in unvisited:
            continue
        unvisited.discard(seed)
        trace = [seed]
        in_trace = {seed}

        # Grow forward along the hottest non-back, unvisited edge.
        current = seed
        while True:
            current_freq = profile.block(current)
            candidates = [
                s for s in cfg.successors(current)
                if s in unvisited and s != cfg.entry
                and s not in loop_headers
                and (current, s) not in back_edges
                and profile.edge(current, s) > 0
                # Never cross a frequency cliff in either direction:
                # stepping down (loop body -> exit) speculates
                # once-per-loop code into every iteration; climbing up
                # (if-side -> join) hoists always-executed code into a
                # rarely executed block with heavy compensation.
                and 2 * profile.block(s) >= current_freq
                and 2 * current_freq >= profile.block(s)
            ]
            if not candidates:
                break
            nxt = max(candidates, key=lambda s: profile.edge(current, s))
            # No side entrances: an earlier trace block (other than the
            # tail) must not branch into the candidate.
            if any(p in in_trace and p != current for p in preds_map[nxt]):
                break
            trace.append(nxt)
            in_trace.add(nxt)
            unvisited.discard(nxt)
            current = nxt

        # Grow backward along the hottest entering edge.
        current = seed
        while current != cfg.entry and current not in loop_headers:
            current_freq = profile.block(current)
            candidates = [
                p for p in preds_map[current]
                if p in unvisited and (p, current) not in back_edges
                and profile.edge(p, current) > 0
                # Same frequency-cliff rule as forward growth.
                and 2 * profile.block(p) >= current_freq
                and 2 * current_freq >= profile.block(p)
            ]
            if not candidates:
                break
            prev = max(candidates, key=lambda p: profile.edge(p, current))
            # The new head must not branch into the middle of the trace.
            succs = set(cfg.successors(prev))
            if succs & (in_trace - {current}):
                break
            # And the old head must not be side-entered from the body.
            trace.insert(0, prev)
            in_trace.add(prev)
            unvisited.discard(prev)
            current = prev

        traces.append(trace)
    return traces


# ------------------------------------------------------------- scheduling
class TraceScheduler:
    """Applies trace scheduling to a whole CFG, in place."""

    def __init__(self, cfg: Cfg, profile: ProfileData,
                 model: WeightModel) -> None:
        self.cfg = cfg
        self.profile = profile
        self.model = model
        self.stats = TraceStats()

    def run(self) -> TraceStats:
        live_in, _ = liveness(self.cfg)
        traces = form_traces(self.cfg, self.profile)
        for trace in traces:
            self.stats.traces += 1
            if len(trace) >= 2:
                self.stats.multi_block_traces += 1
                self.stats.blocks_merged += len(trace)
                self._schedule_trace(trace, live_in)
            else:
                block = self.cfg.blocks[trace[0]]
                block.instrs = schedule_block(block.instrs, self.model)
        self.cfg.prune_unreachable()
        self.cfg.verify()
        return self.stats

    # ------------------------------------------------------------- merging
    def _schedule_trace(self, trace: list[str],
                        live_in: dict[str, set[Reg]]) -> None:
        cfg = self.cfg
        preds_map = cfg.predecessors()
        merged: list[Instruction] = []
        markers: dict[int, str] = {}          # merged index -> join label
        # merged index of each split -> (off-trace live-ins, off-trace
        # probability from the profile).
        branch_offlive: dict[int, tuple[set[Reg], float]] = {}
        final_fallthrough: Optional[str] = None

        def off_probability(label: str, off_label: str) -> float:
            total = self.profile.block(label)
            if total <= 0:
                return 1.0
            return self.profile.edge(label, off_label) / total

        gated_markers: set[int] = set()
        for idx, label in enumerate(trace):
            block = cfg.blocks[label]
            if idx > 0:
                prev = trace[idx - 1]
                off_preds = [p for p in preds_map[label] if p != prev]
                if off_preds:
                    marker = Instruction("NOP", comment=f"join {label}")
                    markers[len(merged)] = label
                    # Off-trace share = executions NOT arriving over the
                    # in-trace edge; unknown edges count as off-trace.
                    total = self.profile.block(label)
                    in_edge = self.profile.edge(prev, label)
                    if total <= 0 or 1 - in_edge / total > JOIN_MAX_OFF_PROB:
                        gated_markers.add(len(merged))
                    merged.append(marker)
            term = block.terminator
            body = block.instrs[:-1] if term is not None else block.instrs
            merged.extend(body)
            is_last = idx == len(trace) - 1
            if term is None:
                if is_last:
                    final_fallthrough = block.fallthrough
                continue
            if not is_last:
                next_label = trace[idx + 1]
                if term.op == "BR":
                    continue            # falls into the next trace block
                # Conditional branch: keep the off-trace edge explicit.
                if term.label == next_label:
                    inverted = "BNE" if term.op == "BEQ" else "BEQ"
                    off_label = block.fallthrough
                    new_term = term.copy(op=inverted, label=off_label)
                else:
                    new_term = term.copy()
                branch_offlive[len(merged)] = (
                    live_in.get(new_term.label, set()),
                    off_probability(label, new_term.label))
                merged.append(new_term)
            else:
                if term.op in ("BEQ", "BNE"):
                    off_label = block.fallthrough or term.label
                    branch_offlive[len(merged)] = (
                        live_in.get(off_label, set()),
                        off_probability(label, off_label))
                    final_fallthrough = block.fallthrough
                merged.append(term)

        dag = build_dag(merged)
        self._add_trace_arcs(dag, merged, markers, branch_offlive,
                             gated_markers)
        order = list_schedule(dag, self.model)
        self._rebuild(trace, merged, order, markers, final_fallthrough)

    def _add_trace_arcs(self, dag, merged: list[Instruction],
                        markers: dict[int, str],
                        branch_offlive: dict[int, tuple[set[Reg], float]],
                        gated_markers: set[int]) -> None:
        # Downward barriers: everything originally above a branch or a
        # join marker stays above it (chained for O(n) edges).
        last_barrier = -1
        for j, instr in enumerate(merged):
            if instr.is_branch or instr.op == "HALT" or j in markers:
                for i in range(last_barrier + 1, j):
                    dag.add_edge(i, j, ORDER)
                if last_barrier >= 0:
                    dag.add_edge(last_barrier, j, ORDER)
                last_barrier = j
        # Speculation safety: pin unsafe instructions below each split,
        # and everything below a split that is taken too often to make
        # speculation profitable.
        for s, (off_live, off_prob) in branch_offlive.items():
            speculation_ok = off_prob <= SPECULATION_MAX_OFF_PROB
            for y in range(s + 1, len(merged)):
                instr = merged[y]
                if y in markers or instr.is_branch:
                    continue
                unsafe = (not speculation_ok
                          or instr.is_store
                          or instr.op in _UNSAFE_SPECULATION_OPS
                          or any(reg in off_live for reg in instr.defs()))
                if unsafe:
                    dag.add_edge(s, y, ORDER)
                    self.stats.speculation_arcs += 1
        # Frequently entered joins: no hoisting across them at all
        # (compensation would run on too many executions).
        for m in gated_markers:
            for y in range(m + 1, len(merged)):
                dag.add_edge(m, y, ORDER)

    # -------------------------------------------------------- reconstruction
    def _rebuild(self, trace: list[str], merged: list[Instruction],
                 order: list[int], markers: dict[int, str],
                 final_fallthrough: Optional[str]) -> None:
        cfg = self.cfg
        # Cut the scheduled sequence into blocks: at each join marker
        # (which keeps the join block's label, the target of entering
        # edges) and after each internal branch (the block invariant
        # allows control transfers only at block ends).
        segments: list[tuple[str, list[Instruction]]] = []
        current: list[Instruction] = []
        current_label = trace[0]
        join_labels: list[str] = []
        compensation: dict[str, list[Instruction]] = {}

        def close(next_label: str) -> None:
            nonlocal current, current_label
            segments.append((current_label, current))
            current = []
            current_label = next_label

        for pos, node in enumerate(order):
            if node in markers:
                join_label = markers[node]
                join_labels.append(join_label)
                hoisted = [n for n in order[:pos]
                           if n > node and n not in markers]
                compensation[join_label] = [merged[n].copy()
                                            for n in hoisted]
                close(join_label)
            else:
                current.append(merged[node])
                if merged[node].is_branch or merged[node].op == "HALT":
                    if pos + 1 < len(order):
                        close(cfg.new_label("tseg"))
        segments.append((current_label, current))

        # Rewrite the CFG: the head and each join block keep their
        # labels, fresh sub-blocks are added, the rest of the trace
        # blocks vanish.
        segment_labels = [label for label, _ in segments]
        kept = set(segment_labels)
        for label in trace:
            if label not in kept:
                del cfg.blocks[label]
                cfg.order.remove(label)
        anchor = cfg.order.index(trace[0])
        for index, (label, instrs) in enumerate(segments):
            if label in cfg.blocks:
                block = cfg.blocks[label]
                block.instrs = instrs
            else:
                block = BasicBlock(label, instrs=instrs)
                cfg.blocks[label] = block
                cfg.order.insert(anchor + index, label)
            term = block.terminator
            ends_control = term is not None and term.op in ("BR", "HALT")
            if index + 1 < len(segments):
                block.fallthrough = (None if ends_control
                                     else segments[index + 1][0])
            else:
                block.fallthrough = (None if ends_control
                                     else final_fallthrough)
        # Keep segments contiguous in layout order.
        for label in segment_labels[1:]:
            cfg.order.remove(label)
        for offset, label in enumerate(segment_labels[1:], start=1):
            cfg.order.insert(anchor + offset, label)

        # Compensation blocks on entering edges.  They are laid out
        # right after the trace so register live ranges referenced from
        # them stay short (the allocator's intervals follow layout
        # order).
        anchor_label = segment_labels[-1]
        for join_label, instrs in compensation.items():
            if not instrs:
                continue
            self.stats.compensation_instructions += len(instrs)
            comp_label = cfg.new_label("comp")
            comp = BasicBlock(comp_label, instrs=list(instrs),
                              fallthrough=join_label)
            cfg.add_block(comp, after=anchor_label)
            anchor_label = comp_label
            self._redirect_edges(join_label, comp_label,
                                 skip=set(segment_labels))

    def _redirect_edges(self, old: str, new: str, skip: set[str]) -> None:
        """Point every off-trace edge targeting *old* at *new* instead."""
        for block in self.cfg:
            if block.label in skip or block.label == new:
                continue
            if block.fallthrough == old:
                block.fallthrough = new
            term = block.terminator
            if term is not None and term.is_branch and term.label == old:
                block.instrs[-1] = term.copy(label=new)


def trace_schedule(cfg: Cfg, profile: ProfileData,
                   model: WeightModel) -> TraceStats:
    """Trace-schedule *cfg* in place using *profile* frequencies."""
    return TraceScheduler(cfg, profile, model).run()
