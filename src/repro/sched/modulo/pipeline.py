"""CFG-level software-pipelining driver.

Runs after list/trace scheduling: every innermost single-block loop in
the candidate shape is analyzed, modulo-scheduled (II from MII to
2*MII), expanded and spliced back into the CFG.  Loops that fail any
gate keep their plain list schedule -- the transformation is strictly
opt-in per loop, and even pipelined loops retain the original block as
the short-trip-count fallback, so nothing is ever lost.

Bail-out gates, in order (reason codes in :mod:`.stats`):

* ``not-single-block`` -- the natural loop spans several blocks;
* ``shape``            -- body doesn't match the counted-loop pattern;
* ``too-small`` / ``too-big`` -- body size outside the useful range;
* ``no-ii``            -- no feasible schedule with II <= 2*MII within
  the backtracking budget;
* ``no-overlap``       -- the schedule fits in one stage, so software
  pipelining would change nothing;
* ``stages``           -- more than :data:`MAX_STAGES` stages (too much
  prologue/epilogue and register overlap);
* ``unroll``           -- variable expansion needs more than
  :data:`MAX_UNROLL` kernel copies;
* ``cmov-carried``     -- a predicated op carries its destination
  across iterations, which MVE cannot rename;
* ``pressure``         -- the expanded kernel would exceed the
  allocatable register budget.
"""

from __future__ import annotations

from typing import Callable, Optional

from ...ir.cfg import Cfg
from ...ir.liveness import liveness
from ...ir.loops import find_loops
from ...isa import Reg
from ...machine import MachineConfig
from ..weights import WeightModel
from .deps import analyze_deps, match_loop
from .kernel import Mve, build_pipeline, plan_mve
from .mii import compute_mii_detailed
from .scheduler import modulo_schedule
from .stats import (
    REASON_NO_II,
    REASON_NO_OVERLAP,
    REASON_NOT_INNERMOST,
    REASON_SHAPE,
    REASON_STAGES,
    REASON_TOO_BIG,
    REASON_TOO_SMALL,
    LoopPipelineStats,
    ModuloStats,
)

#: Body-size window fed to the modulo scheduler.
MAX_BODY_OPS = 48
MIN_BODY_OPS = 2
#: Maximum pipeline depth (stages) and kernel unroll (MVE copies).
MAX_STAGES = 4
MAX_UNROLL = 4
#: Candidate IIs range from MII to this multiple of MII.
II_RANGE_FACTOR = 2


def _fresh_vreg_factory(cfg: Cfg) -> Callable[[str], Reg]:
    nums = {"i": 0, "f": 0}
    for block in cfg:
        for ins in block.instrs:
            regs = ins.srcs + ((ins.dest,) if ins.dest is not None else ())
            for reg in regs:
                if reg.virtual:
                    nums[reg.kind] = max(nums[reg.kind], reg.num + 1)

    def fresh(kind: str) -> Reg:
        num = nums[kind]
        nums[kind] = num + 1
        return Reg(kind, num, virtual=True)

    return fresh


def pipeline_loops(cfg: Cfg, config: MachineConfig,
                   model: Optional[WeightModel]) -> ModuloStats:
    """Software-pipeline every eligible loop of *cfg* in place."""
    stats = ModuloStats()
    loops = find_loops(cfg)
    order_pos = {label: i for i, label in enumerate(cfg.order)}
    headers = sorted(loops, key=order_pos.get)
    fresh = _fresh_vreg_factory(cfg)

    for header in headers:
        loop = loops[header]
        if header == cfg.entry or loop.body != {header}:
            stats.loops.append(LoopPipelineStats(
                label=header, pipelined=False,
                reason=REASON_NOT_INNERMOST))
            continue
        stat = _pipeline_one(cfg, header, config, model, fresh, stats)
        stats.loops.append(stat)
    if stats.pipelined:
        cfg.verify()
    return stats


def _pipeline_one(cfg: Cfg, header: str, config: MachineConfig,
                  model: Optional[WeightModel],
                  fresh: Callable[[str], Reg],
                  stats: ModuloStats) -> LoopPipelineStats:
    bail = LoopPipelineStats(label=header, pipelined=False)

    live_in, _live_out = liveness(cfg)
    exit_label = cfg.blocks[header].fallthrough
    live_into_exit = live_in.get(exit_label, set()) if exit_label else set()
    shape = match_loop(cfg, header, live_into_exit)
    if isinstance(shape, str):
        bail.reason = REASON_SHAPE
        return bail

    n_ops = len(shape.ops)
    bail.n_ops = n_ops
    if n_ops < MIN_BODY_OPS:
        bail.reason = REASON_TOO_SMALL
        return bail
    if n_ops > MAX_BODY_OPS:
        bail.reason = REASON_TOO_BIG
        return bail

    deps = analyze_deps(shape.ops, config, model)
    res, rec, mii, witness = compute_mii_detailed(deps, config)
    bail.res_mii, bail.rec_mii, bail.mii = res, rec, mii
    recurrence = witness.to_json() if witness is not None else None
    bail.recurrence = recurrence
    bail.mem_dropped = deps.mem_dropped
    bail.mem_exact = deps.mem_exact
    bail.mem_conservative = deps.mem_conservative

    sched = None
    for ii in range(mii, II_RANGE_FACTOR * mii + 1):
        sched = modulo_schedule(deps, config, ii,
                                lat_cap=(MAX_STAGES - 1) * ii)
        if sched is not None:
            break
    if sched is None:
        bail.reason = REASON_NO_II
        return bail
    bail.ii = sched.ii
    bail.stages = sched.stage_count
    if sched.stage_count < 2:
        bail.reason = REASON_NO_OVERLAP
        return bail
    if sched.stage_count > MAX_STAGES:
        bail.reason = REASON_STAGES
        return bail

    body_refs: set[Reg] = set()
    for ins in shape.ops:
        body_refs.update(ins.uses())
        body_refs.update(ins.defs())
    live_through = frozenset(r for r in live_into_exit
                             if r not in body_refs and not r.is_zero)
    mve = plan_mve(deps, sched, MAX_UNROLL, fresh, live_through)
    if not isinstance(mve, Mve):
        bail.reason = mve
        return bail

    info = build_pipeline(cfg, shape, deps, sched, mve,
                          live_into_exit, fresh)
    stats.kernels.append(info)
    return LoopPipelineStats(
        label=header, pipelined=True, n_ops=n_ops,
        res_mii=res, rec_mii=rec, mii=mii, ii=sched.ii,
        stages=sched.stage_count, unroll=mve.ku,
        recurrence=recurrence,
        mem_dropped=deps.mem_dropped, mem_exact=deps.mem_exact,
        mem_conservative=deps.mem_conservative)
