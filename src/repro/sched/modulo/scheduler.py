"""Iterative modulo scheduling with a modulo reservation table.

The classic Rau formulation: operations are placed one at a time in
height-priority order; an operation whose dependence window has no free
reservation slot is *force-placed*, evicting whatever conflicts (both
resource conflicts in its row of the modulo reservation table and
scheduled neighbours whose dependence constraints the new placement
violates).  Evicted operations go back on the worklist.  A per-II
operation budget bounds the churn; the driver walks candidate IIs from
MII upward and gives up past ``2 * MII`` (falling back to the plain
list schedule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...machine import MachineConfig
from .deps import LoopDeps

#: Placement attempts per candidate II, as a multiple of the body size.
BUDGET_FACTOR = 8


@dataclass
class ModuloSchedule:
    """A feasible modulo schedule: issue time per op at interval ii."""

    ii: int
    times: list[int]

    @property
    def stage_count(self) -> int:
        return max(t // self.ii for t in self.times) + 1 if self.times else 1

    def stage(self, op: int) -> int:
        return self.times[op] // self.ii

    def slot(self, op: int) -> int:
        return self.times[op] % self.ii


def _heights(deps: LoopDeps, ii: int, lat_cap: int) -> list[float]:
    """Longest-path height of each op under weights lat - dist*ii.

    Converges because the caller only tries IIs at or above RecMII
    (no positive cycles); bounded iteration guards against the
    pathological case anyway.
    """
    n = len(deps.ops)
    height = [0.0] * n
    for _ in range(n + 1):
        changed = False
        for e in deps.edges:
            w = min(e.latency, lat_cap) - e.distance * ii
            if height[e.dst] + w > height[e.src]:
                height[e.src] = height[e.dst] + w
                changed = True
        if not changed:
            break
    return height


def modulo_schedule(deps: LoopDeps, config: MachineConfig, ii: int,
                    lat_cap: int,
                    budget: Optional[int] = None) -> Optional[ModuloSchedule]:
    """Try to find a modulo schedule at initiation interval *ii*.

    Returns ``None`` when the placement budget runs out.
    """
    n = len(deps.ops)
    if n == 0:
        return None
    if budget is None:
        budget = BUDGET_FACTOR * n

    def lat(e) -> int:
        return min(e.latency, lat_cap)

    in_edges: list[list] = [[] for _ in range(n)]
    out_edges: list[list] = [[] for _ in range(n)]
    for e in deps.edges:
        out_edges[e.src].append(e)
        in_edges[e.dst].append(e)

    height = _heights(deps, ii, lat_cap)
    # Modulo reservation table: per row (time mod ii), the ops issued
    # there and how many of them touch memory.
    issue_width = max(1, config.issue_width)
    mem_ports = max(1, config.mem_ports)
    mrt: list[list[int]] = [[] for _ in range(ii)]
    times: list[Optional[int]] = [None] * n
    prev_time = [-1] * n

    def row_full(row: int, op: int) -> bool:
        slot_ops = mrt[row]
        if len(slot_ops) >= issue_width:
            return True
        if deps.ops[op].is_mem:
            n_mem = sum(1 for o in slot_ops if deps.ops[o].is_mem)
            if n_mem >= mem_ports:
                return True
        return False

    def unplace(op: int) -> None:
        mrt[times[op] % ii].remove(op)
        times[op] = None

    def place(op: int, t: int) -> None:
        times[op] = t
        mrt[t % ii].append(op)

    worklist = set(range(n))
    while worklist:
        if budget <= 0:
            return None
        op = max(worklist, key=lambda o: (height[o], -o))
        worklist.discard(op)
        budget -= 1

        estart = 0
        for e in in_edges[op]:
            src_t = times[e.src]
            if src_t is not None:
                estart = max(estart, src_t + lat(e) - e.distance * ii)
        # Monotonic progress: never re-place an op at or before its
        # previous slot.
        if prev_time[op] >= 0:
            estart = max(estart, prev_time[op] + 1)

        chosen = None
        for t in range(estart, estart + ii):
            if not row_full(t % ii, op):
                chosen = t
                break
        if chosen is None:
            chosen = max(estart, prev_time[op] + 1)
            # Evict the resource conflicts in this row.
            for other in list(mrt[chosen % ii]):
                unplace(other)
                worklist.add(other)
        place(op, chosen)
        prev_time[op] = chosen

        # Evict scheduled neighbours whose constraints the placement
        # violates (in either direction).
        for e in out_edges[op]:
            dst_t = times[e.dst]
            if (e.dst != op and dst_t is not None
                    and dst_t < chosen + lat(e) - e.distance * ii):
                unplace(e.dst)
                worklist.add(e.dst)
        for e in in_edges[op]:
            src_t = times[e.src]
            if (e.src != op and src_t is not None
                    and chosen < src_t + lat(e) - e.distance * ii):
                unplace(e.src)
                worklist.add(e.src)

    final = [t for t in times]
    assert all(t is not None for t in final)
    # Normalize so the earliest issue time is in stage 0.
    base = min(final)
    base -= base % ii       # keep slot assignments (mod ii) intact
    return ModuloSchedule(ii=ii, times=[t - base for t in final])
