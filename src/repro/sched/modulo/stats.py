"""Per-loop and per-compilation statistics for modulo scheduling.

The driver records one :class:`LoopPipelineStats` per candidate loop —
pipelined or bailed, with the II bounds — and :class:`ModuloStats`
aggregates them for the run manifest and the report tables.
:class:`KernelInfo` carries the metadata the extended verifier needs to
re-check cross-iteration dependences inside an emitted kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Bail-out reason codes (stable strings; surfaced in manifests).
REASON_NOT_INNERMOST = "not-single-block"
REASON_SHAPE = "shape"
REASON_TOO_BIG = "too-big"
REASON_TOO_SMALL = "too-small"
REASON_NO_II = "no-ii"
REASON_NO_OVERLAP = "no-overlap"
REASON_STAGES = "stages"
REASON_UNROLL = "unroll"
REASON_PRESSURE = "pressure"
REASON_CMOV_CARRIED = "cmov-carried"


@dataclass
class LoopPipelineStats:
    """What happened to one candidate loop."""

    label: str
    pipelined: bool
    reason: str = ""                  # bail-out code when not pipelined
    n_ops: int = 0                    # body size fed to the scheduler
    res_mii: int = 0
    rec_mii: int = 0
    mii: int = 0
    ii: int = 0                       # achieved initiation interval
    stages: int = 0                   # SC: pipeline depth in stages
    unroll: int = 0                   # KU: kernel unroll from MVE
    #: Certifying critical recurrence for RecMII (serialized
    #: :class:`~repro.sched.modulo.mii.RecurrenceWitness`), present
    #: whenever a dependence cycle binds the II from below — this is
    #: *why* RecMII is what it is.
    recurrence: Optional[dict] = None
    #: Carried-memory arc accounting from the symbolic dependence
    #: analyzer: reference pairs proven independent (no arc emitted),
    #: pairs given an exact carried distance, pairs kept at the
    #: conservative blanket distance 1.
    mem_dropped: int = 0
    mem_exact: int = 0
    mem_conservative: int = 0

    @property
    def ii_over_mii(self) -> float:
        if not self.pipelined or not self.mii:
            return 0.0
        return self.ii / self.mii

    def to_json(self) -> dict:
        return {
            "label": self.label,
            "pipelined": self.pipelined,
            "reason": self.reason,
            "n_ops": self.n_ops,
            "res_mii": self.res_mii,
            "rec_mii": self.rec_mii,
            "mii": self.mii,
            "ii": self.ii,
            "stages": self.stages,
            "unroll": self.unroll,
            "recurrence": self.recurrence,
            "mem_dropped": self.mem_dropped,
            "mem_exact": self.mem_exact,
            "mem_conservative": self.mem_conservative,
        }


@dataclass
class KernelInfo:
    """Verification metadata for one emitted kernel block.

    All references are by instruction ``uid`` (instruction objects are
    shared between the CFG and the linearized program, so uids assigned
    at emission time remain valid until register allocation rewrites
    the instructions).
    """

    loop_label: str
    kernel_label: str
    ii: int
    stages: int
    unroll: int
    #: uid -> (iteration offset, original body position) for memory
    #: instructions in the kernel; offsets are relative within one
    #: kernel execution (copy r of stage s has offset r - s).
    mem_tags: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: (consumer uid, register repr) -> producer uid for register
    #: operands whose producer lives in the loop body; the verifier
    #: checks the producer is the last writer in a doubled kernel
    #: stream.
    expected_writer: dict[tuple[int, str], int] = field(
        default_factory=dict)
    #: The loop body fed to the modulo scheduler, in original program
    #: order.  The verifier re-runs the symbolic dependence analyzer
    #: over these ops — independently of the scheduler's arcs — to
    #: decide which instance pairs may conflict at which distances.
    body_ops: list = field(default_factory=list)


@dataclass
class ModuloStats:
    """All candidate loops of one compilation."""

    loops: list[LoopPipelineStats] = field(default_factory=list)
    #: Verification metadata; not serialized into manifests.
    kernels: list[KernelInfo] = field(default_factory=list)

    @property
    def attempted(self) -> int:
        return len(self.loops)

    @property
    def pipelined(self) -> int:
        return sum(1 for s in self.loops if s.pipelined)

    @property
    def bailed(self) -> int:
        return self.attempted - self.pipelined

    @property
    def mean_ii_over_mii(self) -> Optional[float]:
        ratios = [s.ii_over_mii for s in self.loops if s.pipelined]
        if not ratios:
            return None
        return sum(ratios) / len(ratios)

    @property
    def max_ii_over_mii(self) -> Optional[float]:
        ratios = [s.ii_over_mii for s in self.loops if s.pipelined]
        if not ratios:
            return None
        return max(ratios)

    def reason_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for s in self.loops:
            if not s.pipelined:
                counts[s.reason] = counts.get(s.reason, 0) + 1
        return counts

    def summary(self) -> dict:
        """Compact aggregate for the run manifest."""
        out = {
            "attempted": self.attempted,
            "pipelined": self.pipelined,
            "bailed": self.bailed,
            "reasons": self.reason_counts(),
        }
        if self.mean_ii_over_mii is not None:
            out["mean_ii_over_mii"] = round(self.mean_ii_over_mii, 4)
            out["max_ii_over_mii"] = round(self.max_ii_over_mii, 4)
        return out

    def to_json(self) -> dict:
        data = self.summary()
        data["loops"] = [s.to_json() for s in self.loops]
        return data
