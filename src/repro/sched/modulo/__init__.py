"""Software pipelining by iterative modulo scheduling (the `swp` axis).

The paper's thesis is that balanced scheduling's advantage grows with
the instruction-level parallelism other compiler phases expose.  This
package adds the canonical ILP-increasing loop transformation the paper
did not evaluate: software pipelining of innermost single-block loops,
in the iterative-modulo-scheduling formulation (Rau, MICRO 1994; see
also Roorda's SMT formulation in PAPERS.md for the optimal variant this
heuristic approximates).

Submodules:

* :mod:`.deps`      -- candidate-loop shape matching and the cyclic
  dependence graph (intra-iteration DAG edges + loop-carried register
  and memory dependences, each with a latency and an iteration
  distance);
* :mod:`.mii`       -- lower bounds on the initiation interval: ResMII
  from :class:`~repro.machine.MachineConfig` resource counts, RecMII
  from dependence cycles;
* :mod:`.scheduler` -- the iterative scheduler with a modulo
  reservation table and budgeted backtracking (eviction);
* :mod:`.kernel`    -- kernel construction with modulo variable
  expansion, prologue/epilogue/remainder emission, and the dispatch
  code that falls back to the original loop for short trip counts;
* :mod:`.pipeline`  -- the CFG-level driver, bail-out policy and
  per-loop statistics.

The result of the transformation is a plain scheduled CFG: the existing
register allocator, linearizer, verifier and simulator consume it
unchanged.
"""

from .pipeline import (
    MAX_BODY_OPS,
    MAX_STAGES,
    MAX_UNROLL,
    pipeline_loops,
)
from .stats import KernelInfo, LoopPipelineStats, ModuloStats

__all__ = [
    "pipeline_loops",
    "ModuloStats", "LoopPipelineStats", "KernelInfo",
    "MAX_BODY_OPS", "MAX_STAGES", "MAX_UNROLL",
]
