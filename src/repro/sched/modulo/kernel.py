"""Kernel construction: modulo variable expansion and loop rebuild.

Given a feasible modulo schedule, this module rewrites the loop into::

    P:    compute trip count T; bail to the original loop when
          T < SC + 2*KU - 2; compute remainder R = (T-(SC-1)) mod KU
          and kernel count B = (T - R - (SC-1)) / KU
    P2:   skip the remainder loop when R == 0        (only when KU > 1)
    REM:  R scalar iterations of the original body   (only when KU > 1)
    PRO:  register-version initialization + SC-1 ramp-up phases
    KER:  KU renamed kernel copies + counter decrement, executed B times
    EPI:  SC-1 drain phases + live-out fixups
    H:    the untouched original loop (target of the short-trip bail)

Running the remainder *first* makes the pipelined portion execute
``T' = T - R ≡ SC-1 (mod KU)`` iterations, so the register version
holding each live-out value is a compile-time constant
(``(SC-2) mod KU``) and the epilogue needs no dynamic version selection.

Every emitted phase (prologue ramp, kernel copies, epilogue drain) lays
instructions out in virtual-time order — instance ``(iteration j,
op x)`` at time ``j*II + t[x]`` — so each dependence constraint
``t[b] + d*II > t[a]`` holds as *stream order* in the final program.
On the in-order machine, which executes the instruction stream
architecturally in program order, that is exactly the correctness
condition; modulo variable expansion then keeps simultaneously-live
values of one virtual register in ``K`` rotating copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from ...ir.cfg import BasicBlock, Cfg
from ...isa import Instruction, Reg
from .deps import LoopDeps, LoopShape
from .scheduler import ModuloSchedule
from .stats import (
    REASON_CMOV_CARRIED,
    REASON_PRESSURE,
    REASON_UNROLL,
    KernelInfo,
)

#: Per-bank register budget for the kernel; past this the expansion
#: would fight the 28/29 allocatable registers and spill inside the
#: kernel, defeating the point.
_BANK_BUDGET = {"i": 26, "f": 27}


@dataclass
class Mve:
    """Modulo-variable-expansion plan for one loop."""

    ku: int                                   # kernel unroll factor
    #: Version count per register; only expanded registers (> 1) appear.
    k_of: dict[Reg, int]
    #: (register, version index) -> fresh virtual register.
    versions: dict[tuple[Reg, int], Reg]


def plan_mve(deps: LoopDeps, sched: ModuloSchedule, max_unroll: int,
             fresh: Callable[[str], Reg],
             live_through: frozenset[Reg] = frozenset()) -> Union[Mve, str]:
    """Compute version counts; returns a bail-reason string on failure.

    A value defined at time ``t_d`` (first definition of its register)
    and read at ``t_u`` with iteration distance ``d`` is overwritten
    ``K`` iterations later; safety requires ``t_u + d*II < t_d + K*II``.
    The single equality exception is a register read and rewritten by
    the same instruction with distance 1 (an accumulator like
    ``FADD f, f, x``), where the read architecturally precedes the
    overwrite inside one instruction.

    *live_through* holds registers live across the loop (needed after
    the exit, never referenced by the body): they pin a register each
    for the kernel's whole extent, so the pressure estimate must count
    them — the old distinct-register count missed them and could wave
    through kernels whose expansion left the allocator short.
    """
    times, ii = sched.times, sched.ii
    first_def: dict[Reg, tuple[int, int]] = {}
    for reg, sites in deps.defs_of.items():
        first_def[reg] = min((times[d], d) for d in sites)

    need: dict[Reg, int] = {}
    for u, dists in enumerate(deps.use_dist):
        for reg, d in dists.items():
            fd_t, fd_op = first_def[reg]
            delta = times[u] + d * ii - fd_t
            if delta == ii and d == 1 and u == fd_op:
                k = 1
            else:
                k = delta // ii + 1
            need[reg] = max(need.get(reg, 1), k, 1)

    ku = max(need.values(), default=1)
    if ku > max_unroll:
        return REASON_UNROLL
    # Uniform version counts: every expanded register gets KU copies
    # (larger counts are always safe and KU | KU keeps the kernel
    # renaming static); K == 1 registers keep their identity.
    k_of = {reg: ku for reg, k in need.items() if k > 1}

    # A CMOV-style op reads and writes the same register operand; if
    # that operand carries across iterations *and* is expanded, the
    # read and the write would need different version registers.
    for u, ins in enumerate(deps.ops):
        if (ins.info.reads_dest and ins.dest is not None
                and deps.use_dist[u].get(ins.dest) == 1
                and ins.dest in k_of):
            return REASON_CMOV_CARRIED

    # Register-pressure estimate for the kernel: distinct registers
    # after renaming, plus the kernel counter, plus every live-through
    # value the kernel must carry untouched.
    counts = {"i": 1, "f": 0}
    seen: set[Reg] = set()
    for ins in deps.ops:
        for reg in ins.uses() + ins.defs():
            if reg in seen:
                continue
            seen.add(reg)
            counts[reg.kind] += ku if reg in k_of else 1
    for reg in live_through:
        if reg not in seen and not reg.is_zero:
            counts[reg.kind] += 1
    if any(counts[kind] > _BANK_BUDGET[kind] for kind in counts):
        return REASON_PRESSURE

    versions = {(reg, v): fresh(reg.kind)
                for reg in k_of for v in range(ku)}
    return Mve(ku=ku, k_of=k_of, versions=versions)


def _mov(dest: Reg, src: Reg) -> Instruction:
    return Instruction("FMOV" if dest.kind == "f" else "MOV",
                       dest=dest, srcs=(src,))


def build_pipeline(cfg: Cfg, shape: LoopShape, deps: LoopDeps,
                   sched: ModuloSchedule, mve: Mve,
                   live_into_exit: set[Reg],
                   fresh: Callable[[str], Reg]) -> KernelInfo:
    """Rewrite *cfg* in place; returns the kernel's verification info."""
    ops = deps.ops
    ii, times = sched.ii, sched.times
    sc = sched.stage_count
    ku = mve.ku
    stage = [t // ii for t in times]
    slot_order = sorted(range(len(ops)),
                        key=lambda i: (times[i] % ii, times[i], i))

    def version(reg: Reg, idx: int) -> Reg:
        k = mve.k_of.get(reg)
        if not k:
            return reg
        return mve.versions[(reg, idx % k)]

    def instantiate(i: int, jm: int) -> Instruction:
        """Op *i* for a relative iteration congruent to *jm* mod KU."""
        ins = ops[i]
        dists = deps.use_dist[i]
        srcs = tuple(version(r, jm - dists.get(r, 0)) for r in ins.srcs)
        dest = ins.dest
        if dest is not None and dest in mve.k_of:
            dest = version(dest, jm)
        return ins.copy(dest=dest, srcs=srcs)

    label_p = cfg.new_label("swpP")
    label_pro = cfg.new_label("swpPRO")
    label_ker = cfg.new_label("swpKER")
    label_epi = cfg.new_label("swpEPI")

    # ------------------------------------------------- dispatch block P
    # Trip count T of the original loop: with the probe value
    # i' + offset tested by CMPLT/CMPLE against hi, the body executes
    # T = ceil((hi - offset - i0 [+1 for CMPLE]) / step) times (the
    # loop guard upstream ensures T >= 1; smaller values fail the Tmin
    # test and run the original loop unchanged).
    p_instrs: list[Instruction] = []
    v_t = fresh("i")
    if shape.bound_reg is not None:
        hi_reg = shape.bound_reg
    else:
        hi_reg = fresh("i")
        p_instrs.append(Instruction("LDI", dest=hi_reg, imm=shape.bound_imm))
    v_d = fresh("i")
    p_instrs.append(Instruction("SUB", dest=v_d,
                                srcs=(hi_reg, shape.induction)))
    extra = (1 if shape.inclusive else 0) + (shape.step - 1) - shape.offset
    if extra:
        p_instrs.append(Instruction("ADD", dest=v_d, srcs=(v_d,), imm=extra))
    if shape.step == 1:
        v_t = v_d
    else:
        v_step = fresh("i")
        p_instrs.append(Instruction("LDI", dest=v_step, imm=shape.step))
        p_instrs.append(Instruction("DIVQ", dest=v_t, srcs=(v_d, v_step)))

    v_kc = fresh("i")                 # kernel execution count B
    v_rem: Optional[Reg] = None       # remainder count R (KU > 1 only)
    if ku == 1:
        p_instrs.append(Instruction("SUB", dest=v_kc, srcs=(v_t,),
                                    imm=sc - 1))
    else:
        v_a = fresh("i")
        v_ku = fresh("i")
        v_rem = fresh("i")
        v_b = fresh("i")
        p_instrs.append(Instruction("SUB", dest=v_a, srcs=(v_t,),
                                    imm=sc - 1))
        p_instrs.append(Instruction("LDI", dest=v_ku, imm=ku))
        p_instrs.append(Instruction("REMQ", dest=v_rem, srcs=(v_a, v_ku)))
        p_instrs.append(Instruction("SUB", dest=v_b, srcs=(v_a, v_rem)))
        p_instrs.append(Instruction("DIVQ", dest=v_kc, srcs=(v_b, v_ku)))
    t_min = sc + 2 * ku - 2
    v_cond = fresh("i")
    p_instrs.append(Instruction("CMPLT", dest=v_cond, srcs=(v_t,),
                                imm=t_min))
    p_instrs.append(Instruction("BNE", srcs=(v_cond,), label=shape.label))

    new_blocks: list[BasicBlock] = []
    if ku == 1:
        new_blocks.append(BasicBlock(label_p, p_instrs,
                                     fallthrough=label_pro))
    else:
        label_p2 = cfg.new_label("swpP2")
        label_rem = cfg.new_label("swpREM")
        new_blocks.append(BasicBlock(label_p, p_instrs,
                                     fallthrough=label_p2))
        new_blocks.append(BasicBlock(
            label_p2,
            [Instruction("BEQ", srcs=(v_rem,), label=label_pro)],
            fallthrough=label_rem))
        rem_instrs = [ins.copy() for ins in ops]
        rem_instrs.append(Instruction("SUB", dest=v_rem, srcs=(v_rem,),
                                      imm=1))
        rem_instrs.append(Instruction("BNE", srcs=(v_rem,),
                                      label=label_rem))
        new_blocks.append(BasicBlock(label_rem, rem_instrs,
                                     fallthrough=label_pro))

    # ------------------------------------------------- prologue block
    pro_instrs: list[Instruction] = []
    carried = set()
    for dists in deps.use_dist:
        carried.update(r for r, d in dists.items() if d == 1)
    for reg in sorted(mve.k_of, key=str):
        if reg in carried:
            # Relative iteration 0 reads version -1 mod KU = KU-1.
            pro_instrs.append(_mov(mve.versions[(reg, ku - 1)], reg))
    for phase in range(sc - 1):
        for i in slot_order:
            if stage[i] <= phase:
                pro_instrs.append(instantiate(i, (phase - stage[i]) % ku))
    new_blocks.append(BasicBlock(label_pro, pro_instrs,
                                 fallthrough=label_ker))

    # --------------------------------------------------- kernel block
    info = KernelInfo(loop_label=shape.label, kernel_label=label_ker,
                      ii=ii, stages=sc, unroll=ku,
                      body_ops=list(ops))
    ker_instrs: list[Instruction] = []
    inst_uid: dict[tuple[int, int], int] = {}
    for r in range(ku):
        for i in slot_order:
            ins = instantiate(i, (sc - 1 + r - stage[i]) % ku)
            inst_uid[(i, r)] = ins.uid
            if ins.is_mem:
                info.mem_tags[ins.uid] = (r - stage[i], i)
            ker_instrs.append(ins)
    for r in range(ku):
        for i in slot_order:
            jm = (sc - 1 + r - stage[i]) % ku
            for reg, p in deps.use_producer[i].items():
                d = deps.use_dist[i][reg]
                r_p = (r - stage[i] - d + stage[p]) % ku
                renamed = version(reg, jm - d)
                info.expected_writer[(inst_uid[(i, r)], str(renamed))] = \
                    inst_uid[(p, r_p)]
    ker_instrs.append(Instruction("SUB", dest=v_kc, srcs=(v_kc,), imm=1))
    ker_instrs.append(Instruction("BNE", srcs=(v_kc,), label=label_ker))
    new_blocks.append(BasicBlock(label_ker, ker_instrs,
                                 fallthrough=label_epi))

    # ------------------------------------------------- epilogue block
    epi_instrs: list[Instruction] = []
    for q in range(1, sc):
        for i in slot_order:
            if stage[i] >= q:
                epi_instrs.append(
                    instantiate(i, (sc - 2 + q - stage[i]) % ku))
    # The pipelined portion runs T' ≡ SC-1 (mod KU) iterations, so the
    # final value of every expanded register sits in a fixed version.
    for reg in sorted(mve.k_of, key=str):
        if reg in live_into_exit:
            epi_instrs.append(_mov(reg, mve.versions[(reg,
                                                      (sc - 2) % ku)]))
    new_blocks.append(BasicBlock(label_epi, epi_instrs,
                                 fallthrough=shape.exit_label))

    # --------------------------------------- splice into the CFG
    # Every outside edge into the loop now enters the dispatch block;
    # the original loop stays in place as the short-trip-count target.
    for block in cfg:
        if block.label == shape.label:
            continue
        term = block.terminator
        if term is not None and term.is_branch and term.label == shape.label:
            term.label = label_p
        if block.fallthrough == shape.label:
            block.fallthrough = label_p
    index = cfg.order.index(shape.label)
    for offset, block in enumerate(new_blocks):
        cfg.blocks[block.label] = block
        cfg.order.insert(index + offset, block.label)
    return info
