"""Candidate-loop recognition and cyclic dependence analysis.

A pipelining candidate is a single-block self-loop in the shape the
lowering pass produces for counted loops (rotated, bottom-tested)::

    .body:  ...loop body...
            ADD    i, i, #step        ; induction update, step > 0
            CMPLT  t, i, hi           ; or CMPLE; hi loop-invariant
            BNE    t, .body           ; fallthrough = loop exit

:func:`match_loop` verifies the shape and extracts the induction
structure (needed to rewrite loop control around the pipelined kernel).
:func:`analyze_deps` builds the *cyclic* dependence graph over the body
operations: the intra-iteration DAG edges from :func:`~repro.ir.dag
.build_dag` plus loop-carried register and memory dependences, each
annotated with a latency and an iteration *distance*.

Register distances are conservative but simple: a register use whose
most recent in-body definition follows it in program order (or an
operand defined only later in the body) reads the value produced one
iteration earlier -- distance 1 from the last in-body definition.

Memory distances are *exact* where the symbolic dependence analyzer
(:mod:`repro.analysis.deps`) can prove them: provably-independent
reference pairs get no carried arc at all, pairs with a known conflict
window get an arc at the minimum carried distance (an arc at distance
``d`` subsumes every larger distance because the kernel emits
iterations in virtual-time order), and anything the analyzer cannot
model falls back to the old blanket distance-1 arc.  Every sharpened
kernel is re-validated end-to-end: :func:`repro.codegen.verify
.verify_pipelined_kernels` re-runs the same analyzer *independently*
over the recorded body and replays the doubled kernel stream against
its verdicts, so a bug here (or a deliberately weakened analyzer — see
``REPRO_WEAKEN_DEPS``) surfaces as a hard verification error, not a
silent miscompile.

Latencies come from the active weight model, so balanced weights give
loads their parallelism-derived target latency and the modulo schedule
separates loads from their uses across pipeline stages -- this is how
``swp`` composes with the paper's balanced scheduling.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Optional, Union

from ...analysis.deps import LoopBodyDeps, analyze_loop_body
from ...ir.cfg import BasicBlock, Cfg
from ...ir.dag import MEM, OUT, TRUE, build_dag
from ...ir.liveness import block_use_def
from ...isa import Instruction, Reg
from ...machine import MachineConfig
from ..weights import WeightModel

#: Opcodes accepted as the loop-exit comparison.
_COMPARE_OPS = ("CMPLT", "CMPLE")


@dataclass
class LoopShape:
    """Structure of one recognized single-block loop."""

    label: str
    exit_label: str
    induction: Reg
    step: int
    #: Loop bound: an invariant register or an immediate.
    bound_reg: Optional[Reg]
    bound_imm: Optional[int]
    #: The compare tests ``induction + offset`` (unrolled loops probe
    #: the last element of the next chunk: ``ADD t, i, #3; CMPLT ...``).
    offset: int
    inclusive: bool               # CMPLE (True) vs CMPLT (False)
    cond_reg: Reg
    #: Body operations fed to the modulo scheduler (terminator always
    #: excluded; the compare/probe too when the branch is their only
    #: consumer).
    ops: list[Instruction] = field(default_factory=list)


def match_loop(cfg: Cfg, label: str,
               live_into_exit: set[Reg]) -> Union[LoopShape, str]:
    """Match *label*'s block against the candidate shape.

    Returns a :class:`LoopShape` on success or a bail-reason string.
    """
    block: BasicBlock = cfg.blocks[label]
    term = block.terminator
    if term is None or term.op != "BNE" or term.label != label:
        return "terminator"
    exit_label = block.fallthrough
    if not exit_label or exit_label == label:
        return "exit"
    body = block.body
    if not body:
        return "empty"

    cond_reg = term.srcs[0]
    defs_of: dict[Reg, list[int]] = {}
    for pos, ins in enumerate(body):
        for reg in ins.defs():
            defs_of.setdefault(reg, []).append(pos)

    cond_defs = defs_of.get(cond_reg, [])
    if len(cond_defs) != 1:
        return "compare"
    compare_pos = cond_defs[0]
    compare = body[compare_pos]
    if compare.op not in _COMPARE_OPS or not compare.srcs:
        return "compare"
    operand = compare.srcs[0]
    if operand.kind != "i":
        return "induction"
    bound_reg: Optional[Reg] = None
    bound_imm: Optional[int] = None
    if len(compare.srcs) == 2:
        bound_reg = compare.srcs[1]
        if defs_of.get(bound_reg):
            return "bound-varies"
    elif compare.imm is not None and isinstance(compare.imm, int):
        bound_imm = compare.imm
    else:
        return "compare"

    # The compared value is the updated induction register itself, or a
    # probe ``ADD t, i, #offset`` derived from it (unrolled loops test
    # the last iteration of the next chunk).
    reaching = [d for d in defs_of.get(operand, []) if d < compare_pos]
    if not reaching:
        return "compare"
    probe_pos: Optional[int] = None
    offset = 0
    if body[reaching[-1]].srcs == (operand,):
        induction = operand
    else:
        probe_pos = reaching[-1]
        probe = body[probe_pos]
        if (probe.op != "ADD" or len(probe.srcs) != 1
                or not isinstance(probe.imm, int)):
            return "compare"
        induction = probe.srcs[0]
        offset = probe.imm
        if induction.kind != "i":
            return "induction"

    ind_defs = defs_of.get(induction, [])
    if len(ind_defs) != 1:
        return "induction"
    update_pos = ind_defs[0]
    update = body[update_pos]
    if (update.op != "ADD" or update.srcs != (induction,)
            or not isinstance(update.imm, int) or update.imm <= 0):
        return "induction"
    if update_pos > (probe_pos if probe_pos is not None else compare_pos):
        # The compare must test the *updated* induction value, as the
        # loop rotation emits it; anything else is not a counted loop
        # we can reason about.
        return "shape"

    # Drop the loop-control computation from the pipelined body when
    # the branch is its only consumer: the kernel replaces it with a
    # pre-computed counter.  A value is droppable when nothing else
    # reads it (the probe's value specifically: no later reader before
    # a redefinition, no upward-exposed read, not live at the exit).
    drop: list[int] = []
    cond_used_elsewhere = any(
        cond_reg in ins.uses() for pos, ins in enumerate(body)
        if pos != compare_pos)
    if not cond_used_elsewhere and cond_reg not in live_into_exit:
        drop.append(compare_pos)
        if probe_pos is not None and operand not in live_into_exit:
            later_defs = [d for d in defs_of[operand] if d > probe_pos]
            horizon = later_defs[0] if later_defs else len(body)
            read_later = any(
                operand in body[pos].uses()
                for pos in range(probe_pos + 1, horizon)
                if pos != compare_pos)
            upward_exposed = operand in block_use_def(body)[0]
            if (not read_later and not upward_exposed
                    and probe_pos == defs_of[operand][-1]):
                drop.append(probe_pos)
    ops = [ins for pos, ins in enumerate(body) if pos not in drop]

    return LoopShape(label=label, exit_label=exit_label,
                     induction=induction, step=update.imm,
                     bound_reg=bound_reg, bound_imm=bound_imm,
                     offset=offset, inclusive=(compare.op == "CMPLE"),
                     cond_reg=cond_reg, ops=ops)


@dataclass(frozen=True)
class DepEdge:
    """One dependence arc in the cyclic graph.

    The scheduling constraint is ``t[dst] >= t[src] + latency -
    distance * II``; stream correctness additionally needs
    ``t[dst] + distance * II > t[src]``, which holds automatically
    because ``latency >= 1``.
    """

    src: int
    dst: int
    kind: str
    latency: int
    distance: int


@dataclass
class LoopDeps:
    """Cyclic dependence graph over one loop body."""

    ops: list[Instruction]
    edges: list[DepEdge]
    #: Per-op target latency from the weight model (performance only).
    latency: list[int]
    #: Per-op map: source register -> producer iteration distance
    #: (0 = same iteration, 1 = previous); registers without an in-body
    #: producer (loop invariants) are absent.
    use_dist: list[dict[Reg, int]]
    #: Per-op map: source register -> producer op index.
    use_producer: list[dict[Reg, int]]
    #: All in-body definition sites per register, in program order.
    defs_of: dict[Reg, list[int]]
    #: Symbolic memory analysis of the body (the verifier re-derives
    #: its own copy from the recorded kernel body; this one is for the
    #: scheduler and for reporting).
    body_deps: Optional[LoopBodyDeps] = None
    #: Carried-memory arc accounting: pairs proven independent (arc
    #: dropped), pairs with an exact distance, pairs kept conservative.
    mem_dropped: int = 0
    mem_exact: int = 0
    mem_conservative: int = 0


def analyze_deps(ops: list[Instruction], config: MachineConfig,
                 model: Optional[WeightModel]) -> LoopDeps:
    """Build the cyclic dependence graph for one loop body."""
    dag = build_dag(ops)
    if model is not None:
        weights = model.weights(dag)
    else:
        weights = [float(config.op_latency.get(ins.op, 1)) for ins in ops]
    latency = [max(1, int(math.ceil(w))) for w in weights]

    edges: list[DepEdge] = []
    for src in range(len(ops)):
        for dst, kind in dag.succs[src].items():
            lat = latency[src] if kind in (TRUE, MEM) else 1
            edges.append(DepEdge(src, dst, kind, lat, 0))

    defs_of: dict[Reg, list[int]] = {}
    for pos, ins in enumerate(ops):
        for reg in ins.defs():
            defs_of.setdefault(reg, []).append(pos)

    # Loop-carried register flow: a use at position p reads the most
    # recent definition before p (distance 0, already a DAG edge) or,
    # failing that, the *last* definition in the body from the previous
    # iteration (distance 1).
    use_dist: list[dict[Reg, int]] = []
    use_producer: list[dict[Reg, int]] = []
    for pos, ins in enumerate(ops):
        dists: dict[Reg, int] = {}
        producers: dict[Reg, int] = {}
        for reg in set(ins.uses()):
            sites = defs_of.get(reg)
            if not sites:
                continue                      # loop invariant
            before = [d for d in sites if d < pos]
            if before:
                dists[reg] = 0
                producers[reg] = before[-1]
            else:
                dists[reg] = 1
                producers[reg] = sites[-1]
                edges.append(DepEdge(sites[-1], pos, TRUE,
                                     latency[sites[-1]], 1))
        use_dist.append(dists)
        use_producer.append(producers)

    # Registers written at several sites (CMOV chains): successive
    # iterations' writes must not swap in the stream, so every ordered
    # pair of definition sites gets a distance-1 output arc (this
    # bounds the spread of a register's definition times below II).
    for sites in defs_of.values():
        if len(sites) > 1:
            for a in sites:
                for b in sites:
                    if a != b:
                        edges.append(DepEdge(a, b, OUT, 1, 1))

    # Loop-carried memory dependences.  The symbolic analyzer decides,
    # per ordered pair, the minimum iteration distance at which the two
    # references can still touch the same location: no carried conflict
    # -> no arc, exact window -> arc at the minimum carried distance
    # (which subsumes all larger distances: kernel emission preserves
    # virtual-time order), unknown -> the old blanket distance-1 arc.
    # Intra-iteration (distance 0) ordering stays build_dag's job.
    body_deps = analyze_loop_body(ops)
    weaken = weaken_distances()
    dropped = exact = conservative = 0
    mem_ops = [pos for pos, ins in enumerate(ops) if ins.is_mem]
    for a in mem_ops:
        for b in mem_ops:
            if a == b:
                continue
            if ops[a].is_load and ops[b].is_load:
                continue
            verdict = body_deps.verdict(a, b)
            distance = verdict.carried_distance()
            if distance is None:
                dropped += 1
                continue
            if verdict.kind == "exact":
                exact += 1
            else:
                conservative += 1
            if weaken:
                distance += 1        # deliberately unsound (see below)
            edges.append(DepEdge(a, b, MEM, 1, distance))

    return LoopDeps(ops=ops, edges=edges, latency=latency,
                    use_dist=use_dist, use_producer=use_producer,
                    defs_of=defs_of, body_deps=body_deps,
                    mem_dropped=dropped, mem_exact=exact,
                    mem_conservative=conservative)


def weaken_distances() -> bool:
    """True when ``REPRO_WEAKEN_DEPS`` asks for *deliberately wrong*
    carried-memory distances (every arc one iteration too loose).

    This is the CI must-fail knob: it proves the kernel verifier's
    independent replay actually polices the scheduler's arcs.  A
    weakened recurrence distance admits a tighter II than the real
    dependence allows, and the doubled-kernel replay must reject the
    resulting stream."""
    return os.environ.get("REPRO_WEAKEN_DEPS", "") not in ("", "0")
