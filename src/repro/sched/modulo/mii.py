"""Lower bounds on the initiation interval.

``MII = max(ResMII, RecMII)`` (Rau's formulation):

* **ResMII** -- resource-constrained bound from the machine's issue
  width and memory ports: with N operations per iteration and M memory
  operations, no schedule can initiate iterations faster than
  ``max(ceil(N / issue_width), ceil(M / mem_ports))``.
* **RecMII** -- recurrence-constrained bound: for every dependence
  cycle C, ``II >= sum(latency) / sum(distance)`` over C.  Computed by
  binary search on II with a Bellman-Ford-style positive-cycle test on
  edge weights ``latency - distance * II`` (a positive cycle means the
  candidate II is infeasible).
"""

from __future__ import annotations

import math

from ...machine import MachineConfig
from .deps import DepEdge, LoopDeps


def res_mii(deps: LoopDeps, config: MachineConfig) -> int:
    n = len(deps.ops)
    if n == 0:
        return 1
    n_mem = sum(1 for ins in deps.ops if ins.is_mem)
    bound = math.ceil(n / max(1, config.issue_width))
    if n_mem:
        bound = max(bound, math.ceil(n_mem / max(1, config.mem_ports)))
    return max(1, bound)


def _has_positive_cycle(n: int, edges: list[DepEdge], ii: int) -> bool:
    """Longest-path relaxation; True when some cycle has positive weight.

    Edge weight is ``latency - distance * ii``; a positive-weight cycle
    means the recurrence cannot be satisfied at this ii.
    """
    dist = [0] * n
    for _ in range(n):
        changed = False
        for e in edges:
            w = e.latency - e.distance * ii
            if dist[e.src] + w > dist[e.dst]:
                dist[e.dst] = dist[e.src] + w
                changed = True
        if not changed:
            return False
    # Still relaxing after n passes: a positive cycle exists.
    for e in edges:
        w = e.latency - e.distance * ii
        if dist[e.src] + w > dist[e.dst]:
            return True
    return False


def rec_mii(deps: LoopDeps) -> int:
    """Smallest II admitting no positive-weight dependence cycle."""
    n = len(deps.ops)
    if n == 0 or not any(e.distance for e in deps.edges):
        return 1
    # Any cycle contains at least one distance-1 edge, so II is bounded
    # above by the total latency of the graph.
    hi = max(1, sum(e.latency for e in deps.edges))
    lo = 1
    if not _has_positive_cycle(n, deps.edges, lo):
        return 1
    # Invariant: lo infeasible, hi feasible.
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if _has_positive_cycle(n, deps.edges, mid):
            lo = mid
        else:
            hi = mid
    return hi


def compute_mii(deps: LoopDeps, config: MachineConfig) -> tuple[int, int, int]:
    """Return ``(res_mii, rec_mii, mii)``."""
    res = res_mii(deps, config)
    rec = rec_mii(deps)
    return res, rec, max(res, rec)
