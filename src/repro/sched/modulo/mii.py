"""Lower bounds on the initiation interval.

``MII = max(ResMII, RecMII)`` (Rau's formulation):

* **ResMII** -- resource-constrained bound from the machine's issue
  width and memory ports: with N operations per iteration and M memory
  operations, no schedule can initiate iterations faster than
  ``max(ceil(N / issue_width), ceil(M / mem_ports))``.
* **RecMII** -- recurrence-constrained bound: for every dependence
  cycle C, ``II >= sum(latency) / sum(distance)`` over C.  Computed by
  binary search on II with a Bellman-Ford-style positive-cycle test on
  edge weights ``latency - distance * II`` (a positive cycle means the
  candidate II is infeasible).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ...machine import MachineConfig
from .deps import DepEdge, LoopDeps


def res_mii(deps: LoopDeps, config: MachineConfig) -> int:
    n = len(deps.ops)
    if n == 0:
        return 1
    n_mem = sum(1 for ins in deps.ops if ins.is_mem)
    bound = math.ceil(n / max(1, config.issue_width))
    if n_mem:
        bound = max(bound, math.ceil(n_mem / max(1, config.mem_ports)))
    return max(1, bound)


def _has_positive_cycle(n: int, edges: list[DepEdge], ii: int) -> bool:
    """Longest-path relaxation; True when some cycle has positive weight.

    Edge weight is ``latency - distance * ii``; a positive-weight cycle
    means the recurrence cannot be satisfied at this ii.
    """
    dist = [0] * n
    for _ in range(n):
        changed = False
        for e in edges:
            w = e.latency - e.distance * ii
            if dist[e.src] + w > dist[e.dst]:
                dist[e.dst] = dist[e.src] + w
                changed = True
        if not changed:
            return False
    # Still relaxing after n passes: a positive cycle exists.
    for e in edges:
        w = e.latency - e.distance * ii
        if dist[e.src] + w > dist[e.dst]:
            return True
    return False


def rec_mii(deps: LoopDeps) -> int:
    """Smallest II admitting no positive-weight dependence cycle."""
    n = len(deps.ops)
    if n == 0 or not any(e.distance for e in deps.edges):
        return 1
    # Any cycle contains at least one distance-1 edge, so II is bounded
    # above by the total latency of the graph.
    hi = max(1, sum(e.latency for e in deps.edges))
    lo = 1
    if not _has_positive_cycle(n, deps.edges, lo):
        return 1
    # Invariant: lo infeasible, hi feasible.
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if _has_positive_cycle(n, deps.edges, mid):
            lo = mid
        else:
            hi = mid
    return hi


@dataclass(frozen=True)
class RecurrenceWitness:
    """Certificate for RecMII: the critical recurrence cycle.

    The cycle's edges sum to ``latency`` total latency over ``distance``
    loop-carried iterations, so any II below ``ceil(latency/distance)``
    leaves the recurrence unsatisfiable.  Extracted at ``RecMII - 1``
    (where the cycle is still positive), which pins the bound exactly:
    ``ii_bound == rec_mii``.
    """

    ops: tuple            # op indices around the cycle, dependence order
    kinds: tuple          # edge kind per hop (ops[i] -> ops[i+1])
    latency: int          # sum of edge latencies around the cycle
    distance: int         # sum of edge distances around the cycle

    @property
    def ii_bound(self) -> int:
        return math.ceil(self.latency / self.distance)

    def describe(self, deps: LoopDeps) -> str:
        names = [f"{deps.ops[i].op}@{i}" for i in self.ops]
        chain = " -> ".join(names + [names[0]] if names else [])
        return (f"{chain} (latency {self.latency} / "
                f"distance {self.distance} => II >= {self.ii_bound})")

    def to_json(self) -> dict:
        return {
            "ops": list(self.ops),
            "kinds": list(self.kinds),
            "latency": self.latency,
            "distance": self.distance,
            "ii_bound": self.ii_bound,
        }


def recurrence_witness(deps: LoopDeps,
                       rec: Optional[int] = None
                       ) -> Optional[RecurrenceWitness]:
    """Extract the critical recurrence certifying ``rec_mii``.

    Runs the positive-cycle test at ``rec_mii - 1`` with predecessor
    tracking and walks the predecessor chain into the cycle.  Returns
    None when no recurrence binds (``rec_mii == 1``).
    """
    if rec is None:
        rec = rec_mii(deps)
    if rec <= 1:
        return None
    n = len(deps.ops)
    ii = rec - 1
    dist = [0] * n
    pred: list[Optional[DepEdge]] = [None] * n
    start: Optional[int] = None
    for _ in range(n):
        changed = False
        for e in deps.edges:
            w = e.latency - e.distance * ii
            if dist[e.src] + w > dist[e.dst]:
                dist[e.dst] = dist[e.src] + w
                pred[e.dst] = e
                changed = True
        if not changed:
            break
    for e in deps.edges:
        w = e.latency - e.distance * ii
        if dist[e.src] + w > dist[e.dst]:
            pred[e.dst] = e
            start = e.dst
            break
    if start is None:
        return None
    # Walk n predecessor hops to guarantee we are inside the cycle,
    # then collect it.
    node = start
    for _ in range(n):
        edge = pred[node]
        assert edge is not None
        node = edge.src
    cycle_edges: list[DepEdge] = []
    cursor = node
    while True:
        edge = pred[cursor]
        assert edge is not None
        cycle_edges.append(edge)
        cursor = edge.src
        if cursor == node:
            break
    cycle_edges.reverse()
    latency = sum(e.latency for e in cycle_edges)
    distance = sum(e.distance for e in cycle_edges)
    if distance <= 0 or latency - distance * ii <= 0:
        return None           # not a binding cycle; fail safe
    return RecurrenceWitness(
        ops=tuple(e.src for e in cycle_edges),
        kinds=tuple(e.kind for e in cycle_edges),
        latency=latency, distance=distance)


def compute_mii(deps: LoopDeps, config: MachineConfig) -> tuple[int, int, int]:
    """Return ``(res_mii, rec_mii, mii)``."""
    res = res_mii(deps, config)
    rec = rec_mii(deps)
    return res, rec, max(res, rec)


def compute_mii_detailed(
        deps: LoopDeps, config: MachineConfig
) -> tuple[int, int, int, Optional[RecurrenceWitness]]:
    """``(res_mii, rec_mii, mii, witness)`` — the witness names the
    critical recurrence whenever the recurrence bound binds."""
    res = res_mii(deps, config)
    rec = rec_mii(deps)
    return res, rec, max(res, rec), recurrence_witness(deps, rec)
