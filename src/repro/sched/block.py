"""Basic-block scheduling driver: reorder every block of a CFG."""

from __future__ import annotations

from ..ir import Cfg, build_dag
from .list_scheduler import list_schedule
from .weights import WeightModel


def schedule_block(instrs, model: WeightModel):
    """Return *instrs* reordered by the list scheduler."""
    if len(instrs) <= 1:
        return list(instrs)
    dag = build_dag(instrs)
    order = list_schedule(dag, model)
    return [instrs[i] for i in order]


def schedule_cfg(cfg: Cfg, model: WeightModel) -> Cfg:
    """Schedule every basic block of *cfg* in place and return it.

    The terminator (branch/HALT) is pinned to the end by the ORDER arcs
    :func:`repro.ir.dag.build_dag` adds, so control flow is preserved.
    """
    for block in cfg:
        block.instrs = schedule_block(block.instrs, model)
    cfg.verify()
    return cfg
