"""Basic-block scheduling driver: reorder every block of a CFG."""

from __future__ import annotations

from ..ir import Cfg, build_dag
from ..obs import NULL_OBSERVER, Observer
from ..obs.provenance import LoadScheduleRecord
from .list_scheduler import list_schedule, list_schedule_with_weights
from .weights import WeightModel


def schedule_block(instrs, model: WeightModel,
                   observer: Observer = NULL_OBSERVER,
                   block_label: str = ""):
    """Return *instrs* reordered by the list scheduler.

    With an enabled *observer*, the block's DAG size is annotated onto
    the open trace span and one schedule-provenance record is emitted
    per load (weight, independent-contributor count, before/after
    slot) so balanced-vs-traditional decisions are diffable.
    """
    if len(instrs) <= 1:
        return list(instrs)
    dag = build_dag(instrs)
    prov = observer.provenance if observer.enabled else None
    if prov is None:
        order = list_schedule(dag, model)
    else:
        weights, detail = model.weights_detailed(dag)
        order = list_schedule_with_weights(
            dag, weights, pressure_limit=model.config.pressure_limit)
        observer.annotate(scheduled_blocks=1,
                          scheduled_instrs=len(instrs),
                          dag_edges=dag.edge_count(),
                          dag_loads=len(dag.load_indices()))
        config = getattr(model, "config", None)
        slot_of = {node: slot for slot, node in enumerate(order)}
        for node, ins in enumerate(dag.instrs):
            if not ins.is_load:
                continue
            latency = (float(config.op_latency[ins.op])
                       if config is not None else 0.0)
            prov.add(LoadScheduleRecord(
                block=block_label, op=ins.op, dest=str(ins.dest),
                scheduler=model.name, weight=weights[node],
                latency_weight=latency,
                indep_contributors=detail.get(node, 0),
                slot_before=node, slot_after=slot_of[node]))
    return [instrs[i] for i in order]


def schedule_cfg(cfg: Cfg, model: WeightModel,
                 observer: Observer = NULL_OBSERVER) -> Cfg:
    """Schedule every basic block of *cfg* in place and return it.

    The terminator (branch/HALT) is pinned to the end by the ORDER arcs
    :func:`repro.ir.dag.build_dag` adds, so control flow is preserved.
    """
    for block in cfg:
        block.instrs = schedule_block(block.instrs, model,
                                      observer=observer,
                                      block_label=block.label)
    cfg.verify()
    return cfg
