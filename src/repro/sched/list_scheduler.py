"""Top-down list scheduler with the paper's priority and tie-breakers.

Priority of an instruction = its weight + the maximum priority of its
DAG successors (paper section 4.2).  Ties are broken, in order, by:

1. register pressure -- prefer the instruction with the largest
   (consumed - defined) register count;
2. exposure -- prefer the instruction that makes the most successors
   ready;
3. original program order.

The scheduler is shared by both weight models and by the trace
scheduler; it returns a permutation of node indices.
"""

from __future__ import annotations

from ..ir.dag import Dag
from ..machine.config import DEFAULT_CONFIG
from .weights import WeightModel


def priorities(dag: Dag, weights: list[float]) -> list[float]:
    """Bottom-up longest-path priorities from instruction weights."""
    n = len(dag.instrs)
    prio = [0.0] * n
    for i in range(n - 1, -1, -1):
        best = 0.0
        for j in dag.succs[i]:
            if prio[j] > best:
                best = prio[j]
        prio[i] = weights[i] + best
    return prio


def list_schedule(dag: Dag, model: WeightModel) -> list[int]:
    """Schedule *dag* with *model*'s weights; return the new node order."""
    weights = model.weights(dag)
    limit = model.config.pressure_limit
    return list_schedule_with_weights(dag, weights, pressure_limit=limit)


#: Default live-value throttle, derived from the default machine's
#: register files (allocatable bank size minus headroom — 24 on the
#: 32+32 Alpha files).  Schedulers running under a custom
#: :class:`MachineConfig` get their limit from that config instead.
PRESSURE_LIMIT = DEFAULT_CONFIG.pressure_limit


def list_schedule_with_weights(
        dag: Dag, weights: list[float],
        pressure_limit: int = PRESSURE_LIMIT) -> list[int]:
    n = len(dag.instrs)
    if n == 0:
        return []
    prio = priorities(dag, weights)

    unscheduled_preds = [len(dag.preds[i]) for i in range(n)]
    pressure_delta = [len(ins.uses()) - len(ins.defs())
                      for ins in dag.instrs]
    ready = [i for i in range(n) if unscheduled_preds[i] == 0]
    order: list[int] = []

    # Approximate per-bank liveness: a value is live from the node that
    # defines it until its last in-block consumer is scheduled.
    remaining_uses: dict = {}
    defined = set()
    for ins in dag.instrs:
        for reg in ins.uses():
            remaining_uses[reg] = remaining_uses.get(reg, 0) + 1
        defined.update(ins.defs())
    live = {"i": 0, "f": 0}
    for reg in remaining_uses:
        if reg not in defined:            # live into the block
            live[reg.kind] += 1

    def grows_hot_bank(node: int) -> bool:
        ins = dag.instrs[node]
        for reg in ins.defs():
            bank = reg.kind
            if live[bank] < pressure_limit:
                continue
            freed = sum(1 for use in set(ins.uses())
                        if use.kind == bank and remaining_uses[use] == 1)
            if freed < 1:
                return True
        return False

    while ready:
        best = None
        best_key = None
        for node in ready:
            exposed = sum(1 for succ in dag.succs[node]
                          if unscheduled_preds[succ] == 1)
            key = (not grows_hot_bank(node), prio[node],
                   pressure_delta[node], exposed, -node)
            if best_key is None or key > best_key:
                best_key = key
                best = node
        ready.remove(best)
        order.append(best)
        ins = dag.instrs[best]
        for reg in set(ins.uses()):
            count = remaining_uses.get(reg, 0)
            if count == 1:
                live[reg.kind] -= 1
            remaining_uses[reg] = count - 1
        for reg in ins.defs():
            if remaining_uses.get(reg, 0) > 0:
                live[reg.kind] += 1
        for succ in dag.succs[best]:
            unscheduled_preds[succ] -= 1
            if unscheduled_preds[succ] == 0:
                ready.append(succ)

    if len(order) != n:
        raise RuntimeError("DAG has a cycle; scheduling failed")
    return order


def estimate_issue_cycles(dag: Dag, order: list[int],
                          latencies: list[float]) -> float:
    """Static cycle estimate for a schedule on the single-issue model.

    Each instruction issues at ``max(prev_issue + 1, operand-ready)``
    where a true/memory dependence makes the operand ready
    ``latency(producer)`` cycles after the producer issues.  Used by
    tests and the synthetic-DAG benchmarks, not by the real simulator.
    """
    issue: dict[int, float] = {}
    clock = 0.0
    for node in order:
        earliest = clock
        for pred, kind in dag.preds[node].items():
            if kind in ("true", "mem"):
                ready = issue[pred] + latencies[pred]
            else:
                ready = issue[pred] + 1
            if ready > earliest:
                earliest = ready
        issue[node] = earliest
        clock = earliest + 1
    return clock
