"""The single observability switch: :class:`Observer`.

Every layer of the pipeline (frontend driver, scheduler, register
allocator, simulator, experiment harness) accepts an observer and
calls it unconditionally; the base class is a no-op whose ``span()``
returns one shared, reusable null context manager, so the disabled
path costs a couple of attribute lookups per *compilation phase* and
exactly one boolean test per *simulated run* — generated code, cycle
counts and cache fingerprints are untouched.

:class:`TracingObserver` is the real thing: it owns a
:class:`~repro.obs.trace.TraceRecorder`, a
:class:`~repro.obs.provenance.ScheduleProvenance`, and one
:class:`~repro.obs.stall.StallProfile` per simulated grid point.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Optional

from .provenance import ScheduleProvenance
from .stall import StallProfile
from .trace import TraceRecorder


class _NullSpan:
    """Reusable no-op span/context manager (one shared instance)."""

    __slots__ = ()

    def annotate(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Observer:
    """No-op observability sink; the default everywhere."""

    enabled: bool = False
    trace: Optional[TraceRecorder] = None
    provenance: Optional[ScheduleProvenance] = None

    def span(self, name: str, **attrs):
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        pass

    def annotate(self, **attrs) -> None:
        pass

    def stall_profile(self, benchmark: str, scheduler: str = "",
                      config: str = "") -> Optional[StallProfile]:
        """Profile to fill for one simulated run (None = don't)."""
        return None


#: Shared default: observability off.
NULL_OBSERVER = Observer()


class TracingObserver(Observer):
    """Records spans, stall profiles and schedule provenance."""

    enabled = True

    def __init__(self, stalls: bool = True, provenance: bool = True,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.trace = TraceRecorder(clock)
        self.provenance = ScheduleProvenance() if provenance else None
        self._record_stalls = stalls
        #: "bench/scheduler/config" -> profile, insertion-ordered.
        self.stall_profiles: dict[str, StallProfile] = {}

    # ------------------------------------------------------------- spans
    def span(self, name: str, **attrs):
        return self.trace.span(name, **attrs)

    def event(self, name: str, **attrs) -> None:
        self.trace.event(name, **attrs)

    def annotate(self, **attrs) -> None:
        self.trace.annotate(**attrs)

    # ------------------------------------------------------------ stalls
    def stall_profile(self, benchmark: str, scheduler: str = "",
                      config: str = "") -> Optional[StallProfile]:
        if not self._record_stalls:
            return None
        key = "/".join(p for p in (benchmark, scheduler, config) if p)
        profile = self.stall_profiles.get(key)
        if profile is None:
            profile = StallProfile()
            self.stall_profiles[key] = profile
        return profile

    # ------------------------------------------------------------ export
    def summary(self, top: int = 5) -> dict:
        """Compact JSON aggregate (embedded in run manifests)."""
        out: dict = {"trace": self.trace.summary()}
        if self.stall_profiles:
            out["stalls"] = {key: profile.to_json(top=top)
                             for key, profile in
                             self.stall_profiles.items()}
        if self.provenance is not None and len(self.provenance):
            out["provenance"] = {
                "loads": len(self.provenance),
                "deviating_loads": len(
                    self.provenance.balanced_deviations()),
            }
        return out

    def write(self, prefix: str | Path) -> dict[str, Path]:
        """Write ``<prefix>.jsonl`` + ``<prefix>.chrome.json``."""
        prefix = Path(prefix)
        return {
            "jsonl": self.trace.write_jsonl(
                prefix.with_name(prefix.name + ".jsonl")),
            "chrome": self.trace.write_chrome_trace(
                prefix.with_name(prefix.name + ".chrome.json")),
        }
