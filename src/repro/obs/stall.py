"""Cycle-level stall attribution: who owns each interlock cycle.

The simulator's aggregate :class:`~repro.machine.metrics.Metrics`
counters say *how many* cycles were lost to load interlocks; a
:class:`StallProfile` says *which static load site* lost them.  The
simulator fills one (when given — the default is ``None`` and costs
nothing) by

* counting executions per PC (the issue histogram);
* attributing every operand-interlock cycle to the *producer* PC of
  the stalling operand, split load vs. fixed-latency exactly like the
  aggregate counters, so ``sum(load_interlock.values()) ==
  Metrics.load_interlock_cycles`` holds to the cycle;
* per-load-site hit/miss counts and MSHR-full stall cycles.

``hot_loads`` ranks static load sites by attributed interlock cycles —
the per-instruction decomposition of the paper's "loads stall 15–16%
of cycles under traditional vs. 5–7% under balanced" claim.
"""

from __future__ import annotations

from typing import Optional


class StallProfile:
    """Per-PC counters for one simulated run (plain dicts: hot path)."""

    __slots__ = ("exec_counts", "load_interlock", "fixed_interlock",
                 "load_hits", "load_misses", "mshr_stalls")

    def __init__(self) -> None:
        #: pc -> dynamic executions of that instruction.
        self.exec_counts: dict[int, int] = {}
        #: producer load pc -> interlock cycles charged to it.
        self.load_interlock: dict[int, int] = {}
        #: producer pc (fixed-latency op) -> interlock cycles.
        self.fixed_interlock: dict[int, int] = {}
        #: load pc -> L1 hits / misses (a dTLB-miss hit counts as miss).
        self.load_hits: dict[int, int] = {}
        self.load_misses: dict[int, int] = {}
        #: load pc -> cycles stalled at issue waiting for a free MSHR.
        self.mshr_stalls: dict[int, int] = {}

    # ----------------------------------------------------------- queries
    @property
    def total_load_interlock(self) -> int:
        return sum(self.load_interlock.values())

    @property
    def total_fixed_interlock(self) -> int:
        return sum(self.fixed_interlock.values())

    def hot_loads(self, n: int = 10) -> list[dict]:
        """Top-*n* static load sites by attributed interlock cycles."""
        rows = []
        for pc, cycles in self.load_interlock.items():
            rows.append({
                "pc": pc,
                "interlock_cycles": cycles,
                "executions": self.exec_counts.get(pc, 0),
                "hits": self.load_hits.get(pc, 0),
                "misses": self.load_misses.get(pc, 0),
                "mshr_stall_cycles": self.mshr_stalls.get(pc, 0),
            })
        rows.sort(key=lambda r: (-r["interlock_cycles"], r["pc"]))
        return rows[:n]

    def format_hot_loads(self, program=None, n: int = 10,
                         total_cycles: Optional[int] = None) -> str:
        """Render the top-*n* table; *program* adds disassembly/labels."""
        block_of = {}
        if program is not None:
            for label, index in sorted(program.labels.items(),
                                       key=lambda kv: kv[1]):
                block_of[index] = label
        header = (f"{'pc':>6} {'block':<12} {'execs':>9} {'miss%':>6} "
                  f"{'mshr':>7} {'interlock':>10} {'share':>7}  instr")
        lines = [header, "-" * len(header)]
        total = total_cycles or 0
        current_block = ""
        for row in self.hot_loads(n):
            pc = row["pc"]
            if block_of:
                current_block = ""
                for index in sorted(block_of):
                    if index <= pc:
                        current_block = block_of[index]
                    else:
                        break
            accesses = row["hits"] + row["misses"]
            miss_pct = (100.0 * row["misses"] / accesses
                        if accesses else 0.0)
            share = (100.0 * row["interlock_cycles"] / total
                     if total else 0.0)
            text = ""
            if program is not None and pc < len(program.instructions):
                text = program.instructions[pc].format()
            lines.append(
                f"{pc:>6} {current_block:<12} {row['executions']:>9} "
                f"{miss_pct:>5.1f}% {row['mshr_stall_cycles']:>7} "
                f"{row['interlock_cycles']:>10} {share:>6.1f}%  {text}")
        return "\n".join(lines)

    def to_json(self, top: int = 10) -> dict:
        return {
            "total_load_interlock": self.total_load_interlock,
            "total_fixed_interlock": self.total_fixed_interlock,
            "static_load_sites": len(self.load_interlock),
            "hot_loads": self.hot_loads(top),
        }
