"""Observability: pipeline tracing, stall attribution, manifest diffs.

Everything hangs off one :class:`Observer` object.  The default
(:data:`NULL_OBSERVER`) is a no-op — zero cost, no behaviour change;
a :class:`TracingObserver` records nested pass/phase spans (exported
as JSONL and Chrome trace-event files loadable in Perfetto),
per-static-load stall attribution from the simulator, and per-load
schedule provenance from the block scheduler.  ``repro profile`` and
the ``--trace`` flags on ``bench``/``tables``/``report`` wire it up;
``repro obs-diff`` compares two run manifests for cycle regressions.
"""

from .diff import (
    DiffResult,
    PointDelta,
    diff_manifest_files,
    diff_manifests,
)
from .metrics import (
    LATENCY_BUCKETS,
    REGISTRY,
    MetricsRegistry,
    render_prometheus_snapshot,
    snapshot_summary,
)
from .observer import NULL_OBSERVER, Observer, TracingObserver
from .provenance import LoadScheduleRecord, ScheduleProvenance
from .stall import StallProfile
from .trace import Span, TraceRecorder

__all__ = [
    "NULL_OBSERVER", "Observer", "TracingObserver",
    "TraceRecorder", "Span",
    "StallProfile",
    "LoadScheduleRecord", "ScheduleProvenance",
    "DiffResult", "PointDelta", "diff_manifests", "diff_manifest_files",
    "MetricsRegistry", "REGISTRY", "LATENCY_BUCKETS",
    "render_prometheus_snapshot", "snapshot_summary",
]
