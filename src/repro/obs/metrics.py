"""Runtime metrics registry: the always-on numeric layer.

:mod:`repro.obs.trace` records *events* (spans with start/stop
timestamps — expensive, opt-in, one trace per run).  This module is
the complementary *counter* layer of the span/counter split in
distributed-tracing practice: monotonic counters, gauges and
fixed-bucket histograms cheap enough to leave enabled in a resident
daemon, dependency-free, and mergeable across processes.

Design constraints, in order:

* **Zero observable effect on results.**  The registry only ever
  *observes*; nothing in the compiler or simulator reads it back, so
  cycles, interlocks and cache keys are bit-identical with recording
  on or off (tested).  The hot simulation loops are never touched —
  engine counters are folded in *after* a run finishes.
* **Cheap enough to leave on.**  A disabled registry costs one
  attribute test per instrument call; an enabled counter bump is one
  dict ``get`` + add.  Histograms use precomputed bucket bounds and a
  linear scan (the bucket lists are short).
* **Exact, mergeable state.**  Counters and histogram bucket counts
  are plain ints (no float drift when merging); merging two snapshots
  is element-wise integer/float addition.  Each pool worker snapshots
  its registry into the result frame and the parent folds the deltas
  into a global registry — folded totals equal the sum by
  construction (tested across real processes).

Naming follows Prometheus conventions (``snake_case``, ``_total``
suffix on counters, ``_seconds`` on latency histograms), and
:func:`render_prometheus` emits the standard text exposition format.
"""

from __future__ import annotations

import json
import os
import threading
from bisect import bisect_left
from typing import Optional, Sequence

#: Snapshot schema version (bumped on incompatible layout changes).
SNAPSHOT_SCHEMA = 1

#: Default histogram buckets for wall-clock latencies in seconds.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0)

#: Default buckets for simulated-instructions-per-second throughput.
IPS_BUCKETS: tuple[float, ...] = (
    1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8)


def _label_key(labels: dict) -> str:
    """Canonical string for one label set (sorted, JSON-escaped)."""
    if not labels:
        return ""
    return ",".join(f"{k}={json.dumps(str(v))}"
                    for k, v in sorted(labels.items()))


def _parse_label_key(key: str) -> dict:
    if not key:
        return {}
    out = {}
    for part in key.split(","):
        name, _, value = part.partition("=")
        out[name] = json.loads(value)
    return out


class Counter:
    """One monotonic counter child (a single label set)."""

    __slots__ = ("_family", "_key", "value")

    def __init__(self, family: "Family", key: str) -> None:
        self._family = family
        self._key = key
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if self._family.registry.recording:
            if amount < 0:
                raise ValueError(
                    f"counter {self._family.name} cannot decrease "
                    f"(inc({amount}))")
            self.value += amount


class Gauge:
    """One gauge child: a value that can go up and down."""

    __slots__ = ("_family", "_key", "value")

    def __init__(self, family: "Family", key: str) -> None:
        self._family = family
        self._key = key
        self.value = 0.0

    def set(self, value: float) -> None:
        if self._family.registry.recording:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        if self._family.registry.recording:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        if self._family.registry.recording:
            self.value -= amount


class Histogram:
    """Fixed-bucket histogram child with exact integer bucket counts.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``
    (non-cumulative, per-bucket); the final implicit ``+Inf`` bucket is
    ``bucket_counts[-1]``.  ``sum``/``count`` are exact (``count`` an
    int; ``sum`` a float accumulated once per observation).
    """

    __slots__ = ("_family", "_key", "bounds", "bucket_counts", "sum",
                 "count")

    def __init__(self, family: "Family", key: str,
                 bounds: Sequence[float]) -> None:
        self._family = family
        self._key = key
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if self._family.registry.recording:
            self.bucket_counts[bisect_left(self.bounds, value)] += 1
            self.sum += value
            self.count += 1

    # ------------------------------------------------------- quantiles
    def quantile(self, q: float) -> float:
        """Estimated *q*-quantile (0..1) by linear interpolation
        inside the bucket where the rank falls.  The +Inf bucket
        reports its lower bound (the largest finite bound)."""
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            if not n:
                continue
            if seen + n >= rank:
                hi = (self.bounds[i] if i < len(self.bounds)
                      else self.bounds[-1])
                lo = self.bounds[i - 1] if i > 0 else 0.0
                if i >= len(self.bounds):
                    return hi
                frac = (rank - seen) / n
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
            seen += n
        return self.bounds[-1] if self.bounds else 0.0

    def percentiles(self) -> dict:
        """The standard p50/p95/p99 summary plus count and mean."""
        return {
            "count": self.count,
            "mean": round(self.sum / self.count, 6) if self.count
            else 0.0,
            "p50": round(self.quantile(0.50), 6),
            "p95": round(self.quantile(0.95), 6),
            "p99": round(self.quantile(0.99), 6),
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Family:
    """A named metric family: one child per label set."""

    __slots__ = ("registry", "name", "kind", "help", "bounds",
                 "_children")

    def __init__(self, registry: "MetricsRegistry", name: str,
                 kind: str, help: str = "",
                 bounds: Optional[Sequence[float]] = None) -> None:
        self.registry = registry
        self.name = name
        self.kind = kind
        self.help = help
        self.bounds = tuple(bounds) if bounds is not None else None
        self._children: dict[str, object] = {}

    def labels(self, **labels):
        """The child for one label set (created on first use)."""
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            if self.kind == "histogram":
                child = Histogram(self, key, self.bounds or
                                  LATENCY_BUCKETS)
            else:
                child = _KINDS[self.kind](self, key)
            self._children[key] = child
        return child

    # Unlabeled convenience forwarding: family.inc() etc. act on the
    # empty-label child, so a scalar metric needs no labels() call.
    def inc(self, amount=1) -> None:
        self.labels().inc(amount)

    def dec(self, amount=1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def value(self):
        return self.labels().value

    def children(self) -> dict[str, object]:
        return dict(self._children)


class MetricsRegistry:
    """A set of metric families with snapshot/merge semantics.

    Instrumented code holds a family (or child) reference and bumps it
    unconditionally; the one ``recording`` bool inside each bump is
    the entire cost of the disabled path.  ``recording`` defaults from
    the ``REPRO_METRICS`` environment variable (anything but ``"0"``
    enables it).
    """

    def __init__(self, recording: Optional[bool] = None) -> None:
        if recording is None:
            recording = os.environ.get("REPRO_METRICS", "1") != "0"
        self.recording = recording
        self._families: dict[str, Family] = {}
        self._lock = threading.Lock()

    # ----------------------------------------------------- registration
    def _family(self, name: str, kind: str, help: str = "",
                bounds: Optional[Sequence[float]] = None) -> Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = Family(self, name, kind, help=help,
                                bounds=bounds)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.kind}, not {kind}")
            return family

    def counter(self, name: str, help: str = "") -> Family:
        return self._family(name, "counter", help=help)

    def gauge(self, name: str, help: str = "") -> Family:
        return self._family(name, "gauge", help=help)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Family:
        return self._family(name, "histogram", help=help,
                            bounds=buckets or LATENCY_BUCKETS)

    def families(self) -> dict[str, Family]:
        with self._lock:
            return dict(self._families)

    # --------------------------------------------------------- snapshot
    def snapshot(self) -> dict:
        """JSON-able copy of every family (the cross-process frame).

        Empty families (registered, never bumped) are included with no
        children so the merged side still learns the name and kind.
        """
        out: dict = {"schema": SNAPSHOT_SCHEMA, "families": {}}
        for name, family in sorted(self.families().items()):
            entry: dict = {"kind": family.kind}
            if family.help:
                entry["help"] = family.help
            children = {}
            for key, child in sorted(family.children().items()):
                if family.kind == "histogram":
                    children[key] = {
                        "bounds": list(child.bounds),
                        "bucket_counts": list(child.bucket_counts),
                        "sum": child.sum,
                        "count": child.count,
                    }
                else:
                    children[key] = child.value
            entry["children"] = children
            if family.kind == "histogram":
                entry["bounds"] = list(family.bounds or
                                       LATENCY_BUCKETS)
            out["families"][name] = entry
        return out

    def reset(self) -> None:
        """Drop every recorded value (families stay registered)."""
        for family in self.families().values():
            family._children.clear()

    def snapshot_and_reset(self) -> dict:
        """Snapshot then reset: the per-task delta frame a resident
        pool worker ships back, so folding deltas never double-counts."""
        snap = self.snapshot()
        self.reset()
        return snap

    # ------------------------------------------------------------ merge
    def merge(self, snapshot: dict) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histogram buckets/sums/counts add (ints stay
        ints, so bucket counts are exact); gauges take the incoming
        value (last-write-wins — a remote gauge is a level, not a
        flow).  Unknown families are created on the fly.
        """
        for name, entry in snapshot.get("families", {}).items():
            kind = entry["kind"]
            family = self._family(name, kind,
                                  help=entry.get("help", ""),
                                  bounds=entry.get("bounds"))
            for key, payload in entry.get("children", {}).items():
                child = family.labels(**_parse_label_key(key))
                if kind == "counter":
                    child.value += payload
                elif kind == "gauge":
                    child.value = payload
                else:
                    if tuple(payload["bounds"]) != child.bounds:
                        raise ValueError(
                            f"histogram {name!r}: bucket bounds "
                            f"mismatch on merge")
                    for i, n in enumerate(payload["bucket_counts"]):
                        child.bucket_counts[i] += n
                    child.sum += payload["sum"]
                    child.count += payload["count"]

    # ----------------------------------------------------------- export
    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name, family in sorted(self.families().items()):
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key, child in sorted(family.children().items()):
                labels = _parse_label_key(key)
                if family.kind == "histogram":
                    cumulative = 0
                    for i, bound in enumerate(child.bounds):
                        cumulative += child.bucket_counts[i]
                        le = {**labels, "le": _format_value(bound)}
                        lines.append(f"{name}_bucket"
                                     f"{_prom_labels(le)} "
                                     f"{cumulative}")
                    cumulative += child.bucket_counts[-1]
                    le = {**labels, "le": "+Inf"}
                    lines.append(f"{name}_bucket{_prom_labels(le)} "
                                 f"{cumulative}")
                    lines.append(f"{name}_sum{_prom_labels(labels)} "
                                 f"{_format_value(child.sum)}")
                    lines.append(f"{name}_count"
                                 f"{_prom_labels(labels)} "
                                 f"{child.count}")
                else:
                    lines.append(f"{name}{_prom_labels(labels)} "
                                 f"{_format_value(child.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def summary(self) -> dict:
        """Compact JSON view: counters/gauges by name, histograms as
        p50/p95/p99 summaries (the ``metrics`` manifest section)."""
        out: dict = {}
        for name, family in sorted(self.families().items()):
            children = family.children()
            if not children:
                continue
            if family.kind == "histogram":
                out[name] = {key or "_": child.percentiles()
                             for key, child in sorted(children.items())}
            else:
                out[name] = {key or "_": child.value
                             for key, child in sorted(children.items())}
        return out


def _prom_labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + body + "}"


def _format_value(value) -> str:
    if isinstance(value, float) and value == int(value) \
            and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if not isinstance(value, str) else value


def render_prometheus_snapshot(snapshot: dict) -> str:
    """Render a serialized snapshot without a live registry (the CLI
    scrapes the daemon as JSON and formats locally)."""
    registry = MetricsRegistry(recording=True)
    registry.merge(snapshot)
    return registry.render_prometheus()


def snapshot_summary(snapshot: dict) -> dict:
    """Compact p50/p95/p99 summary of a serialized snapshot."""
    registry = MetricsRegistry(recording=True)
    registry.merge(snapshot)
    return registry.summary()


#: The process-global registry every instrumented layer records into.
#: ``REPRO_METRICS=0`` disables recording process-wide (the registry
#: object still exists, so instrumented code never branches on None).
REGISTRY = MetricsRegistry()
