"""Schedule provenance: why each load landed in its slot.

Balanced scheduling replaces a load's fixed latency with a weight
derived from the *independent instructions* available to hide it
(Kerns & Eggers).  To make balanced-vs-traditional decisions diffable,
the block scheduler records one :class:`LoadScheduleRecord` per load:
the weight the model assigned, the architectural latency it replaced,
the number of independent contributor instructions the weight was
derived from, and the load's position before and after scheduling.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass
class LoadScheduleRecord:
    """One load's scheduling decision inside one basic block."""

    block: str              # basic-block label
    op: str                 # LD / FLD
    dest: str               # destination register (repr)
    scheduler: str          # weight-model name (balanced/traditional)
    weight: float           # the weight the list scheduler used
    latency_weight: float   # architectural latency (traditional weight)
    #: Contributors independent of this load — the size of the
    #: instruction set its balanced weight was derived from (0 when the
    #: load was outside the balancing set or the model is traditional).
    indep_contributors: int
    slot_before: int        # position in the pre-scheduling block order
    slot_after: int         # final slot the list scheduler chose

    @property
    def hoisted_by(self) -> int:
        """Slots moved up (positive) or down (negative) by scheduling."""
        return self.slot_before - self.slot_after

    def to_json(self) -> dict:
        data = asdict(self)
        data["hoisted_by"] = self.hoisted_by
        return data


class ScheduleProvenance:
    """All load scheduling decisions of one (or more) compilations."""

    def __init__(self) -> None:
        self.records: list[LoadScheduleRecord] = []

    def add(self, record: LoadScheduleRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def by_block(self) -> dict[str, list[LoadScheduleRecord]]:
        out: dict[str, list[LoadScheduleRecord]] = {}
        for record in self.records:
            out.setdefault(record.block, []).append(record)
        return out

    def balanced_deviations(self) -> list[LoadScheduleRecord]:
        """Loads whose balanced weight differs from the architectural
        latency — exactly the decisions a traditional scheduler would
        have made differently."""
        return [r for r in self.records
                if abs(r.weight - r.latency_weight) > 1e-9]

    def format_table(self, n: int = 20) -> str:
        header = (f"{'block':<14} {'op':<5} {'dest':<8} {'weight':>8} "
                  f"{'latency':>8} {'indep':>6} {'slot':>9} {'moved':>6}")
        lines = [header, "-" * len(header)]
        rows = sorted(self.records,
                      key=lambda r: -abs(r.weight - r.latency_weight))
        for r in rows[:n]:
            lines.append(
                f"{r.block:<14} {r.op:<5} {r.dest:<8} {r.weight:>8.2f} "
                f"{r.latency_weight:>8.2f} {r.indep_contributors:>6} "
                f"{r.slot_before:>4}->{r.slot_after:<4} "
                f"{r.hoisted_by:>+6}")
        return "\n".join(lines)

    def to_json(self, top: int = 50) -> dict:
        deviations = self.balanced_deviations()
        return {
            "loads": len(self.records),
            "deviating_loads": len(deviations),
            "records": [r.to_json() for r in self.records[:top]],
        }
