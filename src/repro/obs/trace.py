"""Span-based trace recorder with JSONL and Chrome-trace export.

A :class:`TraceRecorder` collects nested, wall-clock-timed *spans*
(one per compiler pass, pipeline phase, or grid point) and point
*events*.  Spans carry free-form JSON-serializable attributes — the
harness uses them for IR deltas (instruction counts, DAG edges, loads,
blocks) so a trace answers "which pass created or killed the
parallelism" without re-running the compiler.

Two export formats:

* ``write_jsonl`` — one JSON object per line (``{"type": "span"|
  "event", ...}``), greppable and diffable;
* ``write_chrome_trace`` — the Chrome trace-event format (a JSON
  object with a ``traceEvents`` list of ``ph: "X"`` complete events),
  loadable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.

The recorder never touches global state and takes an injectable clock
so tests are deterministic.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator, Optional


class Span:
    """One completed (or open) trace span; attributes live in ``args``."""

    __slots__ = ("name", "start_us", "dur_us", "depth", "args")

    def __init__(self, name: str, start_us: float, depth: int,
                 args: dict) -> None:
        self.name = name
        self.start_us = start_us
        self.dur_us: Optional[float] = None    # None while still open
        self.depth = depth
        self.args = args

    def annotate(self, **attrs) -> None:
        """Merge *attrs* into the span, summing repeated numeric keys.

        Summing lets many sub-steps (e.g. per-block DAG builds)
        accumulate one aggregate on their enclosing phase span.
        """
        for key, value in attrs.items():
            old = self.args.get(key)
            if isinstance(old, (int, float)) and isinstance(
                    value, (int, float)) and not isinstance(
                    old, bool) and not isinstance(value, bool):
                self.args[key] = old + value
            else:
                self.args[key] = value

    def to_json(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "ts_us": round(self.start_us, 3),
            "dur_us": round(self.dur_us or 0.0, 3),
            "depth": self.depth,
            "args": self.args,
        }


class TraceRecorder:
    """Collects spans and events relative to its construction time."""

    def __init__(self,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._t0 = clock()
        self.spans: list[Span] = []      # completed, in completion order
        self.events: list[dict] = []
        self._stack: list[Span] = []

    # ------------------------------------------------------------ recording
    def _now_us(self) -> float:
        return (self._clock() - self._t0) * 1e6

    @property
    def current(self) -> Optional[Span]:
        """Innermost open span (None outside any ``span()`` block)."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        sp = Span(name, self._now_us(), len(self._stack), dict(attrs))
        self._stack.append(sp)
        try:
            yield sp
        finally:
            sp.dur_us = self._now_us() - sp.start_us
            self._stack.pop()
            self.spans.append(sp)

    def event(self, name: str, **attrs) -> None:
        self.events.append({
            "type": "event",
            "name": name,
            "ts_us": round(self._now_us(), 3),
            "depth": len(self._stack),
            "args": attrs,
        })

    def annotate(self, **attrs) -> None:
        """Annotate the innermost open span (no-op outside spans)."""
        sp = self.current
        if sp is not None:
            sp.annotate(**attrs)

    # -------------------------------------------------------------- export
    def records(self) -> list[dict]:
        """All spans + events as JSON dicts, sorted by start time."""
        rows = [sp.to_json() for sp in self.spans]
        rows.extend(self.events)
        rows.sort(key=lambda r: r["ts_us"])
        return rows

    def write_jsonl(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            for row in self.records():
                handle.write(json.dumps(row) + "\n")
        return path

    def chrome_trace(self) -> dict:
        """Chrome trace-event JSON object (Perfetto-loadable)."""
        trace_events: list[dict] = []
        for sp in sorted(self.spans, key=lambda s: s.start_us):
            trace_events.append({
                "name": sp.name,
                "cat": "repro",
                "ph": "X",
                "ts": round(sp.start_us, 3),
                "dur": round(sp.dur_us or 0.0, 3),
                "pid": 1,
                "tid": 1,
                "args": sp.args,
            })
        for ev in self.events:
            trace_events.append({
                "name": ev["name"],
                "cat": "repro",
                "ph": "i",
                "s": "t",
                "ts": ev["ts_us"],
                "pid": 1,
                "tid": 1,
                "args": ev["args"],
            })
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.chrome_trace()))
        return path

    def summary(self) -> dict:
        """Compact aggregate for run manifests."""
        by_name: dict[str, dict] = {}
        for sp in self.spans:
            entry = by_name.setdefault(sp.name, {"count": 0, "us": 0.0})
            entry["count"] += 1
            entry["us"] += sp.dur_us or 0.0
        return {
            "spans": len(self.spans),
            "events": len(self.events),
            "by_name": {name: {"count": e["count"],
                               "us": round(e["us"], 1)}
                        for name, e in sorted(by_name.items())},
        }
