"""Manifest diffing: catch silent cycle regressions between runs.

``repro bench``/``tables``/``report`` write a JSON *run manifest*
(per-grid-point cycle counts, interlock cycles and timings) next to
the result cache.  :func:`diff_manifests` compares two manifests point
by point and flags any benchmark whose total cycles or load-interlock
cycles regressed beyond a relative threshold — the check CI runs
against the committed seed manifest so a scheduling change can't
silently cost cycles.

The simulator is deterministic, so under an unchanged compiler the
expected delta is exactly zero; the threshold only gives intentional
changes a way to land with a documented tolerance.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

#: Interlock deltas below this many cycles are never flagged (tiny
#: benchmarks would otherwise trip the relative threshold on noise-
#: level absolute changes).
MIN_INTERLOCK_DELTA = 50

#: Heuristic-gap increases below this absolute amount are never
#: flagged (a 1.0001 -> 1.0003 wiggle is not a scheduling regression).
MIN_GAP_DELTA = 0.005


@dataclass
class PointDelta:
    """One grid point present in both manifests."""

    benchmark: str
    scheduler: str
    config: str
    base_cycles: int
    new_cycles: int
    base_load_interlock: Optional[int] = None
    new_load_interlock: Optional[int] = None

    @property
    def cycle_delta(self) -> float:
        """Relative cycle change (+ = regression)."""
        if not self.base_cycles:
            return 0.0
        return (self.new_cycles - self.base_cycles) / self.base_cycles

    @property
    def interlock_delta(self) -> Optional[float]:
        if self.base_load_interlock is None \
                or self.new_load_interlock is None:
            return None
        base = self.base_load_interlock
        if not base:
            return 0.0 if not self.new_load_interlock else float("inf")
        return (self.new_load_interlock - base) / base

    def regressions(self, threshold: float) -> list[str]:
        out = []
        if self.cycle_delta > threshold:
            out.append(f"cycles +{100 * self.cycle_delta:.2f}% "
                       f"({self.base_cycles} -> {self.new_cycles})")
        idelta = self.interlock_delta
        if idelta is not None and idelta > threshold and \
                (self.new_load_interlock - self.base_load_interlock
                 ) >= MIN_INTERLOCK_DELTA:
            out.append(
                f"load interlocks +{100 * idelta:.2f}% "
                f"({self.base_load_interlock} -> "
                f"{self.new_load_interlock})")
        return out

    @property
    def key(self) -> str:
        return f"{self.benchmark}/{self.scheduler}/{self.config}"


@dataclass
class DiffResult:
    """Outcome of comparing two run manifests."""

    threshold: float
    deltas: list[PointDelta] = field(default_factory=list)
    only_base: list[str] = field(default_factory=list)
    only_new: list[str] = field(default_factory=list)
    #: Heuristic-gap regressions from the manifests' ``oracle``
    #: sections (manifest v4); empty when either side lacks one.
    oracle_regressions: list[str] = field(default_factory=list)
    oracle_points: int = 0
    #: Dependence/pressure regressions from the manifests' ``analysis``
    #: sections (manifest v6); empty when either side lacks one.
    analysis_regressions: list[str] = field(default_factory=list)
    analysis_points: int = 0

    @property
    def regressed(self) -> list[tuple[PointDelta, list[str]]]:
        out = []
        for delta in self.deltas:
            reasons = delta.regressions(self.threshold)
            if reasons:
                out.append((delta, reasons))
        return out

    @property
    def ok(self) -> bool:
        return not self.regressed and not self.oracle_regressions \
            and not self.analysis_regressions

    def format(self) -> str:
        lines = [f"compared {len(self.deltas)} grid point(s), "
                 f"threshold {100 * self.threshold:.2f}%"]
        if self.oracle_points:
            lines[0] += f" (+ {self.oracle_points} oracle point(s))"
        if self.analysis_points:
            lines[0] += (f" (+ {self.analysis_points} analysis "
                         f"point(s))")
        for delta in self.deltas:
            mark = "REGRESSED" if delta.regressions(self.threshold) \
                else "ok"
            interlock = ""
            if delta.interlock_delta is not None:
                interlock = (f"  ld-intlk {delta.base_load_interlock}"
                             f" -> {delta.new_load_interlock}")
            lines.append(
                f"  {mark:<9} {delta.key:<36} cycles "
                f"{delta.base_cycles} -> {delta.new_cycles} "
                f"({100 * delta.cycle_delta:+.2f}%){interlock}")
        for key in self.only_base:
            lines.append(f"  MISSING   {key:<36} only in base manifest")
        for key in self.only_new:
            lines.append(f"  NEW       {key:<36} only in new manifest")
        for delta, reasons in self.regressed:
            for reason in reasons:
                lines.append(f"  !! {delta.key}: {reason}")
        for reason in self.oracle_regressions:
            lines.append(f"  !! oracle: {reason}")
        for reason in self.analysis_regressions:
            lines.append(f"  !! analysis: {reason}")
        if self.ok:
            lines.append("no regressions")
        return "\n".join(lines)


def _index_runs(manifest: dict) -> dict[str, dict]:
    runs = {}
    for entry in manifest.get("runs", []):
        key = (f"{entry['benchmark']}/{entry['scheduler']}/"
               f"{entry['config']}")
        runs[key] = entry
    return runs


def _diff_oracle(base: dict, new: dict,
                 threshold: float) -> tuple[list[str], int]:
    """Gate the heuristic-gap sections of two v4 manifests.

    Flags, per oracle point present in the baseline: a balanced or
    traditional gap that grew beyond the relative threshold (the
    heuristic drifted away from the certified optimum), any drop in
    certified blocks/loops (lost proving power — usually a budget or
    encoding change), and lost beyond-heuristic loop proofs.
    """
    reasons: list[str] = []
    base_points = base.get("points", {})
    new_points = new.get("points", {})
    for key, b in sorted(base_points.items()):
        n = new_points.get(key)
        if n is None:
            reasons.append(f"{key} missing from new manifest")
            continue
        for name in ("gap_balanced", "gap_traditional"):
            delta = n.get(name, 0.0) - b.get(name, 0.0)
            if b.get(name) and delta > MIN_GAP_DELTA \
                    and delta / b[name] > threshold:
                reasons.append(
                    f"{key}: {name} {b[name]} -> {n[name]}")
        for name in ("blocks_certified", "loops_certified",
                     "loops_beyond_heuristic"):
            if n.get(name, 0) < b.get(name, 0):
                reasons.append(
                    f"{key}: {name} dropped "
                    f"{b.get(name, 0)} -> {n.get(name, 0)}")
    return reasons, len(base_points)


def _diff_analysis(base: dict, new: dict,
                   threshold: float) -> tuple[list[str], int]:
    """Gate the dependence/pressure sections of two v6 manifests.

    Flags, per analysis point present in the baseline: lost proving
    power (fewer independent pairs or more unknown verdicts — the
    analyzer got weaker), more over-budget blocks, and per-bank
    MAXLIVE growth beyond the relative threshold (a scheduling change
    quietly costing registers).
    """
    reasons: list[str] = []
    base_points = base.get("points", {})
    new_points = new.get("points", {})
    for key, b in sorted(base_points.items()):
        n = new_points.get(key)
        if n is None:
            reasons.append(f"{key} missing from new manifest")
            continue
        if n.get("independent", 0) < b.get("independent", 0):
            reasons.append(
                f"{key}: independent pairs dropped "
                f"{b.get('independent', 0)} -> "
                f"{n.get('independent', 0)}")
        if n.get("unknown", 0) > b.get("unknown", 0):
            reasons.append(
                f"{key}: unknown verdicts grew "
                f"{b.get('unknown', 0)} -> {n.get('unknown', 0)}")
        if n.get("over_budget_blocks", 0) > \
                b.get("over_budget_blocks", 0):
            reasons.append(
                f"{key}: over-budget blocks grew "
                f"{b.get('over_budget_blocks', 0)} -> "
                f"{n.get('over_budget_blocks', 0)}")
        for name in ("max_live_i", "max_live_f"):
            delta = n.get(name, 0) - b.get(name, 0)
            if delta > 0 and (not b.get(name)
                              or delta / b[name] > threshold):
                reasons.append(
                    f"{key}: {name} {b.get(name, 0)} -> "
                    f"{n.get(name, 0)}")
    return reasons, len(base_points)


def diff_manifests(base: dict, new: dict,
                   threshold: float = 0.02) -> DiffResult:
    """Compare two run-manifest dicts; see the module docstring."""
    base_runs = _index_runs(base)
    new_runs = _index_runs(new)
    result = DiffResult(threshold=threshold)
    if base.get("oracle") and new.get("oracle"):
        result.oracle_regressions, result.oracle_points = _diff_oracle(
            base["oracle"], new["oracle"], threshold)
    if base.get("analysis") and new.get("analysis"):
        result.analysis_regressions, result.analysis_points = \
            _diff_analysis(base["analysis"], new["analysis"], threshold)
    for key, base_entry in base_runs.items():
        new_entry = new_runs.get(key)
        if new_entry is None:
            result.only_base.append(key)
            continue
        result.deltas.append(PointDelta(
            benchmark=base_entry["benchmark"],
            scheduler=base_entry["scheduler"],
            config=base_entry["config"],
            base_cycles=base_entry.get("total_cycles", 0),
            new_cycles=new_entry.get("total_cycles", 0),
            base_load_interlock=base_entry.get("load_interlock_cycles"),
            new_load_interlock=new_entry.get("load_interlock_cycles")))
    result.only_new.extend(k for k in new_runs if k not in base_runs)
    return result


def diff_manifest_files(base_path: str | Path, new_path: str | Path,
                        threshold: float = 0.02) -> DiffResult:
    """Load two manifest files and diff them.

    Raises ``OSError`` / ``json.JSONDecodeError`` for unreadable input;
    the CLI converts those into one-line errors.
    """
    base = json.loads(Path(base_path).read_text())
    new = json.loads(Path(new_path).read_text())
    return diff_manifests(base, new, threshold=threshold)
