"""Compiled block-at-a-time execution engines for the simulator.

The reference interpreter in :mod:`repro.machine.simulator` pays a
per-instruction tax for generality: tuple unpacking of the decoded
form, dict-based class counting, dispatch over opcode ranges, and a
Python-level readiness loop.  This module removes that tax for the
paper's machine (single issue, one memory port, no stall attribution)
by *compiling* each basic block to a specialized Python function:

* **Full variants** inline the decoded fields as literals (register
  slots, immediates, latencies, branch targets) and keep the cycle
  counter symbolic: within a block the current cycle is ``t + K`` for
  a compile-time constant ``K``, and ``t`` is only materialized when
  an interlock or memory-system stall actually moves time.  Cache,
  TLB, MSHR and branch-predictor interactions go through the same
  model objects as the interpreter, so timing is bit-identical.
* **Replay variants** memoize the steady state: once caches, TLBs and
  the MSHRs have converged (every line/page a block touches is
  resident and no miss is in flight), a block's memory-system
  behaviour is a pure function of its entry state.  The replay
  variant checks that convergence with cheap guards (tag compares,
  dict membership, one "no miss outstanding" compare), *mutating
  nothing* until every guard has passed, then executes the block with
  batched metric updates and literal LRU refreshes.  Any guard
  failure returns ``None`` and the driver falls back to the full
  variant; 64 consecutive failures disable a block's replay variant
  (cold blocks should not pay for their own guards).
* **Profile mode** (:func:`run_profile`) executes architecturally
  only: registers, memory, branch outcomes, and the block/edge
  frequencies the compiler's trace picker needs — no timing, cache or
  predictor state at all.  Cycle counters are placeholders.

``build_engine`` returns ``None`` whenever the configuration needs
the interpreter (multi-issue, multiple memory ports, stall
attribution, profiling), keeping the fallback decision in one place.
"""

from __future__ import annotations

from ..obs.metrics import REGISTRY as _METRICS
from .simulator import SimulationError

#: Engine counters (repro.obs.metrics).  Replay dispatch outcomes are
#: tallied in plain local ints inside the hot driver loop and folded
#: into the registry once at finalize; the code-object cache counters
#: bump once per engine build.  Neither touches timing state.
_M_REPLAY_HITS = _METRICS.counter(
    "repro_fastsim_replay_hits_total",
    "block executions served by a memoized replay variant")
_M_REPLAY_MISSES = _METRICS.counter(
    "repro_fastsim_replay_misses_total",
    "replay guard failures that fell back to the full variant")
_M_CODE_HITS = _METRICS.counter(
    "repro_fastsim_code_cache_hits_total",
    "engine builds that reused a cached compiled code object")
_M_CODE_MISSES = _METRICS.counter(
    "repro_fastsim_code_cache_misses_total",
    "engine builds that compiled fresh bytecode")

# Shared counter-vector indices: one flat list instead of per-event
# attribute updates; flushed into Metrics once at the end of a run.
_LI, _FI, _IC, _BS, _MS, _SPL, _SPS, _MP = range(8)
_CLS = {"short_int": 8, "long_int": 9, "short_fp": 10, "long_fp": 11,
        "loads": 12, "stores": 13, "branches": 14}
_NCTR = 15

#: Consecutive guard failures after which a block's replay variant is
#: dropped (reset on every success): blocks whose working set never
#: converges should not pay guard cost forever.
REPLAY_DISABLE_AFTER = 64

_M64 = (1 << 64) - 1

_BINOP = {11: "+", 12: "-", 13: "*", 16: "&", 17: "|", 18: "^",
          27: "+", 28: "-", 29: "*"}
_CMPOP = {22: "==", 23: "!=", 24: "<", 25: "<=",
          31: "==", 32: "!=", 33: "<", 34: "<="}
_FLDI2 = 37     # dead opcode slot: the interpreter rejects it at
                # execution, so its presence forces the reference path


def _leaders(decoded, extra=()):
    """Basic-block leader pcs: entry, branch targets, fall-throughs."""
    n = len(decoded)
    leaders = {0} | {i for i in extra if 0 <= i < n}
    for p, ins in enumerate(decoded):
        if 6 <= ins[0] <= 9:            # BR, BEQ, BNE, HALT
            if p + 1 < n:
                leaders.add(p + 1)
            if ins[5] >= 0:
                leaders.add(ins[5])
    return sorted(leaders)


class _Gen:
    """Source generator for one simulator's block functions."""

    def __init__(self, sim):
        self.sim = sim
        self.cfg = sim.config
        self.d = sim._decoded
        self.memb = len(sim.memory) << 3
        self.out: list[str] = []
        self.ctr = [0] * _NCTR
        #: Per-block execution counters: block bodies bump a single
        #: dedicated ctr slot; statically known per-execution counts
        #: (instruction classes, spills, L1 access totals) multiply out
        #: at finalize instead of running per call.
        self.blocks: list[tuple] = []
        self.slot_of: dict[int, int] = {}
        self.inline_mem = (self.cfg.memory_model == "hierarchy"
                           and sim.l1d.assoc == 1)
        # When every page the program can touch fits in a TLB at once,
        # evictions never happen and LRU refresh order is unobservable:
        # the per-access dict reorder can be elided entirely.
        self.small_dspace = (((self.memb - 1) >> sim.dtlb.page_shift)
                             + 1 <= self.cfg.dtlb.entries)
        self.small_ispace = (((len(self.d) * 4 - 1)
                              >> sim.itlb.page_shift)
                             + 1 <= self.cfg.itlb.entries)

    def w(self, ind, text):
        self.out.append(" " * ind + text)

    def register_block(self, start, end):
        """Assign *start*'s block a ctr slot; record static counts."""
        slot = _NCTR + len(self.blocks)
        counts = [0] * _NCTR
        nl = 0
        for p in range(start, end):
            ins = self.d[p]
            counts[_CLS[ins[7]]] += 1
            if ins[8]:                  # spill load/store
                counts[_SPL if ins[0] <= 1 else _SPS] += 1
            if ins[0] <= 1:
                nl += 1
        ni = 0
        if not self.cfg.perfect_icache and self.sim.l1i.assoc == 1:
            for p in range(start + 1, end):
                if (p << 2) >> 5 != ((p - 1) << 2) >> 5:
                    ni += 1
        self.blocks.append((slot, counts,
                            nl if self.inline_mem else 0, ni))
        self.slot_of[start] = slot
        self.ctr.append(0)
        return slot

    # ------------------------------------------------------- readiness
    def _alu_value(self, ind, code, a, b, dread, target, pc):
        """Emit architectural execution of an ALU op into *target*.

        *a*/*b* are operand expressions, *dread* the expression for the
        current destination value (CMOV family), *target* the lvalue.
        """
        w = self.w
        if code in _BINOP:
            w(ind, f"{target} = {a} {_BINOP[code]} {b}")
        elif code in _CMPOP:
            w(ind, f"{target} = 1 if {a} {_CMPOP[code]} {b} else 0")
        elif code in (14, 15):          # DIVQ / REMQ
            w(ind, f"x = {a}")
            w(ind, f"y = {b}")
            w(ind, "if y == 0:")
            w(ind + 1, f'raise E("division by zero at pc {pc}")')
            w(ind, "v = abs(x) // abs(y)")
            w(ind, "if (x < 0) != (y < 0):")
            w(ind + 1, "v = -v")
            if code == 14:
                w(ind, f"{target} = v")
            else:
                w(ind, f"{target} = x - v * y")
        elif code == 19:                # SLL with 64-bit wrap
            w(ind, f"v = ({a} << {b}) & {_M64}")
            w(ind, f"if v >= {1 << 63}:")
            w(ind + 1, f"v -= {1 << 64}")
            w(ind, f"{target} = v")
        elif code == 20:
            w(ind, f"{target} = ({a} & {_M64}) >> {b}")
        elif code == 21:
            w(ind, f"{target} = {a} >> {b}")
        elif code in (26, 35):          # MOV / FMOV
            w(ind, f"{target} = {a}")
        elif code == 30:                # FDIV
            w(ind, f"y = {b}")
            w(ind, "if y == 0.0:")
            w(ind + 1, f'raise E("fp division by zero at {pc}")')
            w(ind, f"{target} = {a} / y")
        elif code == 36:
            w(ind, f"{target} = -{a}")
        elif code == 38:
            w(ind, f"{target} = float({a})")
        elif code == 39:
            w(ind, f"{target} = int({a})")
        elif code in (40, 41, 42, 43):  # CMOV family
            op = "==" if code in (40, 42) else "!="
            w(ind, f"{target} = ({b}) if {a} {op} 0 else {dread}")
        else:                           # pragma: no cover - build_engine
            raise AssertionError(f"unsupported opcode code {code}")

    # ---------------------------------------------------- class batches
    def _batches(self, ind, start, end):
        """One execution-count bump; static counts multiply at finalize."""
        slot = self.slot_of.get(start)
        if slot is None:
            slot = self.register_block(start, end)
        self.w(ind, f"ctr[{slot}] += 1")

    # -------------------------------------------------- fetch modelling
    def _icheck(self, ind, ad, count_access):
        """I-cache probe for the fetch line holding byte address *ad*.

        Direct-mapped L1I inlines both paths: a tag compare on hit, a
        manual fill (misses bump + tag replace) on miss — equivalent to
        ``Cache.lookup`` when the set holds a single way.  Interior
        probes run unconditionally every execution, so their access
        counts are statically batched (*count_access* False); the
        entry probe is dynamic and counts inline.  Associative
        configurations go through the model's ``lookup``.
        """
        w = self.w
        l1i = self.sim.l1i
        if l1i.assoc == 1:
            cl = ad >> l1i.line_shift
            if count_access:
                w(ind, "L1IST.accesses += 1")
            w(ind, f"wv = L1IW[{cl & l1i.set_mask}]")
            w(ind, f"if not wv or wv[0] != {cl}:")
            w(ind + 1, "L1IST.misses += 1")
            w(ind + 1, f"wv[:] = ({cl},)")
            w(ind + 1, f"x = IFILL({ad})")
            w(ind + 1, "ctr[2] += x")
            w(ind + 1, "t += x")
        else:
            w(ind, f"if not L1I({ad}):")
            w(ind + 1, f"x = IFILL({ad})")
            w(ind + 1, "ctr[2] += x")
            w(ind + 1, "t += x")

    def _fetch_full(self, ind, p, start):
        """I-cache/I-TLB fetch check, line-memoized like the interpreter
        (32-byte line / 8 KB page granularity is hardcoded there)."""
        if self.cfg.perfect_icache:
            return
        w = self.w
        ad = p << 2
        ln, pg = ad >> 5, ad >> 13
        pen = self.cfg.itlb.miss_penalty
        if p == start:
            w(ind, f"if lastL != {ln}:")
            w(ind + 1, f"lastL = {ln}")
            w(ind + 1, f"if {pg} != lastP:")
            w(ind + 2, f"lastP = {pg}")
            w(ind + 2, f"if not ITLB({ad}):")
            w(ind + 3, f"ctr[2] += {pen}")
            w(ind + 3, f"t += {pen}")
            self._icheck(ind + 1, ad, count_access=True)
        elif ln != ((p - 1) << 2) >> 5:
            # Interior line change: the memo test is statically true
            # (after executing p-1, lastL == line(p-1) != line(p)).
            w(ind, f"lastL = {ln}")
            if pg != ((p - 1) << 2) >> 13:
                w(ind, f"lastP = {pg}")
                w(ind, f"if not ITLB({ad}):")
                w(ind + 1, f"ctr[2] += {pen}")
                w(ind + 1, f"t += {pen}")
            self._icheck(ind, ad,
                         count_access=self.sim.l1i.assoc != 1)

    # ------------------------------------------------------ full blocks
    def _prepass(self, start, end):
        """Dataflow over the block for the SSA full variant.

        Returns ``(needs_q, finals)``: positions whose ready-time temp
        is consumed by a later check that cannot be folded away, and
        positions that are the last tracked write of their slot (whose
        temp escapes into the shared scoreboard at commit).  A consumer
        check folds when its in-block producer has a static latency no
        larger than the instruction distance: issue time advances at
        least one cycle per instruction, so the operand is provably
        ready and the interpreter's comparison is statically false.
        """
        d = self.d
        needs_q = set()
        writer = {}                     # slot -> (pos, static lat | None)
        last_w = {}                     # slot -> last tracked write pos
        for p in range(start, end):
            (code, dest, srcs, _imm, _off, _tgt, latency, _cls,
             _spill, reads_dest, track) = d[p]
            if code <= 3 or code in (7, 8) or code >= 11:
                reads = list(srcs)
                if code >= 11 and reads_dest and dest >= 0:
                    reads.append(dest)
                for s in reads:
                    if s in writer:
                        pp, lat = writer[s]
                        if lat is None or lat > p - pp:
                            needs_q.add(pp)
            if track and (code <= 1 or code in (4, 5) or code >= 11):
                lat = None if code <= 1 else (
                    1 if code in (4, 5) else latency)
                writer[dest] = (p, lat)
                last_w[dest] = p
        return needs_q, set(last_w.values())

    def emit_full(self, name, start, end):
        """Timing-exact block body in SSA form.

        Register values live in per-instruction temporaries and commit
        to the shared arrays only at block exit (last write per slot);
        scoreboard ready times likewise.  Operand checks against
        in-block producers with static latencies fold away entirely
        when the instruction distance already covers the latency, and
        loads/stores inline the L1-hit path (direct-mapped tag probe +
        TLB refresh) to skip the ``_dload``/``_dstore`` calls in the
        common case.  Mid-block raises leave the shared arrays at the
        previous commit point — post-error architectural state is
        non-contractual (the interpreter's is per-instruction).
        """
        d = self.d
        w = self.w
        cfg = self.cfg
        sim = self.sim
        w(1, f"def {name}(t, lastL, lastP):")
        ind = 2
        self._batches(ind, start, end)
        needs_q, finals = self._prepass(start, end)
        inline_mem = (cfg.memory_model == "hierarchy"
                      and sim.l1d.assoc == 1)
        dsh = sim.dtlb.page_shift
        lsh = sim.l1d.line_shift
        lmask = sim.l1d.set_mask
        l1d_lat = cfg.l1d.latency
        shadow = {}                     # slot -> value expression
        srdy = {}                       # slot -> (q temp, from_load)
        elig = {}                       # slot -> (pos, static lat | None)

        def val(slot):
            return shadow.get(slot, f"R[{slot}]")

        def rentry(slot, kc, dest_read=False):
            if slot in elig:
                pp, lat = elig[slot]
                if lat is not None and lat <= kc - pp:
                    return None         # statically ready
                qv, fload = srdy[slot]
                return (qv, "True" if fload else "False", dest_read)
            return (f"RDY[{slot}]", f"F[{slot}]", dest_read)

        def check(kk, reads, dread=None):
            kc = kk                     # block-relative position
            ent = [rentry(s, kc) for s in reads]
            if dread is not None:
                ent.append(rentry(dread, kc, dest_read=True))
            self._readiness2(ind, K, [e for e in ent if e],
                             li="ctr[0]", fi="ctr[1]")

        def commit(ind):
            for slot, expr in shadow.items():
                w(ind, f"R[{slot}] = {expr}")
            for slot, (qv, fload) in srdy.items():
                w(ind, f"RDY[{slot}] = {qv}")
                w(ind, f"F[{slot}] = {fload}")

        K = 0
        for p in range(start, end):
            (code, dest, srcs, imm, offset, target, latency, _cls,
             _spill, reads_dest, track) = d[p]
            self._fetch_full(ind, p, start)
            tk = f"t + {K}" if K else "t"
            n = p - start
            qneed = track and (p in needs_q or p in finals)
            if code <= 1:               # LD / FLD
                check(K, srcs)
                off = f" + {offset}" if offset else ""
                w(ind, f"a{n} = {val(srcs[0])}{off}")
                w(ind, f"if a{n} < 0 or a{n} >= {self.memb}:")
                w(ind + 1, f'raise E("load address " + str(a{n}) + '
                           f'"{" out of range at pc " + str(p)}")')
                if inline_mem:
                    w(ind, f"x = a{n} >> {lsh}")
                    w(ind, f"wv = L1DW[x & {lmask}]")
                    hit = (f"wv and wv[0] == x and a{n} >> {dsh} in DT"
                           f" and (x not in MSHR or MSHR[x] <= {tk})")
                    if self.small_dspace and not qneed:
                        w(ind, f"if not ({hit}):")
                        body = ind + 1
                    else:
                        w(ind, f"if {hit}:")
                        if not self.small_dspace:
                            w(ind + 1, f"g = a{n} >> {dsh}")
                            w(ind + 1, "del DT[g]")
                            w(ind + 1, "DT[g] = None")
                        if qneed:
                            w(ind + 1, f"q{n} = t + {K + l1d_lat}")
                        w(ind, "else:")
                        body = ind + 1
                else:
                    body = ind
                w(body, f"lat, st = DLOAD(a{n}, {tk})")
                if inline_mem:
                    # static per-block access totals already count this
                    # load; DLOAD's internal lookup counted it again.
                    w(body, "L1DST.accesses -= 1")
                w(body, "if st:")
                w(body + 1, "ctr[4] += st")
                w(body + 1, "ctr[0] += st")
                w(body + 1, "t += st")
                if qneed:
                    w(body, f"q{n} = t + lat" +
                      (f" + {K}" if K else ""))
                w(ind, f"v{n} = MEM[a{n} >> 3]")
                shadow[dest] = f"v{n}"
                if track:
                    if qneed:
                        srdy[dest] = (f"q{n}", True)
                    else:
                        srdy.pop(dest, None)
                    elig[dest] = (n, None)
                K += 1
            elif code <= 3:             # ST / FST
                check(K, srcs)
                off = f" + {offset}" if offset else ""
                w(ind, f"a{n} = {val(srcs[1])}{off}")
                w(ind, f"if a{n} < 0 or a{n} >= {self.memb}:")
                w(ind + 1, f'raise E("store address " + str(a{n}) + '
                           f'"{" out of range at pc " + str(p)}")')
                if inline_mem and self.small_dspace:
                    w(ind, f"x = a{n} >> {lsh}")
                    w(ind, f"wv = L1DW[x & {lmask}]")
                    w(ind, f"if not (wv and wv[0] == x "
                           f"and a{n} >> {dsh} in DT):")
                    w(ind + 1, f"DSTORE(a{n})")
                elif inline_mem:
                    w(ind, f"g = a{n} >> {dsh}")
                    w(ind, f"x = a{n} >> {lsh}")
                    w(ind, f"wv = L1DW[x & {lmask}]")
                    w(ind, "if g in DT and wv and wv[0] == x:")
                    w(ind + 1, "del DT[g]")
                    w(ind + 1, "DT[g] = None")
                    w(ind, "else:")
                    w(ind + 1, f"DSTORE(a{n})")
                else:
                    w(ind, f"DSTORE(a{n})")
                w(ind, f"MEM[a{n} >> 3] = {val(srcs[0])}")
                K += 1
            elif code <= 5:             # LDI / FLDI
                shadow[dest] = repr(imm)
                if track:
                    if qneed:
                        w(ind, f"q{n} = t + {K + 1}")
                        srdy[dest] = (f"q{n}", False)
                    else:
                        srdy.pop(dest, None)
                    elig[dest] = (n, 1)
                K += 1
            elif code == 6:             # BR
                commit(ind)
                w(ind, f"return {target}, t + {K + 2}, lastL, lastP")
                return
            elif code <= 8:             # BEQ / BNE
                check(K, srcs)
                cond = val(srcs[0])
                commit(ind)
                self._branch(ind, p, code, cond, target, K,
                             "lastL", "lastP")
                return
            elif code == 9:             # HALT
                commit(ind)
                w(ind, f"return -1, t + {K + 1}, lastL, lastP")
                return
            elif code == 10:            # NOP
                K += 1
            else:                       # ALU
                check(K, srcs,
                      dest if reads_dest and dest >= 0 else None)
                a = val(srcs[0]) if srcs else repr(imm)
                b = val(srcs[1]) if len(srcs) > 1 else repr(imm)
                self._alu_value(ind, code, a, b, val(dest),
                                f"v{n}", p)
                shadow[dest] = f"v{n}"
                if track:
                    if qneed:
                        w(ind, f"q{n} = t + {K + latency}")
                        srdy[dest] = (f"q{n}", False)
                    else:
                        srdy.pop(dest, None)
                    elig[dest] = (n, latency)
                K += 1
        commit(ind)
        w(ind, f"return {end}, t + {K}, lastL, lastP")

    def _branch(self, ind, p, code, cond, target, K, exL, exP):
        """Conditional terminator with the 2-bit predictor inlined.

        *cond* is the expression for the tested register value.
        """
        w = self.w
        pen = self.cfg.branch_mispredict_penalty
        idx = p & self.sim.bpred.mask
        op = "==" if code == 7 else "!="
        w(ind, f"c = BP[{idx}]")
        w(ind, f"if {cond} {op} 0:")
        w(ind + 1, "if c < 3:")
        w(ind + 2, f"BP[{idx}] = c + 1")
        w(ind + 1, "if c >= 2:")
        w(ind + 2, f"return {target}, t + {K + 2}, {exL}, {exP}")
        w(ind + 1, "ctr[7] += 1")
        if pen:
            w(ind + 1, f"ctr[3] += {pen}")
        w(ind + 1, f"return {target}, t + {K + 1 + pen}, {exL}, {exP}")
        w(ind, "if c > 0:")
        w(ind + 1, f"BP[{idx}] = c - 1")
        w(ind, "if c >= 2:")
        w(ind + 1, "ctr[7] += 1")
        if pen:
            w(ind + 1, f"ctr[3] += {pen}")
        w(ind + 1, f"return {p + 1}, t + {K + 1 + pen}, {exL}, {exP}")
        w(ind, f"return {p + 1}, t + {K + 1}, {exL}, {exP}")

    # ---------------------------------------------------- replay blocks
    def can_replay(self, start, end):
        """Static eligibility for a guarded steady-state variant."""
        if self.cfg.memory_model != "hierarchy":
            return False                # stochastic latency is per-load
        if self.sim.l1d.assoc != 1:
            return False                # hits would shuffle LRU state
        if not self.cfg.perfect_icache and self.sim.l1i.assoc != 1:
            return False
        seen_store = False
        for p in range(start, end):
            code = self.d[p][0]
            if code == 9:
                return False            # HALT blocks run once
            if code in (2, 3):
                seen_store = True
            elif code <= 1 and seen_store:
                # The compute phase reads memory before the commit
                # phase applies the block's stores, so a load after a
                # store could observe a stale value if they alias.
                return False
        return True

    def _readiness2(self, ind, K, entries, li="li", fi="fi"):
        """Scoreboard check over expression operands.

        *entries* is a list of ``(ready_expr, from_load_expr,
        is_dest_read)``; ``from_load_expr`` may be the literal
        ``"True"``/``"False"`` for in-block producers, which folds the
        attribution branches.  Interlock cycles accumulate into the
        *li*/*fi* sink expressions (``ctr[...]`` slots for the full
        variant, locals for the replay variant's deferred commit).
        """
        w = self.w
        tk = f"t + {K}" if K else "t"
        dl = f" - {K}" if K else ""
        # An exact duplicate operand (same ready expr, same producer)
        # is a no-op after its first occurrence: the second main check
        # can never raise s further, and its tie elif can only re-set
        # a flag the first occurrence already determined.
        seen = set()
        entries = [e for e in entries
                   if not (e in seen or seen.add(e))]
        if not entries:
            return
        # The no-stall case is the hot one: test the raw ready-time
        # expressions directly and only bind them to locals inside the
        # (rare) stall branch, re-reading the scoreboard there.
        if len(entries) == 1 and not entries[0][2]:
            rx, fl, _ = entries[0]
            w(ind, f"if {rx} > {tk}:")
            if fl == "True":
                w(ind + 1, f"{li} += {rx} - t{dl}")
            elif fl == "False":
                w(ind + 1, f"{fi} += {rx} - t{dl}")
            else:
                w(ind + 1, f"r0 = {rx}")
                rx = "r0"
                w(ind + 1, f"if {fl}:")
                w(ind + 2, f"{li} += {rx} - t{dl}")
                w(ind + 1, "else:")
                w(ind + 2, f"{fi} += {rx} - t{dl}")
            w(ind + 1, f"t = {rx}{dl}")
            return
        cond = " or ".join(f"{rx} > {tk}" for rx, _, _ in entries)
        w(ind, f"if {cond}:")
        names = []
        for i, (rx, fl, dr) in enumerate(entries):
            if rx.startswith("RDY["):
                w(ind + 1, f"r{i} = {rx}")
                names.append((f"r{i}", fl, dr))
            else:
                names.append((rx, fl, dr))
        w(ind + 1, f"s = {tk}")
        # When every producer has the same constant attribution the
        # interlock flag is statically known: all-fixed makes il False
        # on every path, and all-load makes it True — the outer cond
        # guarantees at least one raise, and every raise (including a
        # dest read) sets the flag, so only the max matters.
        fls = {fl for _, fl, _ in entries}
        if fls == {"False"} or fls == {"True"}:
            for nm, _, _ in names:
                w(ind + 1, f"if {nm} > s:")
                w(ind + 2, f"s = {nm}")
            sink = li if fls == {"True"} else fi
            w(ind + 1, f"{sink} += s - t{dl}")
            w(ind + 1, f"t = s{dl}")
            return
        w(ind + 1, "il = False")
        for i, (nm, fl, dr) in enumerate(names):
            w(ind + 1, f"if {nm} > s:")
            w(ind + 2, f"s = {nm}")
            w(ind + 2, f"il = {fl}")
            if i > 0 and not dr:
                if fl == "True":
                    w(ind + 1, f"elif {nm} == s and s > {tk}:")
                    w(ind + 2, "il = True")
                elif fl != "False":
                    w(ind + 1,
                      f"elif {nm} == s and {fl} and s > {tk}:")
                    w(ind + 2, "il = True")
        w(ind + 1, "if il:")
        w(ind + 2, f"{li} += s - t{dl}")
        w(ind + 1, "else:")
        w(ind + 2, f"{fi} += s - t{dl}")
        w(ind + 1, f"t = s{dl}")

    def emit_replay(self, name, start, end):
        """Two-phase steady-state variant.

        Phase 1 computes every value into SSA-style temporaries and
        checks the convergence guards (lines/pages resident, no miss
        in flight, addresses in bounds) without mutating anything; any
        failure returns ``None``.  Phase 2 commits registers, memory,
        scoreboard entries, LRU refreshes and batched counters, then
        resolves the terminator with the predictor inlined.
        """
        d = self.d
        w = self.w
        cfg = self.cfg
        sim = self.sim
        w(1, f"def {name}(t, lastL, lastP):")
        ind = 2
        dsh = sim.dtlb.page_shift
        lsh = sim.l1d.line_shift
        lmask = sim.l1d.set_mask
        l1d_lat = cfg.l1d.latency
        has_load = any(d[p][0] <= 1 for p in range(start, end))
        if has_load:
            w(ind, "if SIM._mshr_max > t:")
            w(ind + 1, "return None")   # a miss is still in flight
        # Fetch guards: every line/page the block touches must be
        # resident; only the entry line's memo test is dynamic.
        n_interior = 0
        entry_pg = None
        interior_pages = {}             # p -> itlb page to refresh
        if not cfg.perfect_icache:
            ish = sim.l1i.line_shift
            imask = sim.l1i.set_mask
            psh = sim.itlb.page_shift
            ad0 = start << 2
            cl0 = ad0 >> ish
            w(ind, "ia = 0")
            w(ind, f"if lastL != {ad0 >> 5}:")
            w(ind + 1, f"if {ad0 >> 13} != lastP"
                       f" and {ad0 >> psh} not in IT:")
            w(ind + 2, "return None")
            w(ind + 1, f"ways = L1IW[{cl0 & imask}]")
            w(ind + 1, f"if not ways or ways[0] != {cl0}:")
            w(ind + 2, "return None")
            w(ind + 1, "ia = 1")
            entry_pg = (ad0 >> 13, ad0 >> psh)
            for p in range(start + 1, end):
                ad = p << 2
                if (ad >> 5) == ((p - 1) << 2) >> 5:
                    continue
                n_interior += 1
                cl = ad >> ish
                w(ind, f"ways = L1IW[{cl & imask}]")
                w(ind, f"if not ways or ways[0] != {cl}:")
                w(ind + 1, "return None")
                if (ad >> 13) != ((p - 1) << 2) >> 13:
                    w(ind, f"if {ad >> psh} not in IT:")
                    w(ind + 1, "return None")
                    interior_pages[p] = ad >> psh
            exL, exP = self._exit_fetch(start, end)
        else:
            exL, exP = "lastL", "lastP"
        # ---- phase 1: pure compute + guards.
        w(ind, "li = 0")
        w(ind, "fi = 0")
        shadow = {}                     # slot -> value expression
        srdy = {}                       # slot -> (ready var, from_load)
        commits = []                    # ordered phase-2 actions
        n_loads = 0

        def val(slot):
            return shadow.get(slot, f"R[{slot}]")

        def rentry(slot, dest_read=False):
            if slot in srdy:
                qv, fload = srdy[slot]
                return (qv, "True" if fload else "False", dest_read)
            return (f"RDY[{slot}]", f"F[{slot}]", dest_read)

        K = 0
        terminator = None
        for p in range(start, end):
            (code, dest, srcs, imm, offset, target, latency, _cls,
             _spill, reads_dest, track) = d[p]
            n = p - start
            if code <= 1:               # load: must be an L1D hit
                self._readiness2(ind, K, [rentry(srcs[0])])
                off = f" + {offset}" if offset else ""
                w(ind, f"a{n} = {val(srcs[0])}{off}")
                w(ind, f"if a{n} < 0 or a{n} >= {self.memb}:")
                w(ind + 1, "return None")   # full variant raises
                w(ind, f"g{n} = a{n} >> {dsh}")
                w(ind, f"if g{n} not in DT:")
                w(ind + 1, "return None")
                w(ind, f"x = a{n} >> {lsh}")
                w(ind, f"ways = L1DW[x & {lmask}]")
                w(ind, f"if not ways or ways[0] != x:")
                w(ind + 1, "return None")
                w(ind, f"v{n} = MEM[a{n} >> 3]")
                shadow[dest] = f"v{n}"
                if track:
                    w(ind, f"q{n} = t + {K + l1d_lat}")
                    srdy[dest] = (f"q{n}", True)
                commits.append(("tlb", f"g{n}"))
                n_loads += 1
                K += 1
            elif code <= 3:             # store: line already in L1D
                self._readiness2(
                    ind, K, [rentry(srcs[0]), rentry(srcs[1])])
                off = f" + {offset}" if offset else ""
                w(ind, f"a{n} = {val(srcs[1])}{off}")
                w(ind, f"if a{n} < 0 or a{n} >= {self.memb}:")
                w(ind + 1, "return None")
                w(ind, f"g{n} = a{n} >> {dsh}")
                w(ind, f"if g{n} not in DT:")
                w(ind + 1, "return None")
                w(ind, f"x = a{n} >> {lsh}")
                w(ind, f"ways = L1DW[x & {lmask}]")
                w(ind, f"if not ways or ways[0] != x:")
                w(ind + 1, "return None")
                commits.append(("tlb", f"g{n}"))
                commits.append(("mem", f"a{n}", val(srcs[0])))
                K += 1
            elif code <= 5:             # LDI / FLDI
                shadow[dest] = repr(imm)
                if track:
                    w(ind, f"q{n} = t + {K + 1}")
                    srdy[dest] = (f"q{n}", False)
                K += 1
            elif code == 6:             # BR
                terminator = ("br", target, K + 2)
                break
            elif code <= 8:             # BEQ / BNE
                self._readiness2(ind, K, [rentry(srcs[0])])
                terminator = ("cond", p, code, srcs[0], target, K)
                break
            elif code == 10:            # NOP
                K += 1
            else:                       # ALU
                entries = [rentry(s) for s in srcs]
                if reads_dest and dest >= 0:
                    entries.append(rentry(dest, dest_read=True))
                self._readiness2(ind, K, entries)
                a = val(srcs[0]) if srcs else repr(imm)
                b = val(srcs[1]) if len(srcs) > 1 else repr(imm)
                dread = val(dest)
                self._alu_value(ind, code, a, b, dread, f"v{n}", p)
                shadow[dest] = f"v{n}"
                if track:
                    w(ind, f"q{n} = t + {K + latency}")
                    srdy[dest] = (f"q{n}", False)
                K += 1
        # ---- phase 2: commit.
        self._batches(ind, start, end)
        if not cfg.perfect_icache:
            # Interior probe accesses are in the block's static counts;
            # only the conditional entry probe counts dynamically.
            w(ind, "if ia:")
            w(ind + 1, "L1IST.accesses += 1")
            if not self.small_ispace:
                w(ind + 1, f"if {entry_pg[0]} != lastP:")
                w(ind + 2, f"del IT[{entry_pg[1]}]")
                w(ind + 2, f"IT[{entry_pg[1]}] = None")
            if not self.small_ispace:
                for pg in interior_pages.values():
                    w(ind, f"del IT[{pg}]")
                    w(ind, f"IT[{pg}] = None")
        for action in commits:
            if action[0] == "tlb":
                if not self.small_dspace:
                    w(ind, f"del DT[{action[1]}]")
                    w(ind, f"DT[{action[1]}] = None")
            else:
                w(ind, f"MEM[{action[1]} >> 3] = {action[2]}")
        for slot, expr in shadow.items():
            w(ind, f"R[{slot}] = {expr}")
        for slot, (qv, fload) in srdy.items():
            w(ind, f"RDY[{slot}] = {qv}")
            w(ind, f"F[{slot}] = {fload}")
        w(ind, "ctr[0] += li")
        w(ind, "ctr[1] += fi")
        if terminator is None:
            w(ind, f"return {end}, t + {K}, {exL}, {exP}")
        elif terminator[0] == "br":
            w(ind, f"return {terminator[1]}, t + {terminator[2]}, "
                   f"{exL}, {exP}")
        else:
            _tag, p, code, s0, target, K = terminator
            self._branch(ind, p, code, val(s0), target, K, exL, exP)

    def _exit_fetch(self, start, end):
        """Static exit values of the fetch memo (last line executed)."""
        ad = (end - 1) << 2
        return str(ad >> 5), str(ad >> 13)

    # --------------------------------------------------- profile blocks
    def emit_profile(self, name, start, end, label):
        d = self.d
        w = self.w
        w(1, f"def {name}(cur):")
        ind = 2
        if label is not None:
            w(ind, f"BC[{label!r}] = BC.get({label!r}, 0) + 1")
            w(ind, "if cur is not None:")
            w(ind + 1, f"e = (cur, {label!r})")
            w(ind + 1, "EC[e] = EC.get(e, 0) + 1")
            w(ind, f"cur = {label!r}")
        self._batches(ind, start, end)
        for p in range(start, end):
            (code, dest, srcs, imm, offset, target, _lat, _cls,
             _spill, _rd, _track) = d[p]
            if code <= 1:
                off = f" + {offset}" if offset else ""
                w(ind, f"a = R[{srcs[0]}]{off}")
                w(ind, f"if a < 0 or a >= {self.memb}:")
                w(ind + 1, 'raise E("load address " + str(a) + '
                           f'"{" out of range at pc " + str(p)}")')
                w(ind, f"R[{dest}] = MEM[a >> 3]")
            elif code <= 3:
                off = f" + {offset}" if offset else ""
                w(ind, f"a = R[{srcs[1]}]{off}")
                w(ind, f"if a < 0 or a >= {self.memb}:")
                w(ind + 1, 'raise E("store address " + str(a) + '
                           f'"{" out of range at pc " + str(p)}")')
                w(ind, f"MEM[a >> 3] = R[{srcs[0]}]")
            elif code <= 5:
                w(ind, f"R[{dest}] = {imm!r}")
            elif code == 6:
                w(ind, f"return {target}, cur")
                return
            elif code <= 8:
                op = "==" if code == 7 else "!="
                w(ind, f"if R[{srcs[0]}] {op} 0:")
                w(ind + 1, f"return {target}, cur")
                w(ind, f"return {p + 1}, cur")
                return
            elif code == 9:
                w(ind, "return -1, cur")
                return
            elif code == 10:
                pass
            else:
                a = f"R[{srcs[0]}]" if srcs else repr(imm)
                b = f"R[{srcs[1]}]" if len(srcs) > 1 else repr(imm)
                self._alu_value(ind, code, a, b, f"R[{dest}]",
                                f"R[{dest}]", p)
        w(ind, f"return {end}, cur")


def _block_spans(decoded, extra=()):
    starts = _leaders(decoded, extra)
    n = len(decoded)
    return [(s, starts[i + 1] if i + 1 < len(starts) else n)
            for i, s in enumerate(starts)]


_TIMING_BINDINGS = [
    "R = S.regs", "RDY = S.ready", "F = S.from_load", "MEM = S.memory",
    "DLOAD = S._dload", "DSTORE = S._dstore",
    "IFILL = S._ifill_latency", "ITLB = S.itlb.lookup",
    "L1I = S.l1i.lookup", "BP = S.bpred.counters", "SIM = S",
    "DT = S.dtlb.pages", "IT = S.itlb.pages", "L1DW = S.l1d.sets",
    "L1IW = S.l1i.sets", "L1DST = S.l1d.stats", "L1IST = S.l1i.stats",
    "MSHR = S._mshr",
]


#: Compiled code-object cache keyed by generated source.  Bytecode
#: compilation dominates engine-build time (~75%); the generated source
#: is a pure function of (program, config, data size), so repeated
#: Simulator constructions over the same compiled program — the grid
#: runner's common case — reuse the bytecode and only re-``exec`` it
#: against the new simulator's state (microseconds).
_CODE_CACHE: dict[str, object] = {}
_CODE_CACHE_MAX = 64


def _compile_cached(src, filename):
    code = _CODE_CACHE.get(src)
    if code is None:
        _M_CODE_MISSES.inc()
        code = compile(src, filename, "exec")
        if len(_CODE_CACHE) >= _CODE_CACHE_MAX:
            _CODE_CACHE.clear()
        _CODE_CACHE[src] = code
    else:
        _M_CODE_HITS.inc()
    return code


def _compile_factory(gen, body_lines, table_items, filename):
    lines = ["def _factory(S, ctr):"]
    lines += [" " + b for b in _TIMING_BINDINGS]
    lines += body_lines
    entries = ", ".join(table_items)
    lines.append(" return {%s}" % entries)
    src = "\n".join(lines) + "\n"
    namespace = {"E": SimulationError}
    exec(_compile_cached(src, filename), namespace)
    return namespace["_factory"](gen.sim, gen.ctr)


def build_engine(sim):
    """Compile *sim*'s program, or None if it needs the interpreter."""
    cfg = sim.config
    if cfg.issue_width != 1 or cfg.mem_ports != 1:
        return None
    if sim.stall_profile is not None or sim.profiling:
        return None
    decoded = sim._decoded
    if any(ins[0] == _FLDI2 for ins in decoded):
        return None
    gen = _Gen(sim)
    items = []
    for start, end in _block_spans(decoded):
        gen.emit_full(f"b{start}", start, end)
        rep = "None"
        if gen.can_replay(start, end):
            gen.emit_replay(f"r{start}", start, end)
            rep = f"r{start}"
        items.append(f"{start}: [b{start}, {end - start}, {rep}, 0]")
    table = _compile_factory(gen, gen.out, items, "<fastsim>")
    return _FastEngine(sim, table, gen.ctr, gen.blocks)


class _FastEngine:
    """Driver: dispatch compiled blocks, prefer replay variants."""

    def __init__(self, sim, table, ctr, blocks):
        self.sim = sim
        self.table = table
        self.ctr = ctr
        self.blocks = blocks
        #: Replay dispatch outcomes of the last :meth:`run` (also
        #: folded into the global metrics registry at finalize).
        self.replay_hits = 0
        self.replay_misses = 0

    def run(self, max_instructions):
        sim = self.sim
        ctr = self.ctr
        get = self.table.get
        t = 0
        pc = 0
        lastL = -1
        lastP = -1
        executed = 0
        replay_hits = 0
        replay_misses = 0
        while True:
            ent = get(pc)
            if ent is None:
                if pc < 0:
                    break
                raise SimulationError(f"pc {pc} out of range")
            nb = ent[1]
            if executed + nb > max_instructions:
                raise SimulationError("instruction limit exceeded "
                                      f"({max_instructions})")
            executed += nb
            rep = ent[2]
            if rep is not None:
                res = rep(t, lastL, lastP)
                if res is not None:
                    replay_hits += 1
                    if ent[3]:
                        ent[3] = 0
                    pc, t, lastL, lastP = res
                    continue
                replay_misses += 1
                fails = ent[3] + 1
                if fails >= REPLAY_DISABLE_AFTER:
                    ent[2] = None
                    fails = 0
                ent[3] = fails
            pc, t, lastL, lastP = ent[0](t, lastL, lastP)
        self.replay_hits = replay_hits
        self.replay_misses = replay_misses
        self._finalize(t, executed)

    def _finalize(self, t, executed):
        sim = self.sim
        ctr = self.ctr
        m = sim.metrics
        m.total_cycles = t
        m.instructions = executed
        m.load_interlock_cycles += ctr[_LI]
        m.fixed_interlock_cycles += ctr[_FI]
        m.icache_stall_cycles += ctr[_IC]
        m.branch_stall_cycles += ctr[_BS]
        m.mshr_stall_cycles += ctr[_MS]
        sim.bpred.mispredicts += ctr[_MP]
        _apply_block_counts(m, ctr, self.blocks)
        for slot, _counts, nl, ni in self.blocks:
            c = ctr[slot]
            if c:
                if nl:
                    sim.l1d.stats.accesses += c * nl
                if ni:
                    sim.l1i.stats.accesses += c * ni
        sim._flush_machine_stats()
        if self.replay_hits:
            _M_REPLAY_HITS.inc(self.replay_hits)
        if self.replay_misses:
            _M_REPLAY_MISSES.inc(self.replay_misses)


def _apply_block_counts(m, ctr, blocks):
    """Fold per-block execution counters into statically known totals."""
    for slot, counts, _nl, _ni in blocks:
        c = ctr[slot]
        if not c:
            continue
        m.spill_loads += c * counts[_SPL]
        m.spill_stores += c * counts[_SPS]
        m.short_int += c * counts[8]
        m.long_int += c * counts[9]
        m.short_fp += c * counts[10]
        m.long_fp += c * counts[11]
        m.loads += c * counts[12]
        m.stores += c * counts[13]
        m.branches += c * counts[14]


_PROFILE_BINDINGS = [
    "R = S.regs", "MEM = S.memory",
    "BC = S.block_counts", "EC = S.edge_counts",
]


def run_profile(sim, max_instructions):
    """Architectural-only execution: block/edge counts, no timing.

    Cycle counters are placeholders (``total_cycles`` = instruction
    count) — callers in profile mode consume only the block and edge
    frequencies, which match the reference run bit for bit.  Falls
    back to the reference interpreter for opcodes the generator does
    not support.
    """
    decoded = sim._decoded
    if any(ins[0] == _FLDI2 for ins in decoded):
        sim._run_reference(max_instructions)
        return
    gen = _Gen(sim)
    items = []
    for start, end in _block_spans(decoded, sim._block_starts):
        label = sim._block_starts.get(start)
        gen.emit_profile(f"p{start}", start, end, label)
        items.append(f"{start}: (p{start}, {end - start})")
    lines = ["def _factory(S, ctr):"]
    lines += [" " + b for b in _PROFILE_BINDINGS]
    lines += gen.out
    lines.append(" return {%s}" % ", ".join(items))
    namespace = {"E": SimulationError}
    exec(_compile_cached("\n".join(lines) + "\n", "<fastsim-profile>"),
         namespace)
    table = namespace["_factory"](sim, gen.ctr)
    get = table.get
    ctr = gen.ctr
    pc = 0
    cur = None
    executed = 0
    while True:
        ent = get(pc)
        if ent is None:
            if pc < 0:
                break
            raise SimulationError(f"pc {pc} out of range")
        if executed + ent[1] > max_instructions:
            raise SimulationError("instruction limit exceeded "
                                  f"({max_instructions})")
        executed += ent[1]
        pc, cur = ent[0](cur)
    m = sim.metrics
    m.total_cycles = executed
    m.instructions = executed
    _apply_block_counts(m, ctr, gen.blocks)
    sim._flush_machine_stats()
