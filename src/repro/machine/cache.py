"""Set-associative cache models with LRU replacement.

Timing-only models: they track tags, not data (the simulator keeps the
architectural memory state separately).  The L1 data cache is
*lockup-free* (Kroft-style): the simulator layers MSHR bookkeeping on
top of these tag arrays (see :mod:`repro.machine.simulator`).
"""

from __future__ import annotations

from .config import CacheLevelConfig
from .metrics import CacheStats


class Cache:
    """One cache level: ``lookup`` probes and fills on miss."""

    def __init__(self, config: CacheLevelConfig) -> None:
        self.config = config
        line = config.line_bytes
        if line & (line - 1):
            raise ValueError("line size must be a power of two")
        self.line_shift = line.bit_length() - 1
        n_lines = config.size_bytes // line
        self.assoc = config.assoc if config.assoc else n_lines
        self.n_sets = max(1, n_lines // self.assoc)
        if self.n_sets & (self.n_sets - 1):
            raise ValueError("set count must be a power of two")
        self.set_mask = self.n_sets - 1
        # Per-set list of tags in LRU order (most recent last).
        self.sets: list[list[int]] = [[] for _ in range(self.n_sets)]
        self.stats = CacheStats()

    def lookup(self, addr: int, allocate: bool = True) -> bool:
        """Probe the cache; fill on miss when *allocate*.  True = hit."""
        line = addr >> self.line_shift
        index = line & self.set_mask
        tag = line >> 0  # full line number as tag (set bits redundant, fine)
        ways = self.sets[index]
        self.stats.accesses += 1
        if tag in ways:
            if ways[-1] != tag:
                ways.remove(tag)
                ways.append(tag)
            return True
        self.stats.misses += 1
        if allocate:
            ways.append(tag)
            if len(ways) > self.assoc:
                ways.pop(0)
        return False

    def contains(self, addr: int) -> bool:
        line = addr >> self.line_shift
        return line in self.sets[line & self.set_mask]

    def invalidate(self, addr: int) -> None:
        line = addr >> self.line_shift
        ways = self.sets[line & self.set_mask]
        if line in ways:
            ways.remove(line)

    def reset(self) -> None:
        self.sets = [[] for _ in range(self.n_sets)]
        self.stats = CacheStats()


class Tlb:
    """Fully associative TLB with LRU replacement."""

    def __init__(self, entries: int, page_bytes: int) -> None:
        if page_bytes & (page_bytes - 1):
            raise ValueError("page size must be a power of two")
        self.entries = entries
        self.page_shift = page_bytes.bit_length() - 1
        self.pages: dict[int, None] = {}
        self.misses = 0

    def lookup(self, addr: int) -> bool:
        """Probe and fill; True = hit."""
        page = addr >> self.page_shift
        if page in self.pages:
            # Refresh LRU position.
            del self.pages[page]
            self.pages[page] = None
            return True
        self.misses += 1
        self.pages[page] = None
        if len(self.pages) > self.entries:
            oldest = next(iter(self.pages))
            del self.pages[oldest]
        return False

    def reset(self) -> None:
        self.pages.clear()
        self.misses = 0


class BranchPredictor:
    """Direct-mapped table of 2-bit saturating counters."""

    def __init__(self, entries: int = 1024) -> None:
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.mask = entries - 1
        self.counters = [1] * entries   # weakly not-taken
        self.mispredicts = 0

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict branch at *pc*, update state; True = correct."""
        index = pc & self.mask
        counter = self.counters[index]
        predicted_taken = counter >= 2
        if taken:
            if counter < 3:
                self.counters[index] = counter + 1
        else:
            if counter > 0:
                self.counters[index] = counter - 1
        correct = predicted_taken == taken
        if not correct:
            self.mispredicts += 1
        return correct

    def reset(self) -> None:
        self.counters = [1] * (self.mask + 1)
        self.mispredicts = 0
