"""Machine model constants: the paper's Tables 2 and 3.

The processor is a single-issue, in-order, non-blocking model of the
DEC Alpha 21164 (paper section 4.3).  Instruction latencies follow
Table 3 exactly.  The memory hierarchy follows Table 2; where the
scanned table is incomplete we use the 21164's published organization
(8 KB direct-mapped L1s, 96 KB 3-way L2, off-chip board cache, 50-cycle
main memory — the paper's stated maximum load latency).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields

#: Table 3 -- processor latencies (cycles until the result is available).
INSTRUCTION_LATENCIES: dict[str, int] = {
    "integer op": 1,
    "integer multiply": 8,
    "load": 2,               # L1 hit
    "store": 1,
    "fp op": 4,
    "fp divide (single)": 17,
    "fp divide (double)": 30,
    "branch": 2,
}

#: Per-opcode result latency.  Loads are listed at their L1-hit value;
#: the simulator replaces it with the actual hierarchy latency.
OP_LATENCY: dict[str, int] = {}


def _fill_op_latencies() -> None:
    from ..isa import OPCODES, OpClass

    for name, info in OPCODES.items():
        if name == "FDIV":
            lat = INSTRUCTION_LATENCIES["fp divide (double)"]
        elif info.opclass is OpClass.LONG_INT:
            lat = INSTRUCTION_LATENCIES["integer multiply"]
        elif info.opclass is OpClass.SHORT_FP:
            lat = INSTRUCTION_LATENCIES["fp op"]
        elif info.opclass is OpClass.LOAD:
            lat = INSTRUCTION_LATENCIES["load"]
        elif info.opclass is OpClass.STORE:
            lat = INSTRUCTION_LATENCIES["store"]
        elif info.opclass is OpClass.BRANCH:
            lat = INSTRUCTION_LATENCIES["branch"]
        else:
            lat = 1
        OP_LATENCY[name] = lat


_fill_op_latencies()


class ConfigError(ValueError):
    """A :class:`MachineConfig` violates a structural constraint."""


#: Integer registers the allocator can never assign: the hardwired
#: zero (r31), the stack pointer (r30), and the two spill scratch
#: registers (r28/r29).  Mirrors ``repro.codegen.regalloc``'s
#: reservation table (a test asserts the two stay in sync; importing
#: it here would be circular).
RESERVED_INT_REGS = 4
#: FP registers never assigned: the zero (f31) and the two spill
#: scratch registers (f29/f30).
RESERVED_FP_REGS = 3
#: Margin below the allocatable bank size at which the list scheduler
#: stops *adding* pressure (it keeps scheduling, just stops preferring
#: latency-stretching candidates); covers allocator temporaries and
#: the inexactness of the scheduler's own live estimate.
PRESSURE_HEADROOM = 4


@dataclass(frozen=True)
class CacheLevelConfig:
    name: str
    size_bytes: int
    assoc: int                  # 0 = fully associative
    line_bytes: int
    latency: int                # total load-to-use latency at this level


@dataclass(frozen=True)
class TlbConfig:
    entries: int
    page_bytes: int
    miss_penalty: int


@dataclass(frozen=True)
class MachineConfig:
    """Complete machine description (Tables 2 and 3)."""

    l1d: CacheLevelConfig = CacheLevelConfig("L1D", 8 * 1024, 1, 32, 2)
    l1i: CacheLevelConfig = CacheLevelConfig("L1I", 8 * 1024, 1, 32, 2)
    l2: CacheLevelConfig = CacheLevelConfig("L2", 96 * 1024, 3, 32, 9)
    l3: CacheLevelConfig = CacheLevelConfig("L3", 2 * 1024 * 1024, 1, 64, 20)
    memory_latency: int = 50
    dtlb: TlbConfig = TlbConfig(64, 8 * 1024, 30)
    itlb: TlbConfig = TlbConfig(48, 8 * 1024, 30)
    mshr_entries: int = 6       # outstanding misses the lockup-free L1 allows
    branch_mispredict_penalty: int = 4
    #: Instructions issued per cycle.  The paper evaluates a single-issue
    #: model (its section 4.3 simplification of the 21164); width 2 is
    #: provided as the paper's stated future work ("wider-issue
    #: processors that require considerable ILP").  In-order, at most
    #: one memory operation per cycle, branches end the issue group.
    issue_width: int = 1
    mem_ports: int = 1

    #: Architectural register-file sizes (Alpha: 32 + 32).  The
    #: schedulers derive their pressure budgets from these instead of
    #: hard-coding the machine, so a config with a smaller file
    #: automatically throttles balanced scheduling earlier.
    int_regs: int = 32
    fp_regs: int = 32

    #: Memory model: "hierarchy" is the execution-driven 21164 model;
    #: "stochastic" reproduces the original balanced-scheduling study's
    #: setup (Kerns & Eggers 1993, discussed in this paper's section
    #: 5.5): every load is a hit with probability ``stochastic_hit_rate``
    #: and otherwise takes a normally distributed miss latency, with no
    #: cache state at all.
    memory_model: str = "hierarchy"
    stochastic_hit_rate: float = 0.95
    stochastic_miss_mean: float = 16.0
    stochastic_miss_std: float = 4.0
    #: Idealizations used by the simple model: an instruction cache
    #: that always hits and a TLB that never misses.
    perfect_icache: bool = False
    perfect_dtlb: bool = False
    op_latency: dict[str, int] = field(
        default_factory=lambda: dict(OP_LATENCY))

    def validate(self) -> None:
        """Reject structurally inconsistent machine descriptions.

        The simulator derives *fill* latencies by subtraction (an
        instruction miss costs ``l2.latency - l1i.latency`` extra
        cycles, and so on down the hierarchy), so a configuration whose
        latencies are not monotone down the hierarchy would silently
        rewind simulated time.  Called from ``Simulator.__init__`` so a
        bad custom config fails loudly at construction instead of
        corrupting cycle counts.  Raises :class:`ConfigError`.
        """
        def fail(reason: str) -> None:
            raise ConfigError(f"invalid MachineConfig: {reason}")

        for level in (self.l1d, self.l1i, self.l2, self.l3):
            if level.size_bytes <= 0:
                fail(f"{level.name} size must be positive "
                     f"({level.size_bytes})")
            if level.line_bytes <= 0 or \
                    level.line_bytes & (level.line_bytes - 1):
                fail(f"{level.name} line size must be a positive power "
                     f"of two ({level.line_bytes})")
            if level.latency <= 0:
                fail(f"{level.name} latency must be positive "
                     f"({level.latency})")
            if level.assoc < 0:
                fail(f"{level.name} associativity must be >= 0 "
                     f"({level.assoc})")
        if self.memory_latency <= 0:
            fail(f"memory latency must be positive "
                 f"({self.memory_latency})")
        if self.memory_model == "hierarchy":
            # Fill latencies are differences between adjacent levels:
            # they must not go negative anywhere a miss can be filled.
            for upper in (self.l1d, self.l1i):
                if upper.latency > self.l2.latency:
                    fail(f"{upper.name} latency {upper.latency} > L2 "
                         f"latency {self.l2.latency} (non-monotone "
                         f"hierarchy yields negative fill latencies)")
            if self.l2.latency > self.l3.latency:
                fail(f"L2 latency {self.l2.latency} > L3 latency "
                     f"{self.l3.latency}")
            if self.l3.latency > self.memory_latency:
                fail(f"L3 latency {self.l3.latency} > memory latency "
                     f"{self.memory_latency}")
        elif self.memory_model != "stochastic":
            fail(f"unknown memory model {self.memory_model!r}")
        for tlb, name in ((self.dtlb, "D-TLB"), (self.itlb, "I-TLB")):
            if tlb.entries <= 0:
                fail(f"{name} must have at least one entry "
                     f"({tlb.entries})")
            if tlb.page_bytes <= 0 or \
                    tlb.page_bytes & (tlb.page_bytes - 1):
                fail(f"{name} page size must be a positive power of two "
                     f"({tlb.page_bytes})")
            if tlb.miss_penalty < 0:
                fail(f"{name} miss penalty must be >= 0 "
                     f"({tlb.miss_penalty})")
        if self.mshr_entries <= 0:
            fail(f"mshr_entries must be positive ({self.mshr_entries})")
        if self.issue_width <= 0:
            fail(f"issue_width must be positive ({self.issue_width})")
        if self.mem_ports <= 0:
            fail(f"mem_ports must be positive ({self.mem_ports})")
        if self.branch_mispredict_penalty < 0:
            fail(f"branch_mispredict_penalty must be >= 0 "
                 f"({self.branch_mispredict_penalty})")
        if not 0.0 <= self.stochastic_hit_rate <= 1.0:
            fail(f"stochastic_hit_rate must be in [0, 1] "
                 f"({self.stochastic_hit_rate})")
        if self.stochastic_miss_std < 0:
            fail(f"stochastic_miss_std must be >= 0 "
                 f"({self.stochastic_miss_std})")
        for op, latency in self.op_latency.items():
            if latency <= 0:
                fail(f"op latency for {op} must be positive ({latency})")
        if self.int_regs < RESERVED_INT_REGS + 1:
            fail(f"int_regs {self.int_regs} leaves no allocatable "
                 f"register after the {RESERVED_INT_REGS} reserved "
                 f"(zero, stack pointer, spill scratch)")
        if self.fp_regs < RESERVED_FP_REGS + 1:
            fail(f"fp_regs {self.fp_regs} leaves no allocatable "
                 f"register after the {RESERVED_FP_REGS} reserved "
                 f"(zero, spill scratch)")
        if self.pressure_limit < 1:
            fail(f"register files ({self.int_regs} int / {self.fp_regs} "
                 f"fp) underflow the scheduler pressure limit: "
                 f"{self.allocatable_int_regs}/"
                 f"{self.allocatable_fp_regs} allocatable minus "
                 f"{PRESSURE_HEADROOM} headroom leaves nothing")

    #: Maximum balanced load weight (paper footnote 1: no load can take
    #: more than the 50-cycle main-memory latency to satisfy).
    @property
    def max_load_weight(self) -> int:
        return self.memory_latency

    @property
    def allocatable_int_regs(self) -> int:
        """Integer registers the allocator can actually assign: the
        file minus the zero register, the stack pointer, and the two
        spill scratch registers."""
        return self.int_regs - RESERVED_INT_REGS

    @property
    def allocatable_fp_regs(self) -> int:
        """FP registers the allocator can assign: the file minus the
        zero register and the two spill scratch registers."""
        return self.fp_regs - RESERVED_FP_REGS

    @property
    def pressure_limit(self) -> int:
        """Live-register count past which the list scheduler stops
        admitting latency-stretching candidates: the smaller
        allocatable bank less a headroom margin for the allocator's
        own short-lived temporaries.  32+32 files give the
        long-standing limit of 24."""
        return (min(self.allocatable_int_regs, self.allocatable_fp_regs)
                - PRESSURE_HEADROOM)

    @property
    def load_hit_latency(self) -> int:
        return self.l1d.latency

    def memory_table(self) -> list[tuple[str, str, str, str, str]]:
        """Rows of the paper's Table 2 for the harness printers."""
        rows = []
        for level in (self.l1d, self.l1i, self.l2, self.l3):
            assoc = "direct" if level.assoc == 1 else (
                "full" if level.assoc == 0 else f"{level.assoc}-way")
            rows.append((level.name, f"{level.size_bytes // 1024} KB", assoc,
                         f"{level.line_bytes} B", f"{level.latency}"))
        rows.append(("Memory", "-", "-", "-", f"{self.memory_latency}"))
        rows.append(("D-TLB", f"{self.dtlb.entries} entries", "full",
                     f"{self.dtlb.page_bytes // 1024} KB page",
                     f"{self.dtlb.miss_penalty} (miss)"))
        rows.append(("I-TLB", f"{self.itlb.entries} entries", "full",
                     f"{self.itlb.page_bytes // 1024} KB page",
                     f"{self.itlb.miss_penalty} (miss)"))
        return rows


DEFAULT_CONFIG = MachineConfig()


# --------------------------------------------------------------- identity
def config_to_json(config: MachineConfig) -> dict:
    """Plain-JSON form of a machine description (nested dataclasses
    become dicts).  Round-trips through :func:`config_from_json`."""
    return asdict(config)


def config_from_json(data: dict) -> MachineConfig:
    """Rebuild a :class:`MachineConfig` from :func:`config_to_json`
    output, or from a sparse dict of overrides on the default machine
    (cache levels and TLBs may be given as dicts).  Unknown fields
    raise ``TypeError`` so a typo in a request fails loudly."""
    known = {f.name for f in fields(MachineConfig)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise TypeError(
            f"unknown MachineConfig field(s): {', '.join(unknown)}")
    kwargs = dict(data)
    for name in ("l1d", "l1i", "l2", "l3"):
        if isinstance(kwargs.get(name), dict):
            kwargs[name] = CacheLevelConfig(**kwargs[name])
    for name in ("dtlb", "itlb"):
        if isinstance(kwargs.get(name), dict):
            kwargs[name] = TlbConfig(**kwargs[name])
    defaults = {f.name: getattr(DEFAULT_CONFIG, f.name)
                for f in fields(MachineConfig) if f.name not in kwargs}
    # op_latency is a fresh dict per instance; share the default values.
    return MachineConfig(**defaults, **kwargs)


def config_hash(config: MachineConfig) -> str:
    """Stable short digest of a machine description.

    Part of every result-cache key: a resident daemon (or a runner
    with a custom machine) must never serve a result simulated under a
    different :class:`MachineConfig`.  Canonical JSON with sorted keys,
    so the digest is independent of dict insertion order and identical
    across processes.
    """
    payload = json.dumps(config_to_json(config), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def simple_stochastic_config(hit_rate: float = 0.95,
                             miss_mean: float = 16.0,
                             miss_std: float = 4.0) -> MachineConfig:
    """The Kerns & Eggers 1993 'simple model' (paper section 5.5).

    Single-cycle execution for everything except loads, a perfect
    instruction cache and TLB, and stochastic load latencies: a
    2-cycle hit with probability *hit_rate*, otherwise a normally
    distributed miss (the original study's workstation-like memory).
    """
    flat_latency = {name: 1 for name in OP_LATENCY}
    flat_latency["LD"] = flat_latency["FLD"] = 2
    return MachineConfig(
        memory_latency=int(miss_mean + 3 * miss_std),
        memory_model="stochastic",
        stochastic_hit_rate=hit_rate,
        stochastic_miss_mean=miss_mean,
        stochastic_miss_std=miss_std,
        perfect_icache=True,
        perfect_dtlb=True,
        op_latency=flat_latency,
    )

#: Cache-line geometry used by the compiler's locality analysis: 32-byte
#: lines, 8-byte (double-word) elements -> 4 elements per line (paper 3.3).
ELEMENT_BYTES = 8
ELEMENTS_PER_LINE = DEFAULT_CONFIG.l1d.line_bytes // ELEMENT_BYTES
