"""Machine model constants: the paper's Tables 2 and 3.

The processor is a single-issue, in-order, non-blocking model of the
DEC Alpha 21164 (paper section 4.3).  Instruction latencies follow
Table 3 exactly.  The memory hierarchy follows Table 2; where the
scanned table is incomplete we use the 21164's published organization
(8 KB direct-mapped L1s, 96 KB 3-way L2, off-chip board cache, 50-cycle
main memory — the paper's stated maximum load latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Table 3 -- processor latencies (cycles until the result is available).
INSTRUCTION_LATENCIES: dict[str, int] = {
    "integer op": 1,
    "integer multiply": 8,
    "load": 2,               # L1 hit
    "store": 1,
    "fp op": 4,
    "fp divide (single)": 17,
    "fp divide (double)": 30,
    "branch": 2,
}

#: Per-opcode result latency.  Loads are listed at their L1-hit value;
#: the simulator replaces it with the actual hierarchy latency.
OP_LATENCY: dict[str, int] = {}


def _fill_op_latencies() -> None:
    from ..isa import OPCODES, OpClass

    for name, info in OPCODES.items():
        if name == "FDIV":
            lat = INSTRUCTION_LATENCIES["fp divide (double)"]
        elif info.opclass is OpClass.LONG_INT:
            lat = INSTRUCTION_LATENCIES["integer multiply"]
        elif info.opclass is OpClass.SHORT_FP:
            lat = INSTRUCTION_LATENCIES["fp op"]
        elif info.opclass is OpClass.LOAD:
            lat = INSTRUCTION_LATENCIES["load"]
        elif info.opclass is OpClass.STORE:
            lat = INSTRUCTION_LATENCIES["store"]
        elif info.opclass is OpClass.BRANCH:
            lat = INSTRUCTION_LATENCIES["branch"]
        else:
            lat = 1
        OP_LATENCY[name] = lat


_fill_op_latencies()


@dataclass(frozen=True)
class CacheLevelConfig:
    name: str
    size_bytes: int
    assoc: int                  # 0 = fully associative
    line_bytes: int
    latency: int                # total load-to-use latency at this level


@dataclass(frozen=True)
class TlbConfig:
    entries: int
    page_bytes: int
    miss_penalty: int


@dataclass(frozen=True)
class MachineConfig:
    """Complete machine description (Tables 2 and 3)."""

    l1d: CacheLevelConfig = CacheLevelConfig("L1D", 8 * 1024, 1, 32, 2)
    l1i: CacheLevelConfig = CacheLevelConfig("L1I", 8 * 1024, 1, 32, 2)
    l2: CacheLevelConfig = CacheLevelConfig("L2", 96 * 1024, 3, 32, 9)
    l3: CacheLevelConfig = CacheLevelConfig("L3", 2 * 1024 * 1024, 1, 64, 20)
    memory_latency: int = 50
    dtlb: TlbConfig = TlbConfig(64, 8 * 1024, 30)
    itlb: TlbConfig = TlbConfig(48, 8 * 1024, 30)
    mshr_entries: int = 6       # outstanding misses the lockup-free L1 allows
    branch_mispredict_penalty: int = 4
    #: Instructions issued per cycle.  The paper evaluates a single-issue
    #: model (its section 4.3 simplification of the 21164); width 2 is
    #: provided as the paper's stated future work ("wider-issue
    #: processors that require considerable ILP").  In-order, at most
    #: one memory operation per cycle, branches end the issue group.
    issue_width: int = 1
    mem_ports: int = 1

    #: Memory model: "hierarchy" is the execution-driven 21164 model;
    #: "stochastic" reproduces the original balanced-scheduling study's
    #: setup (Kerns & Eggers 1993, discussed in this paper's section
    #: 5.5): every load is a hit with probability ``stochastic_hit_rate``
    #: and otherwise takes a normally distributed miss latency, with no
    #: cache state at all.
    memory_model: str = "hierarchy"
    stochastic_hit_rate: float = 0.95
    stochastic_miss_mean: float = 16.0
    stochastic_miss_std: float = 4.0
    #: Idealizations used by the simple model: an instruction cache
    #: that always hits and a TLB that never misses.
    perfect_icache: bool = False
    perfect_dtlb: bool = False
    op_latency: dict[str, int] = field(
        default_factory=lambda: dict(OP_LATENCY))

    #: Maximum balanced load weight (paper footnote 1: no load can take
    #: more than the 50-cycle main-memory latency to satisfy).
    @property
    def max_load_weight(self) -> int:
        return self.memory_latency

    @property
    def load_hit_latency(self) -> int:
        return self.l1d.latency

    def memory_table(self) -> list[tuple[str, str, str, str, str]]:
        """Rows of the paper's Table 2 for the harness printers."""
        rows = []
        for level in (self.l1d, self.l1i, self.l2, self.l3):
            assoc = "direct" if level.assoc == 1 else (
                "full" if level.assoc == 0 else f"{level.assoc}-way")
            rows.append((level.name, f"{level.size_bytes // 1024} KB", assoc,
                         f"{level.line_bytes} B", f"{level.latency}"))
        rows.append(("Memory", "-", "-", "-", f"{self.memory_latency}"))
        rows.append(("D-TLB", f"{self.dtlb.entries} entries", "full",
                     f"{self.dtlb.page_bytes // 1024} KB page",
                     f"{self.dtlb.miss_penalty} (miss)"))
        rows.append(("I-TLB", f"{self.itlb.entries} entries", "full",
                     f"{self.itlb.page_bytes // 1024} KB page",
                     f"{self.itlb.miss_penalty} (miss)"))
        return rows


DEFAULT_CONFIG = MachineConfig()


def simple_stochastic_config(hit_rate: float = 0.95,
                             miss_mean: float = 16.0,
                             miss_std: float = 4.0) -> MachineConfig:
    """The Kerns & Eggers 1993 'simple model' (paper section 5.5).

    Single-cycle execution for everything except loads, a perfect
    instruction cache and TLB, and stochastic load latencies: a
    2-cycle hit with probability *hit_rate*, otherwise a normally
    distributed miss (the original study's workstation-like memory).
    """
    flat_latency = {name: 1 for name in OP_LATENCY}
    flat_latency["LD"] = flat_latency["FLD"] = 2
    return MachineConfig(
        memory_latency=int(miss_mean + 3 * miss_std),
        memory_model="stochastic",
        stochastic_hit_rate=hit_rate,
        stochastic_miss_mean=miss_mean,
        stochastic_miss_std=miss_std,
        perfect_icache=True,
        perfect_dtlb=True,
        op_latency=flat_latency,
    )

#: Cache-line geometry used by the compiler's locality analysis: 32-byte
#: lines, 8-byte (double-word) elements -> 4 elements per line (paper 3.3).
ELEMENT_BYTES = 8
ELEMENTS_PER_LINE = DEFAULT_CONFIG.l1d.line_bytes // ELEMENT_BYTES
