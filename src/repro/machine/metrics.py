"""Simulation metrics: the counters the paper reports (section 4.3).

"The simulator produces metrics for execution cycles and number of
instructions.  Cycle metrics measure total cycles, interlock cycles for
both loads and instructions with fixed latencies, and dynamic
instruction execution.  Instruction counts are obtained for long and
short integers, long and short floating point operations, loads,
stores, branches, and spill and restore instructions."
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class Metrics:
    """Counters accumulated over one simulated execution."""

    total_cycles: int = 0
    instructions: int = 0

    # Dynamic instruction counts by class.
    short_int: int = 0
    long_int: int = 0
    short_fp: int = 0
    long_fp: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    spill_loads: int = 0        # restore instructions
    spill_stores: int = 0       # spill instructions

    # Interlock cycles, attributed to the producer of the stalling
    # operand: a load (variable latency) or a fixed-latency instruction.
    load_interlock_cycles: int = 0
    fixed_interlock_cycles: int = 0

    # Other stall sources.
    icache_stall_cycles: int = 0
    branch_stall_cycles: int = 0
    mshr_stall_cycles: int = 0

    # Memory system behaviour.
    l1d: CacheStats = field(default_factory=CacheStats)
    l2: CacheStats = field(default_factory=CacheStats)
    l3: CacheStats = field(default_factory=CacheStats)
    l1i: CacheStats = field(default_factory=CacheStats)
    dtlb_misses: int = 0
    itlb_misses: int = 0
    branch_mispredicts: int = 0

    @property
    def interlock_cycles(self) -> int:
        return self.load_interlock_cycles + self.fixed_interlock_cycles

    @property
    def load_interlock_fraction(self) -> float:
        """Load interlock cycles as a fraction of total cycles."""
        if not self.total_cycles:
            return 0.0
        return self.load_interlock_cycles / self.total_cycles

    def class_counts(self) -> dict[str, int]:
        return {
            "short_int": self.short_int,
            "long_int": self.long_int,
            "short_fp": self.short_fp,
            "long_fp": self.long_fp,
            "loads": self.loads,
            "stores": self.stores,
            "branches": self.branches,
            "spill_loads": self.spill_loads,
            "spill_stores": self.spill_stores,
        }

    def summary(self) -> str:
        lines = [
            f"cycles               {self.total_cycles}",
            f"instructions         {self.instructions}",
            f"load interlocks      {self.load_interlock_cycles}"
            f" ({100 * self.load_interlock_fraction:.1f}% of cycles)",
            f"fixed interlocks     {self.fixed_interlock_cycles}",
            f"icache stalls        {self.icache_stall_cycles}",
            f"branch stalls        {self.branch_stall_cycles}",
            f"mshr stalls          {self.mshr_stall_cycles}",
            f"L1D  {self.l1d.accesses} accesses, {self.l1d.misses} misses",
            f"L2   {self.l2.accesses} accesses, {self.l2.misses} misses",
            f"L3   {self.l3.accesses} accesses, {self.l3.misses} misses",
            f"mispredicts          {self.branch_mispredicts}",
        ]
        return "\n".join(lines)
