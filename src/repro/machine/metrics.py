"""Simulation metrics: the counters the paper reports (section 4.3).

"The simulator produces metrics for execution cycles and number of
instructions.  Cycle metrics measure total cycles, interlock cycles for
both loads and instructions with fixed latencies, and dynamic
instruction execution.  Instruction counts are obtained for long and
short integers, long and short floating point operations, loads,
stores, branches, and spill and restore instructions."
"""

from __future__ import annotations

from dataclasses import dataclass, field


class MetricsInvariantError(ValueError):
    """A simulation counter violated a structural invariant."""


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class Metrics:
    """Counters accumulated over one simulated execution."""

    total_cycles: int = 0
    instructions: int = 0

    # Dynamic instruction counts by class.
    short_int: int = 0
    long_int: int = 0
    short_fp: int = 0
    long_fp: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    spill_loads: int = 0        # restore instructions
    spill_stores: int = 0       # spill instructions

    # Interlock cycles, attributed to the producer of the stalling
    # operand: a load (variable latency) or a fixed-latency instruction.
    load_interlock_cycles: int = 0
    fixed_interlock_cycles: int = 0

    # Other stall sources.
    icache_stall_cycles: int = 0
    branch_stall_cycles: int = 0
    mshr_stall_cycles: int = 0

    # Memory system behaviour.
    l1d: CacheStats = field(default_factory=CacheStats)
    l2: CacheStats = field(default_factory=CacheStats)
    l3: CacheStats = field(default_factory=CacheStats)
    l1i: CacheStats = field(default_factory=CacheStats)
    dtlb_misses: int = 0
    itlb_misses: int = 0
    branch_mispredicts: int = 0

    @property
    def interlock_cycles(self) -> int:
        return self.load_interlock_cycles + self.fixed_interlock_cycles

    @property
    def load_interlock_fraction(self) -> float:
        """Load interlock cycles as a fraction of total cycles."""
        if not self.total_cycles:
            return 0.0
        return self.load_interlock_cycles / self.total_cycles

    def class_counts(self) -> dict[str, int]:
        return {
            "short_int": self.short_int,
            "long_int": self.long_int,
            "short_fp": self.short_fp,
            "long_fp": self.long_fp,
            "loads": self.loads,
            "stores": self.stores,
            "branches": self.branches,
            "spill_loads": self.spill_loads,
            "spill_stores": self.spill_stores,
        }

    def validate(self, issue_width: int = 1) -> None:
        """Check the structural invariants between counters.

        Called at the end of every simulation when the
        ``REPRO_VALIDATE_METRICS=1`` environment variable is set (the
        test suite sets it), so a counter-accounting bug fails loudly
        instead of silently skewing a table.  Raises
        :class:`MetricsInvariantError` with a one-line reason.
        """
        def fail(reason: str) -> None:
            raise MetricsInvariantError(f"metrics invariant: {reason}")

        counters = {
            "total_cycles": self.total_cycles,
            "instructions": self.instructions,
            "load_interlock_cycles": self.load_interlock_cycles,
            "fixed_interlock_cycles": self.fixed_interlock_cycles,
            "icache_stall_cycles": self.icache_stall_cycles,
            "branch_stall_cycles": self.branch_stall_cycles,
            "mshr_stall_cycles": self.mshr_stall_cycles,
            "dtlb_misses": self.dtlb_misses,
            "itlb_misses": self.itlb_misses,
            "branch_mispredicts": self.branch_mispredicts,
            **self.class_counts(),
        }
        for name, value in counters.items():
            if value < 0:
                fail(f"{name} is negative ({value})")
        class_sum = (self.short_int + self.long_int + self.short_fp
                     + self.long_fp + self.loads + self.stores
                     + self.branches)
        if class_sum != self.instructions:
            fail(f"instruction-class counts sum to {class_sum}, "
                 f"expected instructions={self.instructions}")
        if self.spill_loads > self.loads:
            fail(f"spill_loads {self.spill_loads} > loads {self.loads}")
        if self.spill_stores > self.stores:
            fail(f"spill_stores {self.spill_stores} > "
                 f"stores {self.stores}")
        if self.instructions and \
                self.total_cycles * max(issue_width, 1) < self.instructions:
            fail(f"total_cycles {self.total_cycles} x width "
                 f"{issue_width} < instructions {self.instructions}")
        if self.interlock_cycles > self.total_cycles:
            fail(f"interlock cycles {self.interlock_cycles} > "
                 f"total_cycles {self.total_cycles}")
        if self.mshr_stall_cycles > self.load_interlock_cycles:
            fail(f"mshr_stall_cycles {self.mshr_stall_cycles} > "
                 f"load_interlock_cycles {self.load_interlock_cycles}")
        for level, stats in (("l1d", self.l1d), ("l1i", self.l1i),
                             ("l2", self.l2), ("l3", self.l3)):
            if stats.misses > stats.accesses:
                fail(f"{level} misses {stats.misses} > "
                     f"accesses {stats.accesses}")
        if self.branch_mispredicts > self.branches:
            fail(f"branch_mispredicts {self.branch_mispredicts} > "
                 f"branches {self.branches}")

    def summary(self) -> str:
        lines = [
            f"cycles               {self.total_cycles}",
            f"instructions         {self.instructions}",
            f"load interlocks      {self.load_interlock_cycles}"
            f" ({100 * self.load_interlock_fraction:.1f}% of cycles)",
            f"fixed interlocks     {self.fixed_interlock_cycles}",
            f"icache stalls        {self.icache_stall_cycles}",
            f"branch stalls        {self.branch_stall_cycles}",
            f"mshr stalls          {self.mshr_stall_cycles}",
            f"L1D  {self.l1d.accesses} accesses, {self.l1d.misses} misses",
            f"L2   {self.l2.accesses} accesses, {self.l2.misses} misses",
            f"L3   {self.l3.accesses} accesses, {self.l3.misses} misses",
            f"mispredicts          {self.branch_mispredicts}",
        ]
        return "\n".join(lines)
