"""Execution-driven simulator of the Alpha 21164-like machine model."""

from .cache import BranchPredictor, Cache, Tlb
from .config import (
    DEFAULT_CONFIG,
    ELEMENT_BYTES,
    ELEMENTS_PER_LINE,
    INSTRUCTION_LATENCIES,
    OP_LATENCY,
    CacheLevelConfig,
    ConfigError,
    MachineConfig,
    TlbConfig,
    config_from_json,
    config_hash,
    config_to_json,
)
from .metrics import CacheStats, Metrics, MetricsInvariantError
from .simulator import SimulationError, Simulator, simulate

__all__ = [
    "BranchPredictor", "Cache", "Tlb",
    "DEFAULT_CONFIG", "ELEMENT_BYTES", "ELEMENTS_PER_LINE",
    "INSTRUCTION_LATENCIES", "OP_LATENCY",
    "CacheLevelConfig", "ConfigError", "MachineConfig", "TlbConfig",
    "config_from_json", "config_hash", "config_to_json",
    "CacheStats", "Metrics", "MetricsInvariantError",
    "SimulationError", "Simulator", "simulate",
]
