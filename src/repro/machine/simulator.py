"""Execution-driven simulator of the single-issue 21164-like machine.

The simulator *executes* the program (architectural state: registers,
memory) while modelling timing with a scoreboard:

* in-order, single issue, one instruction per cycle when nothing
  stalls;
* **non-blocking loads**: a load issues, its destination register is
  marked ready at issue + hierarchy latency, and execution continues;
  the pipeline stalls only when an instruction *uses* a register that
  is not ready yet (and at load issue when all MSHRs are busy);
* stall cycles are attributed to the *producer* of the latest-ready
  operand: a load (variable latency) or a fixed-latency instruction —
  the paper's load vs. non-load interlock split;
* 3-level cache hierarchy with a lockup-free L1 D-cache (6 MSHRs,
  hit-under-miss and miss merging), I-cache, I/D TLBs, and a 2-bit
  branch predictor; correctly predicted taken branches cost one bubble
  (Table 3's 2-cycle branch), mispredicts cost the redirect penalty.

A ``profile=True`` run additionally counts basic-block and edge
frequencies (the paper's profiling step for trace selection).
"""

from __future__ import annotations

import heapq
import os
import time
from typing import TYPE_CHECKING, Optional

from ..isa import MachineProgram, OpClass, Reg
from ..obs.metrics import IPS_BUCKETS, LATENCY_BUCKETS
from ..obs.metrics import REGISTRY as _METRICS
from .cache import BranchPredictor, Cache, Tlb
from .config import DEFAULT_CONFIG, MachineConfig
from .metrics import Metrics

if TYPE_CHECKING:   # no runtime dependency on the obs *observer* layer
    from ..obs.stall import StallProfile

#: Engine-level counters (repro.obs.metrics), recorded once per run()
#: *after* the timed window closes — the hot loops never touch them, so
#: recording cannot perturb ``run_seconds`` or simulated state.
_M_SIM_RUNS = _METRICS.counter(
    "repro_sim_runs_total", "simulations executed, by engine")
_M_SIM_INSTRUCTIONS = _METRICS.counter(
    "repro_sim_instructions_total", "instructions simulated, by engine")
_M_SIM_SECONDS = _METRICS.histogram(
    "repro_sim_run_seconds", "pure simulation wall time, by engine",
    LATENCY_BUCKETS)
_M_SIM_IPS = _METRICS.histogram(
    "repro_sim_ips", "simulated instructions per wall second, by engine",
    IPS_BUCKETS)
_M_SIM_CODEGEN_SECONDS = _METRICS.histogram(
    "repro_sim_codegen_seconds",
    "compiled-engine code generation wall time", LATENCY_BUCKETS)

_MASK64 = (1 << 64) - 1

# Opcode dispatch codes (grouped: arithmetic decoded generically).
_OPC = {name: i for i, name in enumerate((
    "LD", "FLD", "ST", "FST", "LDI", "FLDI", "BR", "BEQ", "BNE", "HALT",
    "NOP", "ADD", "SUB", "MUL", "DIVQ", "REMQ", "AND", "OR", "XOR", "SLL",
    "SRL", "SRA", "CMPEQ", "CMPNE", "CMPLT", "CMPLE", "MOV", "FADD", "FSUB",
    "FMUL", "FDIV", "FCMPEQ", "FCMPNE", "FCMPLT", "FCMPLE", "FMOV", "FNEG",
    "FLDI2", "CVTIF", "CVTFI", "CMOVEQ", "CMOVNE", "FCMOVEQ", "FCMOVNE"))}

_CLASS_FIELD = {
    OpClass.SHORT_INT: "short_int",
    OpClass.LONG_INT: "long_int",
    OpClass.SHORT_FP: "short_fp",
    OpClass.LONG_FP: "long_fp",
    OpClass.LOAD: "loads",
    OpClass.STORE: "stores",
    OpClass.BRANCH: "branches",
    OpClass.OTHER: "short_int",
}


class SimulationError(Exception):
    """Runtime fault: bad address, division by zero, runaway execution."""


class Simulator:
    """Executes one :class:`~repro.isa.MachineProgram`.

    ``mode`` selects the execution engine:

    * ``"auto"`` (default): the throughput-oriented compiled engine
      (:mod:`repro.machine.fastsim`) whenever the configuration
      supports it, the reference interpreter otherwise.  The
      ``REPRO_SIM`` environment variable (``fast`` / ``reference``)
      overrides the choice.
    * ``"fast"`` / ``"reference"``: force one engine.  ``"fast"``
      raises if the configuration is unsupported.
    * ``"profile"``: architectural execution only — block and edge
      frequencies (and instruction-class counts) without any stall,
      cache or branch-prediction modelling.  Only valid together with
      ``profile=True``; cycle counters are placeholders.

    Both timing engines are bit-identical in every :class:`Metrics`
    counter and in final architectural state (the test suite and the
    ``sim-throughput`` CI job enforce this).  After :meth:`run`,
    ``mode_used`` records which engine actually executed.
    """

    def __init__(self, program: MachineProgram,
                 config: MachineConfig = DEFAULT_CONFIG,
                 profile: bool = False,
                 stack_words: int = 4096,
                 stall_profile: Optional["StallProfile"] = None,
                 mode: str = "auto") -> None:
        config.validate()
        if mode not in ("auto", "fast", "reference", "profile"):
            raise ValueError(f"unknown simulator mode {mode!r}")
        if mode == "profile" and not profile:
            raise ValueError("mode='profile' requires profile=True")
        self.program = program
        self.config = config
        self.profiling = profile
        self.mode = mode
        #: Engine that actually executed the last :meth:`run`.
        self.mode_used: Optional[str] = None
        #: Optional per-PC stall attribution sink (obs.StallProfile).
        #: None (the default) keeps the hot loop on the fast path: one
        #: boolean test per instruction, no counter updates.
        self.stall_profile = stall_profile

        # Architectural memory: one Python number per 8-byte word.
        data_words = max(program.data_size // 8, 16)
        self.stack_base = data_words * 8
        self.memory: list = [0] * (data_words + stack_words)
        for symbol in program.symbols.values():
            start = symbol.address // 8
            count = symbol.size_bytes // 8
            fill = 0.0 if symbol.is_fp else 0
            for i in range(start, start + count):
                self.memory[i] = fill
            if symbol.initial is not None:
                self.set_symbol(symbol.name, symbol.initial)

        # Register slots (virtual or physical registers both work).
        self._slots: dict[Reg, int] = {}
        self.regs: list = []
        self.ready: list[int] = []
        self.from_load: list[bool] = []
        # Discard slots for writes to the architectural zero registers
        # (r31/f31).  One per register file so an integer and an fp
        # zero-dest write never share state; their readiness entries
        # are *never* updated (a discarded result can stall nobody).
        self._discard_slot = {"i": self._new_slot(0),
                              "f": self._new_slot(0.0)}

        # Machine structures.
        self.l1d = Cache(config.l1d)
        self.l1i = Cache(config.l1i)
        self.l2 = Cache(config.l2)
        self.l3 = Cache(config.l3)
        self.dtlb = Tlb(config.dtlb.entries, config.dtlb.page_bytes)
        self.itlb = Tlb(config.itlb.entries, config.itlb.page_bytes)
        self.bpred = BranchPredictor()
        self._mshr: dict[int, int] = {}       # line -> completion time
        #: Min-heap of in-flight completion times, drained lazily.  The
        #: occupancy question "are all MSHRs busy at cycle *now*?" is
        #: answered by popping expired heads — O(log n) per miss
        #: instead of rebuilding a list over every dict value.
        self._mshr_heap: list[int] = []
        #: Latest completion time ever pushed; the compiled engine's
        #: replay guard ("no miss in flight") is one integer compare.
        self._mshr_max = 0
        self._rng_state = 0x1234ABCD          # stochastic-model LCG

        # Profiling.
        self.block_counts: dict[str, int] = {}
        self.edge_counts: dict[tuple[str, str], int] = {}
        self._block_starts: dict[int, str] = {}
        if profile:
            for label, index in program.labels.items():
                self._block_starts[index] = label

        self.metrics = Metrics()
        #: Wall-clock seconds of the last :meth:`run` (harness
        #: observability: simulated-instructions-per-second throughput).
        self.run_seconds: float = 0.0
        self.codegen_seconds: float = 0.0
        self._ran = False
        self._decoded = self._predecode()
        self._fast_engine = None        # built lazily on first run()

    # ---------------------------------------------------------- registers
    def _new_slot(self, initial) -> int:
        slot = len(self.regs)
        self.regs.append(initial)
        self.ready.append(0)
        self.from_load.append(False)
        return slot

    def _slot(self, reg: Reg) -> int:
        slot = self._slots.get(reg)
        if slot is None:
            slot = self._new_slot(0.0 if reg.is_fp else 0)
            self._slots[reg] = slot
            if not reg.virtual and reg.num == 30 and reg.kind == "i":
                self.regs[slot] = self.stack_base
        return slot

    def reg_value(self, reg: Reg):
        """Architectural value of *reg* (0 if never touched)."""
        if reg.is_zero:
            return 0.0 if reg.is_fp else 0
        slot = self._slots.get(reg)
        return self.regs[slot] if slot is not None else (
            0.0 if reg.is_fp else 0)

    # ------------------------------------------------------------- memory
    def set_symbol(self, name: str, values) -> None:
        """Set a data symbol's contents from a scalar or (nested) list."""
        symbol = self.program.symbols[name]
        flat = _flatten(values)
        count = symbol.size_bytes // 8
        if len(flat) > count:
            raise ValueError(f"{name}: {len(flat)} values > {count} slots")
        base = symbol.address // 8
        convert = float if symbol.is_fp else int
        for i, value in enumerate(flat):
            self.memory[base + i] = convert(value)

    def get_symbol(self, name: str):
        """Current contents of a data symbol (flat list, or scalar)."""
        symbol = self.program.symbols[name]
        base = symbol.address // 8
        count = symbol.size_bytes // 8
        if count == 1 and not symbol.dims:
            return self.memory[base]
        return self.memory[base:base + count]

    # ------------------------------------------------------------ decode
    def _predecode(self):
        decoded = []
        for index, instr in enumerate(self.program.instructions):
            code = _OPC[instr.op]
            dest = self._slot(instr.dest) if instr.dest is not None else -1
            track = True
            reads_dest = instr.info.reads_dest
            if instr.dest is not None and instr.dest.is_zero:
                # Writes to r31/f31 are architecturally discarded:
                # redirect the value to a per-file discard slot whose
                # readiness state is never updated (``track=False``),
                # so a discarded producer — e.g. a prefetch-idiom load
                # — can never charge interlock cycles against a later
                # zero-dest consumer, and an integer discard never
                # collides with an fp one.  The zero register always
                # reads as ready, so the CMOV dest-read check is
                # dropped too.
                dest = self._discard_slot[instr.dest.kind]
                track = False
                reads_dest = False
            srcs = tuple(self._slot(r) for r in instr.srcs)
            # Zero registers read as constant 0: give them a pinned slot.
            target = (self.program.labels[instr.label]
                      if instr.is_branch else -1)
            latency = self.config.op_latency[instr.op]
            cls_field = _CLASS_FIELD[instr.info.opclass]
            decoded.append((code, dest, srcs, instr.imm, instr.offset,
                            target, latency, cls_field, instr.is_spill,
                            reads_dest, track))
        return decoded

    # -------------------------------------------------------------- run
    def run(self, max_instructions: int = 200_000_000) -> Metrics:
        """Execute the program once and return its :class:`Metrics`.

        ``run`` is **single-shot**: architectural state, cache contents
        and metrics all belong to exactly one execution, and a second
        call would silently accumulate class counts onto totals while
        overwriting cycle and cache counters (inconsistent metrics).
        Construct a fresh :class:`Simulator` per execution instead; a
        repeated call raises :class:`SimulationError`.
        """
        if self._ran:
            raise SimulationError(
                "Simulator.run() is single-shot: this simulator has "
                "already executed its program; construct a new "
                "Simulator to run it again")
        self._ran = True
        mode = self.mode
        if mode == "auto":
            env = os.environ.get("REPRO_SIM", "").strip()
            if env and env not in ("fast", "reference"):
                raise ValueError(
                    f"REPRO_SIM must be 'fast' or 'reference', "
                    f"got {env!r}")
            mode = env or "fast"
        # Engine construction is compilation, not simulation: build it
        # outside the timed window (like ``_predecode`` in __init__) so
        # ``run_seconds`` measures pure execution.  The codegen cost is
        # reported separately in ``codegen_seconds``.
        if mode == "fast":
            from .fastsim import build_engine

            codegen_start = time.perf_counter()
            if self._fast_engine is None:
                self._fast_engine = build_engine(self)
            self.codegen_seconds = time.perf_counter() - codegen_start
            if self._fast_engine is None:
                if self.mode == "fast":
                    raise ValueError(
                        "mode='fast' requested but this configuration "
                        "is not supported by the compiled engine "
                        "(multi-issue, stall attribution, or "
                        "profiling); use mode='auto' or 'reference'")
                mode = "reference"
        wall_start = time.perf_counter()
        try:
            if mode == "profile":
                from .fastsim import run_profile

                self.mode_used = "profile"
                run_profile(self, max_instructions)
            elif mode == "fast":
                self.mode_used = "fast"
                self._fast_engine.run(max_instructions)
            else:
                self.mode_used = "reference"
                self._run_reference(max_instructions)
        finally:
            self.run_seconds = time.perf_counter() - wall_start
        self._record_engine_metrics()
        if os.environ.get("REPRO_VALIDATE_METRICS") == "1":
            self.metrics.validate(issue_width=self.config.issue_width)
        return self.metrics

    def _record_engine_metrics(self) -> None:
        """Fold this run's engine counters into the global metrics
        registry.  Runs after the timed window and only reads state the
        run already produced, so it can never change simulated results;
        with recording off every call below is a guarded no-op."""
        engine = self.mode_used or "unknown"
        _M_SIM_RUNS.labels(engine=engine).inc()
        _M_SIM_INSTRUCTIONS.labels(engine=engine).inc(
            self.metrics.instructions)
        _M_SIM_SECONDS.labels(engine=engine).observe(self.run_seconds)
        if self.run_seconds > 0.0:
            _M_SIM_IPS.labels(engine=engine).observe(
                self.metrics.instructions / self.run_seconds)
        if self.codegen_seconds:
            _M_SIM_CODEGEN_SECONDS.observe(self.codegen_seconds)

    def _flush_machine_stats(self) -> None:
        """Copy cache/TLB/predictor state counters into the metrics."""
        m = self.metrics
        m.l1d = self.l1d.stats
        m.l1i = self.l1i.stats
        m.l2 = self.l2.stats
        m.l3 = self.l3.stats
        m.dtlb_misses = self.dtlb.misses
        m.itlb_misses = self.itlb.misses
        m.branch_mispredicts = self.bpred.mispredicts

    def _run_reference(self, max_instructions: int) -> Metrics:
        m = self.metrics
        config = self.config
        regs = self.regs
        ready = self.ready
        from_load = self.from_load
        memory = self.memory
        decoded = self._decoded
        n_instrs = len(decoded)
        mispredict_penalty = config.branch_mispredict_penalty
        profiling = self.profiling
        block_starts = self._block_starts
        current_block: Optional[str] = None

        t = 0                   # current cycle
        pc = 0
        executed = 0
        last_fetch_line = -1
        last_fetch_page = -1
        l1i = self.l1i
        itlb = self.itlb
        itlb_penalty = config.itlb.miss_penalty
        # In-order multi-issue accounting: `slots_left` instructions may
        # still issue in cycle `t`, of which `mem_left` memory ops.
        # Width 1 (the paper's model) reduces to one bump per issue.
        width = config.issue_width
        mem_ports = config.mem_ports
        perfect_icache = config.perfect_icache
        slots_left = width
        mem_left = mem_ports

        # Optional cycle-level stall attribution (obs.StallProfile).
        # `observing` is the only cost on the disabled path; timing and
        # architectural state are identical either way.
        sp = self.stall_profile
        observing = sp is not None
        if observing:
            producer_pc = [-1] * len(regs)
            sp_exec = sp.exec_counts
            sp_load_intlk = sp.load_interlock
            sp_fixed_intlk = sp.fixed_interlock
            sp_hits = sp.load_hits
            sp_misses = sp.load_misses
            sp_mshr = sp.mshr_stalls
            l1_hit_latency = config.l1d.latency

        class_counts = {"short_int": 0, "long_int": 0, "short_fp": 0,
                        "long_fp": 0, "loads": 0, "stores": 0,
                        "branches": 0}

        while True:
            if pc >= n_instrs:
                raise SimulationError(f"pc {pc} out of range")
            if executed >= max_instructions:
                raise SimulationError("instruction limit exceeded "
                                      f"({max_instructions})")
            if profiling and pc in block_starts:
                label = block_starts[pc]
                self.block_counts[label] = self.block_counts.get(label, 0) + 1
                if current_block is not None:
                    edge = (current_block, label)
                    self.edge_counts[edge] = self.edge_counts.get(edge, 0) + 1
                current_block = label

            # ----- instruction fetch (icache + itlb, line-memoized)
            fetch_addr = pc << 2
            line = fetch_addr >> 5
            if perfect_icache:
                pass
            elif line != last_fetch_line:
                last_fetch_line = line
                page = fetch_addr >> 13
                if page != last_fetch_page:
                    last_fetch_page = page
                    if not itlb.lookup(fetch_addr):
                        m.icache_stall_cycles += itlb_penalty
                        t += itlb_penalty
                        slots_left = width
                        mem_left = mem_ports
                if not l1i.lookup(fetch_addr):
                    extra = self._ifill_latency(fetch_addr)
                    m.icache_stall_cycles += extra
                    t += extra
                    slots_left = width
                    mem_left = mem_ports

            (code, dest, srcs, imm, offset, target, latency, cls_field,
             is_spill, reads_dest, track) = decoded[pc]
            executed += 1
            class_counts[cls_field] += 1
            if observing:
                sp_exec[pc] = sp_exec.get(pc, 0) + 1

            # ----- operand readiness / interlock attribution
            start = t
            stall_is_load = False
            stall_slot = -1
            for s in srcs:
                rt = ready[s]
                if rt > start:
                    start = rt
                    stall_is_load = from_load[s]
                    stall_slot = s
                elif rt == start and from_load[s] and start > t:
                    stall_is_load = True
                    stall_slot = s
            if reads_dest and dest >= 0:
                rt = ready[dest]
                if rt > start:
                    start = rt
                    stall_is_load = from_load[dest]
                    stall_slot = dest
            if start > t:
                if stall_is_load:
                    m.load_interlock_cycles += start - t
                    if observing:
                        src_pc = producer_pc[stall_slot]
                        sp_load_intlk[src_pc] = (
                            sp_load_intlk.get(src_pc, 0) + start - t)
                else:
                    m.fixed_interlock_cycles += start - t
                    if observing:
                        src_pc = producer_pc[stall_slot]
                        sp_fixed_intlk[src_pc] = (
                            sp_fixed_intlk.get(src_pc, 0) + start - t)
                t = start
                slots_left = width
                mem_left = mem_ports

            # ----- execute
            if code <= 3:                        # LD, FLD, ST, FST
                if mem_left == 0:        # one memory port per cycle
                    t += 1
                    slots_left = width
                    mem_left = mem_ports
                if code <= 1:                    # loads
                    addr = regs[srcs[0]] + offset
                    if addr < 0 or addr >= len(memory) << 3:
                        raise SimulationError(
                            f"load address {addr} out of range at pc {pc}")
                    lat, stall = self._dload(addr, t)
                    if stall:
                        m.mshr_stall_cycles += stall
                        m.load_interlock_cycles += stall
                        if observing:
                            sp_mshr[pc] = sp_mshr.get(pc, 0) + stall
                            sp_load_intlk[pc] = (
                                sp_load_intlk.get(pc, 0) + stall)
                        t += stall
                        slots_left = width
                        mem_left = mem_ports
                    regs[dest] = memory[addr >> 3]
                    if track:
                        ready[dest] = t + lat
                        from_load[dest] = True
                        if observing:
                            producer_pc[dest] = pc
                    if observing:
                        if lat <= l1_hit_latency:
                            sp_hits[pc] = sp_hits.get(pc, 0) + 1
                        else:
                            sp_misses[pc] = sp_misses.get(pc, 0) + 1
                    if is_spill:
                        m.spill_loads += 1
                else:                            # stores
                    addr = regs[srcs[1]] + offset
                    if addr < 0 or addr >= len(memory) << 3:
                        raise SimulationError(
                            f"store address {addr} out of range at pc {pc}")
                    self._dstore(addr)
                    memory[addr >> 3] = regs[srcs[0]]
                    if is_spill:
                        m.spill_stores += 1
                mem_left -= 1
                slots_left -= 1
                if slots_left == 0:
                    t += 1
                    slots_left = width
                    mem_left = mem_ports
                pc += 1
                continue
            elif code <= 5:                      # LDI, FLDI
                regs[dest] = imm
                if track:
                    ready[dest] = t + 1
                    from_load[dest] = False
                    if observing:
                        producer_pc[dest] = pc
                slots_left -= 1
                if slots_left == 0:
                    t += 1
                    slots_left = width
                    mem_left = mem_ports
                pc += 1
                continue
            elif code <= 9:                      # BR, BEQ, BNE, HALT
                if code == 6:                    # BR
                    pc = target
                    t += 2
                    slots_left = width
                    mem_left = mem_ports
                    continue
                if code == 9:                    # HALT
                    t += 1
                    break
                value = regs[srcs[0]]
                taken = (value == 0) if code == 7 else (value != 0)
                correct = self.bpred.predict_and_update(pc, taken)
                slots_left = width
                mem_left = mem_ports
                if correct:
                    t += 2 if taken else 1
                else:
                    extra = 1 + mispredict_penalty
                    t += extra
                    m.branch_stall_cycles += mispredict_penalty
                pc = target if taken else pc + 1
                continue
            elif code == 10:                     # NOP
                slots_left -= 1
                if slots_left == 0:
                    t += 1
                    slots_left = width
                    mem_left = mem_ports
                pc += 1
                continue
            else:
                a = regs[srcs[0]] if srcs else None
                b = regs[srcs[1]] if len(srcs) > 1 else imm
                if code == 11:
                    value = a + b
                elif code == 12:
                    value = a - b
                elif code == 13:
                    value = a * b
                elif code == 14 or code == 15:
                    if b == 0:
                        raise SimulationError(f"division by zero at pc {pc}")
                    q = abs(a) // abs(b)
                    if (a < 0) != (b < 0):
                        q = -q
                    value = q if code == 14 else a - q * b
                elif code == 16:
                    value = a & b
                elif code == 17:
                    value = a | b
                elif code == 18:
                    value = a ^ b
                elif code == 19:
                    value = (a << b) & _MASK64
                    if value >= 1 << 63:
                        value -= 1 << 64
                elif code == 20:
                    value = (a & _MASK64) >> b
                elif code == 21:
                    value = a >> b
                elif code == 22:
                    value = 1 if a == b else 0
                elif code == 23:
                    value = 1 if a != b else 0
                elif code == 24:
                    value = 1 if a < b else 0
                elif code == 25:
                    value = 1 if a <= b else 0
                elif code == 26:
                    value = a
                elif code == 27:
                    value = a + b
                elif code == 28:
                    value = a - b
                elif code == 29:
                    value = a * b
                elif code == 30:
                    if b == 0.0:
                        raise SimulationError(f"fp division by zero at {pc}")
                    value = a / b
                elif code == 31:
                    value = 1 if a == b else 0
                elif code == 32:
                    value = 1 if a != b else 0
                elif code == 33:
                    value = 1 if a < b else 0
                elif code == 34:
                    value = 1 if a <= b else 0
                elif code == 35:
                    value = a
                elif code == 36:
                    value = -a
                elif code == 38:
                    value = float(a)
                elif code == 39:
                    value = int(a)
                elif code == 40 or code == 41:   # CMOVEQ/CMOVNE
                    cond_hold = (a == 0) if code == 40 else (a != 0)
                    value = b if cond_hold else regs[dest]
                elif code == 42 or code == 43:   # FCMOVEQ/FCMOVNE
                    cond_hold = (a == 0) if code == 42 else (a != 0)
                    value = b if cond_hold else regs[dest]
                else:
                    raise SimulationError(f"bad opcode {code} at pc {pc}")
                regs[dest] = value
                if track:
                    ready[dest] = t + latency
                    from_load[dest] = False
                    if observing:
                        producer_pc[dest] = pc
                slots_left -= 1
                if slots_left == 0:
                    t += 1
                    slots_left = width
                    mem_left = mem_ports
                pc += 1
                continue

        m.total_cycles = t
        m.instructions = executed
        m.short_int += class_counts["short_int"]
        m.long_int += class_counts["long_int"]
        m.short_fp += class_counts["short_fp"]
        m.long_fp += class_counts["long_fp"]
        m.loads += class_counts["loads"]
        m.stores += class_counts["stores"]
        m.branches += class_counts["branches"]
        self._flush_machine_stats()
        return m

    # ------------------------------------------------------ memory timing
    def _stochastic_latency(self) -> int:
        """Load latency under the Kerns-Eggers stochastic model."""
        config = self.config
        state = self._rng_state
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        unit = state / 0x80000000
        if unit < config.stochastic_hit_rate:
            self._rng_state = state
            self.l1d.stats.accesses += 1
            return config.l1d.latency
        # Miss latency: normal approximation from four uniforms.
        total = 0.0
        for _ in range(4):
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
            total += state / 0x80000000
        self._rng_state = state
        gauss = (total - 2.0) * 1.7320508
        latency = config.stochastic_miss_mean +             config.stochastic_miss_std * gauss
        self.l1d.stats.accesses += 1
        self.l1d.stats.misses += 1
        return max(int(round(latency)), config.l1d.latency + 1)

    def _dload(self, addr: int, now: int) -> tuple[int, int]:
        """(latency, issue-stall) for a data load at cycle *now*."""
        config = self.config
        if config.memory_model == "stochastic":
            return self._stochastic_latency(), 0
        latency_extra = 0
        if not self.dtlb.lookup(addr):
            latency_extra += config.dtlb.miss_penalty

        line = addr >> 5
        mshr = self._mshr
        inflight = mshr.get(line)
        if inflight is not None and inflight > now:
            # Merge with the outstanding miss: data forwarded on fill.
            self.l1d.lookup(addr)   # counts the access (tag already filled)
            return max(inflight - now, config.l1d.latency) + latency_extra, 0

        if self.l1d.lookup(addr):
            return config.l1d.latency + latency_extra, 0

        # L1 miss: need an MSHR.  The heap holds completion times of
        # all outstanding misses; entries whose fill already happened
        # are popped lazily, so occupancy is just the heap length and
        # the all-busy case reads the earliest completion from the top
        # (the old code rebuilt a filtered list over the dict values on
        # every miss).
        stall = 0
        heap = self._mshr_heap
        while heap and heap[0] <= now:
            heapq.heappop(heap)
        if len(heap) >= config.mshr_entries:
            earliest = heap[0]
            stall = earliest - now
            now = earliest
            while heap and heap[0] <= now:
                heapq.heappop(heap)
        if len(mshr) > 64:
            for stale in [ln for ln, c in mshr.items() if c <= now]:
                del mshr[stale]

        if self.l2.lookup(addr):
            latency = config.l2.latency
        elif self.l3.lookup(addr):
            latency = config.l3.latency
        else:
            latency = config.memory_latency
        latency += latency_extra
        completion = now + latency
        mshr[line] = completion
        heapq.heappush(heap, completion)
        if completion > self._mshr_max:
            self._mshr_max = completion
        return latency, stall

    def _dstore(self, addr: int) -> None:
        """Write-through store: update lower-level tags, no-allocate L1."""
        if self.config.memory_model == "stochastic":
            return
        if not self.dtlb.lookup(addr):
            pass  # store TLB misses absorbed by the write buffer
        if not self.l1d.contains(addr):
            # No-write-allocate L1; allocate in L2 (write-back there).
            self.l2.lookup(addr)
        # If the line is present in L1 the write updates it in place.

    def _ifill_latency(self, addr: int) -> int:
        """Extra fetch cycles beyond the L1I pipeline on an I-miss."""
        config = self.config
        if self.l2.lookup(addr):
            return config.l2.latency - config.l1i.latency
        if self.l3.lookup(addr):
            return config.l3.latency - config.l1i.latency
        return config.memory_latency - config.l1i.latency


def _flatten(values) -> list:
    if isinstance(values, (int, float)):
        return [values]
    flat: list = []
    for item in values:
        if isinstance(item, (list, tuple)):
            flat.extend(_flatten(item))
        else:
            flat.append(item)
    return flat


def simulate(program: MachineProgram,
             config: MachineConfig = DEFAULT_CONFIG,
             arrays: Optional[dict] = None,
             max_instructions: int = 200_000_000) -> Metrics:
    """Convenience wrapper: run *program* and return its metrics."""
    sim = Simulator(program, config=config)
    for name, values in (arrays or {}).items():
        sim.set_symbol(name, values)
    return sim.run(max_instructions=max_instructions)
