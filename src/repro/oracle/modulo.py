"""Modulo-scheduling oracle: certified II feasibility per loop.

The iterative modulo scheduler (:mod:`repro.sched.modulo`) walks
candidate IIs from MII to ``2*MII`` with a backtracking budget — when it
achieves some II it proves feasibility *at that II* but never that
``II = MII`` is impossible.  This module closes the gap: for each
candidate II it decides, completely, whether a modulo schedule exists,
so per loop it proves either

* **II = MII is achievable** (with a witness schedule), or
* a **certified lower bound > MII**: every II below the bound admits no
  modulo schedule at all.

Encoding: variables are issue times ``t[i]`` (one per body op, one
iteration); dependence arcs from :func:`~repro.sched.modulo.deps
.analyze_deps` impose ``t[dst] - t[src] >= latency - distance * II``
and the modulo reservation table imposes per-row (``t mod II``) issue
width and memory-port capacity.  Latencies are capped at the same
``lat_cap = (MAX_STAGES - 1) * II`` the heuristic scheduler uses, so
the oracle answers exactly the question the heuristic attempts.

Completeness horizon
--------------------
An exhausted search only certifies "no schedule *within the windows*".
The windows are chosen so that this implies "no schedule at all": fix
any feasible schedule and normalize it (uniform shift by a multiple of
II, which preserves every constraint and permutes nothing in the MRT)
so one pinned op lands in ``[0, II)``.  Writing ``t[i] = r[i] +
k[i] * II`` with rows ``r`` fixed, the dependence constraints become a
difference system over the stage counts ``k`` with integer weights
``ceil((latency - distance*II - r[dst] + r[src]) / II)``, each of
magnitude at most ``max_latency + 2``.  A satisfiable difference system
has a solution spanning at most ``(n - 1) * max_weight``, so some
feasible schedule lies within ``H = n * (max_latency + 2) * II + II``
of the pinned op.  Windows ``[-H, H]`` (pinned op ``[0, II)``) are
therefore complete, and UNSAT is a genuine infeasibility certificate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..machine import MachineConfig
from ..sched.modulo.deps import LoopDeps
from ..sched.modulo.mii import compute_mii
from ..sched.modulo.pipeline import II_RANGE_FACTOR, MAX_STAGES
from ..sched.modulo.scheduler import modulo_schedule
from .solver import SAT, UNSAT, Arc, Budget, Problem, solve_decision

STATUS_OPTIMAL = "optimal"     # feasible II found, all below refuted
STATUS_FEASIBLE = "feasible"   # feasible II found, some below unknown
STATUS_BAILED = "bailed"       # budget ran out before any feasible II


def modulo_problem(deps: LoopDeps, config: MachineConfig,
                   ii: int, lat_cap: int) -> Problem:
    arcs = tuple(Arc(e.src, e.dst, min(e.latency, lat_cap), e.distance)
                 for e in deps.edges)
    is_mem = tuple(bool(ins.is_mem) for ins in deps.ops)
    return Problem(n=len(deps.ops), arcs=arcs, is_mem=is_mem,
                   issue_width=config.issue_width,
                   mem_ports=config.mem_ports, ii=ii)


def modulo_horizon(n: int, max_latency: int, ii: int) -> int:
    """Window radius outside which no schedule needs to stray (see the
    module docstring for the derivation)."""
    return n * (max_latency + 2) * ii + ii


def decide_ii(deps: LoopDeps, config: MachineConfig, ii: int,
              budget: Budget, lat_cap: Optional[int] = None):
    """Complete feasibility decision at one II.

    Returns a :class:`~repro.oracle.solver.Outcome`: SAT with witness
    times, UNSAT as an infeasibility certificate, or UNKNOWN on budget
    exhaustion.
    """
    if lat_cap is None:
        lat_cap = (MAX_STAGES - 1) * ii
    problem = modulo_problem(deps, config, ii, lat_cap)
    n = problem.n
    max_lat = max((arc.latency for arc in problem.arcs), default=1)
    horizon = modulo_horizon(n, max_lat, ii)
    lo = [-horizon] * n
    hi = [horizon] * n
    # Symmetry breaking: pin op 0 to the first interval (any schedule
    # can be shifted by a multiple of II to put it there).
    lo[0], hi[0] = 0, ii - 1
    return solve_decision(problem, lo, hi, budget)


def validate_modulo_times(deps: LoopDeps, config: MachineConfig,
                          ii: int, times: list,
                          lat_cap: Optional[int] = None) -> list:
    """Independent re-check of a witness schedule; returns violations.

    Mirrors the legality rules the kernel verifier enforces: every
    dependence edge satisfied at distance, and no modulo-reservation
    row over issue width or memory ports.
    """
    if lat_cap is None:
        lat_cap = (MAX_STAGES - 1) * ii
    problems = []
    for e in deps.edges:
        lat = min(e.latency, lat_cap)
        if times[e.dst] - times[e.src] < lat - e.distance * ii:
            problems.append(
                f"edge {e.src}->{e.dst} ({e.kind}) violated at ii={ii}")
    rows: dict = {}
    for op, t in enumerate(times):
        used, mem = rows.get(t % ii, (0, 0))
        rows[t % ii] = (used + 1, mem + (1 if deps.ops[op].is_mem else 0))
    for row, (used, mem) in sorted(rows.items()):
        if used > config.issue_width:
            problems.append(f"row {row} issues {used} ops")
        if mem > config.mem_ports:
            problems.append(f"row {row} issues {mem} memory ops")
    return problems


@dataclass
class LoopOracleResult:
    """Oracle outcome for one candidate loop."""

    label: str
    n_ops: int
    res_mii: int
    rec_mii: int
    mii: int
    #: II the iterative heuristic achieves under the same latency model
    #: (0 when it finds none within II <= 2*MII).
    heuristic_ii: int
    status: str
    #: Smallest feasible II found by the oracle (0 when none found).
    optimal_ii: int
    #: Certified lower bound: every II below this is proven infeasible
    #: (>= MII always, by the Res/Rec counting and recurrence bounds).
    certified_lb: int
    nodes: int
    #: Witness schedule at ``optimal_ii`` (issue time per body op).
    times: Optional[list] = field(default=None, repr=False)

    @property
    def certified(self) -> bool:
        return self.status == STATUS_OPTIMAL

    @property
    def beyond_heuristic(self) -> bool:
        """True when the oracle established something the iterative
        scheduler alone could not.

        The heuristic's own achievements (feasibility at its II, and
        the MII counting/recurrence bounds) are discounted; what counts
        is a certified lower bound *above* MII (a proof that MII is
        unreachable — when it equals the optimal II this is exactly the
        "heuristic's II was optimal after all" theorem), a feasible II
        strictly below the heuristic's, or settling feasibility for a
        loop where the heuristic found no II at all.
        """
        if self.certified_lb > self.mii:
            return True
        return self.status == STATUS_OPTIMAL and (
            self.heuristic_ii == 0
            or self.optimal_ii < self.heuristic_ii)

    def to_json(self) -> dict:
        return {
            "label": self.label,
            "n_ops": self.n_ops,
            "res_mii": self.res_mii,
            "rec_mii": self.rec_mii,
            "mii": self.mii,
            "heuristic_ii": self.heuristic_ii,
            "status": self.status,
            "optimal_ii": self.optimal_ii,
            "certified_lb": self.certified_lb,
            "beyond_heuristic": self.beyond_heuristic,
            "nodes": self.nodes,
        }


def heuristic_ii(deps: LoopDeps, config: MachineConfig,
                 mii: int) -> int:
    """II the production driver would achieve (0 = none), replicating
    its II walk and latency cap exactly."""
    for ii in range(mii, II_RANGE_FACTOR * mii + 1):
        sched = modulo_schedule(deps, config, ii,
                                lat_cap=(MAX_STAGES - 1) * ii)
        if sched is not None:
            return sched.ii
    return 0


def oracle_loop(deps: LoopDeps, config: MachineConfig,
                budget: Optional[Budget] = None,
                label: str = "") -> LoopOracleResult:
    """Prove the optimal II for one loop, or a certified bound.

    Walks II upward from MII.  Each UNSAT raises the certified lower
    bound; the first SAT is the optimal II iff everything below was
    refuted.  The walk stops at ``II_RANGE_FACTOR * mii`` (the
    heuristic's own ceiling) — past that the loop would not be
    pipelined anyway.
    """
    if budget is None:
        budget = Budget()
    budget.start()
    start_nodes = budget.nodes
    res, rec, mii = compute_mii(deps, config)
    heur = heuristic_ii(deps, config, mii)

    certified_lb = mii         # II < MII refuted by the bound arguments
    optimal_ii = 0
    times = None
    all_below_refuted = True
    status = STATUS_BAILED
    for ii in range(mii, II_RANGE_FACTOR * mii + 1):
        out = decide_ii(deps, config, ii, budget)
        if out.status == SAT:
            optimal_ii, times = ii, out.times
            bad = validate_modulo_times(deps, config, ii, out.times)
            if bad:
                raise AssertionError(
                    f"oracle produced an illegal modulo schedule "
                    f"for {label or 'loop'}: {bad}")
            status = (STATUS_OPTIMAL if all_below_refuted
                      else STATUS_FEASIBLE)
            break
        if out.status == UNSAT:
            certified_lb = ii + 1
            continue
        all_below_refuted = False
        break                  # budget exhausted; further IIs won't run

    return LoopOracleResult(
        label=label, n_ops=len(deps.ops), res_mii=res, rec_mii=rec,
        mii=mii, heuristic_ii=heur, status=status,
        optimal_ii=optimal_ii, certified_lb=certified_lb,
        nodes=budget.nodes - start_nodes, times=times)
