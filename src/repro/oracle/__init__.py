"""Combinatorial optimal-scheduling oracle (the "heuristic gap" axis).

The paper compares two heuristics — balanced and traditional list
scheduling — against each other; this package supplies ground truth.
Following the combinatorial-scheduling line of work named in PAPERS.md
(Roorda's SMT software pipelining; Castañeda Lozano et al.'s
constraint-based scheduling), it encodes the repo's two scheduling
problems as exact constraint searches with *certified* outcomes:

* :mod:`.solver` — a pure-python branch-and-bound decision engine
  (windows + bounds-consistency propagation over difference
  constraints, resource reservation rows, honest node/time budgets);
* :mod:`.block`  — acyclic block scheduling: provably minimal issue
  span, then provably minimal expected load-stall cycles under the
  paper's latency model;
* :mod:`.modulo` — modulo-schedule feasibility at a given II, proving
  per loop either II = MII achievable or a certified lower bound
  above MII;
* :mod:`.gap`    — the per-benchmark driver: runs the oracles over a
  grid point, round-trips every oracle schedule through the ``repro
  .check`` / ``codegen.verify`` validators, and aggregates the
  "heuristic gap" tables cached in the shared result store.

Every optimality claim is explicit about its evidence: ``optimal``
means a completed proof (search exhausted below the witness), anything
budget-limited is reported as ``feasible``/``bailed``, never silently
rounded up to optimal.
"""

from .block import (
    BlockOracleResult,
    MAX_BLOCK_OPS,
    greedy_issue_times,
    oracle_block,
    oracle_order,
    schedule_cost,
    stall_loads,
)
from .gap import (
    DEFAULT_BUDGET,
    GAP_SCHEMA_VERSION,
    ORACLE_SCHEDULER,
    OracleBudget,
    OracleRunner,
    analyze_point,
    attach_oracle,
    oracle_summary,
)
from .modulo import LoopOracleResult, decide_ii, oracle_loop
from .solver import (
    SAT,
    UNKNOWN,
    UNSAT,
    Arc,
    Budget,
    Problem,
    StallSpec,
    solve_decision,
)

__all__ = [
    "Arc", "Budget", "Problem", "StallSpec", "solve_decision",
    "SAT", "UNSAT", "UNKNOWN",
    "BlockOracleResult", "MAX_BLOCK_OPS", "greedy_issue_times",
    "oracle_block", "oracle_order", "schedule_cost", "stall_loads",
    "LoopOracleResult", "decide_ii", "oracle_loop",
    "OracleBudget", "OracleRunner", "DEFAULT_BUDGET",
    "GAP_SCHEMA_VERSION", "ORACLE_SCHEDULER",
    "analyze_point", "attach_oracle", "oracle_summary",
]
