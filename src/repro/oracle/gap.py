"""Per-benchmark heuristic-gap driver: oracle vs balanced vs traditional.

For one ``(benchmark, config)`` grid point this module

1. lowers the workload through the production pipeline's front half
   (frontend, AST transforms, lowering, classic cleanups) to the same
   pre-schedule CFG every scheduler sees;
2. runs the block oracle on every multi-op block against the balanced
   and traditional list schedules (:mod:`repro.oracle.block`);
3. **round-trips the oracle schedules through the PR 4 validators**:
   the oracle orders are applied to the CFG, checked against the
   pre-scheduling dependence snapshot (``check/dependence``), then
   register-allocated, linearized and machine-verified
   (``codegen/verify``) — optimality claims rest on independently
   checked legal schedules;
4. schedules a second copy of the CFG (as the software-pipelining
   driver would see it) and runs the modulo oracle on every candidate
   loop (:mod:`repro.oracle.modulo`);
5. aggregates a gap table: static and execution-weighted schedule cost
   (issue span + expected stall) for oracle/balanced/traditional, and
   achieved-II vs proven-optimal-II per loop.

Results are deterministic for a fixed node budget (wall-clock caps are
off by default) and cached in the digest-sharded
:class:`~repro.harness.store.ResultStore` under scheduler ``"oracle"``
with the budget folded into the config key — a different budget is a
different result.  :class:`OracleRunner` mirrors
:class:`~repro.harness.experiment.ExperimentRunner`: same cache
layout, same fingerprint discipline, same ``--jobs`` process-pool
fan-out.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from copy import deepcopy
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..analysis.locality import analyze_locality
from ..check.dependence import check_dependences, snapshot_dependences
from ..codegen.lower import lower
from ..codegen.regalloc import allocate_registers
from ..codegen.verify import verify_program
from ..frontend import frontend
from ..harness.compile import Options, make_weight_model
from ..harness.experiment import _package_fingerprint, options_for
from ..harness.store import ResultStore, StoreKey, source_hash
from ..ir.cfg import Cfg
from ..ir.dag import build_dag
from ..ir.liveness import liveness
from ..ir.loops import find_loops
from ..machine import (
    DEFAULT_CONFIG,
    MachineConfig,
    Simulator,
    config_from_json,
    config_hash,
    config_to_json,
)
from ..opt.constfold import fold_constants
from ..opt.copyprop import propagate_copies
from ..opt.dce import eliminate_dead_code
from ..opt.predication import predicate_program
from ..opt.unroll import unroll_program
from ..sched.block import schedule_cfg
from ..sched.list_scheduler import list_schedule
from ..sched.modulo.deps import analyze_deps, match_loop
from ..sched.modulo.pipeline import (
    MAX_BODY_OPS,
    MIN_BODY_OPS,
)
from ..sched.weights import TraditionalWeights
from ..workloads.programs import WORKLOADS
from .block import (
    STATUS_OPTIMAL,
    STATUS_SKIPPED,
    BlockOracleResult,
    oracle_block,
    oracle_order,
)
from .modulo import LoopOracleResult, oracle_loop
from .solver import Budget

#: Stable schema version of the per-point gap payload (CI asserts it).
GAP_SCHEMA_VERSION = 1

#: Store-key scheduler name for oracle results.  Shared with the serve
#: daemon's store: any future ``oracle`` op must key results the same
#: way for the dedup/caching guarantees to hold.
ORACLE_SCHEDULER = "oracle"

#: Loops above this size are not searched; mirrors the pipeline gate.
MAX_LOOP_OPS = MAX_BODY_OPS


@dataclass(frozen=True)
class OracleBudget:
    """Per-block / per-loop search budget.

    ``max_seconds <= 0`` (the default) disables the wall-clock cap so
    results are bit-stable run-to-run; the node cap alone is
    deterministic.
    """

    max_nodes: int = 200_000
    max_seconds: float = 0.0

    def tag(self) -> str:
        """Budget token for cache keys (the budget changes results)."""
        tag = f"n{self.max_nodes}"
        if self.max_seconds > 0:
            tag += f"t{self.max_seconds:g}"
        return tag

    def fresh(self) -> Budget:
        return Budget(max_nodes=self.max_nodes,
                      max_seconds=self.max_seconds)


DEFAULT_BUDGET = OracleBudget()


def _lower_for_oracle(source: str, options: Options,
                      name: str) -> Cfg:
    """The production pipeline's front half: the pre-schedule CFG.

    Mirrors :func:`~repro.harness.compile.compile_source` stages 1-4
    (frontend, AST transforms, lowering, classic cleanups) without the
    scheduling/regalloc back half, so the oracle reasons about exactly
    the blocks the heuristic schedulers are handed.
    """
    program_ast = frontend(source, name)
    if options.locality:
        analyze_locality(program_ast)
    if options.unroll:
        unroll_program(program_ast, options.unroll)
    if options.predicate:
        predicate_program(program_ast)
    cfg = lower(program_ast)
    if options.classic_opts:
        fold_constants(cfg)
        propagate_copies(cfg)
        eliminate_dead_code(cfg)
    if options.extra_opts:
        from ..opt.cse import eliminate_common_subexpressions
        from ..opt.licm import hoist_loop_invariants

        eliminate_common_subexpressions(cfg)
        hoist_loop_invariants(cfg)
        propagate_copies(cfg)
        eliminate_dead_code(cfg)
    return cfg


def _profile_block_counts(cfg: Cfg, options: Options) -> dict:
    """Execution count per block label (for dynamic gap weighting),
    measured exactly like the trace scheduler's profile pass."""
    snapshot = deepcopy(cfg)
    allocate_registers(snapshot)
    program = snapshot.linearize()
    sim = Simulator(program, config=options.config, profile=True,
                    mode="profile")
    sim.run()
    return dict(sim.block_counts)


def _analyze_blocks(cfg: Cfg, options: Options,
                    budget: OracleBudget) -> list:
    """Run the block oracle on every multi-op block of *cfg*."""
    balanced = make_weight_model(
        Options(scheduler="balanced", locality=options.locality,
                config=options.config))
    traditional = TraditionalWeights(options.config)
    results: list[BlockOracleResult] = []
    for label in cfg.order:
        block = cfg.blocks[label]
        if len(block.instrs) < 2:
            continue
        dag = build_dag(block.instrs)
        weights = balanced.weights(dag)
        seeds = {
            "balanced": list_schedule(dag, balanced),
            "traditional": list_schedule(dag, traditional),
        }
        results.append(oracle_block(
            dag, options.config, weights, seeds,
            budget=budget.fresh(), label=label))
    return results


def _validate_oracle_schedules(cfg: Cfg, results: list) -> None:
    """Round-trip the oracle schedules through the PR 4 validators.

    Applies every oracle block order to *cfg*, then (a) checks the
    permutations embed the pre-scheduling dependence snapshot and (b)
    register-allocates, linearizes and machine-verifies the result.
    Raises on any violation: an illegal "optimal" schedule is a solver
    bug, never a reportable result.
    """
    snapshot = snapshot_dependences(cfg)
    for result in results:
        if result.times is None:
            continue
        block = cfg.blocks[result.label]
        order = oracle_order(result)
        block.instrs = [block.instrs[i] for i in order]
    diags = check_dependences(cfg, snapshot, "oracle.block",
                              mode="block")
    errors = [d for d in diags if d.severity == "ERROR"]
    if errors:
        raise AssertionError(
            "oracle schedule violates dependences: "
            + "; ".join(d.message for d in errors[:3]))
    allocate_registers(cfg)
    program = cfg.linearize()
    verify_program(program)


def _analyze_loops(source: str, options: Options, name: str,
                   budget: OracleBudget) -> list:
    """Run the modulo oracle on every candidate loop.

    The candidate discovery replicates the software-pipelining driver:
    loops are matched on the *scheduled* CFG (the driver runs after
    list scheduling), the dependence graph and latency model are the
    production ones, and the same size gates apply.
    """
    cfg = _lower_for_oracle(source, options, name)
    model = make_weight_model(options)
    schedule_cfg(cfg, model)
    live_in, _ = liveness(cfg)
    loops = find_loops(cfg)
    order_pos = {label: i for i, label in enumerate(cfg.order)}
    results: list[LoopOracleResult] = []
    for header in sorted(loops, key=order_pos.get):
        loop = loops[header]
        if header == cfg.entry or loop.body != {header}:
            continue
        exit_label = cfg.blocks[header].fallthrough
        live_into_exit = (live_in.get(exit_label, set())
                          if exit_label else set())
        shape = match_loop(cfg, header, live_into_exit)
        if isinstance(shape, str):
            continue
        if not MIN_BODY_OPS <= len(shape.ops) <= MAX_LOOP_OPS:
            continue
        deps = analyze_deps(shape.ops, options.config, model)
        results.append(oracle_loop(deps, options.config,
                                   budget=budget.fresh(),
                                   label=header))
    return results


def _aggregate(blocks: list, loops: list, block_counts: dict) -> dict:
    """Fold per-block/per-loop oracle outcomes into the gap table row."""
    total = {"oracle": 0, "balanced": 0, "traditional": 0}
    weighted = {"oracle": 0, "balanced": 0, "traditional": 0}
    certified = sum(1 for b in blocks if b.status == STATUS_OPTIMAL)
    skipped = sum(1 for b in blocks if b.status == STATUS_SKIPPED)
    for b in blocks:
        count = max(1, block_counts.get(b.label, 0))
        # Compare on the combined cost (makespan + stall): the oracle
        # certifies its minimum separately from the lexicographic pair
        # and seeds it with both heuristics, so per block
        # oracle <= balanced and oracle <= traditional always hold and
        # every gap ratio is >= 1.
        costs = {
            "oracle": b.total,
            "balanced": sum(b.heuristics.get("balanced", b.cost)),
            "traditional": sum(b.heuristics.get("traditional", b.cost)),
        }
        for name, cost in costs.items():
            total[name] += cost
            weighted[name] += count * cost
    gaps = {}
    for name in ("balanced", "traditional"):
        gaps[name] = (round(weighted[name] / weighted["oracle"], 4)
                      if weighted["oracle"] else 1.0)
    loops_certified = sum(1 for l in loops if l.certified)
    return {
        "blocks": len(blocks),
        "blocks_certified": certified,
        "blocks_bailed": len(blocks) - certified,
        "blocks_skipped": skipped,
        "static_cost": total,
        "weighted_cost": weighted,
        "gap": gaps,
        "nodes": sum(b.nodes for b in blocks)
        + sum(l.nodes for l in loops),
        "loops": len(loops),
        "loops_certified": loops_certified,
        "loops_bailed": len(loops) - loops_certified,
        "loops_beyond_heuristic": sum(
            1 for l in loops if l.beyond_heuristic),
    }


def analyze_point(benchmark: str, config: str,
                  machine: Optional[MachineConfig] = None,
                  budget: OracleBudget = DEFAULT_BUDGET) -> dict:
    """Full gap analysis of one grid point; deterministic payload."""
    workload = WORKLOADS[benchmark]
    options = options_for("balanced", config, machine=machine)
    cfg = _lower_for_oracle(workload.source, options, workload.name)
    block_counts = _profile_block_counts(cfg, options)
    blocks = _analyze_blocks(cfg, options, budget)
    _validate_oracle_schedules(cfg, blocks)
    loops = _analyze_loops(workload.source, options, workload.name,
                           budget)
    payload = {
        "schema": GAP_SCHEMA_VERSION,
        "benchmark": benchmark,
        "config": config,
        "budget": budget.tag(),
        "validated": True,
        "summary": _aggregate(blocks, loops, block_counts),
        "blocks": [b.to_json() for b in blocks],
        "loops": [l.to_json() for l in loops],
    }
    return payload


def _oracle_pool_run(benchmark: str, config: str, cache_dir: str,
                     use_cache: bool, fingerprint: str,
                     budget_nodes: int, budget_seconds: float,
                     machine_json: Optional[dict] = None):
    """Worker entry point: one oracle point in a child process."""
    machine = config_from_json(machine_json) if machine_json else None
    runner = OracleRunner(
        cache_dir=Path(cache_dir), fingerprint=fingerprint,
        machine_config=machine,
        budget=OracleBudget(budget_nodes, budget_seconds))
    runner.use_cache = use_cache
    return benchmark, config, runner.run(benchmark, config)


class OracleRunner:
    """Caches and fans out gap analyses like the experiment runner.

    Results share the experiment cache's :class:`ResultStore` (and its
    key discipline) under the reserved scheduler name ``"oracle"``;
    the search budget is folded into the config component of the key
    because the budget changes what can be certified.
    """

    def __init__(self, cache_dir: Optional[Path] = None,
                 jobs: int = 1, verbose: bool = False,
                 fingerprint: Optional[str] = None,
                 machine_config: Optional[MachineConfig] = None,
                 budget: OracleBudget = DEFAULT_BUDGET) -> None:
        if cache_dir is None:
            cache_dir = Path(
                os.environ.get("REPRO_CACHE_DIR",
                               Path.home() / ".cache" / "repro-pldi95"))
        self.cache_dir = Path(cache_dir)
        self.use_cache = os.environ.get("REPRO_NO_CACHE") != "1"
        self.jobs = max(1, jobs)
        self.verbose = verbose
        self.budget = budget
        self.machine_config = machine_config
        self._machine_hash = config_hash(machine_config
                                         or DEFAULT_CONFIG)
        self._store = ResultStore(self.cache_dir)
        self._fingerprint = fingerprint or _package_fingerprint()
        self._memory: dict[tuple[str, str], dict] = {}

    def _store_key(self, benchmark: str, config: str) -> StoreKey:
        workload = WORKLOADS[benchmark]
        return StoreKey(
            benchmark=benchmark, scheduler=ORACLE_SCHEDULER,
            config=f"{config}@{self.budget.tag()}",
            fingerprint=self._fingerprint,
            source_hash=source_hash(workload.source),
            machine_hash=self._machine_hash)

    def run(self, benchmark: str, config: str) -> dict:
        """Gap analysis for one point (cached)."""
        key = (benchmark, config)
        if key in self._memory:
            return self._memory[key]
        store_key = self._store_key(benchmark, config)
        payload = self._store.load(store_key) if self.use_cache else None
        if payload is None or payload.get("schema") != GAP_SCHEMA_VERSION:
            if self.verbose:
                print(f"  oracle {benchmark} / {config}")
            payload = analyze_point(benchmark, config,
                                    machine=self.machine_config,
                                    budget=self.budget)
            if self.use_cache:
                self._store.store(store_key, payload)
        self._memory[key] = payload
        return payload

    def sweep(self, benchmarks: Optional[list] = None,
              configs: Optional[list] = None,
              jobs: Optional[int] = None) -> list:
        """Gap analyses for a grid, parallel over a process pool."""
        grid = [(benchmark, config)
                for benchmark in (benchmarks or list(WORKLOADS))
                for config in (configs or ["base"])]
        jobs = self.jobs if jobs is None else max(1, jobs)
        pending = []
        for key in dict.fromkeys(grid):
            if key in self._memory:
                continue
            if self.use_cache:
                payload = self._store.load(self._store_key(*key))
                if payload is not None and \
                        payload.get("schema") == GAP_SCHEMA_VERSION:
                    self._memory[key] = payload
                    continue
            pending.append(key)
        if len(pending) <= 1 or jobs == 1:
            for key in pending:
                self.run(*key)
        else:
            self._sweep_parallel(pending, jobs)
        return [self._memory[key] for key in grid]

    def _sweep_parallel(self, pending: list, jobs: int) -> None:
        machine_json = config_to_json(self.machine_config) \
            if self.machine_config is not None else None
        with ProcessPoolExecutor(
                max_workers=min(jobs, len(pending))) as pool:
            futures = {
                pool.submit(_oracle_pool_run, benchmark, config,
                            str(self.cache_dir), self.use_cache,
                            self._fingerprint, self.budget.max_nodes,
                            self.budget.max_seconds, machine_json):
                    (benchmark, config)
                for benchmark, config in pending}
            for future in as_completed(futures):
                benchmark, config, payload = future.result()
                self._memory[(benchmark, config)] = payload


def oracle_summary(payloads: list) -> dict:
    """Manifest-ready aggregate over a list of gap payloads.

    Keyed per benchmark/config point, plus suite totals — this is the
    ``oracle`` section of manifest v4 and what ``repro obs-diff``
    gates on.
    """
    points = {}
    totals = {"blocks": 0, "blocks_certified": 0, "blocks_bailed": 0,
              "loops": 0, "loops_certified": 0,
              "loops_beyond_heuristic": 0}
    for payload in payloads:
        summary = payload["summary"]
        points[f"{payload['benchmark']}/{payload['config']}"] = {
            "gap_balanced": summary["gap"]["balanced"],
            "gap_traditional": summary["gap"]["traditional"],
            "blocks": summary["blocks"],
            "blocks_certified": summary["blocks_certified"],
            "loops": summary["loops"],
            "loops_certified": summary["loops_certified"],
            "loops_beyond_heuristic":
                summary["loops_beyond_heuristic"],
        }
        for field in ("blocks", "blocks_certified", "blocks_bailed",
                      "loops", "loops_certified",
                      "loops_beyond_heuristic"):
            totals[field] += summary[field]
    return {
        "schema": GAP_SCHEMA_VERSION,
        "budget": payloads[0]["budget"] if payloads else "",
        "points": dict(sorted(points.items())),
        "totals": totals,
    }


def attach_oracle(manifest_path: Path, summary: dict) -> None:
    """Atomically rewrite a run manifest with the ``oracle`` section."""
    from ..harness.store import atomic_write_json

    path = Path(manifest_path)
    data = json.loads(path.read_text())
    data["oracle"] = summary
    atomic_write_json(path, data)
