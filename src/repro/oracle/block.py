"""Acyclic block-scheduling oracle.

Encodes one basic block's dependence DAG as a decision problem over
issue cycles (:mod:`repro.oracle.solver`) and minimizes, in
lexicographic order,

1. the **makespan** (last issue cycle + 1 — the static issue span the
   list scheduler's :func:`~repro.sched.list_scheduler
   .estimate_issue_cycles` also measures), then
2. the **expected load-stall cycles** under the paper's latency model:
   a load with balanced weight ``W`` (its parallelism-derived latency
   estimate, Kerns & Eggers) stalls ``max(0, W - gap)`` cycles, where
   ``gap`` is the issue distance to its earliest true consumer.

A third, independent search then certifies the **combined cost**
``makespan + stall`` — the block's expected cycle count on the in-order
machine.  The lexicographic optimum need not minimize this sum (a
schedule one cycle longer can hide many stall cycles), and the
heuristic-gap tables compare on the sum, so it gets its own proof; the
witness realizing it is the schedule the gap driver validates and
reports.

All objectives are solved by binary search on the bound.  Lower bounds
come from certificates (critical path / issue-width / memory-port
counting arguments, plus exhausted searches); upper bounds come from
witness schedules, seeded with the balanced and traditional heuristic
schedules so the oracle's cost can never exceed either heuristic, even
when the budget runs out mid-proof.

Cost model: the oracle controls issue slots directly (a compiler-view
schedule — idle slots are allowed), so a heuristic *order* is costed by
its greedy in-order issue times, which are themselves a valid
assignment.  Minimizing over assignments therefore minimizes over
orders too, and the comparison is apples-to-apples.  Weights are
integerized with ``ceil`` on both sides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..ir.dag import MEM, TRUE, Dag
from ..machine import MachineConfig
from .solver import SAT, UNSAT, Arc, Budget, Outcome, Problem, StallSpec
from .solver import assignment_stall, solve_decision

#: Blocks above this size are not searched (status ``skipped``); the
#: best heuristic schedule is reported as a non-certified feasible cost.
MAX_BLOCK_OPS = 24

STATUS_OPTIMAL = "optimal"     # both objectives certified
STATUS_FEASIBLE = "feasible"   # budget ran out mid-proof; witness only
STATUS_SKIPPED = "skipped"     # block larger than the size gate


def edge_latency(kind: str, producer_latency: int) -> int:
    """Issue-distance constraint carried by one DAG edge.

    True and memory edges wait out the producer's latency; anti/output/
    order edges only constrain issue order (1 cycle), matching
    :func:`~repro.sched.list_scheduler.estimate_issue_cycles`.
    """
    if kind in (TRUE, MEM):
        return producer_latency
    return 1


def block_problem(dag: Dag, config: MachineConfig) -> Problem:
    """Encode *dag* as an acyclic decision problem."""
    latencies = [config.op_latency.get(ins.op, 1) for ins in dag.instrs]
    arcs = []
    for src in range(len(dag.instrs)):
        for dst, kind in sorted(dag.succs[src].items()):
            arcs.append(Arc(src, dst, edge_latency(kind, latencies[src])))
    is_mem = tuple(bool(ins.is_mem) for ins in dag.instrs)
    return Problem(n=len(dag.instrs), arcs=tuple(arcs), is_mem=is_mem,
                   issue_width=config.issue_width,
                   mem_ports=config.mem_ports, ii=None)


def stall_loads(dag: Dag, weights: Sequence[float]) -> tuple:
    """``(load, true-consumers, ceil(weight))`` triples for the stall
    objective.  Loads without true consumers in the block never stall
    (their value is consumed elsewhere; the gap is unbounded)."""
    triples = []
    for load in dag.load_indices():
        consumers = tuple(sorted(
            dst for dst, kind in dag.succs[load].items() if kind == TRUE))
        if consumers:
            triples.append((load, consumers,
                            int(math.ceil(weights[load]))))
    return tuple(triples)


def greedy_issue_times(dag: Dag, order: Sequence[int],
                       config: MachineConfig) -> list:
    """In-order greedy issue times for a schedule *order*.

    Integer twin of :func:`~repro.sched.list_scheduler
    .estimate_issue_cycles`, generalized to the machine's issue width
    and memory ports; at width 1 the two agree cycle-for-cycle.
    """
    latencies = [config.op_latency.get(ins.op, 1) for ins in dag.instrs]
    times = {}
    cycle, used, mem_used = 0, 0, 0
    for node in order:
        ready = 0
        for pred, kind in dag.preds[node].items():
            at = times[pred] + edge_latency(kind, latencies[pred])
            if at > ready:
                ready = at
        if ready > cycle:
            cycle, used, mem_used = ready, 0, 0
        is_mem = dag.instrs[node].is_mem
        while used >= config.issue_width or \
                (is_mem and mem_used >= config.mem_ports):
            cycle, used, mem_used = cycle + 1, 0, 0
        times[node] = cycle
        used += 1
        if is_mem:
            mem_used += 1
    return [times[i] for i in range(len(dag.instrs))]


def makespan(times: Sequence[int]) -> int:
    return max(times) + 1 if len(times) else 0


def schedule_cost(times: Sequence[int], loads: tuple) -> tuple:
    """Lexicographic (makespan, expected stall) of an assignment."""
    return makespan(times), assignment_stall(times, loads)


def _makespan_lower_bound(problem: Problem) -> int:
    """Certified lower bound: critical path + counting arguments."""
    n = problem.n
    if n == 0:
        return 0
    est = [0] * n
    for arc in problem.arcs:          # arcs go forward in program order
        at = est[arc.src] + arc.latency
        if at > est[arc.dst]:
            est[arc.dst] = at
    cp = max(est) + 1
    width = math.ceil(n / max(1, problem.issue_width))
    n_mem = sum(problem.is_mem)
    ports = math.ceil(n_mem / max(1, problem.mem_ports)) if n_mem else 0
    return max(cp, width, ports)


@dataclass
class BlockOracleResult:
    """Oracle outcome for one basic block."""

    label: str
    n_ops: int
    status: str
    #: Witness realizing the best combined cost (assignment times,
    #: node-indexed); the best heuristic witness when the search was
    #: skipped.  This is the schedule the gap driver validates, so its
    #: makespan may exceed :attr:`makespan` (the lexicographic optimum)
    #: when trading span for stall lowers the sum.
    times: Optional[list]
    #: Lexicographic objective values: minimal makespan, then minimal
    #: expected stall at that makespan.
    makespan: int
    stall: int
    #: Best (and, when ``status == "optimal"``, certified minimal)
    #: combined cost ``makespan + stall`` over all schedules.
    total: int
    #: Certified lower bound on the makespan (== makespan iff the first
    #: objective is proven optimal).
    makespan_lb: int
    #: Search nodes spent on this block (deterministic).
    nodes: int
    #: Heuristic costs under the same model: name -> (makespan, stall).
    heuristics: dict = field(default_factory=dict)

    @property
    def certified(self) -> bool:
        return self.status == STATUS_OPTIMAL

    @property
    def cost(self) -> tuple:
        return (self.makespan, self.stall)

    def to_json(self) -> dict:
        return {
            "label": self.label,
            "n_ops": self.n_ops,
            "status": self.status,
            "makespan": self.makespan,
            "stall": self.stall,
            "total": self.total,
            "makespan_lb": self.makespan_lb,
            "nodes": self.nodes,
            "heuristics": {name: list(cost) for name, cost
                           in sorted(self.heuristics.items())},
        }


def oracle_block(dag: Dag, config: MachineConfig,
                 weights: Sequence[float],
                 seeds: dict,
                 budget: Optional[Budget] = None,
                 label: str = "",
                 max_ops: int = MAX_BLOCK_OPS) -> BlockOracleResult:
    """Find (and try to certify) an optimal schedule for one block.

    ``seeds`` maps heuristic names to schedule orders (permutations of
    node ids); their greedy issue times bound the search from above and
    are reported alongside the oracle cost.  ``weights`` is the
    balanced-weight vector used for the expected-stall objective.
    """
    n = len(dag.instrs)
    loads = stall_loads(dag, weights)
    heur: dict = {}
    best_times: Optional[list] = None
    best_cost = None
    for name, order in sorted(seeds.items()):
        times = greedy_issue_times(dag, order, config)
        cost = schedule_cost(times, loads)
        heur[name] = cost
        if best_cost is None or cost < best_cost:
            best_cost, best_times = cost, times

    if n == 0 or best_times is None:
        return BlockOracleResult(label=label, n_ops=n,
                                 status=STATUS_OPTIMAL, times=[],
                                 makespan=0, stall=0, total=0,
                                 makespan_lb=0, nodes=0,
                                 heuristics=heur)

    problem = block_problem(dag, config)
    lb = _makespan_lower_bound(problem)

    if n > max_ops:
        total_times, total = _best_total(dag, config, loads, seeds,
                                         best_times)
        return BlockOracleResult(
            label=label, n_ops=n, status=STATUS_SKIPPED,
            times=total_times, makespan=best_cost[0],
            stall=best_cost[1], total=total,
            makespan_lb=lb, nodes=0, heuristics=heur)

    if budget is None:
        budget = Budget()
    budget.start()
    start_nodes = budget.nodes

    # --- objective 1: makespan, binary search on the bound ----------
    # Invariant: no schedule fits in `lo` cycles (certified); `hi`
    # cycles is witnessed by `best_times`.
    lo, hi = lb - 1, best_cost[0]
    bailed = False
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        out = solve_decision(problem, [0] * n, [mid - 1] * n, budget)
        if out.status == SAT:
            best_times = out.times
            hi = makespan(out.times)
        elif out.status == UNSAT:
            lo = mid
        else:
            bailed = True
            break
    opt_makespan = hi

    # --- objective 2: expected stall at the optimal makespan --------
    # Re-seed the incumbent with every heuristic that achieves the
    # final makespan, so a bailed stall proof still reports a cost no
    # worse than any heuristic's.
    best_stall = assignment_stall(best_times, loads)
    for name, order in sorted(seeds.items()):
        times = greedy_issue_times(dag, order, config)
        if makespan(times) == opt_makespan and \
                assignment_stall(times, loads) < best_stall:
            best_times = times
            best_stall = assignment_stall(times, loads)
    if not bailed and best_stall > 0:
        slo, shi = -1, best_stall
        while slo + 1 < shi:
            mid = (slo + shi) // 2
            out = solve_decision(
                problem, [0] * n, [opt_makespan - 1] * n, budget,
                stall=StallSpec(loads=loads, bound=mid))
            if out.status == SAT:
                best_times = out.times
                shi = assignment_stall(out.times, loads)
            elif out.status == UNSAT:
                slo = mid
            else:
                bailed = True
                break
        best_stall = shi if not bailed else best_stall
    opt_makespan = makespan(best_times)
    opt_stall = assignment_stall(best_times, loads)

    # --- objective 3: combined cost makespan + stall ----------------
    # Seeded with the lexicographic witness and every heuristic, so the
    # reported total never exceeds any heuristic's even on a bail.  The
    # phase-1 certificate gives the starting lower bound: every
    # schedule's makespan — hence total — is >= opt_makespan.
    total_times, total = _best_total(dag, config, loads, seeds,
                                     best_times)
    if not bailed and total > opt_makespan:
        tlo, thi = opt_makespan - 1, total
        while tlo + 1 < thi:
            mid = (tlo + thi) // 2
            # stall >= 0 forces makespan <= mid, hence windows [0, mid).
            out = solve_decision(
                problem, [0] * n, [mid - 1] * n, budget,
                stall=StallSpec(loads=loads, bound=mid,
                                include_makespan=True))
            if out.status == SAT:
                total_times = out.times
                thi = makespan(out.times) + \
                    assignment_stall(out.times, loads)
            elif out.status == UNSAT:
                tlo = mid
            else:
                bailed = True
                break
        if not bailed:
            total = thi

    status = STATUS_FEASIBLE if bailed else STATUS_OPTIMAL
    return BlockOracleResult(
        label=label, n_ops=n, status=status, times=total_times,
        makespan=opt_makespan, stall=opt_stall, total=total,
        makespan_lb=lo + 1, nodes=budget.nodes - start_nodes,
        heuristics=heur)


def _best_total(dag: Dag, config: MachineConfig, loads: tuple,
                seeds: dict, incumbent: list) -> tuple:
    """Best combined-cost witness among *incumbent* and the seeds."""
    best = incumbent
    best_total = makespan(best) + assignment_stall(best, loads)
    for _name, order in sorted(seeds.items()):
        times = greedy_issue_times(dag, order, config)
        t = makespan(times) + assignment_stall(times, loads)
        if t < best_total:
            best, best_total = times, t
    return best, best_total


def oracle_order(result: BlockOracleResult) -> list:
    """Topological order realizing the oracle's assignment (stable by
    original position within an issue cycle)."""
    assert result.times is not None
    return sorted(range(len(result.times)),
                  key=lambda i: (result.times[i], i))
