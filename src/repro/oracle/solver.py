"""Pure-python branch-and-bound core for the scheduling oracle.

The oracle encodes scheduling questions as *decision problems* over
integer issue cycles: given one variable ``t[i]`` per operation, does an
assignment exist that satisfies

* difference constraints ``t[dst] - t[src] >= latency - distance * II``
  (dependence arcs; ``distance`` is 0 for acyclic block scheduling and
  the iteration distance for modulo scheduling),
* resource reservation: at most ``issue_width`` operations share an
  issue row, at most ``mem_ports`` of them touch memory (rows are
  absolute cycles for acyclic problems, ``t mod II`` for modulo
  problems),
* optional side objectives expressed as an extra bound (see
  :mod:`repro.oracle.block` for the expected-stall bound).

Optimization is layered on top by the callers via binary search on the
bound, so this module only ever answers SAT / UNSAT / UNKNOWN:

* ``SAT`` comes with a witness assignment,
* ``UNSAT`` is a *certificate*: the search space was exhausted (the
  engine is complete over the supplied windows),
* ``UNKNOWN`` means the node or time budget ran out first — callers must
  surface this as honest ``bailed`` accounting, never as a bound.

The engine is a classic DFS with bounds-consistency propagation:
per-op windows ``[lo, hi]`` are tightened to a fixpoint over the
difference arcs (Bellman-Ford style; a window that keeps moving after
``n`` sweeps proves a positive cycle, which is itself an infeasibility
certificate), variables are chosen fail-first (smallest window), and
values are tried in increasing cycle order.  No external dependencies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


class BudgetExhausted(Exception):
    """Raised internally when the search budget runs out."""


@dataclass
class Budget:
    """Node/time cap shared across every decision for one block or loop.

    ``max_seconds <= 0`` disables the wall-clock cap, which keeps runs
    bit-stable (node accounting is deterministic; wall time is not).
    """

    max_nodes: int = 200_000
    max_seconds: float = 0.0
    nodes: int = 0
    exhausted: bool = False
    _deadline: Optional[float] = field(default=None, repr=False)

    def start(self) -> None:
        if self.max_seconds > 0 and self._deadline is None:
            self._deadline = time.monotonic() + self.max_seconds

    def charge(self, amount: int = 1) -> None:
        self.nodes += amount
        if self.nodes > self.max_nodes:
            self.exhausted = True
            raise BudgetExhausted()
        if (
            self._deadline is not None
            and self.nodes % 512 == 0
            and time.monotonic() > self._deadline
        ):
            self.exhausted = True
            raise BudgetExhausted()


@dataclass(frozen=True)
class Arc:
    """Dependence arc: ``t[dst] - t[src] >= latency - distance * II``."""

    src: int
    dst: int
    latency: int
    distance: int = 0


@dataclass(frozen=True)
class Problem:
    """A scheduling decision instance.

    ``is_mem[i]`` marks operations that occupy a memory port.  ``ii``
    selects modulo semantics (resource rows are ``t mod ii``); ``None``
    selects acyclic semantics (rows are absolute cycles and every
    ``distance`` must be 0).
    """

    n: int
    arcs: tuple
    is_mem: tuple
    issue_width: int = 1
    mem_ports: int = 1
    ii: Optional[int] = None

    def arc_weight(self, arc: Arc) -> int:
        if self.ii is None:
            return arc.latency
        return arc.latency - arc.distance * self.ii


@dataclass(frozen=True)
class StallSpec:
    """Expected-stall side constraint for acyclic problems.

    ``loads`` is a sequence of ``(load, consumers, weight)`` triples;
    the stall of a load is ``max(0, weight - gap)`` where ``gap`` is the
    smallest ``t[use] - t[load]`` over its true consumers.  The total
    stall must stay ``<= bound``; with ``include_makespan`` the bound
    constrains ``makespan + total stall`` instead (the combined
    expected-cycles objective).
    """

    loads: tuple
    bound: int
    include_makespan: bool = False


@dataclass
class Outcome:
    status: str
    times: Optional[list] = None
    nodes: int = 0


def _stall_of(load_time: int, consumer_times: Sequence[int], weight: int) -> int:
    if not consumer_times:
        return 0
    gap = min(consumer_times) - load_time
    return max(0, weight - gap)


def assignment_stall(times: Sequence[int], spec_loads: Sequence[tuple]) -> int:
    """Total expected stall of a complete assignment."""
    total = 0
    for load, consumers, weight in spec_loads:
        total += _stall_of(times[load], [times[c] for c in consumers], weight)
    return total


class _Search:
    def __init__(
        self,
        problem: Problem,
        lo: list,
        hi: list,
        budget: Budget,
        stall: Optional[StallSpec],
    ) -> None:
        self.problem = problem
        self.lo = lo
        self.hi = hi
        self.budget = budget
        self.stall = stall
        self.placed = [False] * problem.n
        # row -> (ops issued, mem ops issued)
        self.rows: dict = {}
        self.solution: Optional[list] = None
        # Arcs indexed by endpoint for incremental propagation seeds.
        self.in_arcs: list = [[] for _ in range(problem.n)]
        self.out_arcs: list = [[] for _ in range(problem.n)]
        for arc in problem.arcs:
            self.out_arcs[arc.src].append(arc)
            self.in_arcs[arc.dst].append(arc)

    # -- propagation -------------------------------------------------

    def propagate(self) -> bool:
        """Tighten windows to a fixpoint; False on wipeout.

        Lower bounds relax like longest paths (Bellman-Ford): if any
        bound still moves after ``n`` full sweeps the arc graph has a
        positive cycle, which makes the constraint system infeasible
        outright.
        """
        problem, lo, hi = self.problem, self.lo, self.hi
        n = problem.n
        for sweep in range(n + 1):
            self.budget.charge()
            changed = False
            for arc in problem.arcs:
                w = problem.arc_weight(arc)
                nl = lo[arc.src] + w
                if nl > lo[arc.dst]:
                    if nl > hi[arc.dst]:
                        return False
                    lo[arc.dst] = nl
                    changed = True
                nh = hi[arc.dst] - w
                if nh < hi[arc.src]:
                    if nh < lo[arc.src]:
                        return False
                    hi[arc.src] = nh
                    changed = True
            if not changed:
                return True
        # Still moving after n sweeps: positive cycle => infeasible.
        return False

    def stall_lower_bound(self) -> int:
        """Sound lower bound on the stall objective given the windows.

        The largest achievable gap for a load puts the load as early and
        every consumer as late as its window allows.  With
        ``include_makespan`` the bound also counts the unavoidable
        makespan (every op issues at its earliest window cycle); on a
        complete assignment (collapsed windows) the bound is exact.
        """
        assert self.stall is not None
        total = 0
        for load, consumers, weight in self.stall.loads:
            if not consumers:
                continue
            max_gap = min(self.hi[c] for c in consumers) - self.lo[load]
            total += max(0, weight - max_gap)
        if self.stall.include_makespan and self.lo:
            total += max(self.lo) + 1
        return total

    # -- resource rows -----------------------------------------------

    def _row(self, t: int) -> int:
        if self.problem.ii is None:
            return t
        return t % self.problem.ii  # python %: non-negative for ii > 0

    def row_free(self, t: int, is_mem: bool) -> bool:
        used, mem_used = self.rows.get(self._row(t), (0, 0))
        if used >= self.problem.issue_width:
            return False
        if is_mem and mem_used >= self.problem.mem_ports:
            return False
        return True

    def occupy(self, t: int, is_mem: bool) -> None:
        row = self._row(t)
        used, mem_used = self.rows.get(row, (0, 0))
        self.rows[row] = (used + 1, mem_used + (1 if is_mem else 0))

    def release(self, t: int, is_mem: bool) -> None:
        row = self._row(t)
        used, mem_used = self.rows[row]
        self.rows[row] = (used - 1, mem_used - (1 if is_mem else 0))

    # -- search ------------------------------------------------------

    def pick(self) -> Optional[int]:
        best = None
        best_key = None
        for i in range(self.problem.n):
            if self.placed[i]:
                continue
            key = (self.hi[i] - self.lo[i], i)
            if best_key is None or key < best_key:
                best, best_key = i, key
        return best

    def search(self) -> bool:
        op = self.pick()
        if op is None:
            self.solution = list(self.lo)
            return True
        is_mem = bool(self.problem.is_mem[op])
        lo_save = self.lo
        hi_save = self.hi
        for t in range(lo_save[op], hi_save[op] + 1):
            self.budget.charge()
            if not self.row_free(t, is_mem):
                continue
            self.lo = list(lo_save)
            self.hi = list(hi_save)
            self.lo[op] = self.hi[op] = t
            self.placed[op] = True
            self.occupy(t, is_mem)
            ok = self.propagate()
            if ok and self.stall is not None:
                ok = self.stall_lower_bound() <= self.stall.bound
            if ok and self.search():
                return True
            self.release(t, is_mem)
            self.placed[op] = False
        self.lo = lo_save
        self.hi = hi_save
        return False


def solve_decision(
    problem: Problem,
    lo: Sequence[int],
    hi: Sequence[int],
    budget: Budget,
    stall: Optional[StallSpec] = None,
) -> Outcome:
    """Decide whether a schedule exists within the given windows.

    Complete over ``[lo, hi]``: an ``UNSAT`` outcome certifies that no
    assignment inside the windows satisfies the constraints.  Callers
    are responsible for choosing windows wide enough that UNSAT implies
    whatever theorem they are after (see the horizon bound in
    :mod:`repro.oracle.modulo`).
    """
    if problem.ii is None:
        for arc in problem.arcs:
            if arc.distance:
                raise ValueError("acyclic problem with loop-carried arc")
    elif problem.ii <= 0:
        raise ValueError(f"ii must be positive, got {problem.ii}")
    budget.start()
    start_nodes = budget.nodes
    search = _Search(problem, list(lo), list(hi), budget, stall)
    try:
        if not search.propagate():
            return Outcome(UNSAT, nodes=budget.nodes - start_nodes)
        if stall is not None and search.stall_lower_bound() > stall.bound:
            return Outcome(UNSAT, nodes=budget.nodes - start_nodes)
        if search.search():
            times = search.solution
            assert times is not None
            return Outcome(SAT, times=times, nodes=budget.nodes - start_nodes)
        return Outcome(UNSAT, nodes=budget.nodes - start_nodes)
    except BudgetExhausted:
        return Outcome(UNKNOWN, nodes=budget.nodes - start_nodes)
