"""AST -> CFG lowering: instruction selection for the Alpha-like ISA.

Strategy notes (all deliberate, see DESIGN.md):

* **Calls are inlined.**  Semantic analysis rejects recursion and pins
  ``return`` to the end of a body, so a call becomes: copy arguments
  into fresh virtual registers, splice the body, read the return value.
* **Scalars live in registers.**  Locals and parameters are bound to
  virtual registers.  Global scalars that are never assigned are
  *promoted*: initialized once into a register at entry.  Assigned
  globals live in the data segment and are loaded/stored per access.
* **Loops are rotated** (top-test guard + bottom-test latch) so an
  iteration executes a single conditional branch, like Multiflow's
  loop code.
* **Symbolic memory references.**  Every load/store carries a
  :class:`~repro.isa.instruction.MemRef` whose affine subscript uses
  block-local symbol versions, giving the dependence DAG a sound
  "same array, provably different element" disambiguator.
* **Address CSE + displacement folding.**  Affine subscripts share one
  scaled-index computation per basic block (keyed by their coefficient
  vector) and fold the constant term into the load/store displacement,
  so ``A[i][j-1]``, ``A[i][j]`` and ``A[i][j+1]`` cost one address
  computation plus three displaced accesses — the Multiflow-style code
  shape that makes unrolled loop bodies compact.
* **Strength reduction.**  Constant multiplies by powers of two become
  shifts, two-bit constants become shift+add (so row-major address
  arithmetic costs 1-cycle shifts/adds rather than 8-cycle multiplies).
"""

from __future__ import annotations

from typing import Optional

from ..analysis.affine import AffineForm, flatten_subscript
from ..frontend import ast
from ..frontend.errors import CompileError
from ..ir import BasicBlock, Cfg
from ..isa import (
    DataSymbol,
    Instruction,
    Locality,
    MemRef,
    Reg,
    VirtualRegAllocator,
    ZERO,
)

ELEMENT_BYTES = 8
LINE_BYTES = 32

_CMP_OP = {"==": "CMPEQ", "!=": "CMPNE", "<": "CMPLT", "<=": "CMPLE"}
_FCMP_OP = {"==": "FCMPEQ", "!=": "FCMPNE", "<": "FCMPLT", "<=": "FCMPLE"}
_INT_ARITH = {"+": "ADD", "-": "SUB", "*": "MUL", "/": "DIVQ", "%": "REMQ"}
_FP_ARITH = {"+": "FADD", "-": "FSUB", "*": "FMUL", "/": "FDIV"}
_HINTS = {"hit": Locality.HIT, "miss": Locality.MISS}


class Lowerer:
    """Lowers one analyzed program to a CFG of virtual-register code."""

    def __init__(self, program: ast.ProgramAST) -> None:
        self.program = program
        self.vregs = VirtualRegAllocator()
        self.cfg = Cfg(entry="entry")
        self._block: Optional[BasicBlock] = None
        self._scopes: list[dict[str, Reg]] = []
        self._reg_sym: dict[Reg, str] = {}
        self._addr_cache: dict = {}
        self._promoted: dict[str, Reg] = {}
        self._memory_globals: dict[str, DataSymbol] = {}
        self._affine: dict[Reg, Optional[AffineForm]] = {}
        self._symbol_counter = 0
        self._block_symbols: dict[str, str] = {}

    # =========================================================== driver
    def lower(self) -> Cfg:
        self._layout_data()
        entry = BasicBlock("entry")
        self.cfg.add_block(entry)
        self._set_block(entry)
        self._init_globals()
        main = self.program.function("main")
        self._scopes.append({})
        self._stmt_list(main.body.statements)
        self._scopes.pop()
        self._emit(Instruction("HALT"))
        self.cfg.prune_unreachable()
        self.cfg.verify()
        return self.cfg

    # ====================================================== data layout
    def _layout_data(self) -> None:
        address = 64  # keep address 0 unused
        assigned = self._assigned_globals()
        for array in self.program.arrays:
            address = _align(address, LINE_BYTES)
            symbol = DataSymbol(
                name=array.name, address=address,
                size_bytes=array.size_elems * ELEMENT_BYTES,
                is_fp=array.type == ast.FLOAT, dims=array.dims)
            self.cfg.symbols[array.name] = symbol
            address += symbol.size_bytes
        for decl in self.program.globals:
            if decl.name not in assigned:
                continue  # promoted to a register
            address = _align(address, ELEMENT_BYTES)
            symbol = DataSymbol(name=decl.name, address=address,
                                size_bytes=ELEMENT_BYTES,
                                is_fp=decl.type == ast.FLOAT)
            self.cfg.symbols[decl.name] = symbol
            self._memory_globals[decl.name] = symbol
            address += ELEMENT_BYTES
        self.cfg.data_size = _align(address, LINE_BYTES)

    def _assigned_globals(self) -> set[str]:
        global_names = {g.name for g in self.program.globals}
        assigned: set[str] = set()

        def visit(stmt: ast.Stmt) -> None:
            if isinstance(stmt, ast.Block):
                for child in stmt.statements:
                    visit(child)
            elif isinstance(stmt, ast.Assign):
                if isinstance(stmt.target, ast.Name):
                    assigned.add(stmt.target.ident)
            elif isinstance(stmt, ast.If):
                visit(stmt.then_body)
                if stmt.else_body is not None:
                    visit(stmt.else_body)
            elif isinstance(stmt, ast.While):
                visit(stmt.body)
            elif isinstance(stmt, ast.For):
                visit(stmt.init)
                visit(stmt.step)
                visit(stmt.body)

        for func in self.program.functions:
            visit(func.body)
        return assigned & global_names

    def _init_globals(self) -> None:
        for decl in self.program.globals:
            if decl.name in self._memory_globals:
                if decl.init is not None:
                    value = self._expr(decl.init)
                    self._store_scalar_global(decl, value)
            else:
                reg = self.vregs.new("f" if decl.type == ast.FLOAT else "i")
                self._promoted[decl.name] = reg
                init = decl.init if decl.init is not None else (
                    ast.FloatLit(value=0.0, type=ast.FLOAT)
                    if decl.type == ast.FLOAT
                    else ast.IntLit(value=0, type=ast.INT))
                self._expr(init, dest=reg)
                self._set_affine(reg, AffineForm.variable(f"g:{decl.name}")
                                 if decl.type == ast.INT else None)

    # ==================================================== block plumbing
    def _set_block(self, block: BasicBlock) -> None:
        self._block = block
        # Affine symbol versions, value symbols and the shared-address
        # cache are all block-local (see module docstring).
        self._block_symbols = {}
        self._affine = {}
        self._reg_sym = {}
        self._addr_cache = {}

    def _start_block(self, stem: str,
                     after: Optional[str] = None) -> BasicBlock:
        """Create a block placed right after *after* in layout order."""
        label = self.cfg.new_label(stem)
        block = BasicBlock(label)
        self.cfg.add_block(block, after=after or self._block.label)
        return block

    def _emit(self, instr: Instruction) -> Instruction:
        self._block.instrs.append(instr)
        for reg in instr.defs():
            # The register no longer holds the value its symbol named.
            self._reg_sym.pop(reg, None)
        return instr

    # ----------------------------------------------------- affine helpers
    def _fresh_symbol(self, name: str) -> str:
        self._symbol_counter += 1
        return f"{name}#{self._symbol_counter}"

    def _read_symbol(self, name: str) -> str:
        symbol = self._block_symbols.get(name)
        if symbol is None:
            symbol = self._fresh_symbol(name)
            self._block_symbols[name] = symbol
        return symbol

    def _set_affine(self, reg: Reg, form: Optional[AffineForm]) -> None:
        self._affine[reg] = form

    def _affine_of(self, reg: Reg) -> Optional[AffineForm]:
        return self._affine.get(reg)

    # ========================================================= statements
    def _stmt_list(self, statements: list[ast.Stmt]) -> None:
        for stmt in statements:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            reg = self.vregs.new("f" if stmt.type == ast.FLOAT else "i")
            self._scopes[-1][stmt.name] = reg
            if stmt.init is not None:
                self._assign_scalar(stmt.name, reg, stmt.init)
        elif isinstance(stmt, ast.Assign):
            self._assign(stmt)
        elif isinstance(stmt, ast.If):
            self._if_stmt(stmt)
        elif isinstance(stmt, ast.While):
            self._while_stmt(stmt)
        elif isinstance(stmt, ast.For):
            self._for_stmt(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr)
        elif isinstance(stmt, ast.Block):
            self._stmt_list(stmt.statements)
        elif isinstance(stmt, ast.Return):
            raise CompileError("unexpected return during lowering", stmt.loc)
        else:
            raise CompileError(f"cannot lower {type(stmt).__name__}",
                               stmt.loc)

    def _assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.Name):
            name = target.ident
            reg = self._lookup(name)
            if reg is None:
                symbol = self._memory_globals[name]
                value = self._expr(stmt.value)
                decl = next(g for g in self.program.globals
                            if g.name == name)
                self._store_scalar_global(decl, value)
                self._block_symbols.pop(name, None)
            else:
                self._assign_scalar(name, reg, stmt.value)
        else:
            value = self._expr(stmt.value)
            addr, offset, mem = self._array_address(target)
            op = "FST" if target.type == ast.FLOAT else "ST"
            self._emit(Instruction(op, srcs=(value, addr), offset=offset,
                                   mem=mem))

    def _assign_scalar(self, name: str, reg: Reg,
                       value_expr: ast.Expr) -> None:
        self._expr(value_expr, dest=reg)
        if reg.kind == "i":
            # Track the value's affine form; if unknown, give the
            # variable a fresh symbol so older forms can't leak.
            form = self._affine.get(reg)
            if form is None:
                symbol = self._fresh_symbol(name)
                self._block_symbols[name] = symbol
                self._set_affine(reg, AffineForm.variable(symbol))

    def _store_scalar_global(self, decl: ast.VarDecl, value: Reg) -> None:
        symbol = self._memory_globals[decl.name]
        op = "FST" if decl.type == ast.FLOAT else "ST"
        mem = MemRef("data", decl.name, affine=({}, 0))
        self._emit(Instruction(op, srcs=(value, ZERO),
                               offset=symbol.address, mem=mem))

    # ------------------------------------------------------- control flow
    def _if_stmt(self, stmt: ast.If) -> None:
        cond = self._expr(stmt.cond)
        then_block = self._start_block("then")
        if stmt.else_body is not None:
            else_block = self._start_block("else", after=then_block.label)
            end_block = self._start_block("endif", after=else_block.label)
            self._emit(Instruction("BEQ", srcs=(cond,),
                                   label=else_block.label))
            self._block.fallthrough = then_block.label
            self._set_block(then_block)
            self._stmt_list(stmt.then_body.statements)
            self._emit(Instruction("BR", label=end_block.label))
            self._set_block(else_block)
            self._stmt_list(stmt.else_body.statements)
            self._block.fallthrough = end_block.label
            self._set_block(end_block)
        else:
            end_block = self._start_block("endif", after=then_block.label)
            self._emit(Instruction("BEQ", srcs=(cond,),
                                   label=end_block.label))
            self._block.fallthrough = then_block.label
            self._set_block(then_block)
            self._stmt_list(stmt.then_body.statements)
            self._block.fallthrough = end_block.label
            self._set_block(end_block)

    def _while_stmt(self, stmt: ast.While) -> None:
        self._loop(cond=stmt.cond, body=stmt.body.statements, step=None)

    def _for_stmt(self, stmt: ast.For) -> None:
        self._stmt(stmt.init)
        self._loop(cond=stmt.cond, body=stmt.body.statements,
                   step=stmt.step)

    def _loop(self, cond: ast.Expr, body: list[ast.Stmt],
              step: Optional[ast.Assign]) -> None:
        """Rotated loop: guard test, body, bottom test back edge."""
        body_block = self._start_block("loop")
        exit_block = self._start_block("exit", after=body_block.label)
        # Guard: skip the loop entirely when the condition is false.
        guard_cond = self._expr(cond)
        self._emit(Instruction("BEQ", srcs=(guard_cond,),
                               label=exit_block.label))
        self._block.fallthrough = body_block.label
        self._set_block(body_block)
        self._stmt_list(body)
        if step is not None:
            self._stmt(step)
        latch_cond = self._expr(cond)
        self._emit(Instruction("BNE", srcs=(latch_cond,),
                               label=body_block.label))
        self._block.fallthrough = exit_block.label
        self._set_block(exit_block)

    # ======================================================== expressions
    def _lookup(self, name: str) -> Optional[Reg]:
        if self._scopes and name in self._scopes[-1]:
            return self._scopes[-1][name]
        if name in self._promoted:
            return self._promoted[name]
        return None

    def _expr(self, expr: ast.Expr, dest: Optional[Reg] = None) -> Reg:
        """Lower *expr*; if *dest* is given the result lands there."""
        if isinstance(expr, ast.IntLit):
            reg = dest or self.vregs.new_int()
            self._emit(Instruction("LDI", dest=reg, imm=expr.value))
            self._set_affine(reg, AffineForm.constant(expr.value))
            return reg
        if isinstance(expr, ast.FloatLit):
            reg = dest or self.vregs.new_fp()
            self._emit(Instruction("FLDI", dest=reg, imm=float(expr.value)))
            return reg
        if isinstance(expr, ast.Name):
            return self._name_expr(expr, dest)
        if isinstance(expr, ast.ArrayIndex):
            return self._array_load(expr, dest)
        if isinstance(expr, ast.Cast):
            return self._cast_expr(expr, dest)
        if isinstance(expr, ast.UnaryOp):
            return self._unary_expr(expr, dest)
        if isinstance(expr, ast.BinOp):
            return self._binop_expr(expr, dest)
        if isinstance(expr, ast.Call):
            return self._call_expr(expr, dest)
        if isinstance(expr, ast.Select):
            return self._select_expr(expr, dest)
        raise CompileError(f"cannot lower {type(expr).__name__}", expr.loc)

    def _select_expr(self, expr: ast.Select, dest: Optional[Reg]) -> Reg:
        """Lower a predication select to MOV + CMOVNE."""
        cond = self._expr(expr.cond)
        true_val = self._expr(expr.if_true)
        is_fp = expr.type == ast.FLOAT
        reg = dest or self.vregs.new("f" if is_fp else "i")
        self._expr(expr.if_false, dest=reg)
        op = "FCMOVNE" if is_fp else "CMOVNE"
        self._emit(Instruction(op, dest=reg, srcs=(cond, true_val)))
        if not is_fp:
            self._set_affine(reg, None)
        return reg

    def _name_expr(self, expr: ast.Name, dest: Optional[Reg]) -> Reg:
        name = expr.ident
        reg = self._lookup(name)
        if reg is not None:
            if reg.kind == "i" and self._affine_of(reg) is None:
                self._set_affine(
                    reg, AffineForm.variable(self._read_symbol(name)))
            if dest is None or dest is reg:
                return reg
            op = "FMOV" if reg.kind == "f" else "MOV"
            self._emit(Instruction(op, dest=dest, srcs=(reg,)))
            self._set_affine(dest, self._affine_of(reg))
            return dest
        # In-memory global scalar.
        symbol = self._memory_globals[name]
        is_fp = expr.type == ast.FLOAT
        reg = dest or self.vregs.new("f" if is_fp else "i")
        mem = MemRef("data", name, affine=({}, 0))
        self._emit(Instruction("FLD" if is_fp else "LD", dest=reg,
                               srcs=(ZERO,), offset=symbol.address, mem=mem))
        if not is_fp:
            self._set_affine(
                reg, AffineForm.variable(self._read_symbol(name)))
        return reg

    def _cast_expr(self, expr: ast.Cast, dest: Optional[Reg]) -> Reg:
        operand = self._expr(expr.operand)
        if expr.target == ast.FLOAT:
            if operand.kind == "f":
                return self._move(operand, dest)
            reg = dest or self.vregs.new_fp()
            self._emit(Instruction("CVTIF", dest=reg, srcs=(operand,)))
            return reg
        if operand.kind == "i":
            return self._move(operand, dest)
        reg = dest or self.vregs.new_int()
        self._emit(Instruction("CVTFI", dest=reg, srcs=(operand,)))
        self._set_affine(reg, None)
        return reg

    def _move(self, source: Reg, dest: Optional[Reg]) -> Reg:
        if dest is None or dest is source:
            return source
        op = "FMOV" if source.kind == "f" else "MOV"
        self._emit(Instruction(op, dest=dest, srcs=(source,)))
        self._set_affine(dest, self._affine_of(source))
        return dest

    def _unary_expr(self, expr: ast.UnaryOp, dest: Optional[Reg]) -> Reg:
        operand = self._expr(expr.operand)
        if expr.op == "-":
            if operand.kind == "f":
                reg = dest or self.vregs.new_fp()
                self._emit(Instruction("FNEG", dest=reg, srcs=(operand,)))
                return reg
            reg = dest or self.vregs.new_int()
            self._emit(Instruction("SUB", dest=reg, srcs=(ZERO, operand)))
            form = self._affine_of(operand)
            self._set_affine(reg, form.scale(-1) if form else None)
            return reg
        if expr.op == "!":
            reg = dest or self.vregs.new_int()
            self._emit(Instruction("CMPEQ", dest=reg, srcs=(operand,), imm=0))
            self._set_affine(reg, None)
            return reg
        raise CompileError(f"unknown unary {expr.op!r}", expr.loc)

    def _binop_expr(self, expr: ast.BinOp, dest: Optional[Reg]) -> Reg:
        op = expr.op
        if op in ("&&", "||"):
            left = self._expr(expr.left)
            right = self._expr(expr.right)
            reg = dest or self.vregs.new_int()
            # Normalize both sides to 0/1 and combine; operands are
            # already 0/1 when produced by comparisons, and the CMPNE
            # normalization keeps other int values correct.
            lnorm = self.vregs.new_int()
            rnorm = self.vregs.new_int()
            self._emit(Instruction("CMPNE", dest=lnorm, srcs=(left,), imm=0))
            self._emit(Instruction("CMPNE", dest=rnorm, srcs=(right,), imm=0))
            self._emit(Instruction("AND" if op == "&&" else "OR",
                                   dest=reg, srcs=(lnorm, rnorm)))
            self._set_affine(reg, None)
            return reg
        if op in _CMP_OP or op in (">", ">="):
            return self._compare(expr, dest)
        left_is_fp = expr.left.type == ast.FLOAT
        if left_is_fp:
            left = self._expr(expr.left)
            right = self._expr(expr.right)
            reg = dest or self.vregs.new_fp()
            self._emit(Instruction(_FP_ARITH[op], dest=reg,
                                   srcs=(left, right)))
            return reg
        return self._int_arith(expr, dest)

    def _mul_const(self, src: Reg, const: int,
                   dest: Optional[Reg]) -> Optional[Reg]:
        """Strength-reduced multiply by a constant, or None if not worth it.

        Powers of two become one shift; constants with two set bits
        become two shifts and an add (e.g. ``x*96 = (x<<6)+(x<<5)``) —
        cheaper than the 8-cycle integer multiply.
        """
        if const <= 0:
            return None
        bits = [b for b in range(const.bit_length()) if (const >> b) & 1]
        form = self._affine_of(src)
        scaled = form.scale(const) if form is not None else None
        if len(bits) == 1:
            reg = dest or self.vregs.new_int()
            self._emit(Instruction("SLL", dest=reg, srcs=(src,),
                                   imm=bits[0]))
            self._set_affine(reg, scaled)
            return reg
        if len(bits) == 2:
            high = self.vregs.new_int()
            self._emit(Instruction("SLL", dest=high, srcs=(src,),
                                   imm=bits[1]))
            reg = dest or self.vregs.new_int()
            if bits[0] == 0:
                self._emit(Instruction("ADD", dest=reg, srcs=(high, src)))
            else:
                low = self.vregs.new_int()
                self._emit(Instruction("SLL", dest=low, srcs=(src,),
                                       imm=bits[0]))
                self._emit(Instruction("ADD", dest=reg, srcs=(high, low)))
            self._set_affine(reg, scaled)
            return reg
        return None

    def _int_arith(self, expr: ast.BinOp, dest: Optional[Reg]) -> Reg:
        op = expr.op
        left = self._expr(expr.left)
        # Strength-reduce multiply by simple literals.
        if op == "*":
            const = _const_int(expr.right)
            if const is not None:
                reduced = self._mul_const(left, const, dest)
                if reduced is not None:
                    return reduced
            const_l = _const_int(expr.left)
            if const_l is not None:
                right = self._expr(expr.right)
                reduced = self._mul_const(right, const_l, dest)
                if reduced is not None:
                    return reduced
        # Immediate operand form for + and - with literal rhs.
        const = _const_int(expr.right)
        if op in ("+", "-") and const is not None and -32768 <= const < 32768:
            reg = dest or self.vregs.new_int()
            self._emit(Instruction(_INT_ARITH[op], dest=reg, srcs=(left,),
                                   imm=const))
            form = self._affine_of(left)
            if form is not None:
                form = form.add(AffineForm.constant(const),
                                1 if op == "+" else -1)
            self._set_affine(reg, form)
            return reg
        right = self._expr(expr.right)
        reg = dest or self.vregs.new_int()
        self._emit(Instruction(_INT_ARITH[op], dest=reg, srcs=(left, right)))
        form_l = self._affine_of(left)
        form_r = self._affine_of(right)
        form = None
        if form_l is not None and form_r is not None:
            if op == "+":
                form = form_l.add(form_r)
            elif op == "-":
                form = form_l.add(form_r, -1)
            elif op == "*":
                if form_l.is_constant:
                    form = form_r.scale(form_l.const)
                elif form_r.is_constant:
                    form = form_l.scale(form_r.const)
        self._set_affine(reg, form)
        return reg

    def _compare(self, expr: ast.BinOp, dest: Optional[Reg]) -> Reg:
        op = expr.op
        left_expr, right_expr = expr.left, expr.right
        if op == ">":
            op, left_expr, right_expr = "<", right_expr, left_expr
        elif op == ">=":
            op, left_expr, right_expr = "<=", right_expr, left_expr
        is_fp = left_expr.type == ast.FLOAT
        left = self._expr(left_expr)
        reg = dest or self.vregs.new_int()
        table = _FCMP_OP if is_fp else _CMP_OP
        const = None if is_fp else _const_int(right_expr)
        if const is not None and -32768 <= const < 32768:
            self._emit(Instruction(table[op], dest=reg, srcs=(left,),
                                   imm=const))
        else:
            right = self._expr(right_expr)
            self._emit(Instruction(table[op], dest=reg, srcs=(left, right)))
        self._set_affine(reg, None)
        return reg

    # ------------------------------------------------------- array access
    def _array_load(self, expr: ast.ArrayIndex, dest: Optional[Reg]) -> Reg:
        addr, offset, mem = self._array_address(expr)
        is_fp = expr.type == ast.FLOAT
        reg = dest or self.vregs.new("f" if is_fp else "i")
        locality = _HINTS.get(expr.hint, Locality.UNKNOWN)
        self._emit(Instruction("FLD" if is_fp else "LD", dest=reg,
                               srcs=(addr,), offset=offset, mem=mem,
                               locality=locality, group=expr.group))
        if not is_fp:
            self._set_affine(reg, None)
        return reg

    def _value_symbol(self, reg: Reg) -> str:
        """A block-local symbol naming the register's current value."""
        sym = self._reg_sym.get(reg)
        if sym is None:
            sym = self._fresh_symbol(f"r{reg.num}")
            self._reg_sym[reg] = sym
        return sym

    def _resolve_affine(self, form: AffineForm):
        """Rewrite an AST-level affine form over register-value symbols.

        Returns ``(coeffs, const, sym_regs)`` with ``coeffs`` a sorted
        tuple over block-local value symbols and ``sym_regs`` mapping
        each symbol to the register currently holding it, or None when
        some variable is not register-resident (e.g. assigned globals).
        """
        coeffs: dict[str, int] = {}
        sym_regs: dict[str, Reg] = {}
        for name, coeff in form.coeffs:
            reg = self._lookup(name)
            if reg is None or reg.kind != "i":
                return None
            sym = self._value_symbol(reg)
            coeffs[sym] = coeffs.get(sym, 0) + coeff
            sym_regs[sym] = reg
        resolved = tuple(sorted((s, c) for s, c in coeffs.items() if c))
        return resolved, form.const, sym_regs

    def _scaled_index(self, coeffs, sym_regs: dict[str, Reg]) -> Reg:
        """Byte-scaled Σ coeff*reg, CSE'd per block by coefficient key."""
        cached = self._addr_cache.get(coeffs)
        if cached is not None:
            return cached
        acc: Optional[Reg] = None
        for sym, coeff in coeffs:
            reg = sym_regs[sym]
            negative = coeff < 0
            magnitude = -coeff if negative else coeff
            if magnitude == 1:
                term = reg
            else:
                term = self._mul_const(reg, magnitude, None)
                if term is None:
                    term = self.vregs.new_int()
                    self._emit(Instruction("MUL", dest=term, srcs=(reg,),
                                           imm=magnitude))
            if acc is None:
                if negative:
                    flipped = self.vregs.new_int()
                    self._emit(Instruction("SUB", dest=flipped,
                                           srcs=(ZERO, term)))
                    term = flipped
                acc = term
            else:
                summed = self.vregs.new_int()
                self._emit(Instruction("SUB" if negative else "ADD",
                                       dest=summed, srcs=(acc, term)))
                acc = summed
        scaled = self.vregs.new_int()
        if acc is None:
            self._emit(Instruction("LDI", dest=scaled, imm=0))
        else:
            self._emit(Instruction("SLL", dest=scaled, srcs=(acc,), imm=3))
        self._addr_cache[coeffs] = scaled
        return scaled

    def _array_address(self, expr: ast.ArrayIndex) -> tuple[Reg, int, MemRef]:
        """(base register, displacement, MemRef) for an array element.

        Affine subscripts share one scaled-index computation per block
        and put ``array base + 8*constant`` in the displacement; other
        subscripts fall back to explicit per-reference address code.
        """
        decl = self.program.array(expr.array)
        base = self.cfg.symbols[expr.array].address
        flat_ast = flatten_subscript(expr, decl)
        if flat_ast is not None:
            resolved = self._resolve_affine(flat_ast)
            if resolved is not None:
                coeffs, const, sym_regs = resolved
                mem = MemRef("data", expr.array,
                             affine=(dict(coeffs), const))
                displacement = base + 8 * const
                if not coeffs:
                    if 0 <= displacement < 32768:
                        return ZERO, displacement, mem
                    addr = self._addr_cache.get(("abs", displacement))
                    if addr is None:
                        addr = self.vregs.new_int()
                        self._emit(Instruction("LDI", dest=addr,
                                               imm=displacement))
                        self._addr_cache[("abs", displacement)] = addr
                    return addr, 0, mem
                scaled = self._scaled_index(coeffs, sym_regs)
                if -32768 <= displacement < 32768:
                    return scaled, displacement, mem
                key = ("withbase", base, coeffs)
                combined = self._addr_cache.get(key)
                if combined is None:
                    base_reg = self._addr_cache.get(("abs", base))
                    if base_reg is None:
                        base_reg = self.vregs.new_int()
                        self._emit(Instruction("LDI", dest=base_reg,
                                               imm=base))
                        self._addr_cache[("abs", base)] = base_reg
                    combined = self.vregs.new_int()
                    self._emit(Instruction("ADD", dest=combined,
                                           srcs=(scaled, base_reg)))
                    self._addr_cache[key] = combined
                offset = 8 * const
                if -32768 <= offset < 32768:
                    return combined, offset, mem
                final = self.vregs.new_int()
                big = self.vregs.new_int()
                self._emit(Instruction("LDI", dest=big, imm=offset))
                self._emit(Instruction("ADD", dest=final, srcs=(combined,
                                                                big)))
                return final, 0, mem

        # Fallback: non-affine subscript, explicit address arithmetic.
        flat: Optional[Reg] = None
        for dim_index, index_expr in enumerate(expr.indices):
            stride = 1
            for d in decl.dims[dim_index + 1:]:
                stride *= d
            index_reg = self._expr(index_expr)
            if stride != 1:
                scaled = self._mul_const(index_reg, stride, None)
                if scaled is None:
                    scaled = self.vregs.new_int()
                    self._emit(Instruction("MUL", dest=scaled,
                                           srcs=(index_reg,), imm=stride))
                index_reg = scaled
            if flat is None:
                flat = index_reg
            else:
                summed = self.vregs.new_int()
                self._emit(Instruction("ADD", dest=summed,
                                       srcs=(flat, index_reg)))
                flat = summed
        byte_addr = self.vregs.new_int()
        self._emit(Instruction("SLL", dest=byte_addr, srcs=(flat,), imm=3))
        mem = MemRef("data", expr.array, affine=None)
        if 0 <= base < 32768:
            return byte_addr, base, mem
        base_reg = self.vregs.new_int()
        self._emit(Instruction("LDI", dest=base_reg, imm=base))
        addr = self.vregs.new_int()
        self._emit(Instruction("ADD", dest=addr, srcs=(byte_addr, base_reg)))
        return addr, 0, mem

    # -------------------------------------------------------------- calls
    def _call_expr(self, expr: ast.Call, dest: Optional[Reg]) -> Reg:
        func = self.program.function(expr.func)
        arg_regs: list[Reg] = []
        for arg, param in zip(expr.args, func.params):
            value = self._expr(arg)
            fresh = self.vregs.new("f" if param.type == ast.FLOAT else "i")
            self._move(value, fresh)
            arg_regs.append(fresh)
        scope = {param.name: reg
                 for param, reg in zip(func.params, arg_regs)}
        self._scopes.append(scope)
        statements = list(func.body.statements)
        result: Optional[Reg] = None
        if statements and isinstance(statements[-1], ast.Return):
            ret = statements.pop()
            self._stmt_list(statements)
            if ret.value is not None:
                is_fp = func.return_type == ast.FLOAT
                result = dest or self.vregs.new("f" if is_fp else "i")
                self._expr(ret.value, dest=result)
        else:
            self._stmt_list(statements)
        self._scopes.pop()
        if result is None:
            # Void call in expression position is rejected by sema; a
            # dummy register keeps the type checker of this module calm.
            result = dest or self.vregs.new_int()
        return result


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def _const_int(expr: ast.Expr) -> Optional[int]:
    if isinstance(expr, ast.IntLit):
        return expr.value
    if (isinstance(expr, ast.UnaryOp) and expr.op == "-"
            and isinstance(expr.operand, ast.IntLit)):
        return -expr.operand.value
    return None


def lower(program: ast.ProgramAST) -> Cfg:
    """Lower an analyzed program AST to a virtual-register CFG."""
    return Lowerer(program).lower()
