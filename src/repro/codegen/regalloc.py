"""Linear-scan register allocation with spill/restore insertion.

Runs *after* scheduling (the schedulers work on virtual registers; the
paper's first tie-breaker and the list scheduler's pressure guard
already bias the schedule toward low pressure).  Each virtual register
gets one physical register for its whole live interval; when a bank's
allocatable registers run out, the interval with the furthest end is
spilled to a stack slot and rewritten with restore-before-use /
spill-after-def code, marked ``is_spill`` so the simulator can count
spill and restore instructions (a paper metric, and the mechanism
behind the unroll-by-8 regressions in Table 4).

Register conventions (see :mod:`repro.isa.registers`): r31/f31 zero,
r30 stack pointer, r28/r29 and f29/f30 reserved as spill scratch —
leaving 28 allocatable integer and 29 allocatable FP registers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import Cfg, liveness
from ..isa import Instruction, MemRef, Reg, SP

#: Allocatable registers per bank.  Integer: r0-r27 (r28/r29 spill
#: scratch, r30 stack pointer, r31 zero).  Floating point: f0-f28
#: (f29/f30 spill scratch, f31 zero).
N_ALLOCATABLE = {"i": 28, "f": 29}
#: Spill scratch registers per bank -- the single source of truth;
#: the machine-code verifier (:mod:`repro.codegen.verify`) imports
#: this table rather than mirroring the numbers.
SPILL_SCRATCH = {"i": (Reg("i", 28), Reg("i", 29)),
                 "f": (Reg("f", 29), Reg("f", 30))}
_SCRATCH = SPILL_SCRATCH


@dataclass
class AllocationResult:
    assignment: dict[Reg, Reg]
    spilled: dict[Reg, int]          # vreg -> stack slot
    n_slots: int


class RegisterAllocator:
    """Allocates one CFG's virtual registers onto physical registers."""

    def __init__(self, cfg: Cfg) -> None:
        self.cfg = cfg

    # ----------------------------------------------------------- intervals
    def _intervals(self) -> dict[Reg, list[int]]:
        """Conservative whole-range live intervals over layout order."""
        live_in, live_out = liveness(self.cfg)
        intervals: dict[Reg, list[int]] = {}
        position = 0
        for block in self.cfg:
            start = position
            end = position + max(len(block.instrs) - 1, 0)
            for instr in block.instrs:
                for reg in instr.uses() + instr.defs():
                    if not reg.virtual:
                        continue
                    interval = intervals.get(reg)
                    if interval is None:
                        intervals[reg] = [position, position]
                    else:
                        interval[1] = position
                position += 1
            for reg in live_in[block.label]:
                if reg.virtual:
                    interval = intervals.setdefault(reg, [start, start])
                    interval[0] = min(interval[0], start)
                    interval[1] = max(interval[1], start)
            for reg in live_out[block.label]:
                if reg.virtual:
                    interval = intervals.setdefault(reg, [end, end])
                    interval[1] = max(interval[1], end)
        return intervals

    # ------------------------------------------------------------ allocate
    def allocate(self) -> AllocationResult:
        intervals = self._intervals()
        order = sorted(intervals, key=lambda r: intervals[r][0])
        free = {"i": [Reg("i", n) for n in range(N_ALLOCATABLE["i"])],
                "f": [Reg("f", n) for n in range(N_ALLOCATABLE["f"])]}
        active: dict[str, list[tuple[int, Reg]]] = {"i": [], "f": []}
        assignment: dict[Reg, Reg] = {}
        spilled: dict[Reg, int] = {}
        slots = 0

        for vreg in order:
            start, end = intervals[vreg]
            kind = vreg.kind
            # Expire finished intervals.
            bank = active[kind]
            keep = []
            for item_end, item in bank:
                if item_end < start:
                    free[kind].append(assignment[item])
                else:
                    keep.append((item_end, item))
            active[kind] = keep
            if free[kind]:
                assignment[vreg] = free[kind].pop()
                active[kind].append((end, vreg))
                active[kind].sort(key=lambda item: item[0])
                continue
            # Spill the interval ending furthest away.
            furthest_end, furthest = active[kind][-1]
            if furthest_end > end:
                # Steal its register, spill the long-lived value.
                assignment[vreg] = assignment.pop(furthest)
                spilled[furthest] = slots
                slots += 1
                active[kind][-1] = (end, vreg)
                active[kind].sort(key=lambda item: item[0])
            else:
                spilled[vreg] = slots
                slots += 1

        self._rewrite(assignment, spilled)
        return AllocationResult(assignment=assignment, spilled=spilled,
                                n_slots=slots)

    # ------------------------------------------------------------- rewrite
    def _rewrite(self, assignment: dict[Reg, Reg],
                 spilled: dict[Reg, int]) -> None:
        for block in self.cfg:
            new_instrs: list[Instruction] = []
            for instr in block.instrs:
                scratch_next = {"i": 0, "f": 0}
                pre: list[Instruction] = []
                post: list[Instruction] = []
                replace: dict[Reg, Reg] = {}

                def resolve_use(reg: Reg) -> Reg:
                    if not reg.virtual:
                        return reg
                    if reg in replace:
                        return replace[reg]
                    if reg in spilled:
                        index = scratch_next[reg.kind]
                        if index >= len(_SCRATCH[reg.kind]):
                            raise RuntimeError(
                                "out of spill scratch registers")
                        scratch_next[reg.kind] = index + 1
                        scratch = _SCRATCH[reg.kind][index]
                        slot = spilled[reg]
                        op = "FLD" if reg.kind == "f" else "LD"
                        pre.append(Instruction(
                            op, dest=scratch, srcs=(SP,), offset=slot * 8,
                            mem=MemRef("stack", slot), is_spill=True))
                        replace[reg] = scratch
                        return scratch
                    replace[reg] = assignment[reg]
                    return assignment[reg]

                new_srcs = tuple(resolve_use(r) for r in instr.srcs)
                dest = instr.dest
                if dest is not None and dest.virtual:
                    if instr.info.reads_dest and dest in spilled:
                        resolve_use(dest)
                    if dest in spilled:
                        scratch = replace.get(dest)
                        if scratch is None:
                            index = scratch_next[dest.kind]
                            if index >= len(_SCRATCH[dest.kind]):
                                # Both scratches feed sources; the dest
                                # write happens after the reads, so
                                # reusing the first scratch is safe.
                                scratch = _SCRATCH[dest.kind][0]
                            else:
                                scratch_next[dest.kind] = index + 1
                                scratch = _SCRATCH[dest.kind][index]
                        slot = spilled[dest]
                        op = "FST" if dest.kind == "f" else "ST"
                        post.append(Instruction(
                            op, srcs=(scratch, SP), offset=slot * 8,
                            mem=MemRef("stack", slot), is_spill=True))
                        dest = scratch
                    else:
                        dest = assignment[dest]

                new_instrs.extend(pre)
                new_instrs.append(instr.copy(dest=dest, srcs=new_srcs))
                new_instrs.extend(post)
            block.instrs = new_instrs


def allocate_registers(cfg: Cfg) -> AllocationResult:
    """Allocate *cfg* in place; returns the assignment/spill summary."""
    return RegisterAllocator(cfg).allocate()
