"""Machine-code verifier: hard well-formedness checks on final programs.

Run after linearization (and from tests) to catch compiler bugs before
they become mysterious simulation failures:

* every branch targets a defined label;
* no virtual registers survive register allocation;
* reserved registers are respected (nothing writes the zero registers
  or the stack pointer; spill scratch registers only appear in code
  the allocator emitted);
* every load/store carries a :class:`~repro.isa.MemRef` (the dependence
  analysis relies on them) and spill slots stay inside the stack area;
* execution cannot fall off the end of the program (the last
  instruction is a HALT or an unconditional branch);
* at least one HALT is reachable.
"""

from __future__ import annotations

from ..isa import MachineProgram

#: Spill scratch registers (mirrors codegen.regalloc._SCRATCH).
_SCRATCH_NUMS = {"i": (28, 29), "f": (29, 30)}


class VerificationError(Exception):
    """A generated program violates a well-formedness rule."""


def verify_program(program: MachineProgram,
                   allow_virtual: bool = False) -> None:
    """Raise :class:`VerificationError` on the first violation."""
    program.resolve()           # undefined labels raise ValueError
    instructions = program.instructions
    if not instructions:
        raise VerificationError("empty program")

    for index, instr in enumerate(instructions):
        where = f"at {index}: {instr.format()}"

        for reg in instr.defs():
            if not allow_virtual and reg.virtual:
                raise VerificationError(
                    f"virtual register {reg} written {where}")
            if not reg.virtual and reg.num == 31:
                raise VerificationError(
                    f"write to hardwired zero register {where}")
            if not reg.virtual and reg.kind == "i" and reg.num == 30:
                raise VerificationError(
                    f"write to the stack pointer {where}")
            if (not reg.virtual and not instr.is_spill
                    and _is_scratch(reg)
                    and not _scratch_consumer_nearby(instructions, index)):
                raise VerificationError(
                    f"scratch register {reg} written outside spill "
                    f"code {where}")
        for reg in instr.uses():
            if not allow_virtual and reg.virtual:
                raise VerificationError(
                    f"virtual register {reg} read {where}")

        if instr.is_mem:
            if instr.mem is None:
                raise VerificationError(f"memory op without MemRef {where}")
            if instr.mem.region == "stack" and not instr.is_spill:
                raise VerificationError(
                    f"stack access not marked as spill {where}")

    last = instructions[-1]
    if last.op not in ("HALT", "BR"):
        reason = ("a conditional branch" if last.is_branch
                  else "a fall-through instruction")
        raise VerificationError(
            f"control can fall off the end: program ends with {reason}")

    if not any(i.op == "HALT" for i in instructions):
        raise VerificationError("program has no HALT")


def _is_scratch(reg) -> bool:
    return reg.num in _SCRATCH_NUMS.get(reg.kind, ())


def _scratch_consumer_nearby(instructions, index: int) -> bool:
    """A non-spill write to a scratch register is legitimate when it is
    itself part of a spill sequence: the value is stored to a stack slot
    by the next few instructions (the allocator's spill-after-def), or
    the instruction rewrote a spilled destination in place."""
    for follower in instructions[index + 1:index + 4]:
        if follower.is_spill and follower.is_store:
            return True
        if follower.is_branch or follower.op == "HALT":
            break
    return False


def check_program(program: MachineProgram,
                  allow_virtual: bool = False) -> list[str]:
    """Like :func:`verify_program` but collects problems as strings."""
    try:
        verify_program(program, allow_virtual=allow_virtual)
    except (VerificationError, ValueError) as exc:
        return [str(exc)]
    return []
