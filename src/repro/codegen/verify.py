"""Machine-code verifier: hard well-formedness checks on final programs.

Run after linearization (and from tests) to catch compiler bugs before
they become mysterious simulation failures:

* every branch targets a defined label;
* no virtual registers survive register allocation;
* reserved registers are respected (nothing writes the zero registers
  or the stack pointer; spill scratch registers only appear in code
  the allocator emitted);
* every load/store carries a :class:`~repro.isa.MemRef` (the dependence
  analysis relies on them) and spill slots stay inside the stack area;
* execution cannot fall off the end of the program (the last
  instruction is a HALT or an unconditional branch);
* at least one HALT is reachable.
"""

from __future__ import annotations

from ..analysis.deps import analyze_loop_body
from ..isa import MachineProgram
from .regalloc import SPILL_SCRATCH

#: Scratch register numbers per bank, derived from the allocator's
#: own table so the two can never drift apart.
_SCRATCH_NUMS = {kind: tuple(reg.num for reg in regs)
                 for kind, regs in SPILL_SCRATCH.items()}


class VerificationError(Exception):
    """A generated program violates a well-formedness rule."""


def verify_program(program: MachineProgram,
                   allow_virtual: bool = False) -> None:
    """Raise :class:`VerificationError` on the first violation."""
    program.resolve()           # undefined labels raise ValueError
    instructions = program.instructions
    if not instructions:
        raise VerificationError("empty program")

    for index, instr in enumerate(instructions):
        where = f"at {index}: {instr.format()}"

        for reg in instr.defs():
            if not allow_virtual and reg.virtual:
                raise VerificationError(
                    f"virtual register {reg} written {where}")
            if not reg.virtual and reg.num == 31:
                raise VerificationError(
                    f"write to hardwired zero register {where}")
            if not reg.virtual and reg.kind == "i" and reg.num == 30:
                raise VerificationError(
                    f"write to the stack pointer {where}")
            if (not reg.virtual and not instr.is_spill
                    and _is_scratch(reg)
                    and not _scratch_consumer_nearby(instructions, index)):
                raise VerificationError(
                    f"scratch register {reg} written outside spill "
                    f"code {where}")
        for reg in instr.uses():
            if not allow_virtual and reg.virtual:
                raise VerificationError(
                    f"virtual register {reg} read {where}")

        if instr.is_mem:
            if instr.mem is None:
                raise VerificationError(f"memory op without MemRef {where}")
            if instr.mem.region == "stack" and not instr.is_spill:
                raise VerificationError(
                    f"stack access not marked as spill {where}")

    last = instructions[-1]
    if last.op not in ("HALT", "BR"):
        reason = ("a conditional branch" if last.is_branch
                  else "a fall-through instruction")
        raise VerificationError(
            f"control can fall off the end: program ends with {reason}")

    if not any(i.op == "HALT" for i in instructions):
        raise VerificationError("program has no HALT")


def verify_pipelined_kernels(cfg, kernels) -> None:
    """Check cross-iteration dependences inside software-pipelined kernels.

    For each :class:`~repro.sched.modulo.KernelInfo`, the kernel block
    (still in virtual registers, before allocation rewrites the
    instructions) is replayed *twice* back to back -- the steady state
    of the modulo schedule, covering every wrap-around of the modulo
    reservation table:

    * every register operand whose producer lives in the loop body must
      read its value from exactly the instance modulo variable
      expansion predicted (no version is clobbered early and no stale
      version survives);
    * conflicting memory accesses must issue in iteration order:
      instances are tagged with ``(iteration offset, original body
      position)`` and any conflicting pair must appear in increasing
      tag order.  Conflict at a given instance distance is decided by a
      *fresh* run of the symbolic dependence analyzer over the recorded
      loop body — never by the scheduler's own arcs — so a scheduler
      that sharpened or dropped an arc it should not have is caught
      here, not trusted.
    """
    for info in kernels:
        block = cfg.blocks.get(info.kernel_label)
        if block is None:
            raise VerificationError(
                f"pipelined kernel block {info.kernel_label} missing")
        _verify_kernel_stream(block.instrs, info)


def _verify_kernel_stream(instrs, info) -> None:
    analysis = (analyze_loop_body(info.body_ops)
                if getattr(info, "body_ops", None) else None)
    last_writer: dict = {}
    mem_seen: list = []     # ((iteration, body position), Instruction)
    for copy in range(2):
        for instr in instrs:
            where = (f"kernel {info.kernel_label}, copy {copy}: "
                     f"{instr.format()}")
            for reg in instr.uses():
                expected = info.expected_writer.get((instr.uid, str(reg)))
                if expected is None:
                    continue
                actual = last_writer.get(reg)
                if actual is not None and actual != expected:
                    raise VerificationError(
                        f"cross-iteration register dependence broken: "
                        f"{reg} written by unexpected instance {where}")
            tag = info.mem_tags.get(instr.uid)
            if tag is not None:
                key = (tag[0] + copy * info.unroll, tag[1])
                for other_key, other in mem_seen:
                    if other_key <= key:
                        continue
                    if instr.is_load and other.is_load:
                        continue
                    if _kernel_mem_conflict(instr, key, other, other_key,
                                            analysis):
                        raise VerificationError(
                            f"cross-iteration memory dependence broken: "
                            f"conflicts with later iteration's "
                            f"{other.format()} {where}")
                mem_seen.append((key, instr))
            for reg in instr.defs():
                last_writer[reg] = instr.uid


def _kernel_mem_conflict(earlier, earlier_key, later, later_key,
                         analysis) -> bool:
    """May the *earlier*-tagged instance conflict with the *later* one?

    With a body analysis available, conflict at instance distance
    ``later_iter - earlier_iter`` is decided by the symbolic verdict
    for the two body positions; at distance 0 the intra-iteration
    affine refinement of :meth:`MemRef.conflicts_with` additionally
    applies (both tests over-approximate, so their intersection is
    still sound).  Without an analysis (legacy kernels), fall back to
    the old rule: affine refinement within an iteration, region+symbol
    across iterations."""
    same_iter = later_key[0] == earlier_key[0]
    if analysis is not None:
        distance = later_key[0] - earlier_key[0]
        conflict = analysis.conflicts_at(earlier_key[1], later_key[1],
                                         distance)
        if (conflict and same_iter and earlier.mem is not None
                and later.mem is not None):
            conflict = earlier.mem.conflicts_with(later.mem)
        return conflict
    if earlier.mem is None or later.mem is None:
        return True
    if same_iter:
        return earlier.mem.conflicts_with(later.mem)
    return (earlier.mem.region == later.mem.region
            and earlier.mem.symbol == later.mem.symbol)


def _is_scratch(reg) -> bool:
    return reg.num in _SCRATCH_NUMS.get(reg.kind, ())


def _scratch_consumer_nearby(instructions, index: int) -> bool:
    """A non-spill write to a scratch register is legitimate when it is
    itself part of a spill sequence: the value is stored to a stack slot
    by the next few instructions (the allocator's spill-after-def), or
    the instruction rewrote a spilled destination in place."""
    for follower in instructions[index + 1:index + 4]:
        if follower.is_spill and follower.is_store:
            return True
        if follower.is_branch or follower.op == "HALT":
            break
    return False


def check_program(program: MachineProgram,
                  allow_virtual: bool = False) -> list[str]:
    """Like :func:`verify_program` but collects problems as strings."""
    try:
        verify_program(program, allow_virtual=allow_virtual)
    except (VerificationError, ValueError) as exc:
        return [str(exc)]
    return []
