"""Code generation: lowering, register allocation, emission."""

from .lower import Lowerer, lower
from .regalloc import AllocationResult, allocate_registers
from .verify import VerificationError, check_program, verify_program

__all__ = [
    "Lowerer", "lower", "AllocationResult", "allocate_registers",
    "VerificationError", "check_program", "verify_program",
]
