"""Clients for the ``repro serve`` daemon.

:class:`AsyncServeClient` multiplexes any number of concurrent
requests over **one** UNIX-socket connection: a single reader task
routes incoming frames to per-request queues by their echoed ``id``.
That is what lets the load-test harness sustain thousands of
concurrent requests without opening thousands of file descriptors.

:class:`ServeClient` is the blocking convenience wrapper the CLI uses
— it owns a private event loop and forwards each call.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import AsyncIterator, Callable, Optional

from . import protocol
from .protocol import (
    FRAME_ERROR,
    FRAME_EVENT,
    FRAME_RESULT,
    encode_frame,
    read_frame,
)


class ServeError(RuntimeError):
    """The daemon answered with an ``error`` frame."""

    def __init__(self, message: str, frame: Optional[dict] = None):
        super().__init__(message)
        self.frame = frame or {}


class ConnectionClosed(ConnectionError):
    """The daemon hung up before answering."""


class AsyncServeClient:
    """One multiplexed connection to a running daemon."""

    def __init__(self) -> None:
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()
        self._pending: dict[int, asyncio.Queue] = {}
        self._next_id = 0
        self._closed = False

    @classmethod
    async def connect(cls, socket_path: Path | str,
                      timeout: float = 30.0) -> "AsyncServeClient":
        client = cls()
        client._reader, client._writer = await asyncio.wait_for(
            asyncio.open_unix_connection(
                str(socket_path), limit=protocol.MAX_FRAME_BYTES),
            timeout)
        client._reader_task = asyncio.ensure_future(client._route())
        return client

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:
                pass
        self._fail_pending(ConnectionClosed("client closed"))

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------ frame routing
    async def _route(self) -> None:
        """Single reader: route every incoming frame by its ``id``."""
        error: Exception = ConnectionClosed("daemon closed connection")
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    break
                queue = self._pending.get(frame.get("id"))
                if queue is not None:
                    queue.put_nowait(frame)
                # Frames for unknown ids (e.g. a reply racing a local
                # timeout) are dropped deliberately.
        except Exception as exc:        # noqa: BLE001 — fail all waiters
            error = exc
        finally:
            self._fail_pending(error)

    def _fail_pending(self, error: Exception) -> None:
        pending, self._pending = self._pending, {}
        for queue in pending.values():
            queue.put_nowait(error)

    # ------------------------------------------------------------ request
    async def request(self, op: str, *, on_event: Optional[
            Callable[[dict], None]] = None, **params) -> dict:
        """Send one request; return the terminal ``result`` frame.

        Event frames are passed to *on_event* as they arrive.  Raises
        :class:`ServeError` on an ``error`` frame and
        :class:`ConnectionClosed` if the daemon goes away first.
        """
        result: Optional[dict] = None
        async for frame in self.stream(op, **params):
            if frame.get("type") == FRAME_EVENT:
                if on_event is not None:
                    on_event(frame)
            else:
                result = frame
        assert result is not None       # stream() ends on terminal frame
        return result

    async def stream(self, op: str, **params) -> AsyncIterator[dict]:
        """Send one request; yield every frame (events included) up to
        and including the terminal one."""
        if self._closed:
            raise ConnectionClosed("client closed")
        self._next_id += 1
        request_id = self._next_id
        queue: asyncio.Queue = asyncio.Queue()
        self._pending[request_id] = queue
        frame = {"id": request_id, "op": op}
        frame.update(params)
        try:
            async with self._write_lock:
                self._writer.write(encode_frame(frame))
                await self._writer.drain()
            while True:
                item = await queue.get()
                if isinstance(item, Exception):
                    raise item
                yield item
                if item.get("type") == FRAME_RESULT:
                    return
                if item.get("type") == FRAME_ERROR:
                    raise ServeError(item.get("error", "unknown error"),
                                     item)
        finally:
            self._pending.pop(request_id, None)

    # ------------------------------------------------------ conveniences
    async def ping(self) -> dict:
        return await self.request("ping")

    async def status(self) -> dict:
        return await self.request("status")

    async def workloads(self) -> list[dict]:
        return (await self.request("workloads"))["workloads"]

    async def bench(self, benchmark: str, scheduler: str = "balanced",
                    config: str = "base",
                    machine: Optional[dict] = None,
                    events: bool = False,
                    on_event: Optional[Callable[[dict], None]] = None
                    ) -> dict:
        params = {"benchmark": benchmark, "scheduler": scheduler,
                  "config": config}
        if machine:
            params["machine"] = machine
        if events:
            params["events"] = True
        return await self.request("bench", on_event=on_event, **params)

    async def sweep(self, benchmarks=None, schedulers=None,
                    configs=None, machine: Optional[dict] = None,
                    events: bool = False,
                    on_event: Optional[Callable[[dict], None]] = None
                    ) -> dict:
        params = {}
        if benchmarks:
            params["benchmarks"] = list(benchmarks)
        if schedulers:
            params["schedulers"] = list(schedulers)
        if configs:
            params["configs"] = list(configs)
        if machine:
            params["machine"] = machine
        if events:
            params["events"] = True
        return await self.request("sweep", on_event=on_event, **params)

    async def metrics(self) -> dict:
        """The daemon's folded metrics registry (``metrics`` op):
        ``{"recording", "snapshot", "summary"}``."""
        return await self.request("metrics")

    async def shutdown(self) -> dict:
        return await self.request("shutdown")


class ServeClient:
    """Blocking wrapper: one connection, one private event loop."""

    def __init__(self, socket_path: Path | str,
                 timeout: float = 30.0) -> None:
        self.socket_path = Path(socket_path)
        self._loop = asyncio.new_event_loop()
        self._client = self._loop.run_until_complete(
            AsyncServeClient.connect(self.socket_path, timeout))

    def _run(self, coroutine):
        return self._loop.run_until_complete(coroutine)

    def request(self, op: str, **params) -> dict:
        return self._run(self._client.request(op, **params))

    def ping(self) -> dict:
        return self._run(self._client.ping())

    def status(self) -> dict:
        return self._run(self._client.status())

    def workloads(self) -> list[dict]:
        return self._run(self._client.workloads())

    def bench(self, benchmark: str, scheduler: str = "balanced",
              config: str = "base", machine: Optional[dict] = None,
              events: bool = False,
              on_event: Optional[Callable[[dict], None]] = None
              ) -> dict:
        return self._run(self._client.bench(
            benchmark, scheduler, config, machine=machine,
            events=events, on_event=on_event))

    def sweep(self, **kwargs) -> dict:
        return self._run(self._client.sweep(**kwargs))

    def metrics(self) -> dict:
        return self._run(self._client.metrics())

    def shutdown(self) -> dict:
        return self._run(self._client.shutdown())

    def close(self) -> None:
        if self._loop.is_closed():
            return
        self._run(self._client.close())
        self._loop.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
