"""Package-fingerprint tracking for a resident daemon.

A cold CLI process hashes the package sources once and dies; a daemon
lives across source edits, so it must notice them or it will serve
results computed by code that no longer exists.  Re-hashing every
source file on every request is needless (the tree rarely changes), so
:class:`FingerprintTracker` keeps a stat snapshot — ``(path, size,
mtime_ns)`` for every ``*.py`` under the package root — and only
re-hashes when the snapshot changes.  The snapshot itself is refreshed
at most every *interval* seconds; ``0`` means re-stat on every call
(used by tests that edit sources under a live daemon and expect the
very next request to miss).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional

from ..harness.experiment import _package_fingerprint


def _snapshot(root: Path) -> tuple:
    rows = []
    for path in sorted(root.rglob("*.py")):
        try:
            stat = path.stat()
        except OSError:
            continue
        rows.append((str(path), stat.st_size, stat.st_mtime_ns))
    return tuple(rows)


class FingerprintTracker:
    """Cheaply keeps :func:`_package_fingerprint` current."""

    def __init__(self, root: Optional[Path] = None,
                 interval: float = 0.2,
                 clock=time.monotonic) -> None:
        if root is None:
            # The repro package root (mirrors _package_fingerprint).
            root = Path(__file__).resolve().parent.parent
        self.root = Path(root)
        self.interval = interval
        self._clock = clock
        self._checked_at: Optional[float] = None
        self._snapshot: Optional[tuple] = None
        self._fingerprint: Optional[str] = None
        #: Full re-hashes performed (observability; the daemon's
        #: status op reports it).
        self.rehashes = 0

    def current(self) -> str:
        """The up-to-date package fingerprint."""
        now = self._clock()
        if (self._fingerprint is not None
                and self._checked_at is not None
                and now - self._checked_at < self.interval):
            return self._fingerprint
        snapshot = _snapshot(self.root)
        self._checked_at = now
        if snapshot != self._snapshot:
            self._snapshot = snapshot
            self._fingerprint = _package_fingerprint(self.root)
            self.rehashes += 1
        return self._fingerprint
