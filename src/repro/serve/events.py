"""Streaming progress events: the ``repro.obs`` Observer, bridged to a
connected client.

The daemon threads a :class:`StreamingObserver` through its own
request handling; every span and event becomes a protocol ``event``
frame on the requesting client's connection.  Grid-point computations
run in pool worker processes, so in-worker phase timings arrive with
the worker's reply and are re-emitted here as ``point.phases`` before
the terminal result frame — the client sees one coherent, ordered
stream either way.
"""

from __future__ import annotations

import time
from typing import Callable

from ..obs import Observer

#: An emit callback: receives (event-name, attrs-dict).
Emit = Callable[..., None]


class _StreamedSpan:
    """Context manager emitting ``<name>.start`` / ``<name>.end``
    frames, the end frame carrying the wall-clock duration and any
    :meth:`annotate`-ed attributes."""

    __slots__ = ("_observer", "_name", "_attrs", "_start")

    def __init__(self, observer: "StreamingObserver", name: str,
                 attrs: dict) -> None:
        self._observer = observer
        self._name = name
        self._attrs = attrs
        self._start = 0.0

    def annotate(self, **attrs) -> None:
        self._attrs.update(attrs)

    def __enter__(self) -> "_StreamedSpan":
        self._start = time.perf_counter()
        self._observer.emit(f"{self._name}.start", **self._attrs)
        return self

    def __exit__(self, *exc) -> bool:
        self._observer.emit(
            f"{self._name}.end",
            seconds=round(time.perf_counter() - self._start, 6),
            **self._attrs)
        return False


class StreamingObserver(Observer):
    """Observer whose spans/events are forwarded to a client."""

    enabled = True

    def __init__(self, emit: Emit) -> None:
        self._emit = emit
        self.events_emitted = 0

    def emit(self, name: str, **attrs) -> None:
        self.events_emitted += 1
        self._emit(name, **attrs)

    # ---------------------------------------------------- Observer API
    def span(self, name: str, **attrs):
        return _StreamedSpan(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        self.emit(name, **attrs)

    def annotate(self, **attrs) -> None:
        pass

    def stall_profile(self, benchmark: str, scheduler: str = "",
                      config: str = ""):
        # Stall attribution needs in-process simulation; the daemon
        # computes in pool workers, so none is collected here.
        return None
