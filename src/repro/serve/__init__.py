"""``repro.serve`` — the persistent compile/bench daemon.

A resident asyncio service over a UNIX socket: parsed workloads,
machine configs, and warm caches stay in memory; grid points are
dispatched dynamically to a pool of worker processes; identical
concurrent requests share one in-flight computation; and every result
is published to the same fingerprint-sharded store the cold CLI path
reads, so daemon and ``repro bench`` are bit-identical by
construction.  See ``docs/SERVING.md``.
"""

from .client import (
    AsyncServeClient,
    ConnectionClosed,
    ServeClient,
    ServeError,
)
from .daemon import (
    SERVE_MANIFEST_NAME,
    DaemonHandle,
    ReproDaemon,
    ServeStats,
)
from .events import StreamingObserver
from .fingerprint import FingerprintTracker
from .loadtest import (
    DEFAULT_POINTS,
    LoadTestReport,
    run_load_test,
    run_load_test_sync,
)
from .protocol import (
    DEFAULT_SOCKET_NAME,
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
)

__all__ = [
    "AsyncServeClient", "ConnectionClosed", "ServeClient",
    "ServeError", "SERVE_MANIFEST_NAME", "DaemonHandle", "ReproDaemon",
    "ServeStats", "StreamingObserver", "FingerprintTracker",
    "DEFAULT_POINTS", "LoadTestReport", "run_load_test",
    "run_load_test_sync", "DEFAULT_SOCKET_NAME", "MAX_FRAME_BYTES",
    "ProtocolError", "decode_frame", "encode_frame",
]
