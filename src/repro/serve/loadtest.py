"""Load-test harness for the ``repro serve`` daemon.

Replays many concurrent ``bench`` requests against a running daemon —
multiplexed over a bounded number of connections — and then *proves*
the serving path honest:

* every response for the same grid point must be **bit-identical**
  (canonical-JSON compare of the full result payload);
* optionally, each unique point is recomputed through the cold
  in-process path (:func:`repro.harness.experiment._execute_grid_point`
  — exactly what ``repro bench`` runs) and the served payloads must
  match it bit-for-bit;
* dedup is verified from the daemon's own counters: a cold store plus
  N requests over K unique points must compute at most K times.

Used by ``repro serve-load`` and the CI ``serve-smoke`` job.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from ..harness.experiment import _execute_grid_point
from ..obs.metrics import MetricsRegistry, _label_key
from ..workloads.programs import WORKLOADS
from .client import AsyncServeClient

#: Default request mix: cheap points so thousands of requests finish
#: in CI time while still exercising compile + simulate.
DEFAULT_POINTS: tuple[tuple[str, str, str], ...] = (
    ("ora", "balanced", "base"),
    ("ora", "traditional", "base"),
    ("ora", "balanced", "lu4"),
    ("ora", "traditional", "lu4"),
)


def canonical(payload: dict) -> str:
    """Canonical JSON for bit-identity comparison."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass
class LoadTestReport:
    """Outcome of one load-test run (shape is CI-assertable JSON)."""

    requests: int
    connections: int
    unique_points: int
    wall_seconds: float
    requests_per_second: float
    served: dict = field(default_factory=dict)
    computed_delta: int = 0
    deduped: int = 0
    cached: int = 0
    errors: list = field(default_factory=list)
    identical: bool = True
    cold_verified: Optional[bool] = None
    mismatches: list = field(default_factory=list)
    #: Client-side request-latency distribution (seconds):
    #: ``{count, mean, p50, p95, p99}`` over successful requests.
    latency_seconds: dict = field(default_factory=dict)
    #: The daemon's own ``repro_serve_request_seconds{op="bench"}``
    #: histogram over exactly this run (before/after snapshot delta);
    #: None when the daemon records no metrics.
    daemon_latency_seconds: Optional[dict] = None
    #: True iff the daemon's histogram agrees with the client-side
    #: measurement: the count matches the successful requests exactly
    #: and the daemon-side mean does not exceed the client-side mean
    #: beyond tolerance (client windows enclose daemon windows).
    latency_agreement: Optional[bool] = None

    @property
    def ok(self) -> bool:
        return (not self.errors and self.identical
                and self.cold_verified is not False
                and self.latency_agreement is not False)

    def to_json(self) -> dict:
        data = asdict(self)
        data["ok"] = self.ok
        return data


async def run_load_test(
        socket_path: Path | str,
        requests: int = 1000,
        connections: int = 32,
        points: Sequence[tuple[str, str, str]] = DEFAULT_POINTS,
        verify_cold: bool = False,
        machine: Optional[dict] = None) -> LoadTestReport:
    """Fire *requests* concurrent bench requests and audit the replies."""
    points = list(points)
    connections = max(1, min(connections, requests))
    before_stats = None
    clients = [await AsyncServeClient.connect(socket_path)
               for _ in range(connections)]
    errors: list[str] = []
    replies: list[Optional[dict]] = [None] * requests
    latencies: list[float] = []
    before_metrics = after_metrics = None
    try:
        before_stats = (await clients[0].status())["stats"]
        before_metrics = await clients[0].metrics()
        start = time.perf_counter()

        async def one(index: int) -> None:
            benchmark, scheduler, config = points[index % len(points)]
            client = clients[index % connections]
            begin = time.perf_counter()
            try:
                replies[index] = await client.bench(
                    benchmark, scheduler, config, machine=machine)
                latencies.append(time.perf_counter() - begin)
            except Exception as exc:    # noqa: BLE001 — audit later
                errors.append(f"request {index} "
                              f"({benchmark}/{scheduler}/{config}): "
                              f"{exc}")

        await asyncio.gather(*[one(i) for i in range(requests)])
        wall = time.perf_counter() - start
        after_stats = (await clients[0].status())["stats"]
        after_metrics = await clients[0].metrics()
    finally:
        for client in clients:
            await client.close()

    served: dict[str, int] = {}
    by_point: dict[tuple[str, str, str], dict[str, list[int]]] = {}
    for index, reply in enumerate(replies):
        if reply is None:
            continue
        served[reply.get("served", "?")] = \
            served.get(reply.get("served", "?"), 0) + 1
        point = points[index % len(points)]
        by_point.setdefault(point, {}).setdefault(
            canonical(reply["result"]), []).append(index)

    mismatches: list[str] = []
    for point, variants in sorted(by_point.items()):
        if len(variants) > 1:
            sizes = sorted(len(ids) for ids in variants.values())
            mismatches.append(
                f"{'/'.join(point)}: {len(variants)} distinct payloads "
                f"across {sum(sizes)} replies")
    identical = not mismatches

    cold_verified: Optional[bool] = None
    if verify_cold and identical and not errors:
        cold_verified = True
        for point, variants in sorted(by_point.items()):
            benchmark, scheduler, config = point
            result, _timing = _execute_grid_point(
                WORKLOADS[benchmark], scheduler, config)
            expected = canonical(asdict(result))
            got = next(iter(variants))
            if got != expected:
                cold_verified = False
                mismatches.append(
                    f"{'/'.join(point)}: served payload differs from "
                    f"cold CLI path")

    latency = _client_percentiles(latencies)
    daemon_latency = _bench_latency_delta(before_metrics, after_metrics)
    agreement: Optional[bool] = None
    if daemon_latency is not None and latency["count"]:
        # The client window (write -> terminal frame) encloses the
        # daemon window (frame decode -> reply sent), so the daemon
        # count must match the successful requests exactly and its
        # mean must not exceed the client mean beyond bucket slack.
        agreement = (daemon_latency["count"] == latency["count"]
                     and daemon_latency["mean"]
                     <= latency["mean"] * 1.5 + 0.05)

    return LoadTestReport(
        requests=requests,
        connections=connections,
        unique_points=len(by_point),
        wall_seconds=round(wall, 3),
        requests_per_second=round(requests / wall, 1) if wall else 0.0,
        served=served,
        computed_delta=(after_stats["computed"]
                       - before_stats["computed"]),
        deduped=after_stats["deduped"] - before_stats["deduped"],
        cached=after_stats["cached"] - before_stats["cached"],
        errors=errors,
        identical=identical,
        cold_verified=cold_verified,
        mismatches=mismatches,
        latency_seconds=latency,
        daemon_latency_seconds=daemon_latency,
        latency_agreement=agreement,
    )


def _client_percentiles(latencies: list[float]) -> dict:
    """Exact (nearest-rank) percentiles of the client-side latencies."""
    if not latencies:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                "p99": 0.0}
    ordered = sorted(latencies)

    def rank(q: float) -> float:
        index = min(len(ordered) - 1,
                    max(0, int(round(q * len(ordered))) - 1))
        return round(ordered[index], 6)

    return {
        "count": len(ordered),
        "mean": round(sum(ordered) / len(ordered), 6),
        "p50": rank(0.50), "p95": rank(0.95), "p99": rank(0.99),
    }


def _bench_latency_delta(before: Optional[dict],
                         after: Optional[dict]) -> Optional[dict]:
    """p50/p95/p99 of the daemon's own bench-latency histogram over
    exactly this run: the before/after snapshot delta (bucket counts
    are exact ints, so the subtraction is too)."""
    if not after or not after.get("recording"):
        return None
    name = "repro_serve_request_seconds"
    key = _label_key({"op": "bench"})

    def child_of(reply: Optional[dict]) -> Optional[dict]:
        if not reply:
            return None
        family = reply.get("snapshot", {}).get("families", {}).get(name)
        return (family or {}).get("children", {}).get(key)

    now = child_of(after)
    if now is None:
        return None
    base = child_of(before)
    counts = list(now["bucket_counts"])
    total_sum, count = now["sum"], now["count"]
    if base is not None:
        counts = [a - b for a, b in zip(counts, base["bucket_counts"])]
        total_sum -= base["sum"]
        count -= base["count"]
    if count <= 0 or any(n < 0 for n in counts):
        return None
    registry = MetricsRegistry(recording=True)
    registry.merge({"families": {name: {
        "kind": "histogram", "bounds": now["bounds"],
        "children": {key: {"bounds": now["bounds"],
                           "bucket_counts": counts,
                           "sum": total_sum, "count": count}}}}})
    return registry.families()[name].labels(op="bench").percentiles()


def run_load_test_sync(socket_path: Path | str,
                       **kwargs) -> LoadTestReport:
    """Blocking wrapper around :func:`run_load_test`."""
    return asyncio.run(run_load_test(socket_path, **kwargs))
